//! Gate-level netlist representation and construction.
//!
//! A [`Netlist`] is a graph of named nets connected by combinational
//! [`Gate`]s (any [`StdCell`]), edge-triggered flip-flops, constant
//! drivers and primary inputs/outputs. It is the structure on which the
//! event-driven simulator ([`crate::sim`]) and the static timing analyser
//! ([`crate::sta`]) operate, and the form in which `psnt-core` expresses
//! the paper's CNTR control block for its critical-path claim.
//!
//! # Examples
//!
//! Build `q = !(a & b)` and validate it:
//!
//! ```
//! use psnt_cells::gates::StdCell;
//! use psnt_netlist::graph::Netlist;
//!
//! let mut n = Netlist::new("demo");
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! let q = n.add_gate("g1", StdCell::nand2(1.0), &[a, b])?;
//! n.mark_output("q", q);
//! n.validate()?;
//! # Ok::<(), psnt_netlist::error::NetlistError>(())
//! ```

use std::collections::{BTreeMap, VecDeque};

use psnt_cells::dff::Dff;
use psnt_cells::gates::StdCell;
use psnt_cells::logic::Logic;
use psnt_cells::units::Capacitance;
use serde::{Deserialize, Serialize};

use crate::error::NetlistError;

/// Identifier of a net within one [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NetId(pub(crate) usize);

impl NetId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a combinational gate instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GateId(pub(crate) usize);

impl GateId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs an id from a raw index (the `i`-th gate added).
    pub fn from_index(index: usize) -> GateId {
        GateId(index)
    }
}

/// Identifier of a flip-flop instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DffId(pub(crate) usize);

impl DffId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a power domain.
///
/// Every gate belongs to a domain; the simulator and STA can supply each
/// domain at a different voltage. Domain 0 is the default "core"
/// (clean) domain — the paper's sensor puts its sense inverters on the
/// noisy CUT rails while the flip-flops and control stay on the nominal
/// supply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DomainId(pub(crate) usize);

impl DomainId {
    /// The default clean ("core") domain.
    pub const CORE: DomainId = DomainId(0);

    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A named wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Net {
    name: String,
    /// Extra (wire/parasitic) capacitance beyond connected pins.
    wire_capacitance: Capacitance,
}

impl Net {
    /// The net's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The wire parasitic capacitance.
    pub fn wire_capacitance(&self) -> Capacitance {
        self.wire_capacitance
    }
}

/// A combinational gate instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gate {
    name: String,
    cell: StdCell,
    inputs: Vec<NetId>,
    output: NetId,
    domain: DomainId,
}

impl Gate {
    /// The instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The library cell.
    pub fn cell(&self) -> &StdCell {
        &self.cell
    }

    /// Input nets, in pin order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Output net.
    pub fn output(&self) -> NetId {
        self.output
    }

    /// The power domain supplying this gate.
    pub fn domain(&self) -> DomainId {
        self.domain
    }
}

/// A flip-flop instance (positive edge triggered).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DffInst {
    name: String,
    model: Dff,
    d: NetId,
    clk: NetId,
    q: NetId,
    init: Logic,
}

impl DffInst {
    /// The instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The timing model.
    pub fn model(&self) -> &Dff {
        &self.model
    }

    /// The data input net.
    pub fn d(&self) -> NetId {
        self.d
    }

    /// The clock net.
    pub fn clk(&self) -> NetId {
        self.clk
    }

    /// The output net.
    pub fn q(&self) -> NetId {
        self.q
    }

    /// Power-on value of `Q`.
    pub fn init(&self) -> Logic {
        self.init
    }
}

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Driver {
    /// A primary input pin.
    Input,
    /// The output of a combinational gate.
    Gate(GateId),
    /// The `Q` pin of a flip-flop.
    Dff(DffId),
    /// A constant tie cell.
    Const(Logic),
}

/// Flattened, allocation-free view of a [`Netlist`] for the event-driven
/// simulator: CSR (offsets + data) arrays for gate fanout, clock fanout
/// and gate input pins, plus per-net capacitive loads, per-net driver
/// domains and the cached topological gate order. Everything the
/// simulator's hot loop needs is computed once here, so the loop itself
/// performs no heap allocation and no per-event graph walks.
#[derive(Debug, Clone, PartialEq)]
pub struct SimTopology {
    /// CSR offsets into `fanout_gates`, indexed by net (`len = nets + 1`).
    fanout_off: Vec<u32>,
    /// Gates reading each net, grouped per net in gate order.
    fanout_gates: Vec<GateId>,
    /// CSR offsets into `clk_dffs`, indexed by net.
    clk_off: Vec<u32>,
    /// Flip-flops clocked by each net.
    clk_dffs: Vec<DffId>,
    /// CSR offsets into `input_nets`, indexed by gate.
    input_off: Vec<u32>,
    /// Input nets of each gate, in pin order.
    input_nets: Vec<NetId>,
    /// Total capacitive load per net (pins + wire parasitics).
    loads: Vec<Capacitance>,
    /// Power domain of each net's driver (gates use their own domain;
    /// inputs, constants and flip-flop outputs sit on the core domain).
    driver_domain: Vec<DomainId>,
    /// Kahn topological order of the combinational gates.
    topo: Vec<GateId>,
}

impl SimTopology {
    /// The gates reading `net`, in the same order as [`Netlist::fanout`].
    pub fn fanout(&self, net: NetId) -> &[GateId] {
        &self.fanout_gates[self.fanout_off[net.0] as usize..self.fanout_off[net.0 + 1] as usize]
    }

    /// The flip-flops clocked by `net`.
    pub fn clk_fanout(&self, net: NetId) -> &[DffId] {
        &self.clk_dffs[self.clk_off[net.0] as usize..self.clk_off[net.0 + 1] as usize]
    }

    /// The input nets of `gate`, in pin order.
    pub fn gate_inputs(&self, gate: GateId) -> &[NetId] {
        &self.input_nets[self.input_off[gate.0] as usize..self.input_off[gate.0 + 1] as usize]
    }

    /// Total capacitive load on `net` (equal to [`Netlist::load`]).
    pub fn load(&self, net: NetId) -> Capacitance {
        self.loads[net.0]
    }

    /// The power domain supplying `net`'s driver.
    pub fn driver_domain(&self, net: NetId) -> DomainId {
        self.driver_domain[net.0]
    }

    /// The cached topological gate order (equal to
    /// [`Netlist::topo_gates`]).
    pub fn topo_gates(&self) -> &[GateId] {
        &self.topo
    }
}

/// A gate-level netlist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    name: String,
    nets: Vec<Net>,
    net_names: BTreeMap<String, NetId>,
    gates: Vec<Gate>,
    dffs: Vec<DffInst>,
    inputs: Vec<NetId>,
    outputs: Vec<(String, NetId)>,
    consts: Vec<(NetId, Logic)>,
    domains: Vec<String>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new(name: impl Into<String>) -> Netlist {
        Netlist {
            name: name.into(),
            nets: Vec::new(),
            net_names: BTreeMap::new(),
            gates: Vec::new(),
            dffs: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            consts: Vec::new(),
            domains: vec!["core".to_owned()],
        }
    }

    /// Declares an additional power domain (e.g. the noisy CUT rail) and
    /// returns its id. Domain names need not be unique.
    pub fn add_domain(&mut self, name: impl Into<String>) -> DomainId {
        self.domains.push(name.into());
        DomainId(self.domains.len() - 1)
    }

    /// The declared domain names, indexed by [`DomainId`].
    pub fn domains(&self) -> &[String] {
        &self.domains
    }

    /// Finds the first domain with the given name.
    pub fn domain_by_name(&self, name: &str) -> Option<DomainId> {
        self.domains.iter().position(|d| d == name).map(DomainId)
    }

    /// Moves a gate to a power domain.
    ///
    /// # Panics
    ///
    /// Panics if the gate or domain id is out of range.
    pub fn set_gate_domain(&mut self, gate: GateId, domain: DomainId) {
        assert!(domain.0 < self.domains.len(), "unknown domain");
        self.gates[gate.0].domain = domain;
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Creates a new named net. Duplicate names get a `$n` suffix.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let mut name = name.into();
        if self.net_names.contains_key(&name) {
            let mut i = 1;
            while self.net_names.contains_key(&format!("{name}${i}")) {
                i += 1;
            }
            name = format!("{name}${i}");
        }
        let id = NetId(self.nets.len());
        self.net_names.insert(name.clone(), id);
        self.nets.push(Net {
            name,
            wire_capacitance: Capacitance::ZERO,
        });
        id
    }

    /// Creates a net and marks it as a primary input.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.add_net(name);
        self.inputs.push(id);
        id
    }

    /// Marks an existing net as a primary output under `port_name`.
    pub fn mark_output(&mut self, port_name: impl Into<String>, net: NetId) {
        self.outputs.push((port_name.into(), net));
    }

    /// Ties a fresh net to a constant level.
    pub fn add_const(&mut self, name: impl Into<String>, value: Logic) -> NetId {
        let id = self.add_net(name);
        self.consts.push((id, value));
        id
    }

    /// Instantiates a combinational gate; returns its (new) output net.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ArityMismatch`] when `inputs` does not match
    /// the cell's pin count.
    pub fn add_gate(
        &mut self,
        name: impl Into<String>,
        cell: StdCell,
        inputs: &[NetId],
    ) -> Result<NetId, NetlistError> {
        let name = name.into();
        if inputs.len() != cell.num_inputs() {
            return Err(NetlistError::ArityMismatch {
                gate: name,
                expected: cell.num_inputs(),
                got: inputs.len(),
            });
        }
        let output = self.add_net(format!("{name}.out"));
        self.gates.push(Gate {
            name,
            cell,
            inputs: inputs.to_vec(),
            output,
            domain: DomainId::CORE,
        });
        Ok(output)
    }

    /// Instantiates a flip-flop; returns its (new) `Q` net.
    pub fn add_dff(
        &mut self,
        name: impl Into<String>,
        model: Dff,
        d: NetId,
        clk: NetId,
        init: Logic,
    ) -> NetId {
        let name = name.into();
        let q = self.add_net(format!("{name}.q"));
        self.dffs.push(DffInst {
            name,
            model,
            d,
            clk,
            q,
            init,
        });
        q
    }

    /// Adds parasitic wire capacitance to a net.
    pub fn add_wire_capacitance(&mut self, net: NetId, c: Capacitance) {
        self.nets[net.0].wire_capacitance += c;
    }

    /// Reconnects the `index`-th flip-flop's `D` pin to `net`. Supports
    /// the declare-registers-first, close-the-loops-later construction
    /// pattern used for FSMs whose state feeds its own next-state logic.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn rewire_dff_d(&mut self, index: usize, net: NetId) {
        self.dffs[index].d = net;
    }

    /// Ties an existing net to a constant driver (e.g. an orphaned
    /// placeholder after [`Netlist::rewire_dff_d`]).
    pub fn tie_net(&mut self, net: NetId, value: Logic) {
        self.consts.push((net, value));
    }

    /// Looks a net up by name.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNet`] when absent.
    pub fn net_by_name(&self, name: &str) -> Result<NetId, NetlistError> {
        self.net_names
            .get(name)
            .copied()
            .ok_or_else(|| NetlistError::UnknownNet(name.to_owned()))
    }

    /// The net metadata.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.0]
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Every net id with its metadata, in creation order — the
    /// enumeration a fault-coverage sweep walks to visit each node once.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> + '_ {
        self.nets.iter().enumerate().map(|(i, n)| (NetId(i), n))
    }

    /// All gates.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// All flip-flops.
    pub fn dffs(&self) -> &[DffInst] {
        &self.dffs
    }

    /// Primary input nets.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary outputs as (port, net) pairs.
    pub fn outputs(&self) -> &[(String, NetId)] {
        &self.outputs
    }

    /// Constant drivers.
    pub fn consts(&self) -> &[(NetId, Logic)] {
        &self.consts
    }

    /// Computes the driver of every net, checking uniqueness.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::MultipleDrivers`] or
    /// [`NetlistError::Undriven`] on connectivity violations.
    pub fn drivers(&self) -> Result<Vec<Driver>, NetlistError> {
        let mut drivers: Vec<Option<Driver>> = vec![None; self.nets.len()];
        let mut assign = |net: NetId, d: Driver, nets: &[Net]| -> Result<(), NetlistError> {
            if drivers[net.0].is_some() {
                return Err(NetlistError::MultipleDrivers {
                    net: nets[net.0].name.clone(),
                });
            }
            drivers[net.0] = Some(d);
            Ok(())
        };
        for &i in &self.inputs {
            assign(i, Driver::Input, &self.nets)?;
        }
        for (gi, g) in self.gates.iter().enumerate() {
            assign(g.output, Driver::Gate(GateId(gi)), &self.nets)?;
        }
        for (fi, f) in self.dffs.iter().enumerate() {
            assign(f.q, Driver::Dff(DffId(fi)), &self.nets)?;
        }
        for &(net, value) in &self.consts {
            assign(net, Driver::Const(value), &self.nets)?;
        }
        drivers
            .into_iter()
            .enumerate()
            .map(|(i, d)| {
                d.ok_or_else(|| NetlistError::Undriven {
                    net: self.nets[i].name.clone(),
                })
            })
            .collect()
    }

    /// The gates reading each net (fanout), indexed by net.
    pub fn fanout(&self) -> Vec<Vec<GateId>> {
        let mut fanout = vec![Vec::new(); self.nets.len()];
        for (gi, g) in self.gates.iter().enumerate() {
            for &i in &g.inputs {
                fanout[i.0].push(GateId(gi));
            }
        }
        fanout
    }

    /// The flip-flops whose `D` (first vec) or `CLK` (second vec) pin reads
    /// each net.
    pub fn dff_fanout(&self) -> (Vec<Vec<DffId>>, Vec<Vec<DffId>>) {
        let mut d_fan = vec![Vec::new(); self.nets.len()];
        let mut c_fan = vec![Vec::new(); self.nets.len()];
        for (fi, f) in self.dffs.iter().enumerate() {
            d_fan[f.d.0].push(DffId(fi));
            c_fan[f.clk.0].push(DffId(fi));
        }
        (d_fan, c_fan)
    }

    /// Total capacitive load seen by the driver of `net`: connected gate
    /// input pins, flip-flop pins, plus wire parasitics.
    pub fn load(&self, net: NetId) -> Capacitance {
        let mut c = self.nets[net.0].wire_capacitance;
        for g in &self.gates {
            for &i in &g.inputs {
                if i == net {
                    c += g.cell.input_capacitance();
                }
            }
        }
        for f in &self.dffs {
            if f.d == net {
                c += f.model.d_capacitance();
            }
            if f.clk == net {
                c += f.model.clk_capacitance();
            }
        }
        c
    }

    /// Builds the flattened [`SimTopology`] the simulator runs on: CSR
    /// fanout/clock-fanout/input arrays, single-pass per-net loads
    /// (bit-identical to [`Netlist::load`]), the per-net driver-domain
    /// map and the topological gate order — one pass over the netlist
    /// instead of the per-net scans of the list-of-lists accessors.
    ///
    /// # Errors
    ///
    /// Propagates connectivity errors from [`Netlist::drivers`] and
    /// cycle errors from [`Netlist::topo_gates`].
    pub fn sim_topology(&self) -> Result<SimTopology, NetlistError> {
        let n = self.nets.len();

        // Gate fanout CSR (counting sort preserves the per-net gate order
        // of `fanout()`).
        let mut fanout_off = vec![0u32; n + 1];
        for g in &self.gates {
            for &i in &g.inputs {
                fanout_off[i.0 + 1] += 1;
            }
        }
        for i in 0..n {
            fanout_off[i + 1] += fanout_off[i];
        }
        let mut cursor = fanout_off[..n].to_vec();
        let mut fanout_gates = vec![GateId(0); fanout_off[n] as usize];
        for (gi, g) in self.gates.iter().enumerate() {
            for &i in &g.inputs {
                fanout_gates[cursor[i.0] as usize] = GateId(gi);
                cursor[i.0] += 1;
            }
        }

        // Clock fanout CSR.
        let mut clk_off = vec![0u32; n + 1];
        for f in &self.dffs {
            clk_off[f.clk.0 + 1] += 1;
        }
        for i in 0..n {
            clk_off[i + 1] += clk_off[i];
        }
        let mut cursor = clk_off[..n].to_vec();
        let mut clk_dffs = vec![DffId(0); clk_off[n] as usize];
        for (fi, f) in self.dffs.iter().enumerate() {
            clk_dffs[cursor[f.clk.0] as usize] = DffId(fi);
            cursor[f.clk.0] += 1;
        }

        // Gate input pins, flattened in gate order.
        let mut input_off = Vec::with_capacity(self.gates.len() + 1);
        input_off.push(0u32);
        let mut input_nets = Vec::new();
        for g in &self.gates {
            input_nets.extend_from_slice(&g.inputs);
            input_off.push(input_nets.len() as u32);
        }

        // Per-net loads in one pass, accumulating in the same order as
        // `load()` (wire, then gate pins in gate order, then FF pins) so
        // the floating-point sums are bit-identical.
        let mut loads: Vec<Capacitance> =
            self.nets.iter().map(|net| net.wire_capacitance).collect();
        for g in &self.gates {
            for &i in &g.inputs {
                loads[i.0] += g.cell.input_capacitance();
            }
        }
        for f in &self.dffs {
            loads[f.d.0] += f.model.d_capacitance();
            loads[f.clk.0] += f.model.clk_capacitance();
        }

        let driver_domain = self
            .drivers()?
            .into_iter()
            .map(|d| match d {
                Driver::Gate(g) => self.gates[g.0].domain,
                _ => DomainId::CORE,
            })
            .collect();
        let topo = self.topo_gates()?;

        Ok(SimTopology {
            fanout_off,
            fanout_gates,
            clk_off,
            clk_dffs,
            input_off,
            input_nets,
            loads,
            driver_domain,
            topo,
        })
    }

    /// Kahn topological order of the combinational gates (flip-flop
    /// outputs and primary inputs are sources).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] when gates form a loop
    /// not broken by a flip-flop.
    pub fn topo_gates(&self) -> Result<Vec<GateId>, NetlistError> {
        let fanout = self.fanout();
        // In-degree = number of gate inputs fed by other gates.
        let driver_gate: BTreeMap<NetId, GateId> = self
            .gates
            .iter()
            .enumerate()
            .map(|(gi, g)| (g.output, GateId(gi)))
            .collect();
        let mut indeg = vec![0usize; self.gates.len()];
        for (gi, g) in self.gates.iter().enumerate() {
            indeg[gi] = g
                .inputs
                .iter()
                .filter(|i| driver_gate.contains_key(i))
                .count();
        }
        let mut queue: VecDeque<GateId> = indeg
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == 0)
            .map(|(i, _)| GateId(i))
            .collect();
        let mut order = Vec::with_capacity(self.gates.len());
        while let Some(g) = queue.pop_front() {
            order.push(g);
            for &succ in &fanout[self.gates[g.0].output.0] {
                indeg[succ.0] -= 1;
                if indeg[succ.0] == 0 {
                    queue.push_back(succ);
                }
            }
        }
        if order.len() != self.gates.len() {
            // Find a gate stuck in the cycle for the error message.
            let stuck = indeg
                .iter()
                .position(|&d| d > 0)
                .expect("cycle implies a gate with positive in-degree");
            return Err(NetlistError::CombinationalCycle {
                net: self.nets[self.gates[stuck].output.0].name.clone(),
            });
        }
        Ok(order)
    }

    /// Flattens a copy of `child` into this netlist (hierarchical
    /// composition). Every child net is recreated as `{prefix}.{name}`
    /// except child *primary inputs* listed in `bindings`, which are
    /// merged onto existing nets of `self` (the instance's port
    /// connections). Unbound child inputs become fresh primary inputs of
    /// `self`. Child gates, flip-flops, constants and wire parasitics are
    /// copied; child domains other than [`DomainId::CORE`] are recreated
    /// (prefixed) so their supplies stay independently controllable.
    /// Child primary outputs are *not* re-marked — use the returned map
    /// to mark or connect them.
    ///
    /// Returns the child-net → new-net mapping, indexed by the child's
    /// net index.
    ///
    /// # Panics
    ///
    /// Panics if a binding references a child net that is not a primary
    /// input of `child`.
    pub fn instantiate(
        &mut self,
        child: &Netlist,
        prefix: &str,
        bindings: &[(NetId, NetId)],
    ) -> Vec<NetId> {
        let is_child_input: Vec<bool> = {
            let mut m = vec![false; child.nets.len()];
            for &i in &child.inputs {
                m[i.0] = true;
            }
            m
        };
        for &(child_net, _) in bindings {
            assert!(
                is_child_input[child_net.0],
                "binding target {:?} is not a primary input of the child",
                child.nets[child_net.0].name
            );
        }
        // Net mapping: bound inputs merge, everything else is recreated.
        let mut map = Vec::with_capacity(child.nets.len());
        for (i, net) in child.nets.iter().enumerate() {
            let bound = bindings
                .iter()
                .find(|(c, _)| c.0 == i)
                .map(|&(_, parent)| parent);
            let new = match bound {
                Some(parent) => parent,
                None => {
                    let id = self.add_net(format!("{prefix}.{}", net.name));
                    self.nets[id.0].wire_capacitance = net.wire_capacitance;
                    if is_child_input[i] {
                        self.inputs.push(id);
                    }
                    id
                }
            };
            map.push(new);
        }
        // Domain mapping: CORE merges; others are recreated.
        let mut domain_map = Vec::with_capacity(child.domains.len());
        domain_map.push(DomainId::CORE);
        for name in child.domains.iter().skip(1) {
            domain_map.push(self.add_domain(format!("{prefix}.{name}")));
        }
        for g in &child.gates {
            let output = map[g.output.0];
            self.gates.push(Gate {
                name: format!("{prefix}.{}", g.name),
                cell: g.cell.clone(),
                inputs: g.inputs.iter().map(|i| map[i.0]).collect(),
                output,
                domain: domain_map[g.domain.0],
            });
        }
        for f in &child.dffs {
            self.dffs.push(DffInst {
                name: format!("{prefix}.{}", f.name),
                model: f.model,
                d: map[f.d.0],
                clk: map[f.clk.0],
                q: map[f.q.0],
                init: f.init,
            });
        }
        for &(net, value) in &child.consts {
            self.consts.push((map[net.0], value));
        }
        map
    }

    /// Full structural validation: unique drivers, no floating nets, no
    /// combinational cycles.
    ///
    /// # Errors
    ///
    /// Propagates the first violation found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        self.drivers()?;
        self.topo_gates()?;
        Ok(())
    }

    /// Total area in gate equivalents (combinational cells plus
    /// flip-flops).
    pub fn area_ge(&self) -> f64 {
        let comb: f64 = self.gates.iter().map(|g| g.cell.area_ge()).sum();
        let seq: f64 = self.dffs.iter().map(|f| f.model.area_ge()).sum();
        comb + seq
    }

    /// Total leakage estimate in nanowatts.
    pub fn leakage_nw(&self) -> f64 {
        let comb: f64 = self.gates.iter().map(|g| g.cell.leakage_nw()).sum();
        let seq: f64 = self.dffs.iter().map(|f| f.model.leakage_nw()).sum();
        comb + seq
    }

    /// A one-line summary, e.g. `cntr: 12 gates, 3 FFs, 18 nets`.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} gates, {} FFs, {} nets",
            self.name,
            self.gates.len(),
            self.dffs.len(),
            self.nets.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nand_tree() -> (Netlist, NetId, NetId, NetId) {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.add_gate("g1", StdCell::nand2(1.0), &[a, b]).unwrap();
        let q = n.add_gate("g2", StdCell::inverter(1.0), &[x]).unwrap();
        n.mark_output("q", q);
        (n, a, b, q)
    }

    #[test]
    fn build_and_validate() {
        let (n, ..) = nand_tree();
        n.validate().unwrap();
        assert_eq!(n.gates().len(), 2);
        assert_eq!(n.net_count(), 4);
        assert_eq!(n.summary(), "t: 2 gates, 0 FFs, 4 nets");
    }

    #[test]
    fn arity_checked() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let err = n.add_gate("g", StdCell::nand2(1.0), &[a]).unwrap_err();
        assert!(matches!(
            err,
            NetlistError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn duplicate_net_names_get_suffixed() {
        let mut n = Netlist::new("t");
        let a = n.add_net("x");
        let b = n.add_net("x");
        assert_ne!(a, b);
        assert_eq!(n.net(a).name(), "x");
        assert_eq!(n.net(b).name(), "x$1");
        assert_eq!(n.net_by_name("x").unwrap(), a);
        assert_eq!(n.net_by_name("x$1").unwrap(), b);
    }

    #[test]
    fn unknown_net_lookup_fails() {
        let n = Netlist::new("t");
        assert!(matches!(
            n.net_by_name("nope"),
            Err(NetlistError::UnknownNet(_))
        ));
    }

    #[test]
    fn undriven_net_detected() {
        let mut n = Netlist::new("t");
        let a = n.add_net("floating");
        let _ = a;
        assert!(matches!(n.validate(), Err(NetlistError::Undriven { .. })));
    }

    #[test]
    fn multiple_drivers_detected() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        // Tie the input net to a constant as well: two drivers.
        n.consts.push((a, Logic::One));
        assert!(matches!(
            n.validate(),
            Err(NetlistError::MultipleDrivers { .. })
        ));
    }

    #[test]
    fn combinational_cycle_detected() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        // g1 output feeds g2, g2 output feeds g1 via manual rewiring.
        let x = n.add_gate("g1", StdCell::nand2(1.0), &[a, a]).unwrap();
        let y = n.add_gate("g2", StdCell::inverter(1.0), &[x]).unwrap();
        n.gates[0].inputs[1] = y; // close the loop
        assert!(matches!(
            n.topo_gates(),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn dff_breaks_cycle() {
        let mut n = Netlist::new("t");
        let clk = n.add_input("clk");
        // q feeds an inverter which feeds d: a valid divider-by-two.
        let d_placeholder = n.add_net("d");
        let q = n.add_dff("ff", Dff::standard_90nm(), d_placeholder, clk, Logic::Zero);
        let nq = n.add_gate("inv", StdCell::inverter(1.0), &[q]).unwrap();
        // Rewire the FF's D to the inverter output by replacing the net use.
        n.dffs[0].d = nq;
        n.mark_output("q", q);
        // The placeholder net is now unused but still undriven; tie it off.
        n.consts.push((d_placeholder, Logic::Zero));
        n.validate().unwrap();
    }

    #[test]
    fn load_accumulates_pins_and_wire() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let _x = n.add_gate("g1", StdCell::inverter(1.0), &[a]).unwrap();
        let _y = n.add_gate("g2", StdCell::inverter(2.0), &[a]).unwrap();
        let base = n.load(a);
        let expected =
            StdCell::inverter(1.0).input_capacitance() + StdCell::inverter(2.0).input_capacitance();
        assert!((base.femtofarads() - expected.femtofarads()).abs() < 1e-9);
        n.add_wire_capacitance(a, Capacitance::from_ff(5.0));
        assert!((n.load(a).femtofarads() - expected.femtofarads() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn dff_pins_contribute_load() {
        let mut n = Netlist::new("t");
        let d = n.add_input("d");
        let clk = n.add_input("clk");
        let _q = n.add_dff("ff", Dff::standard_90nm(), d, clk, Logic::Zero);
        assert!(n.load(d) > Capacitance::ZERO);
        assert!(n.load(clk) > Capacitance::ZERO);
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let (n, ..) = nand_tree();
        let order = n.topo_gates().unwrap();
        assert_eq!(order.len(), 2);
        // g1 (NAND) must come before g2 (INV).
        assert_eq!(order[0].index(), 0);
        assert_eq!(order[1].index(), 1);
    }

    #[test]
    fn drivers_classified() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let k = n.add_const("one", Logic::One);
        let clk = n.add_input("clk");
        let g = n.add_gate("g", StdCell::and2(1.0), &[a, k]).unwrap();
        let q = n.add_dff("ff", Dff::standard_90nm(), g, clk, Logic::Zero);
        let drivers = n.drivers().unwrap();
        assert_eq!(drivers[a.index()], Driver::Input);
        assert_eq!(drivers[k.index()], Driver::Const(Logic::One));
        assert!(matches!(drivers[g.index()], Driver::Gate(_)));
        assert!(matches!(drivers[q.index()], Driver::Dff(_)));
    }

    #[test]
    fn instantiate_merges_bound_inputs() {
        // Child: q = !a.
        let mut child = Netlist::new("inv");
        let a = child.add_input("a");
        let q = child.add_gate("g", StdCell::inverter(1.0), &[a]).unwrap();
        child.mark_output("q", q);

        // Parent: two instances chained.
        let mut parent = Netlist::new("top");
        let x = parent.add_input("x");
        let m1 = parent.instantiate(&child, "u1", &[(a, x)]);
        let m2 = parent.instantiate(&child, "u2", &[(a, m1[q.index()])]);
        parent.mark_output("y", m2[q.index()]);
        parent.validate().unwrap();
        assert_eq!(parent.gates().len(), 2);
        assert_eq!(parent.inputs().len(), 1, "bound inputs must not duplicate");
        assert_eq!(parent.net(m2[q.index()]).name(), "u2.g.out");
    }

    #[test]
    fn instantiate_copies_domains_and_parasitics() {
        let mut child = Netlist::new("c");
        let a = child.add_input("a");
        let noisy = child.add_domain("noisy");
        let q = child.add_gate("g", StdCell::inverter(1.0), &[a]).unwrap();
        child.set_gate_domain(GateId(0), noisy);
        child.add_wire_capacitance(q, Capacitance::from_ff(100.0));

        let mut parent = Netlist::new("top");
        let x = parent.add_input("x");
        let map = parent.instantiate(&child, "u", &[(a, x)]);
        assert_eq!(parent.domains().len(), 2);
        assert_eq!(parent.domains()[1], "u.noisy");
        assert_eq!(parent.gates()[0].domain().index(), 1);
        assert!((parent.net(map[q.index()]).wire_capacitance().femtofarads() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn instantiate_copies_ffs_and_consts() {
        let mut child = Netlist::new("c");
        let clk = child.add_input("clk");
        let one = child.add_const("one", Logic::One);
        let q = child.add_dff("ff", Dff::standard_90nm(), one, clk, Logic::Zero);
        child.mark_output("q", q);

        let mut parent = Netlist::new("top");
        let pclk = parent.add_input("clk");
        let map = parent.instantiate(&child, "u", &[(clk, pclk)]);
        parent.mark_output("q", map[q.index()]);
        parent.validate().unwrap();
        assert_eq!(parent.dffs().len(), 1);
        assert_eq!(parent.dffs()[0].name(), "u.ff");
        assert_eq!(parent.consts().len(), 1);
    }

    #[test]
    fn instantiate_unbound_inputs_become_parent_inputs() {
        let mut child = Netlist::new("c");
        let a = child.add_input("a");
        let b = child.add_input("b");
        let q = child.add_gate("g", StdCell::nand2(1.0), &[a, b]).unwrap();
        child.mark_output("q", q);
        let mut parent = Netlist::new("top");
        let x = parent.add_input("x");
        let map = parent.instantiate(&child, "u", &[(a, x)]);
        parent.mark_output("q", map[q.index()]);
        parent.validate().unwrap();
        assert_eq!(parent.inputs().len(), 2); // x plus the unbound u.b
    }

    #[test]
    #[should_panic(expected = "not a primary input")]
    fn instantiate_rejects_non_input_binding() {
        let mut child = Netlist::new("c");
        let a = child.add_input("a");
        let q = child.add_gate("g", StdCell::inverter(1.0), &[a]).unwrap();
        let mut parent = Netlist::new("top");
        let x = parent.add_input("x");
        let _ = parent.instantiate(&child, "u", &[(q, x)]);
    }

    #[test]
    fn sim_topology_matches_list_accessors() {
        // A mixed netlist: gates across two domains, a flip-flop, a
        // constant, parasitics, and a net with multiple fanouts.
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let clk = n.add_input("clk");
        let one = n.add_const("one", Logic::One);
        let noisy = n.add_domain("noisy");
        let x = n.add_gate("g1", StdCell::nand2(1.0), &[a, b]).unwrap();
        let y = n.add_gate("g2", StdCell::inverter(2.0), &[x]).unwrap();
        let z = n.add_gate("g3", StdCell::and3(1.0), &[x, y, one]).unwrap();
        n.set_gate_domain(GateId(1), noisy);
        n.add_wire_capacitance(x, Capacitance::from_ff(7.0));
        let q = n.add_dff("ff", Dff::standard_90nm(), z, clk, Logic::Zero);
        n.mark_output("q", q);

        let topo = n.sim_topology().unwrap();
        let fanout = n.fanout();
        let (_, c_fan) = n.dff_fanout();
        for i in 0..n.net_count() {
            let net = NetId(i);
            assert_eq!(topo.fanout(net), &fanout[i][..], "fanout of net {i}");
            assert_eq!(topo.clk_fanout(net), &c_fan[i][..], "clk fanout of net {i}");
            assert_eq!(
                topo.load(net).farads(),
                n.load(net).farads(),
                "load of net {i}"
            );
        }
        for (gi, g) in n.gates().iter().enumerate() {
            assert_eq!(
                topo.gate_inputs(GateId(gi)),
                g.inputs(),
                "inputs of gate {gi}"
            );
        }
        assert_eq!(topo.topo_gates(), &n.topo_gates().unwrap()[..]);
        // Driver domains: the noisy gate's output is on `noisy`; inputs,
        // constants and the FF output are on core.
        assert_eq!(topo.driver_domain(y), noisy);
        for net in [a, b, clk, one, x, z, q] {
            assert_eq!(topo.driver_domain(net), DomainId::CORE);
        }
    }

    #[test]
    fn sim_topology_propagates_validation_errors() {
        let mut n = Netlist::new("t");
        let _floating = n.add_net("floating");
        assert!(matches!(
            n.sim_topology(),
            Err(NetlistError::Undriven { .. })
        ));
    }

    #[test]
    fn fanout_maps() {
        let (n, a, b, _) = nand_tree();
        let fanout = n.fanout();
        assert_eq!(fanout[a.index()].len(), 1);
        assert_eq!(fanout[b.index()].len(), 1);
        let (d_fan, c_fan) = n.dff_fanout();
        assert!(d_fan.iter().all(Vec::is_empty));
        assert!(c_fan.iter().all(Vec::is_empty));
    }
}
