//! Digital waveform traces and VCD export.
//!
//! The simulator records every net transition into a [`Trace`], which can
//! be queried (`value_at`), inspected edge by edge, or dumped as a Value
//! Change Dump (VCD) file for external waveform viewers — the digital
//! counterpart of the paper's ELDO waveform plots (Figs. 2, 3, 9).
//!
//! # Examples
//!
//! ```
//! use psnt_cells::logic::Logic;
//! use psnt_cells::units::Time;
//! use psnt_netlist::wave::Trace;
//!
//! let mut trace = Trace::new();
//! let p = trace.add_signal("P");
//! trace.record(p, Time::ZERO, Logic::Zero);
//! trace.record(p, Time::from_ps(100.0), Logic::One);
//! assert_eq!(trace.value_at(p, Time::from_ps(50.0)), Logic::Zero);
//! assert_eq!(trace.value_at(p, Time::from_ps(100.0)), Logic::One);
//! ```

use std::fmt::Write as _;

use psnt_cells::logic::Logic;
use psnt_cells::units::Time;
use serde::{Deserialize, Serialize};

/// Identifier of a signal within a [`Trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SignalId(usize);

impl SignalId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One recorded transition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// When the signal changed.
    pub time: Time,
    /// The new value.
    pub value: Logic,
}

/// A collection of per-signal transition histories.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    names: Vec<String>,
    edges: Vec<Vec<Edge>>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Registers a signal and returns its id.
    pub fn add_signal(&mut self, name: impl Into<String>) -> SignalId {
        self.names.push(name.into());
        self.edges.push(Vec::new());
        SignalId(self.names.len() - 1)
    }

    /// Number of signals.
    pub fn signal_count(&self) -> usize {
        self.names.len()
    }

    /// The signal's name.
    pub fn name(&self, id: SignalId) -> &str {
        &self.names[id.0]
    }

    /// Finds a signal by name.
    pub fn signal_by_name(&self, name: &str) -> Option<SignalId> {
        self.names.iter().position(|n| n == name).map(SignalId)
    }

    /// Records a transition. Out-of-order timestamps are tolerated only at
    /// the same instant as the previous edge (the last write wins);
    /// earlier timestamps panic, since the simulator never time-travels.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the last recorded edge of this signal.
    pub fn record(&mut self, id: SignalId, time: Time, value: Logic) {
        let edges = &mut self.edges[id.0];
        if let Some(last) = edges.last_mut() {
            assert!(
                time >= last.time,
                "trace for {:?} received time {} < {}",
                self.names[id.0],
                time,
                last.time
            );
            if last.time == time {
                last.value = value;
                return;
            }
            if last.value == value {
                return; // no change, keep the trace minimal
            }
        }
        edges.push(Edge { time, value });
    }

    /// All edges of a signal, in time order.
    pub fn edges(&self, id: SignalId) -> &[Edge] {
        &self.edges[id.0]
    }

    /// Forgets every recorded edge while keeping the signal set and the
    /// per-signal buffer capacity — how [`crate::sim::Simulator::reset`]
    /// rewinds its trace without giving allocations back.
    pub fn clear_edges(&mut self) {
        for edges in &mut self.edges {
            edges.clear();
        }
    }

    /// The signal value at `time` (value of the latest edge at or before
    /// `time`); [`Logic::X`] before the first edge.
    pub fn value_at(&self, id: SignalId, time: Time) -> Logic {
        let edges = &self.edges[id.0];
        match edges.partition_point(|e| e.time <= time) {
            0 => Logic::X,
            n => edges[n - 1].value,
        }
    }

    /// Number of rising (`0→1`) transitions of a signal.
    pub fn rising_edges(&self, id: SignalId) -> usize {
        self.transition_count(id, Logic::Zero, Logic::One)
    }

    /// Number of falling (`1→0`) transitions of a signal.
    pub fn falling_edges(&self, id: SignalId) -> usize {
        self.transition_count(id, Logic::One, Logic::Zero)
    }

    fn transition_count(&self, id: SignalId, from: Logic, to: Logic) -> usize {
        self.edges[id.0]
            .windows(2)
            .filter(|w| w[0].value == from && w[1].value == to)
            .count()
    }

    /// The time of the first edge matching `value` at or after `from`.
    pub fn first_edge_to(&self, id: SignalId, value: Logic, from: Time) -> Option<Time> {
        self.edges[id.0]
            .iter()
            .find(|e| e.time >= from && e.value == value)
            .map(|e| e.time)
    }

    /// The latest edge time across all signals.
    pub fn end_time(&self) -> Time {
        self.edges
            .iter()
            .filter_map(|e| e.last())
            .map(|e| e.time)
            .fold(Time::ZERO, Time::max)
    }

    /// Serialises the trace as a VCD document (timescale 1 ps).
    pub fn to_vcd(&self, design: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$date psn-thermometer $end");
        let _ = writeln!(out, "$version psnt-netlist $end");
        let _ = writeln!(out, "$timescale 1ps $end");
        let _ = writeln!(out, "$scope module {design} $end");
        for (i, name) in self.names.iter().enumerate() {
            let _ = writeln!(out, "$var wire 1 {} {} $end", Trace::vcd_code(i), name);
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");

        // Merge-sort all edges by time.
        let mut cursor: Vec<usize> = vec![0; self.edges.len()];
        loop {
            let mut next: Option<(Time, usize)> = None;
            for (sig, &c) in cursor.iter().enumerate() {
                if let Some(e) = self.edges[sig].get(c) {
                    if next.is_none_or(|(t, _)| e.time < t) {
                        next = Some((e.time, sig));
                    }
                }
            }
            let Some((t, _)) = next else { break };
            let _ = writeln!(out, "#{}", t.picoseconds().round() as i64);
            for (sig, c) in cursor.iter_mut().enumerate() {
                while let Some(e) = self.edges[sig].get(*c) {
                    if e.time != t {
                        break;
                    }
                    let _ = writeln!(out, "{}{}", e.value.to_char(), Trace::vcd_code(sig));
                    *c += 1;
                }
            }
        }
        out
    }

    fn vcd_code(index: usize) -> String {
        // Printable identifier codes: ! .. ~ then two-character codes.
        const BASE: usize = 94;
        let mut n = index;
        let mut s = String::new();
        loop {
            s.push((b'!' + (n % BASE) as u8) as char);
            n /= BASE;
            if n == 0 {
                break;
            }
            n -= 1;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(t: f64) -> Time {
        Time::from_ps(t)
    }

    #[test]
    fn record_and_query() {
        let mut tr = Trace::new();
        let s = tr.add_signal("sig");
        tr.record(s, ps(0.0), Logic::Zero);
        tr.record(s, ps(10.0), Logic::One);
        tr.record(s, ps(20.0), Logic::Zero);
        assert_eq!(tr.value_at(s, ps(-1.0)), Logic::X);
        assert_eq!(tr.value_at(s, ps(0.0)), Logic::Zero);
        assert_eq!(tr.value_at(s, ps(10.0)), Logic::One);
        assert_eq!(tr.value_at(s, ps(15.0)), Logic::One);
        assert_eq!(tr.value_at(s, ps(25.0)), Logic::Zero);
    }

    #[test]
    fn duplicate_value_collapsed() {
        let mut tr = Trace::new();
        let s = tr.add_signal("sig");
        tr.record(s, ps(0.0), Logic::One);
        tr.record(s, ps(5.0), Logic::One);
        assert_eq!(tr.edges(s).len(), 1);
    }

    #[test]
    fn same_instant_last_write_wins() {
        let mut tr = Trace::new();
        let s = tr.add_signal("sig");
        tr.record(s, ps(0.0), Logic::Zero);
        tr.record(s, ps(5.0), Logic::One);
        tr.record(s, ps(5.0), Logic::Zero);
        assert_eq!(tr.edges(s).len(), 2);
        assert_eq!(tr.value_at(s, ps(5.0)), Logic::Zero);
    }

    #[test]
    #[should_panic(expected = "received time")]
    fn time_travel_panics() {
        let mut tr = Trace::new();
        let s = tr.add_signal("sig");
        tr.record(s, ps(10.0), Logic::One);
        tr.record(s, ps(5.0), Logic::Zero);
    }

    #[test]
    fn edge_counting() {
        let mut tr = Trace::new();
        let s = tr.add_signal("clk");
        for i in 0..6 {
            tr.record(s, ps(10.0 * i as f64), Logic::from(i % 2 == 1));
        }
        assert_eq!(tr.rising_edges(s), 3);
        assert_eq!(tr.falling_edges(s), 2);
    }

    #[test]
    fn first_edge_search() {
        let mut tr = Trace::new();
        let s = tr.add_signal("sig");
        tr.record(s, ps(0.0), Logic::Zero);
        tr.record(s, ps(30.0), Logic::One);
        tr.record(s, ps(60.0), Logic::Zero);
        tr.record(s, ps(90.0), Logic::One);
        assert_eq!(tr.first_edge_to(s, Logic::One, ps(0.0)), Some(ps(30.0)));
        assert_eq!(tr.first_edge_to(s, Logic::One, ps(31.0)), Some(ps(90.0)));
        assert_eq!(tr.first_edge_to(s, Logic::X, ps(0.0)), None);
    }

    #[test]
    fn end_time_across_signals() {
        let mut tr = Trace::new();
        let a = tr.add_signal("a");
        let b = tr.add_signal("b");
        tr.record(a, ps(10.0), Logic::One);
        tr.record(b, ps(40.0), Logic::Zero);
        assert_eq!(tr.end_time(), ps(40.0));
        assert_eq!(Trace::new().end_time(), Time::ZERO);
    }

    #[test]
    fn clear_edges_keeps_signals() {
        let (mut tr, a, b) = busy_trace();
        tr.clear_edges();
        assert_eq!(tr.signal_count(), 2);
        assert!(tr.edges(a).is_empty());
        assert!(tr.edges(b).is_empty());
        assert_eq!(tr.value_at(a, ps(100.0)), Logic::X);
        // The trace accepts a fresh history from time zero again.
        tr.record(a, ps(0.0), Logic::One);
        assert_eq!(tr.edges(a).len(), 1);
        assert_eq!(tr.end_time(), ps(0.0));
    }

    #[test]
    fn lookup_by_name() {
        let mut tr = Trace::new();
        let a = tr.add_signal("alpha");
        assert_eq!(tr.signal_by_name("alpha"), Some(a));
        assert_eq!(tr.signal_by_name("beta"), None);
        assert_eq!(tr.name(a), "alpha");
        assert_eq!(tr.signal_count(), 1);
    }

    #[test]
    fn vcd_contains_headers_and_edges() {
        let mut tr = Trace::new();
        let p = tr.add_signal("P");
        let cp = tr.add_signal("CP");
        tr.record(p, ps(0.0), Logic::One);
        tr.record(cp, ps(0.0), Logic::Zero);
        tr.record(p, ps(65.0), Logic::Zero);
        tr.record(cp, ps(130.0), Logic::One);
        let vcd = tr.to_vcd("sensor");
        assert!(vcd.contains("$timescale 1ps $end"));
        assert!(vcd.contains("$scope module sensor $end"));
        assert!(vcd.contains("$var wire 1 ! P $end"));
        assert!(vcd.contains("$var wire 1 \" CP $end"));
        assert!(vcd.contains("#0"));
        assert!(vcd.contains("#65"));
        assert!(vcd.contains("#130"));
    }

    /// Splits a VCD document into (header lines, body lines) at
    /// `$enddefinitions`.
    fn split_vcd(vcd: &str) -> (Vec<&str>, Vec<&str>) {
        let lines: Vec<&str> = vcd.lines().collect();
        let cut = lines
            .iter()
            .position(|l| l.starts_with("$enddefinitions"))
            .expect("VCD has $enddefinitions");
        (lines[..=cut].to_vec(), lines[cut + 1..].to_vec())
    }

    fn busy_trace() -> (Trace, SignalId, SignalId) {
        let mut tr = Trace::new();
        let a = tr.add_signal("a");
        let b = tr.add_signal("b");
        tr.record(a, ps(0.0), Logic::Zero);
        tr.record(b, ps(0.0), Logic::One);
        tr.record(a, ps(10.0), Logic::One);
        tr.record(b, ps(25.0), Logic::Zero);
        tr.record(a, ps(25.0), Logic::Zero);
        tr.record(b, ps(40.0), Logic::One);
        (tr, a, b)
    }

    #[test]
    fn vcd_header_is_well_formed() {
        let (tr, _, _) = busy_trace();
        let vcd = tr.to_vcd("dut");
        let (header, _) = split_vcd(&vcd);
        // Every header line is a complete `$keyword ... $end` directive.
        for line in &header {
            assert!(line.starts_with('$'), "not a directive: {line}");
            assert!(line.ends_with("$end"), "unterminated: {line}");
        }
        // Declarations arrive in order, exactly once.
        for keyword in [
            "$date",
            "$version",
            "$timescale",
            "$scope",
            "$upscope",
            "$enddefinitions",
        ] {
            assert_eq!(
                header.iter().filter(|l| l.starts_with(keyword)).count(),
                1,
                "{keyword} count"
            );
        }
        // One $var per signal, each with a distinct identifier code.
        let codes: Vec<&str> = header
            .iter()
            .filter(|l| l.starts_with("$var"))
            .map(|l| l.split_whitespace().nth(3).unwrap())
            .collect();
        assert_eq!(codes.len(), tr.signal_count());
        let mut dedup = codes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len());
    }

    #[test]
    fn vcd_timestamps_strictly_increase() {
        let (tr, _, _) = busy_trace();
        let vcd = tr.to_vcd("dut");
        let (_, body) = split_vcd(&vcd);
        let stamps: Vec<i64> = body
            .iter()
            .filter_map(|l| l.strip_prefix('#'))
            .map(|t| t.parse().unwrap())
            .collect();
        assert!(!stamps.is_empty());
        assert!(stamps.windows(2).all(|w| w[0] < w[1]), "stamps {stamps:?}");
    }

    #[test]
    fn vcd_body_agrees_with_value_at_and_edges() {
        let (tr, _, _) = busy_trace();
        let vcd = tr.to_vcd("dut");
        let (header, body) = split_vcd(&vcd);
        // Map identifier code → signal id from the declarations.
        let by_code: Vec<(String, SignalId)> = header
            .iter()
            .filter(|l| l.starts_with("$var"))
            .map(|l| {
                let mut f = l.split_whitespace();
                let code = f.nth(3).unwrap().to_string();
                let name = f.next().unwrap();
                (code, tr.signal_by_name(name).unwrap())
            })
            .collect();
        // Replay the body; every change must match the trace's view.
        let mut t = Time::ZERO;
        let mut seen = vec![0usize; tr.signal_count()];
        for line in body {
            if let Some(stamp) = line.strip_prefix('#') {
                t = Time::from_ps(stamp.parse::<f64>().unwrap());
                continue;
            }
            let (value, code) = line.split_at(1);
            let &(_, sig) = by_code.iter().find(|(c, _)| c == code).unwrap();
            let value = Logic::try_from(value.chars().next().unwrap()).unwrap();
            assert_eq!(tr.value_at(sig, t), value, "{line} at {t}");
            let edge = tr.edges(sig)[seen[sig.index()]];
            assert_eq!((edge.time, edge.value), (t, value), "{line}");
            seen[sig.index()] += 1;
        }
        // The body emitted every edge of every signal.
        for (i, &n) in seen.iter().enumerate() {
            assert_eq!(n, tr.edges(SignalId(i)).len(), "signal {i}");
        }
    }

    #[test]
    fn vcd_codes_unique_for_many_signals() {
        let codes: Vec<String> = (0..300).map(Trace::vcd_code).collect();
        let mut dedup = codes.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len());
    }
}
