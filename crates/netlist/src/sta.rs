//! Static timing analysis: arrival propagation, critical path, slack.
//!
//! The paper reports "the critical path of the whole control system at
//! 90 nm is 1.22 ns, thus it can work with most of the typical CUTs
//! system clock". [`analyze`] reproduces that style of claim from an
//! actual gate graph: launch points are primary inputs and flip-flop `Q`
//! pins, delays come from each cell's voltage-aware model at the analysis
//! supply, and capture points are flip-flop `D` pins (checked against
//! `period − t_setup`) and primary outputs.
//!
//! # Examples
//!
//! ```
//! use psnt_cells::gates::StdCell;
//! use psnt_cells::units::{Time, Voltage};
//! use psnt_netlist::graph::Netlist;
//! use psnt_netlist::sta::{analyze, StaConfig};
//!
//! let mut n = Netlist::new("demo");
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! let x = n.add_gate("g1", StdCell::nand2(1.0), &[a, b])?;
//! let q = n.add_gate("g2", StdCell::inverter(1.0), &[x])?;
//! n.mark_output("q", q);
//!
//! let report = analyze(&n, &StaConfig::default())?;
//! assert_eq!(report.critical_path().stages().len(), 2);
//! assert!(report.critical_delay() > Time::ZERO);
//! # Ok::<(), psnt_netlist::error::NetlistError>(())
//! ```

use std::fmt;

use psnt_cells::process::Pvt;
use psnt_cells::units::{Time, Voltage};
use serde::{Deserialize, Serialize};

use crate::error::NetlistError;
use crate::graph::{DomainId, NetId, Netlist};

/// Analysis parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StaConfig {
    /// Supply voltage applied to every cell's delay model.
    pub supply: Voltage,
    /// Process/temperature point.
    pub pvt: Pvt,
    /// Clock period used for slack at flip-flop `D` endpoints.
    pub clock_period: Time,
    /// Arrival time asserted on primary inputs.
    pub input_arrival: Time,
}

impl Default for StaConfig {
    fn default() -> StaConfig {
        StaConfig {
            supply: Voltage::from_v(1.0),
            pvt: Pvt::typical(),
            clock_period: Time::from_ns(2.0),
            input_arrival: Time::ZERO,
        }
    }
}

/// One combinational stage along a timing path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathStage {
    /// The gate instance name.
    pub instance: String,
    /// The library cell name.
    pub cell: String,
    /// The gate's output net name.
    pub net: String,
    /// The stage's propagation delay.
    pub delay: Time,
    /// Cumulative arrival time at the stage output.
    pub arrival: Time,
}

/// Kind of timing endpoint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Endpoint {
    /// A flip-flop `D` pin (instance name).
    FlipFlopD(String),
    /// A primary output port.
    Output(String),
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::FlipFlopD(name) => write!(f, "{name}/D"),
            Endpoint::Output(name) => write!(f, "out:{name}"),
        }
    }
}

/// A reconstructed worst path to one endpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingPath {
    endpoint: Endpoint,
    stages: Vec<PathStage>,
    arrival: Time,
    slack: Time,
}

impl TimingPath {
    /// The endpoint this path terminates at.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The combinational stages, launch to capture.
    pub fn stages(&self) -> &[PathStage] {
        &self.stages
    }

    /// Data arrival time at the endpoint.
    pub fn arrival(&self) -> Time {
        self.arrival
    }

    /// Slack against the endpoint's timing requirement.
    pub fn slack(&self) -> Time {
        self.slack
    }
}

impl fmt::Display for TimingPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "path to {} (arrival {:.2}, slack {:.2}):",
            self.endpoint, self.arrival, self.slack
        )?;
        for s in &self.stages {
            writeln!(
                f,
                "  {:<24} {:<10} +{:>8.2}  @ {:>8.2}  ({})",
                s.instance, s.cell, s.delay, s.arrival, s.net
            )?;
        }
        Ok(())
    }
}

/// The full analysis result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaReport {
    config: StaConfig,
    critical: TimingPath,
    endpoint_paths: Vec<TimingPath>,
}

impl StaReport {
    /// The analysis configuration.
    pub fn config(&self) -> &StaConfig {
        &self.config
    }

    /// The path with the largest arrival time.
    pub fn critical_path(&self) -> &TimingPath {
        &self.critical
    }

    /// The critical (largest) combinational delay.
    pub fn critical_delay(&self) -> Time {
        self.critical.arrival()
    }

    /// Worst negative slack across endpoints (most negative slack; positive
    /// when all endpoints meet timing).
    pub fn worst_slack(&self) -> Time {
        self.endpoint_paths
            .iter()
            .map(TimingPath::slack)
            .fold(Time::from_seconds(1.0), Time::min)
    }

    /// Worst path per endpoint.
    pub fn endpoint_paths(&self) -> &[TimingPath] {
        &self.endpoint_paths
    }

    /// `true` when every endpoint meets the clock-period requirement.
    pub fn meets_timing(&self) -> bool {
        self.worst_slack() >= Time::ZERO
    }

    /// The maximum clock frequency implied by the critical delay plus the
    /// worst endpoint setup time already folded into the requirement.
    pub fn max_frequency(&self) -> psnt_cells::units::Frequency {
        // slack = required − arrival, required = period − setup (for FF
        // endpoints). The minimum workable period shrinks by the worst
        // slack.
        let min_period = self.config.clock_period - self.worst_slack();
        psnt_cells::units::Frequency::from_period(min_period.max(Time::from_ps(1.0)))
    }
}

impl fmt::Display for StaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "STA @ {:.2} / {} / period {:.2}",
            self.config.supply, self.config.pvt, self.config.clock_period
        )?;
        writeln!(f, "critical delay: {:.2}", self.critical_delay())?;
        writeln!(f, "worst slack:    {:.2}", self.worst_slack())?;
        write!(f, "{}", self.critical)
    }
}

/// Runs static timing analysis over a netlist with every domain at
/// `config.supply`.
///
/// # Errors
///
/// Propagates structural validation errors ([`Netlist::validate`]).
pub fn analyze(netlist: &Netlist, config: &StaConfig) -> Result<StaReport, NetlistError> {
    analyze_with_domain_supplies(netlist, config, &[])
}

/// Runs static timing analysis with per-domain supply overrides: gates
/// in a listed domain are timed at the override voltage, everything else
/// at `config.supply`. This is how the noisy-rail droop's effect on the
/// sensor paths is analysed while the control logic stays nominal.
///
/// # Errors
///
/// Propagates structural validation errors ([`Netlist::validate`]).
pub fn analyze_with_domain_supplies(
    netlist: &Netlist,
    config: &StaConfig,
    overrides: &[(DomainId, Voltage)],
) -> Result<StaReport, NetlistError> {
    netlist.validate()?;
    let order = netlist.topo_gates()?;
    let supply_of = |d: DomainId| -> Voltage {
        overrides
            .iter()
            .find(|(od, _)| *od == d)
            .map_or(config.supply, |(_, v)| *v)
    };

    // Launch arrivals. Constants get a strongly negative arrival so they
    // never define a path.
    let never = Time::from_seconds(-1.0);
    let mut arrival = vec![never; netlist.net_count()];
    let mut pred: Vec<Option<usize>> = vec![None; netlist.net_count()]; // gate index driving the max-arrival input
    for &i in netlist.inputs() {
        arrival[i.index()] = config.input_arrival;
    }
    for ff in netlist.dffs() {
        arrival[ff.q().index()] = ff.model().clk_to_q();
    }

    let gate_of_net: std::collections::BTreeMap<NetId, usize> = netlist
        .gates()
        .iter()
        .enumerate()
        .map(|(gi, g)| (g.output(), gi))
        .collect();

    for gid in order {
        let gate = &netlist.gates()[gid.index()];
        let (worst_in, worst_arr) = gate
            .inputs()
            .iter()
            .map(|i| (*i, arrival[i.index()]))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("gates have at least one input");
        let load = netlist.load(gate.output());
        let delay = gate
            .cell()
            .propagation_delay(supply_of(gate.domain()), load, &config.pvt);
        arrival[gate.output().index()] = worst_arr + delay;
        pred[gate.output().index()] = gate_of_net.get(&worst_in).copied().or(None);
        // Remember the worst input net itself for reconstruction through
        // launch points: encode via pred of the *gate's output*; walking
        // stops when the driving net has no gate.
        let _ = worst_in;
    }

    // Path reconstruction helper: walk gate predecessors back from a net.
    let build_path = |end_net: NetId, endpoint: Endpoint, required: Time| -> TimingPath {
        let mut stages_rev = Vec::new();
        let mut cur = gate_of_net.get(&end_net).copied();
        while let Some(gi) = cur {
            let gate = &netlist.gates()[gi];
            let load = netlist.load(gate.output());
            let delay = gate
                .cell()
                .propagation_delay(supply_of(gate.domain()), load, &config.pvt);
            stages_rev.push(PathStage {
                instance: gate.name().to_owned(),
                cell: gate.cell().name().to_owned(),
                net: netlist.net(gate.output()).name().to_owned(),
                delay,
                arrival: arrival[gate.output().index()],
            });
            // Move to the gate driving the worst input.
            let worst_in = gate
                .inputs()
                .iter()
                .copied()
                .max_by(|a, b| arrival[a.index()].total_cmp(&arrival[b.index()]))
                .expect("gates have inputs");
            cur = gate_of_net.get(&worst_in).copied();
        }
        stages_rev.reverse();
        let arr = arrival[end_net.index()].max(Time::ZERO);
        TimingPath {
            endpoint,
            stages: stages_rev,
            arrival: arr,
            slack: required - arr,
        }
    };

    let mut endpoint_paths = Vec::new();
    for ff in netlist.dffs() {
        let required = config.clock_period - ff.model().setup();
        endpoint_paths.push(build_path(
            ff.d(),
            Endpoint::FlipFlopD(ff.name().to_owned()),
            required,
        ));
    }
    for (port, net) in netlist.outputs() {
        endpoint_paths.push(build_path(
            *net,
            Endpoint::Output(port.clone()),
            config.clock_period,
        ));
    }

    let critical = endpoint_paths
        .iter()
        .max_by(|a, b| a.arrival().total_cmp(&b.arrival()))
        .cloned()
        .unwrap_or(TimingPath {
            endpoint: Endpoint::Output("<none>".into()),
            stages: Vec::new(),
            arrival: Time::ZERO,
            slack: config.clock_period,
        });

    Ok(StaReport {
        config: *config,
        critical,
        endpoint_paths,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use psnt_cells::dff::Dff;
    use psnt_cells::gates::StdCell;
    use psnt_cells::logic::Logic;

    fn chain(n_gates: usize) -> Netlist {
        let mut n = Netlist::new("chain");
        let a = n.add_input("a");
        let mut prev = a;
        for i in 0..n_gates {
            prev = n
                .add_gate(format!("inv{i}"), StdCell::inverter(1.0), &[prev])
                .unwrap();
        }
        n.mark_output("q", prev);
        n
    }

    #[test]
    fn chain_delay_accumulates() {
        let short = analyze(&chain(2), &StaConfig::default()).unwrap();
        let long = analyze(&chain(8), &StaConfig::default()).unwrap();
        assert!(long.critical_delay() > short.critical_delay());
        assert_eq!(long.critical_path().stages().len(), 8);
        // Arrivals along the path are strictly increasing.
        let stages = long.critical_path().stages();
        for w in stages.windows(2) {
            assert!(w[1].arrival > w[0].arrival);
        }
    }

    #[test]
    fn lower_supply_increases_critical_delay() {
        let n = chain(6);
        let nominal = analyze(&n, &StaConfig::default()).unwrap();
        let droop = analyze(
            &n,
            &StaConfig {
                supply: Voltage::from_v(0.85),
                ..StaConfig::default()
            },
        )
        .unwrap();
        assert!(droop.critical_delay() > nominal.critical_delay());
    }

    #[test]
    fn ff_endpoint_slack_accounts_for_setup() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let clk = n.add_input("clk");
        let x = n.add_gate("g", StdCell::inverter(1.0), &[a]).unwrap();
        let _q = n.add_dff("ff", Dff::standard_90nm(), x, clk, Logic::Zero);
        let cfg = StaConfig::default();
        let report = analyze(&n, &cfg).unwrap();
        let ff_path = report
            .endpoint_paths()
            .iter()
            .find(|p| matches!(p.endpoint(), Endpoint::FlipFlopD(_)))
            .unwrap();
        let expected_required = cfg.clock_period - Dff::standard_90nm().setup();
        assert!(
            (ff_path.slack() - (expected_required - ff_path.arrival())).abs() < Time::from_ps(1e-9)
        );
        assert!(report.meets_timing());
    }

    #[test]
    fn register_to_register_path_launches_from_q() {
        let mut n = Netlist::new("t");
        let clk = n.add_input("clk");
        let d0 = n.add_input("d0");
        let q0 = n.add_dff("ff0", Dff::standard_90nm(), d0, clk, Logic::Zero);
        let x = n.add_gate("g", StdCell::inverter(1.0), &[q0]).unwrap();
        let _q1 = n.add_dff("ff1", Dff::standard_90nm(), x, clk, Logic::Zero);
        let report = analyze(&n, &StaConfig::default()).unwrap();
        // Critical endpoint is ff1/D; its arrival includes clk-to-q.
        let ff1 = report
            .endpoint_paths()
            .iter()
            .find(|p| p.endpoint() == &Endpoint::FlipFlopD("ff1".into()))
            .unwrap();
        assert!(ff1.arrival() > Dff::standard_90nm().clk_to_q());
    }

    #[test]
    fn failing_timing_detected() {
        let n = chain(30);
        let report = analyze(
            &n,
            &StaConfig {
                clock_period: Time::from_ps(100.0),
                ..StaConfig::default()
            },
        )
        .unwrap();
        assert!(!report.meets_timing());
        assert!(report.worst_slack() < Time::ZERO);
    }

    #[test]
    fn max_frequency_consistent_with_critical_delay() {
        let n = chain(10);
        let report = analyze(&n, &StaConfig::default()).unwrap();
        let f = report.max_frequency();
        // min period = arrival (+ setup at FF endpoints, none here).
        let expected = 1.0 / report.critical_delay().seconds();
        assert!((f.hertz() - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn report_display_contains_path() {
        let n = chain(3);
        let report = analyze(&n, &StaConfig::default()).unwrap();
        let text = report.to_string();
        assert!(text.contains("critical delay"));
        assert!(text.contains("inv2"));
        assert!(text.contains("INVX1"));
    }

    #[test]
    fn constants_do_not_define_paths() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let one = n.add_const("one", Logic::One);
        let q = n.add_gate("g", StdCell::and2(1.0), &[a, one]).unwrap();
        n.mark_output("q", q);
        let report = analyze(&n, &StaConfig::default()).unwrap();
        // The path must start from input `a`, one stage only, arrival =
        // gate delay exactly (input arrival 0).
        assert_eq!(report.critical_path().stages().len(), 1);
        assert!(report.critical_delay() > Time::ZERO);
        assert!(report.critical_delay() < Time::from_ps(200.0));
    }

    #[test]
    fn domain_overrides_slow_only_the_listed_domain() {
        use crate::graph::{DomainId, GateId};
        // Two parallel inverter chains; one moved to a "noisy" domain.
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let noisy = n.add_domain("noisy");
        let mut clean_out = a;
        let mut noisy_out = a;
        for i in 0..4 {
            clean_out = n
                .add_gate(format!("c{i}"), StdCell::inverter(1.0), &[clean_out])
                .unwrap();
            noisy_out = n
                .add_gate(format!("n{i}"), StdCell::inverter(1.0), &[noisy_out])
                .unwrap();
        }
        for gi in 0..n.gates().len() {
            if n.gates()[gi].name().starts_with('n') {
                n.set_gate_domain(GateId::from_index(gi), noisy);
            }
        }
        n.mark_output("clean", clean_out);
        n.mark_output("noisy", noisy_out);

        let cfg = StaConfig::default();
        let nominal = analyze_with_domain_supplies(&n, &cfg, &[]).unwrap();
        let droop =
            analyze_with_domain_supplies(&n, &cfg, &[(noisy, Voltage::from_v(0.85))]).unwrap();
        // Only the noisy-domain endpoint slows; the clean one is bit-identical.
        let arrival = |r: &StaReport, port: &str| {
            r.endpoint_paths()
                .iter()
                .find(|p| matches!(p.endpoint(), Endpoint::Output(name) if name == port))
                .unwrap()
                .arrival()
        };
        assert_eq!(arrival(&nominal, "clean"), arrival(&droop, "clean"));
        assert!(arrival(&droop, "noisy") > arrival(&nominal, "noisy"));
        // The default core domain is untouched by the override list.
        assert_eq!(DomainId::CORE.index(), 0);
    }

    #[test]
    fn empty_netlist_yields_zero_delay() {
        let n = Netlist::new("empty");
        let report = analyze(&n, &StaConfig::default()).unwrap();
        assert_eq!(report.critical_delay(), Time::ZERO);
        assert!(report.meets_timing());
    }
}
