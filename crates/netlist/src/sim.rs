//! Event-driven gate-level logic simulation with voltage-aware timing.
//!
//! The [`Simulator`] plays the role of the paper's transient simulation
//! runs: every gate's propagation delay is computed from its
//! alpha-power-law model at the simulator's supply voltage, so lowering
//! the supply slows every path exactly as the silicon would. Flip-flops
//! are sampled through [`psnt_cells::dff::Dff::sample`], so setup
//! violations and metastability arise *naturally* from event timing
//! rather than being scripted.
//!
//! The simulator uses inertial delays: when a gate re-evaluates before a
//! previously scheduled output change has matured, the stale event is
//! cancelled — narrow glitches shorter than a gate delay do not propagate.
//!
//! # Examples
//!
//! ```
//! use psnt_cells::gates::StdCell;
//! use psnt_cells::logic::Logic;
//! use psnt_cells::units::{Time, Voltage};
//! use psnt_netlist::graph::Netlist;
//! use psnt_netlist::sim::Simulator;
//!
//! let mut n = Netlist::new("inv");
//! let a = n.add_input("a");
//! let q = n.add_gate("g", StdCell::inverter(1.0), &[a])?;
//! n.mark_output("q", q);
//!
//! let mut sim = Simulator::new(&n, Voltage::from_v(1.0))?;
//! sim.drive(a, Logic::Zero, Time::ZERO)?;
//! sim.run_until(Time::from_ns(1.0));
//! assert_eq!(sim.value(q), Logic::One);
//! # Ok::<(), psnt_netlist::error::NetlistError>(())
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use psnt_cells::logic::Logic;
use psnt_cells::process::Pvt;
use psnt_cells::units::{Time, Voltage};
use psnt_fault::{Fault, FaultPlan, SplitMix64};
use psnt_obs::metrics::{GaugeId, MetricsRegistry};
use psnt_obs::{Event as ObsEvent, Observer};
use serde::{Deserialize, Serialize};

use crate::error::NetlistError;
use crate::graph::{DffId, DomainId, GateId, NetId, Netlist, SimTopology};
use crate::profile::SimProfile;
use crate::wave::{SignalId, Trace};

/// Upper bound on gate fan-in (library cells have ≤ 3 pins), sized so
/// the event loop gathers inputs into a stack buffer instead of a heap
/// allocation.
pub(crate) const MAX_GATE_INPUTS: usize = 4;

/// A scheduled net transition.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    time: Time,
    seq: u64,
    net: NetId,
    value: Logic,
    version: u64,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Event) -> Ordering {
        // Min-heap via BinaryHeap<Reverse<_>>: order by (time, seq).
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Event) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// How a metastable flip-flop capture appears on `Q`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetastabilityMode {
    /// The nearer clean regime's value is captured (deterministic). This
    /// is what the paper's sensor relies on: a violated FF "fails the
    /// evaluation" to a definite wrong value.
    #[default]
    Deterministic,
    /// A metastable capture drives `Q` to [`Logic::X`] until the next
    /// clean capture — the conservative verification view.
    PropagateX,
}

/// Statistics collected during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SimStats {
    /// Events applied (net value changes).
    pub events: u64,
    /// Events cancelled by inertial filtering.
    pub cancelled: u64,
    /// Flip-flop captures performed.
    pub ff_captures: u64,
    /// Captures that violated the setup/hold window.
    pub ff_violations: u64,
}

/// Which nets a [`Simulator`] records into its [`Trace`].
///
/// Recording is fixed at construction because initial values are traced
/// during settling. The default ([`TraceMode::Full`]) is what
/// [`Simulator::new`] and [`Simulator::with_pvt`] use, preserving the
/// record-everything behaviour; measurement kernels that only read back
/// a handful of nets pass [`TraceMode::Watched`] or [`TraceMode::Off`]
/// to [`Simulator::with_options`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Record nothing; [`Simulator::signal`] panics for every net.
    Off,
    /// Record only the listed nets.
    Watched(Vec<NetId>),
    /// Record every net.
    #[default]
    Full,
}

/// Cached per-gate propagation delays at the current supplies/PVT, so
/// the event loop never evaluates the alpha-power law (`powf`).
#[derive(Debug, Clone, Copy)]
struct GateDelays {
    rise: Time,
    fall: Time,
    worst: Time,
}

impl GateDelays {
    /// Both arcs multiplied by a `DelayScale` fault factor (1.0 is the
    /// healthy identity).
    fn scaled(self, factor: f64) -> GateDelays {
        if factor == 1.0 {
            return self;
        }
        GateDelays {
            rise: self.rise * factor,
            fall: self.fall * factor,
            worst: self.worst * factor,
        }
    }
}

/// An event-driven simulator over a borrowed [`Netlist`].
#[derive(Debug)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    /// Flattened topology: CSR fanout/clock/input arrays, per-net loads
    /// and driver domains, cached topological order.
    topo: SimTopology,
    values: Vec<Logic>,
    prev_values: Vec<Logic>,
    last_change: Vec<Time>,
    version: Vec<u64>,
    pending: Vec<Option<Logic>>,
    is_input: Vec<bool>,
    queue: BinaryHeap<std::cmp::Reverse<Event>>,
    now: Time,
    seq: u64,
    domain_supply: Vec<Voltage>,
    pvt: Pvt,
    /// Per-gate (rise, fall, worst) delays, refreshed whenever a supply
    /// changes.
    delay_cache: Vec<GateDelays>,
    trace: Trace,
    /// Trace signal per net; `None` for nets the [`TraceMode`] excludes.
    signals: Vec<Option<SignalId>>,
    meta_mode: MetastabilityMode,
    stats: SimStats,
    /// Accumulated switching energy in joules (½·C·V² per transition).
    switching_energy_j: f64,
    observer: Option<&'a mut Observer>,
    queue_gauge: Option<GaugeId>,
    /// Stats already folded into the observer's registry, so repeated
    /// promotion adds only the delta.
    promoted: SimStats,
    /// Resolved fault-injection state; `None` (the default) keeps every
    /// hot-path hook behind a single never-taken branch, so a fault-free
    /// simulator is bit-identical to one built before faults existed.
    faults: Option<Box<FaultState>>,
    /// Hot-path profiling counters; `None` (the default) costs one
    /// never-taken branch per hook, like the fault state.
    profile: Option<Box<SimProfile>>,
    /// Applied-event ceiling enforced by the `try_run_*` methods.
    event_budget: Option<u64>,
    /// Cooperative supervision checked (strided) by the `try_run_*`
    /// methods; `None` (the default) costs one never-taken branch per
    /// run call, like the fault state.
    supervisor: Option<psnt_sup::Supervisor>,
}

/// Applied events between supervision checks inside the event loops: a
/// stride amortises the supervisor's atomics to ~0.1% of event cost
/// while still bounding the response latency to a cancellation or
/// deadline at a few thousand events.
const SUPERVISION_STRIDE: u64 = 1024;

/// A `FaultPlan` resolved against one netlist: names become indices and
/// time-triggered faults become sorted schedules with replay cursors.
#[derive(Debug)]
struct FaultState {
    /// Per-net stuck value (`None` = healthy node).
    stuck: Vec<Option<Logic>>,
    /// Per-gate delay multiplier (1.0 = healthy), folded into the delay
    /// cache when it is (re)built.
    delay_scale: Vec<f64>,
    /// Single-event upsets as `(time, dff index)`, sorted by time.
    upsets: Vec<(Time, usize)>,
    /// Cursor into `upsets`; re-armed by `reset`.
    next_upset: usize,
    /// Supply-glitch boundaries as `(time, domain index, signed dv in
    /// volts)` — `+dv` at the window start, `-dv` at the end — sorted by
    /// time.
    glitch_edges: Vec<(Time, usize, f64)>,
    /// Cursor into `glitch_edges`; re-armed by `reset`.
    next_glitch: usize,
    /// Per-capture flip probability of the transient fault, if any.
    transient: Option<f64>,
    /// Seed the transient stream restarts from on `reset`.
    transient_seed: u64,
    /// The transient draw stream (one draw per FF capture).
    rng: SplitMix64,
}

impl FaultState {
    /// Rewinds the time-triggered schedules and the transient stream to
    /// the start of a run.
    fn rearm(&mut self) {
        self.next_upset = 0;
        self.next_glitch = 0;
        self.rng = SplitMix64::new(self.transient_seed);
    }

    /// The earliest pending time-triggered fault at or before `horizon`
    /// (`None` horizon = no limit), removed from its schedule.
    fn pop_due_trigger(&mut self, horizon: Option<Time>) -> Option<FaultTrigger> {
        let up = self.upsets.get(self.next_upset).copied();
        let gl = self.glitch_edges.get(self.next_glitch).copied();
        let take_upset = match (up, gl) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some((tu, _)), Some((tg, _, _))) => tu <= tg,
        };
        if take_upset {
            let (t, ff) = up.unwrap();
            if horizon.is_some_and(|h| t > h) {
                return None;
            }
            self.next_upset += 1;
            Some(FaultTrigger::Upset { at: t, ff })
        } else {
            let (t, domain, dv) = gl.unwrap();
            if horizon.is_some_and(|h| t > h) {
                return None;
            }
            self.next_glitch += 1;
            Some(FaultTrigger::GlitchEdge { domain, dv })
        }
    }
}

/// One due time-triggered fault, copied out of `FaultState` so the
/// simulator can act on it without holding the state borrow.
enum FaultTrigger {
    Upset { at: Time, ff: usize },
    GlitchEdge { domain: usize, dv: f64 },
}

impl<'a> Simulator<'a> {
    /// Creates a simulator at the typical PVT point and the given supply.
    ///
    /// # Errors
    ///
    /// Propagates structural validation failures from
    /// [`Netlist::validate`].
    pub fn new(netlist: &'a Netlist, supply: Voltage) -> Result<Simulator<'a>, NetlistError> {
        Simulator::with_pvt(netlist, supply, Pvt::typical())
    }

    /// Creates a simulator at an explicit PVT point, recording every net.
    ///
    /// # Errors
    ///
    /// Propagates structural validation failures from
    /// [`Netlist::validate`].
    pub fn with_pvt(
        netlist: &'a Netlist,
        supply: Voltage,
        pvt: Pvt,
    ) -> Result<Simulator<'a>, NetlistError> {
        Simulator::with_options(netlist, supply, pvt, TraceMode::Full)
    }

    /// Creates a simulator with an explicit [`TraceMode`]. Measurement
    /// kernels that only read back a few nets use `TraceMode::Watched`
    /// (or `Off`) to skip per-event trace recording for everything else.
    ///
    /// # Errors
    ///
    /// Propagates structural validation failures from
    /// [`Netlist::validate`].
    pub fn with_options(
        netlist: &'a Netlist,
        supply: Voltage,
        pvt: Pvt,
        trace_mode: TraceMode,
    ) -> Result<Simulator<'a>, NetlistError> {
        let topo = netlist.sim_topology()?;
        let n = netlist.net_count();
        debug_assert!(
            netlist
                .gates()
                .iter()
                .all(|g| g.inputs().len() <= MAX_GATE_INPUTS),
            "gate fan-in exceeds the inline input buffer"
        );
        let mut trace = Trace::new();
        let mut signals: Vec<Option<SignalId>> = vec![None; n];
        match &trace_mode {
            TraceMode::Off => {}
            TraceMode::Watched(nets) => {
                for &net in nets {
                    if signals[net.index()].is_none() {
                        signals[net.index()] = Some(trace.add_signal(netlist.net(net).name()));
                    }
                }
            }
            TraceMode::Full => {
                for (i, slot) in signals.iter_mut().enumerate() {
                    *slot = Some(trace.add_signal(netlist.net(NetId(i)).name()));
                }
            }
        }
        let mut is_input = vec![false; n];
        for &i in netlist.inputs() {
            is_input[i.index()] = true;
        }
        let mut sim = Simulator {
            netlist,
            topo,
            values: vec![Logic::X; n],
            prev_values: vec![Logic::X; n],
            last_change: vec![Time::from_seconds(-1.0); n],
            version: vec![0; n],
            pending: vec![None; n],
            is_input,
            queue: BinaryHeap::new(),
            now: Time::ZERO,
            seq: 0,
            domain_supply: vec![supply; netlist.domains().len()],
            pvt,
            delay_cache: Vec::new(),
            trace,
            signals,
            meta_mode: MetastabilityMode::Deterministic,
            stats: SimStats::default(),
            switching_energy_j: 0.0,
            observer: None,
            queue_gauge: None,
            promoted: SimStats::default(),
            faults: None,
            profile: None,
            event_budget: None,
            supervisor: None,
        };
        sim.rebuild_delay_cache();
        sim.initialize();
        Ok(sim)
    }

    /// Rewinds the simulator to its just-constructed state while keeping
    /// every allocation (value arrays, event queue, flattened topology,
    /// delay cache, trace buffers) alive, so sweeps reuse one simulator
    /// instead of paying construction per measurement. Supplies, PVT,
    /// the metastability mode and any attached observer are retained;
    /// simulation time, net values, pending events, statistics and
    /// accumulated switching energy are cleared and the trace restarts
    /// from the re-settled initial values.
    pub fn reset(&mut self) {
        self.values.fill(Logic::X);
        self.prev_values.fill(Logic::X);
        self.last_change.fill(Time::from_seconds(-1.0));
        self.version.fill(0);
        self.pending.fill(None);
        self.queue.clear();
        self.now = Time::ZERO;
        self.seq = 0;
        self.stats = SimStats::default();
        self.promoted = SimStats::default();
        self.switching_energy_j = 0.0;
        self.trace.clear_edges();
        if let Some(f) = self.faults.as_mut() {
            f.rearm();
        }
        self.initialize();
    }

    /// Recomputes the cached propagation delays of every gate at the
    /// current supplies/PVT.
    fn rebuild_delay_cache(&mut self) {
        if let Some(p) = self.profile.as_mut() {
            p.cache_rebuild();
        }
        let gates = self.netlist.gates();
        self.delay_cache.clear();
        self.delay_cache.reserve(gates.len());
        for (gi, g) in gates.iter().enumerate() {
            let supply = self.domain_supply[g.domain().index()];
            let load = self.topo.load(g.output());
            let mut d = GateDelays {
                rise: g
                    .cell()
                    .propagation_delay_edge(supply, load, &self.pvt, true),
                fall: g
                    .cell()
                    .propagation_delay_edge(supply, load, &self.pvt, false),
                worst: g.cell().propagation_delay(supply, load, &self.pvt),
            };
            if let Some(f) = &self.faults {
                d = d.scaled(f.delay_scale[gi]);
            }
            self.delay_cache.push(d);
        }
    }

    /// Refreshes the cached delays of the gates in one domain after its
    /// supply changed.
    fn refresh_domain_delays(&mut self, domain: DomainId) {
        if let Some(p) = self.profile.as_mut() {
            p.cache_refresh();
        }
        let supply = self.domain_supply[domain.index()];
        for (gi, g) in self.netlist.gates().iter().enumerate() {
            if g.domain() != domain {
                continue;
            }
            let load = self.topo.load(g.output());
            let mut d = GateDelays {
                rise: g
                    .cell()
                    .propagation_delay_edge(supply, load, &self.pvt, true),
                fall: g
                    .cell()
                    .propagation_delay_edge(supply, load, &self.pvt, false),
                worst: g.cell().propagation_delay(supply, load, &self.pvt),
            };
            if let Some(f) = &self.faults {
                d = d.scaled(f.delay_scale[gi]);
            }
            self.delay_cache[gi] = d;
        }
    }

    /// The cached (rise, fall, worst) propagation delays of a gate at
    /// the current supplies/PVT — exposed so equivalence tests can pin
    /// the cache against on-demand computation.
    pub fn cached_gate_delays(&self, gate: GateId) -> (Time, Time, Time) {
        let d = self.delay_cache[gate.index()];
        (d.rise, d.fall, d.worst)
    }

    /// Selects how metastable captures are modelled.
    pub fn set_metastability_mode(&mut self, mode: MetastabilityMode) {
        self.meta_mode = mode;
    }

    /// Installs a fault plan, resolving every name against the netlist.
    ///
    /// Replaces any previously installed plan. Static faults (stuck-at,
    /// delay scale) take effect immediately — the delay cache is rebuilt
    /// here — but the pinned *initial* state of stuck nets and the
    /// re-armed schedules of time-triggered faults are established by
    /// [`reset`](Simulator::reset), so the usual sequence is
    /// `set_fault_plan` then `reset` then stimulus.
    ///
    /// Installing an **empty** plan is exactly
    /// [`clear_fault_plan`](Simulator::clear_fault_plan): no fault state
    /// is allocated and every hot-path hook stays behind its never-taken
    /// `None` branch, which keeps fault-free runs bit-identical to a
    /// simulator built before fault injection existed (pinned by the
    /// proptests in `tests/fault_equiv.rs`).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNet`] for net/gate/flip-flop/domain
    /// names that do not resolve and [`NetlistError::InvalidFault`] for
    /// out-of-range parameters; the previous plan is left untouched on
    /// error.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) -> Result<(), NetlistError> {
        if plan.is_empty() {
            self.clear_fault_plan();
            return Ok(());
        }
        plan.validate()
            .map_err(|e| NetlistError::InvalidFault(e.to_string()))?;
        let mut state = FaultState {
            stuck: vec![None; self.netlist.net_count()],
            delay_scale: vec![1.0; self.netlist.gates().len()],
            upsets: Vec::new(),
            next_upset: 0,
            glitch_edges: Vec::new(),
            next_glitch: 0,
            transient: None,
            transient_seed: 0,
            rng: SplitMix64::new(0),
        };
        for fault in &plan.faults {
            match fault {
                Fault::StuckAt { net, value } => {
                    let id = self.netlist.net_by_name(net)?;
                    state.stuck[id.index()] = Some(*value);
                }
                Fault::DelayScale { gate, factor } => {
                    let gi = self
                        .netlist
                        .gates()
                        .iter()
                        .position(|g| g.name() == gate)
                        .ok_or_else(|| NetlistError::UnknownNet(gate.clone()))?;
                    state.delay_scale[gi] *= factor;
                }
                Fault::BitUpset { ff, at } => {
                    let fi = self
                        .netlist
                        .dffs()
                        .iter()
                        .position(|d| d.name() == ff)
                        .ok_or_else(|| NetlistError::UnknownNet(ff.clone()))?;
                    state.upsets.push((*at, fi));
                }
                Fault::SupplyGlitch { domain, window, dv } => {
                    let d = self
                        .netlist
                        .domain_by_name(domain)
                        .ok_or_else(|| NetlistError::UnknownNet(domain.clone()))?;
                    state.glitch_edges.push((window.0, d.index(), dv.volts()));
                    state.glitch_edges.push((window.1, d.index(), -dv.volts()));
                }
                Fault::Transient { probability, seed } => {
                    state.transient = Some(*probability);
                    state.transient_seed = *seed;
                    state.rng = SplitMix64::new(*seed);
                }
                // Campaign/harness-level faults; the event kernel
                // ignores them (panics, sink errors, cancellation and
                // deadline trips are applied by the layers above).
                Fault::SitePanic { .. }
                | Fault::SinkError { .. }
                | Fault::WorkerPanic { .. }
                | Fault::CancelAt { .. }
                | Fault::DeadlineTrip => {}
            }
        }
        state.upsets.sort_by(|a, b| a.0.total_cmp(&b.0));
        state.glitch_edges.sort_by(|a, b| a.0.total_cmp(&b.0));
        self.faults = Some(Box::new(state));
        self.rebuild_delay_cache();
        Ok(())
    }

    /// Removes any installed fault plan and restores the healthy delay
    /// cache. No-op on a fault-free simulator.
    pub fn clear_fault_plan(&mut self) {
        if self.faults.take().is_some() {
            self.rebuild_delay_cache();
        }
    }

    /// Whether a (non-empty) fault plan is installed.
    pub fn has_fault_plan(&self) -> bool {
        self.faults.is_some()
    }

    /// Installs (or clears, with `None`) the cumulative applied-event
    /// ceiling enforced by [`try_run_until`](Simulator::try_run_until)
    /// and
    /// [`try_run_to_quiescence`](Simulator::try_run_to_quiescence).
    /// The budget compares against total events applied since the last
    /// [`reset`](Simulator::reset) (which zeroes the event counter but
    /// keeps the budget, like the other configuration knobs). The
    /// infallible `run_*` methods ignore it.
    pub fn set_event_budget(&mut self, budget: Option<u64>) {
        self.event_budget = budget;
    }

    /// The installed event budget, if any.
    pub fn event_budget(&self) -> Option<u64> {
        self.event_budget
    }

    /// Installs (or clears, with `None`) a cooperative
    /// [`Supervisor`](psnt_sup::Supervisor), checked every
    /// [`SUPERVISION_STRIDE`] applied events by the fallible
    /// [`try_run_until`](Simulator::try_run_until) /
    /// [`try_run_to_quiescence`](Simulator::try_run_to_quiescence)
    /// loops. A trip surfaces as [`NetlistError::Interrupted`] with the
    /// simulator still usable; the infallible `run_*` methods ignore
    /// the supervisor (they have no error channel), exactly as they
    /// ignore the event budget. `None` — the default — keeps the hot
    /// loop free of supervision entirely.
    pub fn set_supervisor(&mut self, supervisor: Option<psnt_sup::Supervisor>) {
        self.supervisor = supervisor;
    }

    /// The installed supervisor, if any.
    pub fn supervisor(&self) -> Option<&psnt_sup::Supervisor> {
        self.supervisor.as_ref()
    }

    /// Attaches a telemetry observer for the rest of this simulator's
    /// life. Run statistics are promoted into its metrics registry at
    /// the end of every `run_*` call, peak queue depth is tracked in
    /// the `sim.queue_depth_peak` gauge, and — when the observer opts
    /// in — every net transition is logged as an event.
    pub fn set_observer(&mut self, observer: &'a mut Observer) {
        self.queue_gauge = Some(observer.metrics.gauge("sim.queue_depth_peak"));
        self.observer = Some(observer);
    }

    /// Enables hot-path profiling: events by gate kind, queue-depth
    /// and event-latency histograms, delay-cache and fault-hook
    /// counters, accumulated in a [`SimProfile`] until drained by
    /// [`fold_profile_into`](Simulator::fold_profile_into). Idempotent;
    /// survives [`reset`](Simulator::reset) so pooled sweeps keep
    /// accumulating. Every profiled quantity derives from simulation
    /// state, so enabling profiling never changes results and profiles
    /// are bit-identical across worker counts.
    pub fn enable_profiling(&mut self) {
        if self.profile.is_none() {
            self.profile = Some(Box::new(SimProfile::for_netlist(self.netlist)));
        }
    }

    /// Whether [`enable_profiling`](Simulator::enable_profiling) ran.
    pub fn profiling_enabled(&self) -> bool {
        self.profile.is_some()
    }

    /// The accumulated profile, when profiling is enabled.
    pub fn profile(&self) -> Option<&SimProfile> {
        self.profile.as_deref()
    }

    /// Drains the profile into `metrics` (no-op when profiling is
    /// off). Call after a run; pooled simulators cannot hold the
    /// observer reference themselves, so the owning layer folds here.
    pub fn fold_profile_into(&mut self, metrics: &mut MetricsRegistry) {
        if let Some(p) = self.profile.as_mut() {
            p.fold_into(metrics);
        }
    }

    /// Delta-promotes run statistics (and the energy gauge) into an
    /// external registry — the same fold the attached-observer path
    /// performs at the end of every `run_*`, exposed for pooled
    /// simulators whose observer cannot be borrowed for the
    /// simulator's lifetime.
    pub fn promote_stats_into(&mut self, metrics: &mut MetricsRegistry) {
        let s = self.stats;
        Simulator::promote_delta(metrics, s, self.promoted, self.switching_energy_j);
        self.promoted = s;
    }

    /// Folds stats accumulated since the last promotion into the
    /// attached observer's registry (no-op when detached).
    fn promote_stats(&mut self) {
        let s = self.stats;
        let p = self.promoted;
        let energy = self.switching_energy_j;
        let mut profile = self.profile.take();
        if let Some(obs) = self.observer.as_deref_mut() {
            Simulator::promote_delta(&mut obs.metrics, s, p, energy);
            if let Some(prof) = profile.as_mut() {
                prof.fold_into(&mut obs.metrics);
            }
            self.promoted = s;
        }
        self.profile = profile;
    }

    fn promote_delta(metrics: &mut MetricsRegistry, s: SimStats, p: SimStats, energy: f64) {
        metrics.counter_add("sim.events", s.events - p.events);
        metrics.counter_add("sim.cancelled", s.cancelled - p.cancelled);
        metrics.counter_add("sim.ff_captures", s.ff_captures - p.ff_captures);
        metrics.counter_add("sim.ff_violations", s.ff_violations - p.ff_violations);
        metrics.gauge_set("sim.switching_energy_j", energy);
    }

    /// The supply voltage powering the default (core) domain.
    pub fn supply(&self) -> Voltage {
        self.domain_supply[DomainId::CORE.index()]
    }

    /// Changes the supply voltage of every domain for subsequently
    /// scheduled gate delays (models a slow global supply ramp).
    pub fn set_supply(&mut self, supply: Voltage) {
        for s in &mut self.domain_supply {
            *s = supply;
        }
        self.rebuild_delay_cache();
    }

    /// The supply voltage of one domain.
    pub fn domain_supply(&self, domain: DomainId) -> Voltage {
        self.domain_supply[domain.index()]
    }

    /// Changes one domain's supply for subsequently scheduled gate
    /// delays — how a measurement run steps the noisy rail between
    /// PREPARE/SENSE sequences while the control domain stays nominal.
    ///
    /// # Panics
    ///
    /// Panics if `domain` was not declared on the netlist.
    pub fn set_domain_supply(&mut self, domain: DomainId, supply: Voltage) {
        self.domain_supply[domain.index()] = supply;
        self.refresh_domain_delays(domain);
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Run statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Switching (dynamic) energy dissipated so far: ½·C·V² per net
    /// transition, with each net charged from its driver's domain supply.
    pub fn switching_energy_joules(&self) -> f64 {
        self.switching_energy_j
    }

    /// Mean dynamic power over the elapsed simulation time, in watts;
    /// zero before any time has passed.
    pub fn dynamic_power_watts(&self) -> f64 {
        let t = self.now.seconds();
        if t <= 0.0 {
            0.0
        } else {
            self.switching_energy_j / t
        }
    }

    /// The current value of a net.
    pub fn value(&self, net: NetId) -> Logic {
        self.values[net.index()]
    }

    /// The recorded waveform trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The trace signal corresponding to a net.
    ///
    /// This is the panicking convenience over [`Simulator::try_signal`]
    /// for call sites that construct the simulator and therefore know
    /// which nets are traced.
    ///
    /// # Panics
    ///
    /// Panics when the net is excluded by the simulator's [`TraceMode`]
    /// (`Off`, or `Watched` without this net).
    pub fn signal(&self, net: NetId) -> SignalId {
        self.try_signal(net).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The trace signal corresponding to a net, or
    /// [`NetlistError::UntracedNet`] when the net is excluded by the
    /// simulator's [`TraceMode`] (`Off`, or `Watched` without this
    /// net).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UntracedNet`] naming the net.
    pub fn try_signal(&self, net: NetId) -> Result<SignalId, NetlistError> {
        self.signals[net.index()]
            .ok_or_else(|| NetlistError::UntracedNet(self.netlist.net(net).name().to_owned()))
    }

    fn initialize(&mut self) {
        // Constants and FF power-on values are established instantaneously,
        // then combinational logic settles in topological order
        // (zero-delay), modelling a circuit that has been stable forever.
        for &(net, value) in self.netlist.consts() {
            self.values[net.index()] = value;
        }
        for ff in self.netlist.dffs() {
            self.values[ff.q().index()] = ff.init();
        }
        // Stuck-at faults pin their nodes before and during settling, so
        // the initial state is consistent with the defect having been
        // present forever.
        if let Some(f) = &self.faults {
            for (ni, sv) in f.stuck.iter().enumerate() {
                if let Some(v) = sv {
                    self.values[ni] = *v;
                }
            }
        }
        let nl = self.netlist;
        for k in 0..self.topo.topo_gates().len() {
            let g = self.topo.topo_gates()[k];
            let gate = &nl.gates()[g.index()];
            let pins = self.topo.gate_inputs(g);
            let mut ins = [Logic::X; MAX_GATE_INPUTS];
            for (j, &i) in pins.iter().enumerate() {
                ins[j] = self.values[i.index()];
            }
            let arity = pins.len();
            let oi = gate.output().index();
            let mut out = gate.cell().eval(&ins[..arity]);
            if let Some(f) = &self.faults {
                if let Some(v) = f.stuck[oi] {
                    out = v;
                }
            }
            self.values[oi] = out;
        }
        for i in 0..self.values.len() {
            self.prev_values[i] = self.values[i];
            if let Some(s) = self.signals[i] {
                self.trace.record(s, Time::ZERO, self.values[i]);
            }
        }
    }

    /// Drives a primary input to `value` at absolute time `at`.
    ///
    /// This is the panicking convenience over [`Simulator::try_drive`],
    /// kept because call sites that author their own stimulus schedule
    /// know their times are monotone (mirrors
    /// [`signal`](Simulator::signal) / [`try_signal`](Simulator::try_signal)).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NotAnInput`] for non-input nets.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the current simulation time; use
    /// [`Simulator::try_drive`] to get
    /// [`NetlistError::DriveInPast`] instead.
    pub fn drive(&mut self, net: NetId, value: Logic, at: Time) -> Result<(), NetlistError> {
        match self.try_drive(net, value, at) {
            Err(NetlistError::DriveInPast { net, at_ps, now_ps }) => {
                panic!("cannot drive in the past: net {net:?} at {at_ps} ps < now {now_ps} ps")
            }
            other => other,
        }
    }

    /// Fallible [`drive`](Simulator::drive): schedules a primary-input
    /// stimulus, reporting out-of-range times as errors rather than
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NotAnInput`] for non-input nets and
    /// [`NetlistError::DriveInPast`] when `at` precedes the current
    /// simulation time.
    pub fn try_drive(&mut self, net: NetId, value: Logic, at: Time) -> Result<(), NetlistError> {
        if !self.is_input[net.index()] {
            return Err(NetlistError::NotAnInput(
                self.netlist.net(net).name().to_owned(),
            ));
        }
        if at < self.now {
            return Err(NetlistError::DriveInPast {
                net: self.netlist.net(net).name().to_owned(),
                at_ps: at.picoseconds(),
                now_ps: self.now.picoseconds(),
            });
        }
        // Primary inputs use transport semantics: every queued stimulus
        // edge applies in time order (no inertial cancellation), so a full
        // clock waveform can be scheduled up front.
        self.push_event(at, net, value);
        Ok(())
    }

    /// Drives a periodic clock on `net`: rising edges at
    /// `start, start+period, …` for `cycles` cycles, 50 % duty.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NotAnInput`] for non-input nets.
    pub fn drive_clock(
        &mut self,
        net: NetId,
        start: Time,
        period: Time,
        cycles: usize,
    ) -> Result<(), NetlistError> {
        self.drive(net, Logic::Zero, self.now)?;
        for k in 0..cycles {
            let rise = start + period * k as f64;
            self.drive(net, Logic::One, rise)?;
            self.drive(net, Logic::Zero, rise + period / 2.0)?;
        }
        Ok(())
    }

    fn push_event(&mut self, time: Time, net: NetId, value: Logic) {
        self.seq += 1;
        self.queue.push(std::cmp::Reverse(Event {
            time,
            seq: self.seq,
            net,
            value,
            version: self.version[net.index()],
        }));
        if let Some(p) = self.profile.as_mut() {
            p.queue_sample(self.queue.len());
        }
    }

    /// Processes every event scheduled at or before `t`, then advances the
    /// clock to `t`. Returns the number of applied events.
    pub fn run_until(&mut self, t: Time) -> u64 {
        match self.run_until_guarded(t, None, None) {
            Ok(applied) => applied,
            Err(_) => unreachable!("unguarded run cannot exceed a budget"),
        }
    }

    /// Budget-guarded [`run_until`](Simulator::run_until): identical
    /// event-for-event while the configured
    /// [event budget](Simulator::set_event_budget) holds, but stops with
    /// [`NetlistError::BudgetExceeded`] instead of grinding through an
    /// oscillation a fault plan may have created. With no budget
    /// installed it never fails.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BudgetExceeded`] when the cumulative
    /// applied-event count passes the budget, or
    /// [`NetlistError::Interrupted`] when an installed
    /// [supervisor](Simulator::set_supervisor) trips; the simulator
    /// remains usable (time holds at the last applied event).
    pub fn try_run_until(&mut self, t: Time) -> Result<u64, NetlistError> {
        let sup = self.supervisor.clone();
        self.run_until_guarded(t, self.event_budget, sup.as_ref())
    }

    fn run_until_guarded(
        &mut self,
        t: Time,
        budget: Option<u64>,
        sup: Option<&psnt_sup::Supervisor>,
    ) -> Result<u64, NetlistError> {
        let before = self.stats.events;
        let mut until_check = SUPERVISION_STRIDE;
        loop {
            let next = self.queue.peek().map(|r| r.0.time);
            if self.faults.is_some() {
                let horizon = match next {
                    Some(te) if te <= t => te,
                    _ => t,
                };
                if self.inject_due_fault(Some(horizon)) {
                    continue;
                }
            }
            let Some(std::cmp::Reverse(ev)) = self.queue.peek().copied() else {
                break;
            };
            if ev.time > t {
                break;
            }
            self.queue.pop();
            self.apply(ev);
            if let Some(b) = budget {
                if self.stats.events > b {
                    self.promote_stats();
                    return Err(NetlistError::BudgetExceeded {
                        budget: b,
                        events: self.stats.events,
                    });
                }
            }
            if let Some(s) = sup {
                until_check -= 1;
                if until_check == 0 {
                    until_check = SUPERVISION_STRIDE;
                    s.charge_events(SUPERVISION_STRIDE);
                    if let Err(reason) = s.check_at(self.now.picoseconds()) {
                        self.promote_stats();
                        return Err(NetlistError::Interrupted(reason));
                    }
                }
            }
        }
        self.now = self.now.max(t);
        self.promote_stats();
        Ok(self.stats.events - before)
    }

    /// Runs until the event queue drains (or `max` events were applied,
    /// as a divergence guard). Returns the final time.
    pub fn run_to_quiescence(&mut self, max: u64) -> Time {
        match self.run_quiescence_guarded(max, None, None) {
            Ok(t) => t,
            Err(_) => unreachable!("unguarded run cannot exceed a budget"),
        }
    }

    /// Budget-guarded [`run_to_quiescence`](Simulator::run_to_quiescence):
    /// same event order, but the configured
    /// [event budget](Simulator::set_event_budget) turns a netlist that
    /// never settles (e.g. a stuck-at fault closing an oscillating loop)
    /// into a [`NetlistError::BudgetExceeded`] error rather than silently
    /// stopping at `max`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BudgetExceeded`] when the cumulative
    /// applied-event count passes the budget, or
    /// [`NetlistError::Interrupted`] when an installed
    /// [supervisor](Simulator::set_supervisor) trips.
    pub fn try_run_to_quiescence(&mut self, max: u64) -> Result<Time, NetlistError> {
        let sup = self.supervisor.clone();
        self.run_quiescence_guarded(max, self.event_budget, sup.as_ref())
    }

    fn run_quiescence_guarded(
        &mut self,
        max: u64,
        budget: Option<u64>,
        sup: Option<&psnt_sup::Supervisor>,
    ) -> Result<Time, NetlistError> {
        let mut applied = 0;
        let mut until_check = SUPERVISION_STRIDE;
        loop {
            if self.faults.is_some() {
                let horizon = self.queue.peek().map(|r| r.0.time);
                if self.inject_due_fault(horizon) {
                    continue;
                }
            }
            let Some(std::cmp::Reverse(ev)) = self.queue.pop() else {
                break;
            };
            let was_applied = self.apply(ev);
            if was_applied {
                applied += 1;
                if applied >= max {
                    break;
                }
                if let Some(b) = budget {
                    if self.stats.events > b {
                        self.promote_stats();
                        return Err(NetlistError::BudgetExceeded {
                            budget: b,
                            events: self.stats.events,
                        });
                    }
                }
                if let Some(s) = sup {
                    until_check -= 1;
                    if until_check == 0 {
                        until_check = SUPERVISION_STRIDE;
                        s.charge_events(SUPERVISION_STRIDE);
                        if let Err(reason) = s.check_at(self.now.picoseconds()) {
                            self.promote_stats();
                            return Err(NetlistError::Interrupted(reason));
                        }
                    }
                }
            }
        }
        self.promote_stats();
        Ok(self.now)
    }

    /// Injects at most one due time-triggered fault (bit upset or supply
    /// glitch boundary) with trigger time `<= horizon` (`None` = no
    /// limit). Returns whether anything was injected — callers loop so
    /// the event heap interleaves injected edges in time order.
    fn inject_due_fault(&mut self, horizon: Option<Time>) -> bool {
        let Some(f) = self.faults.as_mut() else {
            return false;
        };
        let Some(trigger) = f.pop_due_trigger(horizon) else {
            return false;
        };
        match trigger {
            FaultTrigger::Upset { at, ff } => {
                // Invert the flip-flop output once; X flips to One so the
                // disturbance is observable. Scheduled through the normal
                // inertial path, so fanout reacts like any capture.
                let q = self.netlist.dffs()[ff].q();
                let qi = q.index();
                let effective = self.pending[qi].unwrap_or(self.values[qi]);
                let flipped = match effective {
                    Logic::One => Logic::Zero,
                    Logic::Zero => Logic::One,
                    _ => Logic::One,
                };
                self.version[qi] += 1;
                self.pending[qi] = Some(flipped);
                let when = at.max(self.now);
                self.push_event(when, q, flipped);
            }
            FaultTrigger::GlitchEdge { domain, dv } => {
                let d = DomainId(domain);
                let bumped = Voltage::from_v(self.domain_supply[domain].volts() + dv);
                self.domain_supply[domain] = bumped;
                self.refresh_domain_delays(d);
            }
        }
        if let Some(p) = self.profile.as_mut() {
            p.fault_injection();
        }
        true
    }

    fn apply(&mut self, mut ev: Event) -> bool {
        let ni = ev.net.index();
        // Stuck-at interception at commit time: transitions on a stuck
        // node are rewritten to the stuck value, which the same-value
        // check below then discards — the node never moves.
        if let Some(f) = &self.faults {
            if let Some(v) = f.stuck[ni] {
                if ev.value != v {
                    if let Some(p) = self.profile.as_mut() {
                        p.stuck_rewrite();
                    }
                }
                ev.value = v;
            }
        }
        if ev.version != self.version[ni] {
            self.stats.cancelled += 1;
            return false; // superseded by a later evaluation (inertial)
        }
        self.pending[ni] = None;
        self.now = self.now.max(ev.time);
        if self.values[ni] == ev.value {
            return false;
        }
        self.prev_values[ni] = self.values[ni];
        self.values[ni] = ev.value;
        self.last_change[ni] = ev.time;
        if let Some(s) = self.signals[ni] {
            self.trace.record(s, ev.time, ev.value);
        }
        self.stats.events += 1;
        // Dynamic energy: ½·C·V² for this transition, charged from the
        // driving gate's domain supply (inputs, constants and FF outputs
        // sit on the core domain).
        let v = self.domain_supply[self.topo.driver_domain(ev.net).index()].volts();
        self.switching_energy_j += 0.5 * self.topo.load(ev.net).farads() * v * v;

        if let Some(obs) = self.observer.as_deref_mut() {
            if let Some(g) = self.queue_gauge {
                obs.metrics.set_max(g, self.queue.len() as f64);
            }
            if obs.config().net_transitions {
                obs.event(
                    ObsEvent::new("sim", "net_transition")
                        .at(ev.time)
                        .field("net", &self.netlist.net(ev.net).name())
                        .field("value", &ev.value.to_string()),
                );
            }
        }

        // Re-evaluate combinational fanout (index loop: the CSR slice is
        // immutable during simulation, and indexing re-borrows per
        // iteration so `evaluate_gate` can take `&mut self`).
        for idx in 0..self.topo.fanout(ev.net).len() {
            let gi = self.topo.fanout(ev.net)[idx];
            self.evaluate_gate(gi, ev.time);
        }
        // Clock pins: a rising edge samples the FF.
        if self.prev_values[ni] == Logic::Zero && ev.value == Logic::One {
            for idx in 0..self.topo.clk_fanout(ev.net).len() {
                let fi = self.topo.clk_fanout(ev.net)[idx];
                self.capture_ff(fi, ev.time);
            }
        }
        true
    }

    fn evaluate_gate(&mut self, gi: GateId, at: Time) {
        let gate = &self.netlist.gates()[gi.index()];
        let pins = self.topo.gate_inputs(gi);
        let mut ins = [Logic::X; MAX_GATE_INPUTS];
        for (k, &i) in pins.iter().enumerate() {
            ins[k] = self.values[i.index()];
        }
        let arity = pins.len();
        let new_value = gate.cell().eval(&ins[..arity]);
        let out = gate.output();
        let oi = out.index();
        let effective = self.pending[oi].unwrap_or(self.values[oi]);
        if new_value == effective {
            return;
        }
        // Pick the edge-specific arc from the delay cache: rising when
        // the output heads to 1 (unknown transitions use the
        // conservative worst arc).
        let cached = self.delay_cache[gi.index()];
        let delay = match new_value {
            Logic::One => cached.rise,
            Logic::Zero => cached.fall,
            _ => cached.worst,
        };
        if let Some(p) = self.profile.as_mut() {
            p.gate_event(gi.index(), delay.picoseconds());
        }
        self.version[oi] += 1;
        self.pending[oi] = Some(new_value);
        self.push_event(at + delay, out, new_value);
    }

    fn capture_ff(&mut self, fi: DffId, edge: Time) {
        let ff = &self.netlist.dffs()[fi.index()];
        let d = ff.d().index();
        let arrival = self.last_change[d] - edge;
        let outcome = ff
            .model()
            .sample(arrival, self.values[d], self.prev_values[d]);
        self.stats.ff_captures += 1;
        let value = if outcome.metastable {
            self.stats.ff_violations += 1;
            // Violations are rare and diagnostic gold: log each one with
            // the offending arrival time relative to the clock edge.
            if let Some(obs) = self.observer.as_deref_mut() {
                obs.event(
                    ObsEvent::new("sim", "ff_violation")
                        .at(edge)
                        .field("ff", &self.netlist.dffs()[fi.index()].name())
                        .field("arrival_ps", &arrival.picoseconds())
                        .field("severity", &outcome.severity),
                );
            }
            match self.meta_mode {
                MetastabilityMode::Deterministic => outcome.value,
                MetastabilityMode::PropagateX => Logic::X,
            }
        } else {
            outcome.value
        };
        // Transient fault: one stream draw per capture (flip or not, so
        // the sequence stays aligned with the capture order), inverting
        // the sampled value when the draw lands under the probability.
        let mut value = value;
        if let Some(f) = self.faults.as_mut() {
            if let Some(p) = f.transient {
                if f.rng.next_f64() < p {
                    value = match value {
                        Logic::One => Logic::Zero,
                        Logic::Zero => Logic::One,
                        other => other,
                    };
                    if let Some(prof) = self.profile.as_mut() {
                        prof.transient_flip();
                    }
                }
            }
        }
        let q = ff.q();
        let qi = q.index();
        let effective = self.pending[qi].unwrap_or(self.values[qi]);
        if value == effective {
            return;
        }
        self.version[qi] += 1;
        self.pending[qi] = Some(value);
        self.push_event(edge + outcome.clk_to_out, q, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psnt_cells::dff::Dff;
    use psnt_cells::gates::StdCell;

    fn ps(t: f64) -> Time {
        Time::from_ps(t)
    }

    fn v(x: f64) -> Voltage {
        Voltage::from_v(x)
    }

    #[test]
    fn inverter_chain_propagates_with_delay() {
        let mut n = Netlist::new("chain");
        let a = n.add_input("a");
        let mut prev = a;
        for i in 0..4 {
            prev = n
                .add_gate(format!("inv{i}"), StdCell::inverter(1.0), &[prev])
                .unwrap();
        }
        n.mark_output("q", prev);
        let mut sim = Simulator::new(&n, v(1.0)).unwrap();
        sim.drive(a, Logic::Zero, Time::ZERO).unwrap();
        sim.run_until(ps(1.0));
        // Even number of inversions: q follows a after settling.
        sim.run_until(Time::from_ns(2.0));
        assert_eq!(sim.value(prev), Logic::Zero);
        sim.drive(a, Logic::One, Time::from_ns(2.0)).unwrap();
        sim.run_until(Time::from_ns(4.0));
        assert_eq!(sim.value(prev), Logic::One);
        // The output flipped strictly after the input did.
        let q_edge = sim
            .trace()
            .first_edge_to(sim.signal(prev), Logic::One, Time::from_ns(2.0))
            .unwrap();
        assert!(q_edge > Time::from_ns(2.0));
    }

    #[test]
    fn lower_supply_slows_propagation() {
        let delay_at = |supply: f64| {
            let mut n = Netlist::new("chain");
            let a = n.add_input("a");
            let mut prev = a;
            for i in 0..8 {
                prev = n
                    .add_gate(format!("inv{i}"), StdCell::inverter(1.0), &[prev])
                    .unwrap();
            }
            n.mark_output("q", prev);
            let mut sim = Simulator::new(&n, v(supply)).unwrap();
            sim.drive(a, Logic::Zero, Time::ZERO).unwrap();
            sim.run_to_quiescence(10_000);
            sim.drive(a, Logic::One, Time::from_ns(5.0)).unwrap();
            sim.run_until(Time::from_ns(50.0));
            let edge = sim
                .trace()
                .first_edge_to(sim.signal(prev), Logic::One, Time::from_ns(5.0))
                .unwrap();
            edge - Time::from_ns(5.0)
        };
        let fast = delay_at(1.1);
        let nominal = delay_at(1.0);
        let slow = delay_at(0.9);
        assert!(fast < nominal, "{fast} !< {nominal}");
        assert!(nominal < slow, "{nominal} !< {slow}");
    }

    #[test]
    fn initialization_settles_constants() {
        let mut n = Netlist::new("t");
        let one = n.add_const("one", Logic::One);
        let zero = n.add_const("zero", Logic::Zero);
        let q = n.add_gate("g", StdCell::nand2(1.0), &[one, zero]).unwrap();
        n.mark_output("q", q);
        let sim = Simulator::new(&n, v(1.0)).unwrap();
        assert_eq!(sim.value(q), Logic::One);
    }

    #[test]
    fn driving_non_input_rejected() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let q = n.add_gate("g", StdCell::inverter(1.0), &[a]).unwrap();
        n.mark_output("q", q);
        let mut sim = Simulator::new(&n, v(1.0)).unwrap();
        assert!(matches!(
            sim.drive(q, Logic::One, Time::ZERO),
            Err(NetlistError::NotAnInput(_))
        ));
    }

    #[test]
    fn dff_captures_on_rising_edge_only() {
        let mut n = Netlist::new("t");
        let d = n.add_input("d");
        let clk = n.add_input("clk");
        let q = n.add_dff("ff", Dff::standard_90nm(), d, clk, Logic::Zero);
        n.mark_output("q", q);
        let mut sim = Simulator::new(&n, v(1.0)).unwrap();
        sim.drive(d, Logic::One, ps(0.0)).unwrap();
        sim.drive(clk, Logic::Zero, ps(0.0)).unwrap();
        // Falling edge first — no capture.
        sim.run_until(ps(500.0));
        assert_eq!(sim.value(q), Logic::Zero);
        // Rising edge captures the 1 (data settled 500 ps earlier).
        sim.drive(clk, Logic::One, ps(600.0)).unwrap();
        sim.run_until(Time::from_ns(2.0));
        assert_eq!(sim.value(q), Logic::One);
        assert_eq!(sim.stats().ff_captures, 1);
        assert_eq!(sim.stats().ff_violations, 0);
    }

    #[test]
    fn dff_setup_violation_keeps_old_value() {
        let mut n = Netlist::new("t");
        let d = n.add_input("d");
        let clk = n.add_input("clk");
        let q = n.add_dff("ff", Dff::standard_90nm(), d, clk, Logic::Zero);
        n.mark_output("q", q);
        let mut sim = Simulator::new(&n, v(1.0)).unwrap();
        sim.drive(d, Logic::Zero, ps(0.0)).unwrap();
        sim.drive(clk, Logic::Zero, ps(0.0)).unwrap();
        sim.run_until(ps(400.0));
        // Data flips 5 ps before the edge — inside the 30 ps setup window,
        // close to the hold side of the balance point? No: -5 ps is in the
        // window and on the "new" side boundary... -5 ps with setup 30 and
        // hold 15 sits at x = 25/45 ≈ 0.56 → old value retained.
        sim.drive(d, Logic::One, ps(495.0)).unwrap();
        sim.drive(clk, Logic::One, ps(500.0)).unwrap();
        sim.run_until(Time::from_ns(2.0));
        assert_eq!(sim.value(q), Logic::Zero, "late data must not be captured");
        assert_eq!(sim.stats().ff_violations, 1);
    }

    #[test]
    fn metastability_propagate_x_mode() {
        let mut n = Netlist::new("t");
        let d = n.add_input("d");
        let clk = n.add_input("clk");
        let q = n.add_dff("ff", Dff::standard_90nm(), d, clk, Logic::Zero);
        n.mark_output("q", q);
        let mut sim = Simulator::new(&n, v(1.0)).unwrap();
        sim.set_metastability_mode(MetastabilityMode::PropagateX);
        sim.drive(d, Logic::Zero, ps(0.0)).unwrap();
        sim.drive(clk, Logic::Zero, ps(0.0)).unwrap();
        sim.run_until(ps(400.0));
        sim.drive(d, Logic::One, ps(495.0)).unwrap();
        sim.drive(clk, Logic::One, ps(500.0)).unwrap();
        sim.run_until(Time::from_ns(2.0));
        assert_eq!(sim.value(q), Logic::X);
    }

    #[test]
    fn clock_driver_produces_edges() {
        let mut n = Netlist::new("t");
        let clk = n.add_input("clk");
        let d = n.add_input("d");
        let q = n.add_dff("ff", Dff::standard_90nm(), d, clk, Logic::Zero);
        n.mark_output("q", q);
        let mut sim = Simulator::new(&n, v(1.0)).unwrap();
        sim.drive(d, Logic::One, ps(0.0)).unwrap();
        sim.drive_clock(clk, ps(1000.0), Time::from_ns(2.0), 5)
            .unwrap();
        sim.run_until(Time::from_ns(15.0));
        assert_eq!(sim.trace().rising_edges(sim.signal(clk)), 5);
        assert_eq!(sim.stats().ff_captures, 5);
        assert_eq!(sim.value(q), Logic::One);
    }

    #[test]
    fn inertial_filtering_swallows_glitch() {
        // A pulse much shorter than the gate delay must not appear at the
        // output.
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let q = n.add_gate("g", StdCell::buffer(1.0), &[a]).unwrap();
        n.mark_output("q", q);
        let mut sim = Simulator::new(&n, v(1.0)).unwrap();
        sim.drive(a, Logic::Zero, ps(0.0)).unwrap();
        sim.run_to_quiescence(1000);
        // 1 ps glitch, far below the ~30 ps buffer delay.
        sim.drive(a, Logic::One, ps(100.0)).unwrap();
        sim.drive(a, Logic::Zero, ps(101.0)).unwrap();
        sim.run_until(Time::from_ns(1.0));
        assert_eq!(sim.value(q), Logic::Zero);
        assert_eq!(
            sim.trace().rising_edges(sim.signal(q)),
            0,
            "glitch leaked through inertial filter"
        );
        assert!(sim.stats().cancelled > 0);
    }

    #[test]
    fn run_until_reports_event_count() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let q = n.add_gate("g", StdCell::inverter(1.0), &[a]).unwrap();
        n.mark_output("q", q);
        let mut sim = Simulator::new(&n, v(1.0)).unwrap();
        sim.drive(a, Logic::One, ps(0.0)).unwrap();
        let applied = sim.run_until(Time::from_ns(1.0));
        assert!(applied >= 1);
        assert_eq!(sim.now(), Time::from_ns(1.0));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Builds a random combinational DAG: each gate reads previously
        /// created nets only (acyclic by construction).
        fn random_dag(
            gate_picks: &[(u8, u8, u8, u8)],
            n_inputs: usize,
        ) -> (Netlist, Vec<NetId>, Vec<NetId>) {
            let mut n = Netlist::new("dag");
            let inputs: Vec<NetId> = (0..n_inputs)
                .map(|i| n.add_input(format!("in{i}")))
                .collect();
            let mut nets = inputs.clone();
            let mut outs = Vec::new();
            for (gi, &(kind, a, b, c)) in gate_picks.iter().enumerate() {
                let cell = match kind % 6 {
                    0 => StdCell::inverter(1.0),
                    1 => StdCell::nand2(1.0),
                    2 => StdCell::nor2(1.0),
                    3 => StdCell::xor2(1.0),
                    4 => StdCell::mux2(1.0),
                    _ => StdCell::and3(1.0),
                };
                let pick = |x: u8| nets[x as usize % nets.len()];
                let ins: Vec<NetId> = match cell.num_inputs() {
                    1 => vec![pick(a)],
                    2 => vec![pick(a), pick(b)],
                    _ => vec![pick(a), pick(b), pick(c)],
                };
                let out = n.add_gate(format!("g{gi}"), cell, &ins).unwrap();
                nets.push(out);
                outs.push(out);
            }
            (n, inputs, outs)
        }

        /// Zero-delay functional evaluation in topological order.
        fn functional_eval(n: &Netlist, input_values: &[(NetId, Logic)]) -> Vec<Logic> {
            let mut values = vec![Logic::X; n.net_count()];
            for &(net, v) in input_values {
                values[net.index()] = v;
            }
            for gid in n.topo_gates().unwrap() {
                let gate = &n.gates()[gid.index()];
                let ins: Vec<Logic> = gate.inputs().iter().map(|i| values[i.index()]).collect();
                values[gate.output().index()] = gate.cell().eval(&ins);
            }
            values
        }

        proptest! {
            /// After the event queue drains, the simulator's state equals
            /// the functional evaluation of the applied input vector —
            /// regardless of event ordering, inertial cancellations or
            /// glitches along the way.
            #[test]
            fn quiescent_state_matches_functional_eval(
                gate_picks in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..25),
                input_bits in proptest::collection::vec(any::<bool>(), 4),
                flip_bits in proptest::collection::vec(any::<bool>(), 4),
            ) {
                let (n, inputs, _) = random_dag(&gate_picks, input_bits.len());
                let mut sim = Simulator::new(&n, Voltage::from_v(1.0)).unwrap();
                // Apply an initial vector, then flip a subset later: the
                // final state must match the final vector functionally.
                let mut final_vec = Vec::new();
                for (i, (&net, &b)) in inputs.iter().zip(&input_bits).enumerate() {
                    sim.drive(net, Logic::from(b), Time::from_ps(i as f64)).unwrap();
                }
                for (i, (&net, (&b, &f))) in inputs
                    .iter()
                    .zip(input_bits.iter().zip(&flip_bits))
                    .enumerate()
                {
                    let v = b ^ f;
                    sim.drive(net, Logic::from(v), Time::from_ns(5.0) + Time::from_ps(i as f64)).unwrap();
                    final_vec.push((net, Logic::from(v)));
                }
                sim.run_to_quiescence(1_000_000);
                let expect = functional_eval(&n, &final_vec);
                for (i, &e) in expect.iter().enumerate() {
                    prop_assert_eq!(
                        sim.value(NetId(i)),
                        e,
                        "net {} diverged", n.net(NetId(i)).name()
                    );
                }
            }
        }
    }

    #[test]
    fn trace_mode_watched_records_only_watched_nets() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let x = n.add_gate("g1", StdCell::inverter(1.0), &[a]).unwrap();
        let q = n.add_gate("g2", StdCell::inverter(1.0), &[x]).unwrap();
        n.mark_output("q", q);
        let mut sim =
            Simulator::with_options(&n, v(1.0), Pvt::typical(), TraceMode::Watched(vec![a, q]))
                .unwrap();
        sim.drive(a, Logic::Zero, Time::ZERO).unwrap();
        sim.drive(a, Logic::One, ps(10.0)).unwrap();
        sim.run_until(Time::from_ns(1.0));
        assert_eq!(sim.trace().signal_count(), 2);
        assert_eq!(sim.trace().rising_edges(sim.signal(a)), 1);
        assert!(sim
            .trace()
            .first_edge_to(sim.signal(q), Logic::One, Time::ZERO)
            .is_some());
        // Values still simulate for untraced nets.
        assert_eq!(sim.value(x), Logic::Zero);
    }

    #[test]
    #[should_panic(expected = "not traced")]
    fn trace_mode_off_signal_panics() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let q = n.add_gate("g", StdCell::inverter(1.0), &[a]).unwrap();
        n.mark_output("q", q);
        let sim = Simulator::with_options(&n, v(1.0), Pvt::typical(), TraceMode::Off).unwrap();
        let _ = sim.signal(q);
    }

    #[test]
    fn trace_mode_off_still_simulates() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let q = n.add_gate("g", StdCell::inverter(1.0), &[a]).unwrap();
        n.mark_output("q", q);
        let mut sim = Simulator::with_options(&n, v(1.0), Pvt::typical(), TraceMode::Off).unwrap();
        sim.drive(a, Logic::One, Time::ZERO).unwrap();
        sim.run_until(Time::from_ns(1.0));
        assert_eq!(sim.value(q), Logic::Zero);
        assert_eq!(sim.trace().signal_count(), 0);
        assert!(sim.stats().events >= 1);
    }

    #[test]
    fn reset_rewinds_state_and_reuses_buffers() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let q = n.add_gate("g", StdCell::inverter(1.0), &[a]).unwrap();
        n.mark_output("q", q);
        let mut sim = Simulator::new(&n, v(1.0)).unwrap();
        sim.drive(a, Logic::One, ps(10.0)).unwrap();
        sim.run_until(Time::from_ns(1.0));
        let first_stats = *sim.stats();
        let first_edges = sim.trace().edges(sim.signal(q)).to_vec();
        let first_energy = sim.switching_energy_joules();
        assert!(first_stats.events > 0);

        sim.reset();
        assert_eq!(sim.now(), Time::ZERO);
        assert_eq!(sim.stats().events, 0);
        assert_eq!(sim.switching_energy_joules(), 0.0);
        assert_eq!(sim.value(q), Logic::X, "inputs revert to X after reset");

        // The same stimulus replays to bit-identical results.
        sim.drive(a, Logic::One, ps(10.0)).unwrap();
        sim.run_until(Time::from_ns(1.0));
        assert_eq!(*sim.stats(), first_stats);
        assert_eq!(sim.trace().edges(sim.signal(q)), &first_edges[..]);
        assert_eq!(sim.switching_energy_joules(), first_energy);
    }

    #[test]
    fn delay_cache_tracks_supply_changes() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let q = n.add_gate("g", StdCell::inverter(1.0), &[a]).unwrap();
        n.mark_output("q", q);
        let mut sim = Simulator::new(&n, v(1.0)).unwrap();
        let g = GateId::from_index(0);
        let gate = &n.gates()[0];
        let load = n.load(q);
        let check = |sim: &Simulator, supply: Voltage| {
            let (rise, fall, worst) = sim.cached_gate_delays(g);
            let pvt = Pvt::typical();
            assert_eq!(
                rise,
                gate.cell().propagation_delay_edge(supply, load, &pvt, true)
            );
            assert_eq!(
                fall,
                gate.cell()
                    .propagation_delay_edge(supply, load, &pvt, false)
            );
            assert_eq!(worst, gate.cell().propagation_delay(supply, load, &pvt));
        };
        check(&sim, v(1.0));
        sim.set_supply(v(0.9));
        check(&sim, v(0.9));
        sim.set_domain_supply(DomainId::CORE, v(1.1));
        check(&sim, v(1.1));
    }

    #[test]
    fn energy_attributed_to_driver_domain() {
        // Two identical inverters, one moved to a droopy domain: its
        // output transition must charge from the droopy rail.
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let x = n
            .add_gate("core_inv", StdCell::inverter(1.0), &[a])
            .unwrap();
        n.mark_output("x", x);
        let noisy = n.add_domain("noisy");
        let b = n.add_input("b");
        let y = n
            .add_gate("noisy_inv", StdCell::inverter(1.0), &[b])
            .unwrap();
        n.set_gate_domain(GateId::from_index(1), noisy);
        n.mark_output("y", y);
        // Give the otherwise unloaded gate outputs some switched charge.
        n.add_wire_capacitance(x, psnt_cells::units::Capacitance::from_ff(10.0));
        n.add_wire_capacitance(y, psnt_cells::units::Capacitance::from_ff(10.0));

        let energy_of = |net: NetId, droop: bool| {
            let mut sim = Simulator::new(&n, v(1.0)).unwrap();
            if droop {
                sim.set_domain_supply(noisy, v(0.5));
            }
            let input = if net == x { a } else { b };
            sim.drive(input, Logic::One, Time::ZERO).unwrap();
            sim.run_until(Time::from_ns(5.0));
            sim.switching_energy_joules()
        };
        let core_nominal = energy_of(x, false);
        let noisy_nominal = energy_of(y, false);
        let core_droop = energy_of(x, true);
        let noisy_droop = energy_of(y, true);
        // Identical cells and loads: equal energy at equal supplies.
        assert!((core_nominal - noisy_nominal).abs() < 1e-21);
        // The core path ignores the noisy rail's droop entirely…
        assert_eq!(core_nominal, core_droop);
        // …while the noisy inverter's output charges at 0.5 V: its energy
        // share scales by (0.5/1.0)² relative to the nominal run. Both
        // runs share the input net's core-domain energy, so compare the
        // gate-output contribution only.
        let input_e = 0.5 * n.load(b).farads(); // ½·C·(1.0 V)² on the core-driven input net
        let out_nominal = noisy_nominal - input_e;
        let out_droop = noisy_droop - input_e;
        assert!(
            (out_droop / out_nominal - 0.25).abs() < 1e-9,
            "droop ratio {} (nominal {out_nominal}, droop {out_droop})",
            out_droop / out_nominal
        );
    }

    #[test]
    fn trace_records_all_nets() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let q = n.add_gate("g", StdCell::inverter(1.0), &[a]).unwrap();
        n.mark_output("q", q);
        let mut sim = Simulator::new(&n, v(1.0)).unwrap();
        sim.drive(a, Logic::One, ps(10.0)).unwrap();
        sim.run_until(Time::from_ns(1.0));
        let vcd = sim.trace().to_vcd("t");
        assert!(vcd.contains("g.out"));
        assert!(vcd.contains("a"));
    }

    fn inverter_chain(len: usize) -> (Netlist, NetId) {
        let mut n = Netlist::new("chain");
        let a = n.add_input("a");
        let mut prev = a;
        for i in 0..len {
            prev = n
                .add_gate(format!("inv{i}"), StdCell::inverter(1.0), &[prev])
                .unwrap();
        }
        n.mark_output("q", prev);
        (n, a)
    }

    #[test]
    fn try_drive_reports_past_time_instead_of_panicking() {
        let (n, a) = inverter_chain(1);
        let mut sim = Simulator::new(&n, v(1.0)).unwrap();
        sim.drive(a, Logic::One, ps(100.0)).unwrap();
        sim.run_until(Time::from_ns(1.0));
        let err = sim.try_drive(a, Logic::Zero, ps(10.0)).unwrap_err();
        assert!(matches!(err, NetlistError::DriveInPast { .. }), "{err}");
        // Forward drives still work after the rejected one.
        sim.try_drive(a, Logic::Zero, Time::from_ns(2.0)).unwrap();
    }

    #[test]
    fn stuck_at_pins_net_from_initialization_onward() {
        let (n, a) = inverter_chain(2);
        let mid = n.net_by_name("inv0.out").unwrap();
        let out = n.net_by_name("inv1.out").unwrap();
        let mut sim = Simulator::new(&n, v(1.0)).unwrap();
        sim.set_fault_plan(&FaultPlan::new().with(Fault::stuck_at("inv0.out", Logic::Zero)))
            .unwrap();
        sim.reset();
        // The stuck node is pinned in the settled initial state and the
        // second inverter sees it.
        assert_eq!(sim.value(mid), Logic::Zero);
        assert_eq!(sim.value(out), Logic::One);
        // Toggling the input cannot move the stuck node or anything past
        // it.
        sim.drive(a, Logic::Zero, ps(0.0)).unwrap();
        sim.drive(a, Logic::One, Time::from_ns(1.0)).unwrap();
        sim.run_to_quiescence(10_000);
        assert_eq!(sim.value(mid), Logic::Zero);
        assert_eq!(sim.value(out), Logic::One);
    }

    #[test]
    fn empty_plan_is_identical_to_no_plan() {
        let (n, a) = inverter_chain(4);
        let run = |sim: &mut Simulator<'_>| {
            sim.reset();
            sim.drive(a, Logic::Zero, ps(0.0)).unwrap();
            sim.drive(a, Logic::One, Time::from_ns(1.0)).unwrap();
            sim.run_until(Time::from_ns(3.0));
            (
                (0..sim.netlist.net_count())
                    .map(|i| sim.value(NetId(i)))
                    .collect::<Vec<_>>(),
                *sim.stats(),
                sim.switching_energy_joules(),
            )
        };
        let mut healthy = Simulator::new(&n, v(1.0)).unwrap();
        let baseline = run(&mut healthy);
        let mut planned = Simulator::new(&n, v(1.0)).unwrap();
        planned.set_fault_plan(&FaultPlan::new()).unwrap();
        assert!(!planned.has_fault_plan(), "empty plan must not allocate");
        assert_eq!(run(&mut planned), baseline);
    }

    #[test]
    fn delay_scale_slows_only_the_faulted_gate() {
        let (n, _) = inverter_chain(2);
        let mut sim = Simulator::new(&n, v(1.0)).unwrap();
        let (r0, f0, w0) = sim.cached_gate_delays(GateId::from_index(0));
        let (r1, f1, w1) = sim.cached_gate_delays(GateId::from_index(1));
        sim.set_fault_plan(&FaultPlan::new().with(Fault::delay_scale("inv0", 2.0)))
            .unwrap();
        let (r0s, f0s, w0s) = sim.cached_gate_delays(GateId::from_index(0));
        assert!((r0s.picoseconds() - 2.0 * r0.picoseconds()).abs() < 1e-9);
        assert!((f0s.picoseconds() - 2.0 * f0.picoseconds()).abs() < 1e-9);
        assert!((w0s.picoseconds() - 2.0 * w0.picoseconds()).abs() < 1e-9);
        assert_eq!(sim.cached_gate_delays(GateId::from_index(1)), (r1, f1, w1));
        // Clearing the plan restores the healthy cache.
        sim.clear_fault_plan();
        assert_eq!(sim.cached_gate_delays(GateId::from_index(0)), (r0, f0, w0));
    }

    #[test]
    fn bit_upset_flips_ff_output_once() {
        let mut n = Netlist::new("t");
        let d = n.add_input("d");
        let clk = n.add_input("clk");
        let q = n.add_dff("ff", Dff::standard_90nm(), d, clk, Logic::Zero);
        n.mark_output("q", q);
        let mut sim = Simulator::new(&n, v(1.0)).unwrap();
        sim.set_fault_plan(&FaultPlan::new().with(Fault::bit_upset("ff", Time::from_ns(5.0))))
            .unwrap();
        sim.reset();
        sim.drive(d, Logic::One, ps(0.0)).unwrap();
        sim.drive(clk, Logic::Zero, ps(0.0)).unwrap();
        sim.drive(clk, Logic::One, Time::from_ns(2.0)).unwrap();
        sim.run_until(Time::from_ns(4.0));
        assert_eq!(sim.value(q), Logic::One, "healthy capture first");
        sim.run_until(Time::from_ns(8.0));
        assert_eq!(sim.value(q), Logic::Zero, "SEU inverted the bit");
        // Re-arming via reset replays the same upset deterministically.
        sim.reset();
        sim.drive(d, Logic::One, ps(0.0)).unwrap();
        sim.drive(clk, Logic::Zero, ps(0.0)).unwrap();
        sim.drive(clk, Logic::One, Time::from_ns(2.0)).unwrap();
        sim.run_until(Time::from_ns(8.0));
        assert_eq!(sim.value(q), Logic::Zero);
    }

    #[test]
    fn supply_glitch_slows_gates_inside_window_only() {
        let (n, a) = inverter_chain(1);
        let mut sim = Simulator::new(&n, v(1.0)).unwrap();
        let healthy = sim.cached_gate_delays(GateId::from_index(0)).0;
        sim.set_fault_plan(&FaultPlan::new().with(Fault::supply_glitch(
            "core",
            (Time::from_ns(1.0), Time::from_ns(3.0)),
            Voltage::from_v(-0.2),
        )))
        .unwrap();
        sim.reset();
        sim.drive(a, Logic::One, ps(0.0)).unwrap();
        sim.run_until(Time::from_ns(2.0));
        // Inside the window the rail droops to 0.8 V and the cached
        // delay is re-derived from the lower supply (the plain StdCell
        // model is only mildly supply-sensitive, so assert direction and
        // rail, not magnitude).
        assert!((sim.supply().volts() - 0.8).abs() < 1e-12);
        let inside = sim.cached_gate_delays(GateId::from_index(0)).0;
        assert!(
            inside.picoseconds() > healthy.picoseconds(),
            "glitch did not slow the gate: {inside:?} vs {healthy:?}"
        );
        sim.run_until(Time::from_ns(4.0));
        let after = sim.cached_gate_delays(GateId::from_index(0)).0;
        assert!((after.picoseconds() - healthy.picoseconds()).abs() < 1e-9);
        assert!((sim.supply().volts() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transient_flips_are_seed_deterministic() {
        let mut n = Netlist::new("t");
        let d = n.add_input("d");
        let clk = n.add_input("clk");
        let q = n.add_dff("ff", Dff::standard_90nm(), d, clk, Logic::Zero);
        n.mark_output("q", q);
        let captured = |seed: u64| {
            let mut sim = Simulator::new(&n, v(1.0)).unwrap();
            sim.set_fault_plan(&FaultPlan::new().with(Fault::Transient {
                probability: 0.5,
                seed,
            }))
            .unwrap();
            sim.reset();
            sim.drive(d, Logic::One, ps(0.0)).unwrap();
            sim.drive_clock(clk, Time::from_ns(2.0), Time::from_ns(2.0), 16)
                .unwrap();
            let mut seen = Vec::new();
            for k in 0..16 {
                sim.run_until(Time::from_ns(2.0) * k as f64 + Time::from_ns(1.9));
                seen.push(sim.value(q));
            }
            seen
        };
        let a = captured(7);
        assert_eq!(a, captured(7), "same seed must replay the same flips");
        assert!(
            a.contains(&Logic::Zero),
            "p=0.5 over 16 captures of a constant 1 should flip at least once"
        );
    }

    #[test]
    fn budget_guard_trips_on_oscillating_fault() {
        // Three stuck-free inverters in a combinational loop are illegal,
        // so build the oscillator from a ring through a flip-flop-free
        // pair: input buffer + inverter feeding the input again is not
        // constructible either — instead drive a long toggle burst
        // through a chain and give it a budget far below the event count.
        let (n, a) = inverter_chain(8);
        let mut sim = Simulator::new(&n, v(1.0)).unwrap();
        sim.set_event_budget(Some(20));
        for k in 0..32 {
            sim.drive(
                a,
                if k % 2 == 0 { Logic::One } else { Logic::Zero },
                ps(500.0) * k as f64,
            )
            .unwrap();
        }
        let err = sim.try_run_until(Time::from_ns(40.0)).unwrap_err();
        assert!(
            matches!(err, NetlistError::BudgetExceeded { budget: 20, .. }),
            "{err}"
        );
        // The unguarded path still works after the trip.
        sim.set_event_budget(None);
        assert!(sim.try_run_until(Time::from_ns(40.0)).is_ok());
        // And a generous budget never fires.
        let mut ok = Simulator::new(&n, v(1.0)).unwrap();
        ok.set_event_budget(Some(1_000_000));
        ok.drive(a, Logic::One, ps(0.0)).unwrap();
        assert!(ok.try_run_to_quiescence(10_000).is_ok());
    }

    #[test]
    fn cancelled_supervisor_interrupts_try_run() {
        use psnt_sup::{CancelToken, RunBudget, Supervisor};
        let (n, a) = inverter_chain(8);
        let mut sim = Simulator::new(&n, v(1.0)).unwrap();
        // Enough stimulus to cross the supervision stride.
        for k in 0..600 {
            sim.drive(
                a,
                if k % 2 == 0 { Logic::One } else { Logic::Zero },
                ps(500.0) * k as f64,
            )
            .unwrap();
        }
        let token = CancelToken::new();
        token.cancel();
        sim.set_supervisor(Some(Supervisor::new(token, RunBudget::unlimited())));
        let err = sim.try_run_until(Time::from_ns(400.0)).unwrap_err();
        assert!(matches!(err, NetlistError::Interrupted(_)), "{err}");
        let interrupted_at = sim.now();
        assert!(
            interrupted_at < Time::from_ns(400.0),
            "trip must stop the run early"
        );
        // The simulator stays usable: clear the supervisor and finish.
        sim.set_supervisor(None);
        assert!(sim.try_run_until(Time::from_ns(400.0)).is_ok());
        assert_eq!(sim.now(), Time::from_ns(400.0));
    }

    #[test]
    fn detached_supervisor_is_event_identical() {
        use psnt_sup::Supervisor;
        let (n, a) = inverter_chain(8);
        let run = |supervised: bool| {
            let mut sim = Simulator::new(&n, v(1.0)).unwrap();
            if supervised {
                sim.set_supervisor(Some(Supervisor::detached()));
            }
            for k in 0..64 {
                sim.drive(
                    a,
                    if k % 2 == 0 { Logic::One } else { Logic::Zero },
                    ps(500.0) * k as f64,
                )
                .unwrap();
            }
            let applied = sim.try_run_until(Time::from_ns(40.0)).unwrap();
            (applied, sim.stats().events)
        };
        assert_eq!(run(false), run(true), "detached supervision is free");
    }
}
