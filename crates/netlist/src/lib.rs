//! # psnt-netlist — gate-level netlists, simulation and timing
//!
//! The digital-design substrate of the `psn-thermometer` workspace
//! (reproduction of Graziano & Vittori, IEEE SOCC 2009). Where the paper
//! used synthesised standard-cell netlists, post-layout ELDO transient
//! runs and a synthesis tool's timing report, this crate provides:
//!
//! * [`graph`] — netlist construction and structural validation;
//! * [`sim`] — an event-driven four-valued simulator whose gate delays
//!   are voltage-aware (supply droop slows paths) and whose flip-flops
//!   exhibit real setup violations and metastability;
//! * [`sta`] — static timing analysis (arrival propagation, critical
//!   path, slack), used to reproduce the paper's "critical path 1.22 ns"
//!   claim for the CNTR block;
//! * [`wave`] — transition traces and VCD export.
//!
//! # Example
//!
//! ```
//! use psnt_cells::gates::StdCell;
//! use psnt_cells::logic::Logic;
//! use psnt_cells::units::{Time, Voltage};
//! use psnt_netlist::graph::Netlist;
//! use psnt_netlist::sim::Simulator;
//! use psnt_netlist::sta::{analyze, StaConfig};
//!
//! let mut n = Netlist::new("majority");
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! let c = n.add_input("c");
//! let ab = n.add_gate("g_ab", StdCell::and2(1.0), &[a, b])?;
//! let bc = n.add_gate("g_bc", StdCell::and2(1.0), &[b, c])?;
//! let ac = n.add_gate("g_ac", StdCell::and2(1.0), &[a, c])?;
//! let t = n.add_gate("g_or1", StdCell::or2(1.0), &[ab, bc])?;
//! let q = n.add_gate("g_or2", StdCell::or2(1.0), &[t, ac])?;
//! n.mark_output("q", q);
//!
//! // Simulate.
//! let mut sim = Simulator::new(&n, Voltage::from_v(1.0))?;
//! for (net, v) in [(a, Logic::One), (b, Logic::One), (c, Logic::Zero)] {
//!     sim.drive(net, v, Time::ZERO)?;
//! }
//! sim.run_until(Time::from_ns(2.0));
//! assert_eq!(sim.value(q), Logic::One);
//!
//! // And time it.
//! let report = analyze(&n, &StaConfig::default())?;
//! assert!(report.critical_delay() > Time::ZERO);
//! # Ok::<(), psnt_netlist::error::NetlistError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod error;
pub mod graph;
pub mod profile;
pub mod sim;
pub mod sta;
pub mod wave;

pub use batch::{BatchSimulator, BatchStats, LANES};
pub use error::NetlistError;
pub use graph::{DffId, DffInst, DomainId, Driver, Gate, GateId, Net, NetId, Netlist};
pub use profile::SimProfile;
pub use sim::{MetastabilityMode, SimStats, Simulator};
pub use sta::{
    analyze, analyze_with_domain_supplies, Endpoint, PathStage, StaConfig, StaReport, TimingPath,
};
pub use wave::{Edge, SignalId, Trace};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::Netlist>();
        assert_send_sync::<crate::Trace>();
        assert_send_sync::<crate::StaReport>();
    }
}
