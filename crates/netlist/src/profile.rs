//! Hot-path profiling counters for the event-driven kernel.
//!
//! A [`SimProfile`] shards the expensive-to-aggregate questions — where
//! did the events go, how deep did the queue get, how far ahead were
//! events scheduled, did the delay cache earn its keep, how often did
//! fault hooks fire — into plain counters and fixed-bucket histograms
//! owned by one simulator. The simulator stores it as
//! `Option<Box<SimProfile>>`, so the detached path compiles to the same
//! never-taken `None` branch as the fault hooks and costs nothing when
//! profiling is off.
//!
//! Every quantity here derives from *simulation* state (event counts,
//! queue length, scheduled delays), never from wall clocks, so profiles
//! are bit-identical across worker counts and merge at the engine join
//! under the same contract as every other metric: workers fold their
//! profile into their private `MetricsRegistry`
//! ([`SimProfile::fold_into`]) and the engine sums registries in worker
//! order.

use psnt_obs::metrics::MetricsRegistry;
use psnt_obs::Histogram;

use crate::graph::Netlist;

/// Power-of-two queue-depth buckets: the queue rarely passes a few
/// hundred entries even on the scan fabric.
const QUEUE_DEPTH_BOUNDS: [f64; 11] = [
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
];

/// Log-spaced event-latency buckets in picoseconds (the gap between
/// scheduling an event and its due time — i.e. the gate delay used).
const EVENT_LATENCY_BOUNDS: [f64; 11] =
    [1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1e3, 3e3, 1e4, 3e4, 1e5];

/// Sharded per-simulator profiling state; see the module docs.
#[derive(Debug, Clone)]
pub struct SimProfile {
    /// Unique gate-kind names present in the netlist, e.g. `"nand2"`.
    kinds: Vec<String>,
    /// Gate index → slot in `kinds`/`events_by_kind`.
    kind_of_gate: Vec<u16>,
    /// Scheduled output events per gate kind.
    events_by_kind: Vec<u64>,
    queue_depth: Histogram,
    event_latency_ps: Histogram,
    delay_cache_hits: u64,
    delay_cache_rebuilds: u64,
    delay_cache_refreshes: u64,
    fault_injections: u64,
    fault_stuck_rewrites: u64,
    fault_transient_flips: u64,
}

impl SimProfile {
    /// A profile sized for `netlist`, with the gate→kind table built
    /// once so the hot path indexes instead of matching.
    pub fn for_netlist(netlist: &Netlist) -> SimProfile {
        let mut kinds: Vec<String> = Vec::new();
        let mut kind_of_gate = Vec::with_capacity(netlist.gates().len());
        for gate in netlist.gates() {
            let name = gate.cell().function().to_string().to_lowercase();
            let slot = match kinds.iter().position(|k| *k == name) {
                Some(i) => i,
                None => {
                    kinds.push(name);
                    kinds.len() - 1
                }
            };
            kind_of_gate.push(slot as u16);
        }
        let events_by_kind = vec![0; kinds.len()];
        SimProfile {
            kinds,
            kind_of_gate,
            events_by_kind,
            queue_depth: Histogram::with_bounds(&QUEUE_DEPTH_BOUNDS),
            event_latency_ps: Histogram::with_bounds(&EVENT_LATENCY_BOUNDS),
            delay_cache_hits: 0,
            delay_cache_rebuilds: 0,
            delay_cache_refreshes: 0,
            fault_injections: 0,
            fault_stuck_rewrites: 0,
            fault_transient_flips: 0,
        }
    }

    /// One output event scheduled by gate `gi` (index into the
    /// netlist's gate list) with propagation delay `latency_ps`; the
    /// edge-specific delay was served from the delay cache.
    #[inline]
    pub(crate) fn gate_event(&mut self, gi: usize, latency_ps: f64) {
        self.events_by_kind[self.kind_of_gate[gi] as usize] += 1;
        self.delay_cache_hits += 1;
        self.event_latency_ps.record(latency_ps);
    }

    /// Queue length right after a push.
    #[inline]
    pub(crate) fn queue_sample(&mut self, depth: usize) {
        self.queue_depth.record(depth as f64);
    }

    #[inline]
    pub(crate) fn cache_rebuild(&mut self) {
        self.delay_cache_rebuilds += 1;
    }

    #[inline]
    pub(crate) fn cache_refresh(&mut self) {
        self.delay_cache_refreshes += 1;
    }

    #[inline]
    pub(crate) fn fault_injection(&mut self) {
        self.fault_injections += 1;
    }

    #[inline]
    pub(crate) fn stuck_rewrite(&mut self) {
        self.fault_stuck_rewrites += 1;
    }

    #[inline]
    pub(crate) fn transient_flip(&mut self) {
        self.fault_transient_flips += 1;
    }

    /// Scheduled events per kind, as `(kind, count)` in kind order.
    pub fn events_by_kind(&self) -> impl Iterator<Item = (&str, u64)> {
        self.kinds
            .iter()
            .map(String::as_str)
            .zip(self.events_by_kind.iter().copied())
    }

    /// The queue-depth histogram (one sample per event pushed).
    pub fn queue_depth(&self) -> &Histogram {
        &self.queue_depth
    }

    /// The event-latency histogram (picoseconds of scheduling lead).
    pub fn event_latency_ps(&self) -> &Histogram {
        &self.event_latency_ps
    }

    /// Drains this profile into a metrics registry: counters add, the
    /// histograms bucket-merge, and the profile resets to zero so a
    /// later fold never double-counts. Counter names are stable
    /// (`sim.events_by_kind.<kind>`, `sim.queue_depth`,
    /// `sim.event_latency_ps`, `sim.delay_cache_*`, `sim.fault_*`).
    pub fn fold_into(&mut self, metrics: &mut MetricsRegistry) {
        for (kind, n) in self
            .kinds
            .iter()
            .zip(std::mem::take(&mut self.events_by_kind))
        {
            if n > 0 {
                metrics.counter_add(&format!("sim.events_by_kind.{kind}"), n);
            }
        }
        self.events_by_kind = vec![0; self.kinds.len()];
        if self.queue_depth.count() > 0 {
            let id = metrics.histogram("sim.queue_depth", &QUEUE_DEPTH_BOUNDS);
            metrics.histogram_merge(id, &self.queue_depth);
            self.queue_depth = Histogram::with_bounds(&QUEUE_DEPTH_BOUNDS);
        }
        if self.event_latency_ps.count() > 0 {
            let id = metrics.histogram("sim.event_latency_ps", &EVENT_LATENCY_BOUNDS);
            metrics.histogram_merge(id, &self.event_latency_ps);
            self.event_latency_ps = Histogram::with_bounds(&EVENT_LATENCY_BOUNDS);
        }
        for (name, v) in [
            ("sim.delay_cache_hits", &mut self.delay_cache_hits),
            ("sim.delay_cache_rebuilds", &mut self.delay_cache_rebuilds),
            ("sim.delay_cache_refreshes", &mut self.delay_cache_refreshes),
            ("sim.fault_injections", &mut self.fault_injections),
            ("sim.fault_stuck_rewrites", &mut self.fault_stuck_rewrites),
            ("sim.fault_transient_flips", &mut self.fault_transient_flips),
        ] {
            if *v > 0 {
                metrics.counter_add(name, *v);
                *v = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psnt_cells::gates::StdCell;

    fn netlist() -> Netlist {
        let mut n = Netlist::new("p");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.add_gate("n1", StdCell::nand2(1.0), &[a, b]).unwrap();
        let y = n.add_gate("i1", StdCell::inverter(1.0), &[x]).unwrap();
        let z = n.add_gate("i2", StdCell::inverter(1.0), &[y]).unwrap();
        n.mark_output("q", z);
        n
    }

    #[test]
    fn kind_table_dedups_and_counts() {
        let n = netlist();
        let mut p = SimProfile::for_netlist(&n);
        assert_eq!(p.kinds, ["nand2", "inv"]);
        p.gate_event(0, 12.0); // the NAND2
        p.gate_event(1, 9.0); // first inverter
        p.gate_event(2, 9.0); // second inverter
        let by_kind: Vec<(String, u64)> = p
            .events_by_kind()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        assert_eq!(by_kind, [("nand2".to_string(), 1), ("inv".to_string(), 2)]);
        assert_eq!(p.event_latency_ps().count(), 3);
    }

    #[test]
    fn fold_drains_and_never_double_counts() {
        let n = netlist();
        let mut p = SimProfile::for_netlist(&n);
        p.gate_event(0, 5.0);
        p.queue_sample(3);
        p.cache_rebuild();
        p.fault_injection();

        let mut m = MetricsRegistry::new();
        p.fold_into(&mut m);
        assert_eq!(m.counter_value("sim.events_by_kind.nand2"), 1);
        assert_eq!(m.counter_value("sim.delay_cache_hits"), 1);
        assert_eq!(m.counter_value("sim.delay_cache_rebuilds"), 1);
        assert_eq!(m.counter_value("sim.fault_injections"), 1);
        assert_eq!(m.histogram_value("sim.queue_depth").unwrap().count(), 1);

        // Second fold adds nothing: the profile was drained.
        p.fold_into(&mut m);
        assert_eq!(m.counter_value("sim.events_by_kind.nand2"), 1);
        assert_eq!(m.histogram_value("sim.queue_depth").unwrap().count(), 1);

        // And the profile keeps working after a drain.
        p.gate_event(0, 5.0);
        p.fold_into(&mut m);
        assert_eq!(m.counter_value("sim.events_by_kind.nand2"), 2);
    }

    #[test]
    fn sharded_profiles_merge_like_one() {
        // The bit-identity contract at the engine join: folding two
        // worker profiles into two registries and merging equals one
        // profile that saw all the work.
        let n = netlist();
        let mut whole = SimProfile::for_netlist(&n);
        let mut part_a = SimProfile::for_netlist(&n);
        let mut part_b = SimProfile::for_netlist(&n);
        for (gi, lat) in [(0usize, 5.0), (1, 9.0), (2, 12.0), (0, 200.0)] {
            whole.gate_event(gi, lat);
        }
        part_a.gate_event(0, 5.0);
        part_a.gate_event(1, 9.0);
        part_b.gate_event(2, 12.0);
        part_b.gate_event(0, 200.0);
        for p in [&mut whole, &mut part_a, &mut part_b] {
            p.queue_sample(2);
        }
        whole.queue_sample(700);
        part_b.queue_sample(700);
        whole.queue_sample(2);

        let mut serial = MetricsRegistry::new();
        whole.fold_into(&mut serial);
        let mut a = MetricsRegistry::new();
        part_a.fold_into(&mut a);
        let mut b = MetricsRegistry::new();
        part_b.fold_into(&mut b);
        a.merge(&b);

        assert_eq!(
            serial.counter_value("sim.events_by_kind.nand2"),
            a.counter_value("sim.events_by_kind.nand2")
        );
        assert_eq!(
            serial.counter_value("sim.events_by_kind.inv"),
            a.counter_value("sim.events_by_kind.inv")
        );
        assert_eq!(
            serial.histogram_value("sim.queue_depth").unwrap().counts(),
            a.histogram_value("sim.queue_depth").unwrap().counts()
        );
        assert_eq!(
            serial
                .histogram_value("sim.event_latency_ps")
                .unwrap()
                .counts(),
            a.histogram_value("sim.event_latency_ps").unwrap().counts()
        );
    }
}
