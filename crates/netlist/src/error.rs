//! Error types for netlist construction, simulation and timing analysis.

use std::error::Error;
use std::fmt;

/// Errors produced by the `psnt-netlist` crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A net is driven by more than one gate/flip-flop/constant/input.
    MultipleDrivers {
        /// The conflicting net's name.
        net: String,
    },
    /// A net has no driver and is not a primary input.
    Undriven {
        /// The floating net's name.
        net: String,
    },
    /// The combinational logic contains a cycle (not broken by a
    /// flip-flop), which makes STA and zero-delay evaluation ill-defined.
    CombinationalCycle {
        /// A net participating in the cycle.
        net: String,
    },
    /// A named net was not found.
    UnknownNet(String),
    /// A gate was connected with the wrong number of inputs.
    ArityMismatch {
        /// The gate instance name.
        gate: String,
        /// Pins the cell expects.
        expected: usize,
        /// Pins supplied.
        got: usize,
    },
    /// The simulator was asked to drive a net that is not a primary input.
    NotAnInput(String),
    /// A trace signal was requested for a net that is excluded by the
    /// simulator's `TraceMode` (`Off`, or `Watched` without the net).
    UntracedNet(String),
    /// A stimulus was scheduled before the current simulation time
    /// (returned by `Simulator::try_drive`; the `drive` wrapper panics
    /// instead, preserving its published behavior).
    DriveInPast {
        /// The driven net's name.
        net: String,
        /// Requested stimulus time, picoseconds.
        at_ps: f64,
        /// Current simulation time, picoseconds.
        now_ps: f64,
    },
    /// A budget-guarded run (`Simulator::try_run_until` /
    /// `try_run_to_quiescence` with an event budget installed) applied
    /// more events than the budget allows — the deterministic
    /// alternative to hanging on an oscillating faulted netlist.
    BudgetExceeded {
        /// The configured event budget.
        budget: u64,
        /// Events applied when the guard tripped.
        events: u64,
    },
    /// A fault plan failed validation or referred to an object kind the
    /// simulator cannot resolve.
    InvalidFault(String),
    /// A supervised run (`Simulator::try_run_until` /
    /// `try_run_to_quiescence` with a [`psnt_sup::Supervisor`]
    /// installed) was stopped cooperatively: cancellation, a wall-clock
    /// deadline, or a sim-time/event budget tripped at an event-loop
    /// check. The simulator remains usable; time holds at the last
    /// applied event.
    Interrupted(psnt_sup::Interrupt),
    /// A fault kind the 64-lane batch kernel cannot model was installed
    /// on a specific lane. Unlike [`InvalidFault`](NetlistError::InvalidFault)
    /// this names both the offending fault kind and the lane so batch
    /// campaign drivers can route that one plan to the scalar kernel.
    UnsupportedBatchFault {
        /// The unsupported fault kind (e.g. `"supply-glitch"`).
        fault: &'static str,
        /// The zero-based batch lane carrying the offending plan.
        lane: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::MultipleDrivers { net } => {
                write!(f, "net {net:?} has multiple drivers")
            }
            NetlistError::Undriven { net } => {
                write!(f, "net {net:?} is undriven and not a primary input")
            }
            NetlistError::CombinationalCycle { net } => {
                write!(f, "combinational cycle through net {net:?}")
            }
            NetlistError::UnknownNet(name) => write!(f, "unknown net {name:?}"),
            NetlistError::ArityMismatch {
                gate,
                expected,
                got,
            } => {
                write!(f, "gate {gate:?} expects {expected} inputs, got {got}")
            }
            NetlistError::NotAnInput(name) => {
                write!(
                    f,
                    "net {name:?} is not a primary input and cannot be driven externally"
                )
            }
            NetlistError::UntracedNet(name) => {
                write!(
                    f,
                    "net {name:?} is not traced under the simulator's TraceMode"
                )
            }
            NetlistError::DriveInPast { net, at_ps, now_ps } => {
                write!(
                    f,
                    "cannot drive net {net:?} at {at_ps} ps: simulation time is already {now_ps} ps"
                )
            }
            NetlistError::BudgetExceeded { budget, events } => {
                write!(
                    f,
                    "event budget exceeded: {events} events applied against a budget of {budget}"
                )
            }
            NetlistError::InvalidFault(why) => write!(f, "invalid fault: {why}"),
            NetlistError::Interrupted(reason) => {
                write!(f, "simulation interrupted: {reason}")
            }
            NetlistError::UnsupportedBatchFault { fault, lane } => {
                write!(
                    f,
                    "{fault} faults are not batchable (lane {lane}): run that \
                     plan on the scalar simulator"
                )
            }
        }
    }
}

impl Error for NetlistError {}

impl From<psnt_sup::Interrupt> for NetlistError {
    fn from(reason: psnt_sup::Interrupt) -> NetlistError {
        NetlistError::Interrupted(reason)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(NetlistError::MultipleDrivers { net: "n1".into() }
            .to_string()
            .contains("n1"));
        assert!(NetlistError::Undriven { net: "n2".into() }
            .to_string()
            .contains("undriven"));
        assert!(NetlistError::CombinationalCycle { net: "loop".into() }
            .to_string()
            .contains("cycle"));
        assert!(NetlistError::UnknownNet("x".into())
            .to_string()
            .contains("unknown"));
        assert!(NetlistError::ArityMismatch {
            gate: "g".into(),
            expected: 2,
            got: 3
        }
        .to_string()
        .contains("expects 2"));
        assert!(NetlistError::NotAnInput("q".into())
            .to_string()
            .contains("primary"));
        assert!(NetlistError::UntracedNet("w".into())
            .to_string()
            .contains("not traced"));
        assert!(NetlistError::DriveInPast {
            net: "a".into(),
            at_ps: 1.0,
            now_ps: 2.0
        }
        .to_string()
        .contains("cannot drive"));
        assert!(NetlistError::BudgetExceeded {
            budget: 10,
            events: 11
        }
        .to_string()
        .contains("budget"));
        assert!(NetlistError::InvalidFault("p".into())
            .to_string()
            .contains("invalid fault"));
        let e = NetlistError::UnsupportedBatchFault {
            fault: "supply-glitch",
            lane: 17,
        };
        assert!(e.to_string().contains("supply-glitch"));
        assert!(e.to_string().contains("lane 17"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<NetlistError>();
    }
}
