//! 64-lane bit-parallel event simulation: one machine word carries one
//! net's value across 64 independent mismatch/fault instances.
//!
//! The [`BatchSimulator`] replays the exact semantics of the scalar
//! [`Simulator`](crate::sim::Simulator) — inertial delays, four-valued
//! logic, voltage-aware timing, flip-flop setup/hold sampling, fault
//! hooks, per-event energy accounting — for 64 *lanes* at once. Lane
//! `l` behaves bit-for-bit like a scalar simulator carrying fault plan
//! `l`, so a 64-plan fault campaign or a 64-instance Monte-Carlo sweep
//! costs roughly one simulation instead of 64.
//!
//! # Bit-plane encoding
//!
//! Each net holds two `u64` planes: `def` (bit set ⇒ the lane's value
//! is defined) and `val` (bit set ⇒ the lane's value is One), with the
//! invariant `val ⊆ def`. `(def,val) = (1,1)` is One, `(1,0)` is Zero
//! and `(0,0)` is X. [`Logic::Z`] has no encoding: every logic operator
//! treats Z exactly like X, so Z collapses to X on the way in. The only
//! observable difference is that a net can never *hold* Z — netlists
//! with Z constants or Z stimulus are outside the equivalence contract.
//!
//! Gate evaluation is pure word arithmetic, e.g. for AND:
//! `one = valₐ & val_b`, `zero = (defₐ & !valₐ) | (def_b & !val_b)`,
//! `out = (one, one | zero)` — 64 four-valued evaluations in a handful
//! of bitwise ops.
//!
//! # Event coalescing and cancellation
//!
//! One [`BatchEvent`] carries a lane *mask*: all lanes scheduled for the
//! same net at the same time with the same delay fire together. The
//! scalar kernel cancels superseded inertial events with per-net version
//! counters; here a per-`(net, lane)` generation stamp (`gen`) plays the
//! same role — scheduling overwrites the lane's stamp with the event's
//! sequence number, and an arriving event only applies on lanes whose
//! stamp still matches. This is equivalent because the scalar kernel
//! maintains at most one live pending event per non-input net: the
//! overwrite always hits the event it means to supersede. Primary
//! inputs keep transport semantics (every queued stimulus edge applies),
//! so input events skip the stamp check, exactly like the scalar kernel
//! never bumps an input's version.
//!
//! # Delay banding
//!
//! `DelayScale` faults give lanes different gate delays, which would
//! split every event 64 ways. Instead each gate's per-lane delay
//! factors are grouped into at most [`MAX_DELAY_BANDS`] *bands* and one
//! event is scheduled per (band, output edge). With ≤ 8 distinct
//! factors on a gate the banding is exact and the kernel stays
//! bit-identical to 64 scalar runs. With more, factors are snapped to a
//! geometric grid between the extremes `f_min ≤ f ≤ f_max`: the grid
//! ratio is `r = (f_max/f_min)^(1/(B−1))` with `B = 8`, so a snapped
//! factor is within `√r` of the true one (relative error ≤ r^(1/2) − 1,
//! e.g. ≤ 5.1 % for a 2× factor spread).
//!
//! # Per-lane fault support
//!
//! `StuckAt`, `DelayScale`, `BitUpset` and `Transient` faults install
//! per lane; `SitePanic` is a campaign-level fault the event kernel
//! ignores (as in the scalar kernel). `SupplyGlitch` is rejected with
//! [`NetlistError::InvalidFault`]: it retimes every gate in a domain
//! mid-run, which would need a delay cache per lane — glitch plans stay
//! on the scalar kernel.
//!
//! # Divergences from the scalar kernel (documented, not accidental)
//!
//! * No trace, observer or profiling hooks — batched measurement
//!   kernels read net values directly.
//! * One global clock: `now` advances when *any* lane applies an event.
//!   The only scalar construct that reads `now` is the `max(at, now)`
//!   re-timing of a `BitUpset` scheduled in the past; upsets at or
//!   after the stimulus they disturb (the only sensible kind) are
//!   unaffected.
//! * The event budget freezes individual lanes (they go *dead*, see
//!   [`BatchSimulator::dead_lanes`]) instead of returning an error,
//!   because per-lane failure is a mask, not a `Result`. A dead lane's
//!   frozen state matches the scalar simulator at the moment
//!   `try_run_until` would have returned `BudgetExceeded` — both apply
//!   the budget-crossing event in full (including the fanout it
//!   schedules) before stopping.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use psnt_cells::gates::GateFunction;
use psnt_cells::logic::Logic;
use psnt_cells::process::Pvt;
use psnt_cells::units::{Time, Voltage};
use psnt_fault::{Fault, FaultPlan, SplitMix64};

use crate::error::NetlistError;
use crate::graph::{DffId, DomainId, GateId, NetId, Netlist, SimTopology};
use crate::sim::{MetastabilityMode, SimStats, MAX_GATE_INPUTS};

/// Lanes per batch: one per bit of the plane word.
pub const LANES: usize = 64;

/// Maximum delay bands per gate (see the module docs for the
/// quantization bound when a gate has more distinct delay factors).
pub const MAX_DELAY_BANDS: usize = 8;

const ALL_LANES: u64 = u64::MAX;

/// Broadcast a scalar [`Logic`] value to 64 identical lanes as
/// `(val, def)` planes. Z collapses to X.
#[inline]
fn logic_planes(v: Logic) -> (u64, u64) {
    match v {
        Logic::Zero => (0, ALL_LANES),
        Logic::One => (ALL_LANES, ALL_LANES),
        Logic::X | Logic::Z => (0, 0),
    }
}

/// Read one lane of a `(val, def)` plane pair back as a [`Logic`].
#[inline]
fn lane_logic(val: u64, def: u64, lane: usize) -> Logic {
    let bit = 1u64 << lane;
    if def & bit == 0 {
        Logic::X
    } else if val & bit != 0 {
        Logic::One
    } else {
        Logic::Zero
    }
}

// Plane-parallel four-valued operators. Each mirrors the corresponding
// `Logic` method lane-wise; all preserve the `val ⊆ def` invariant.

#[inline]
fn p_not(a: (u64, u64)) -> (u64, u64) {
    (a.1 & !a.0, a.1)
}

#[inline]
fn p_and(a: (u64, u64), b: (u64, u64)) -> (u64, u64) {
    let one = a.0 & b.0;
    let zero = (a.1 & !a.0) | (b.1 & !b.0);
    (one, one | zero)
}

#[inline]
fn p_or(a: (u64, u64), b: (u64, u64)) -> (u64, u64) {
    let one = a.0 | b.0;
    let zero = (a.1 & !a.0) & (b.1 & !b.0);
    (one, one | zero)
}

#[inline]
fn p_xor(a: (u64, u64), b: (u64, u64)) -> (u64, u64) {
    let def = a.1 & b.1;
    ((a.0 ^ b.0) & def, def)
}

#[inline]
fn p_mux(sel: (u64, u64), a: (u64, u64), b: (u64, u64)) -> (u64, u64) {
    let sel0 = sel.1 & !sel.0;
    let sel1 = sel.0; // val ⊆ def, so this is "defined and One"
    let unk = !sel.1;
    let agree = a.1 & b.1 & !(a.0 ^ b.0);
    let def = (sel0 & a.1) | (sel1 & b.1) | (unk & agree);
    let val = (sel0 & a.0) | (sel1 & b.0) | (unk & agree & a.0);
    (val, def)
}

/// 64 four-valued gate evaluations in parallel. Matches
/// [`GateFunction::eval`] on every lane (with Z collapsed to X).
fn eval_planes(function: GateFunction, ins: &[(u64, u64)]) -> (u64, u64) {
    match function {
        GateFunction::Inv => p_not(ins[0]),
        // `Buf` is `not(not(x))`, which on planes (no Z) is the identity.
        GateFunction::Buf => ins[0],
        GateFunction::Nand2 => p_not(p_and(ins[0], ins[1])),
        GateFunction::Nor2 => p_not(p_or(ins[0], ins[1])),
        GateFunction::And2 => p_and(ins[0], ins[1]),
        GateFunction::Or2 => p_or(ins[0], ins[1]),
        GateFunction::Xor2 => p_xor(ins[0], ins[1]),
        GateFunction::Xnor2 => p_not(p_xor(ins[0], ins[1])),
        GateFunction::Nand3 => p_not(p_and(p_and(ins[0], ins[1]), ins[2])),
        GateFunction::Nor3 => p_not(p_or(p_or(ins[0], ins[1]), ins[2])),
        GateFunction::And3 => p_and(p_and(ins[0], ins[1]), ins[2]),
        GateFunction::Or3 => p_or(p_or(ins[0], ins[1]), ins[2]),
        GateFunction::Mux2 => p_mux(ins[2], ins[0], ins[1]),
        GateFunction::Aoi21 => p_not(p_or(p_and(ins[0], ins[1]), ins[2])),
        GateFunction::Oai21 => p_not(p_and(p_or(ins[0], ins[1]), ins[2])),
        // `GateFunction` is non_exhaustive: fall back to 64 scalar
        // evaluations so a future cell stays correct (if slow) here.
        other => {
            let arity = other.num_inputs();
            let mut val = 0u64;
            let mut def = 0u64;
            for lane in 0..LANES {
                let mut buf = [Logic::X; MAX_GATE_INPUTS];
                for (k, p) in ins.iter().take(arity).enumerate() {
                    buf[k] = lane_logic(p.0, p.1, lane);
                }
                match other.eval(&buf[..arity]) {
                    Logic::One => {
                        val |= 1 << lane;
                        def |= 1 << lane;
                    }
                    Logic::Zero => def |= 1 << lane,
                    _ => {}
                }
            }
            (val, def)
        }
    }
}

/// A scheduled transition for a set of lanes of one net. `val`/`def`
/// are full planes; only bits inside `lanes` are meaningful.
#[derive(Debug, Clone, Copy, PartialEq)]
struct BatchEvent {
    time: Time,
    seq: u64,
    net: NetId,
    lanes: u64,
    val: u64,
    def: u64,
}

impl Eq for BatchEvent {}

impl Ord for BatchEvent {
    fn cmp(&self, other: &BatchEvent) -> Ordering {
        // Min-heap via BinaryHeap<Reverse<_>>: order by (time, seq),
        // like the scalar kernel. Per lane this preserves the scalar
        // event order: a lane's causal chain only passes through events
        // containing that lane, and those get strictly increasing seq.
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for BatchEvent {
    fn partial_cmp(&self, other: &BatchEvent) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-lane run statistics: index `l` is what the scalar simulator's
/// [`SimStats`] would read for lane `l`'s fault plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchStats {
    /// Events applied (net value changes) per lane.
    pub events: [u64; LANES],
    /// Events cancelled by inertial filtering per lane.
    pub cancelled: [u64; LANES],
    /// Flip-flop captures performed per lane.
    pub ff_captures: [u64; LANES],
    /// Captures that violated the setup/hold window per lane.
    pub ff_violations: [u64; LANES],
}

impl Default for BatchStats {
    fn default() -> BatchStats {
        BatchStats {
            events: [0; LANES],
            cancelled: [0; LANES],
            ff_captures: [0; LANES],
            ff_violations: [0; LANES],
        }
    }
}

impl BatchStats {
    /// One lane's statistics in the scalar [`SimStats`] shape.
    pub fn lane(&self, lane: usize) -> SimStats {
        SimStats {
            events: self.events[lane],
            cancelled: self.cancelled[lane],
            ff_captures: self.ff_captures[lane],
            ff_violations: self.ff_violations[lane],
        }
    }
}

/// Cached per-band propagation delays (the scalar kernel's `GateDelays`
/// scaled by the band's fault factor).
#[derive(Debug, Clone, Copy)]
struct BandDelays {
    rise: Time,
    fall: Time,
    worst: Time,
}

impl BandDelays {
    fn scaled(self, factor: f64) -> BandDelays {
        if factor == 1.0 {
            return self;
        }
        BandDelays {
            rise: self.rise * factor,
            fall: self.fall * factor,
            worst: self.worst * factor,
        }
    }
}

/// Groups one gate's 64 per-lane delay factors into ≤ [`MAX_DELAY_BANDS`]
/// bands. Exact when the distinct factors fit; otherwise snapped to a
/// geometric grid between the extremes (bound in the module docs).
fn plan_bands(factors: &[f64]) -> (usize, [f64; MAX_DELAY_BANDS], [u64; MAX_DELAY_BANDS]) {
    debug_assert_eq!(factors.len(), LANES);
    let mut keys = [0u64; LANES];
    let mut masks = [0u64; LANES];
    let mut distinct = 0usize;
    for (lane, f) in factors.iter().enumerate() {
        let bits = f.to_bits();
        let mut found = false;
        for k in 0..distinct {
            if keys[k] == bits {
                masks[k] |= 1 << lane;
                found = true;
                break;
            }
        }
        if !found {
            keys[distinct] = bits;
            masks[distinct] = 1 << lane;
            distinct += 1;
        }
    }
    let mut out_f = [1.0f64; MAX_DELAY_BANDS];
    let mut out_m = [0u64; MAX_DELAY_BANDS];
    if distinct <= MAX_DELAY_BANDS {
        for k in 0..distinct {
            out_f[k] = f64::from_bits(keys[k]);
            out_m[k] = masks[k];
        }
        return (distinct, out_f, out_m);
    }
    // Quantize: geometric grid from f_min to f_max in log space.
    let mut fmin = f64::INFINITY;
    let mut fmax = 0.0f64;
    for key in &keys[..distinct] {
        let f = f64::from_bits(*key);
        fmin = fmin.min(f);
        fmax = fmax.max(f);
    }
    let step = (fmax / fmin).ln() / (MAX_DELAY_BANDS - 1) as f64;
    for (k, slot) in out_f.iter_mut().enumerate() {
        *slot = fmin * (step * k as f64).exp();
    }
    for k in 0..distinct {
        let f = f64::from_bits(keys[k]);
        let idx = ((f / fmin).ln() / step).round();
        let idx = (idx.max(0.0) as usize).min(MAX_DELAY_BANDS - 1);
        out_m[idx] |= masks[k];
    }
    (MAX_DELAY_BANDS, out_f, out_m)
}

/// Up to 64 `FaultPlan`s resolved against one netlist, one per lane.
#[derive(Debug)]
struct BatchFaultState {
    /// Per-net lanes pinned by a stuck-at fault, plus the pinned planes.
    stuck_mask: Vec<u64>,
    stuck_val: Vec<u64>,
    stuck_def: Vec<u64>,
    /// Per-(gate, lane) delay multiplier, `gate*LANES + lane` layout.
    delay_factor: Vec<f64>,
    /// Whether any lane carries a `DelayScale` (skips banding when not).
    any_delay: bool,
    /// Single-event upsets as `(time, dff index, lane)`, sorted by time
    /// (stable, so each lane keeps its plan order).
    upsets: Vec<(Time, usize, usize)>,
    next_upset: usize,
    /// Lanes with a `Transient` fault, with per-lane probability/stream.
    transient_mask: u64,
    transient_p: [f64; LANES],
    transient_seeds: [u64; LANES],
    rngs: [SplitMix64; LANES],
    /// Lanes whose plan is non-empty (the natural event-budget scope).
    plan_mask: u64,
}

impl BatchFaultState {
    fn rearm(&mut self) {
        self.next_upset = 0;
        for lane in 0..LANES {
            if self.transient_mask & (1 << lane) != 0 {
                self.rngs[lane] = SplitMix64::new(self.transient_seeds[lane]);
            }
        }
    }
}

/// A 64-lane bit-parallel event simulator over a borrowed [`Netlist`].
///
/// See the module docs for the encoding and the equivalence contract.
/// All lanes share one topology, one delay cache and one stimulus
/// schedule; they diverge only through their fault plans (and, at the
/// measurement layer, through per-lane reads of the shared waveform).
#[derive(Debug)]
pub struct BatchSimulator<'a> {
    netlist: &'a Netlist,
    topo: SimTopology,
    /// Current value planes, `val ⊆ def` (index = net).
    val: Vec<u64>,
    def: Vec<u64>,
    /// Previous value planes, updated lane-wise on each change.
    prev_val: Vec<u64>,
    prev_def: Vec<u64>,
    /// Pending (scheduled, unapplied) planes and the lanes they cover.
    pend_val: Vec<u64>,
    pend_def: Vec<u64>,
    pend_mask: Vec<u64>,
    /// Per-(net, lane) generation stamp of the live scheduled event —
    /// the batch analogue of the scalar kernel's version counters.
    gen: Vec<u64>,
    /// Per-(net, lane) time of the last value change.
    last_change: Vec<Time>,
    is_input: Vec<bool>,
    queue: BinaryHeap<std::cmp::Reverse<BatchEvent>>,
    now: Time,
    seq: u64,
    domain_supply: Vec<Voltage>,
    pvt: Pvt,
    /// Banded delay cache, flattened CSR: gate `g`'s bands live at
    /// `band_off[g]..band_off[g+1]` in the three parallel arrays.
    band_off: Vec<u32>,
    band_delays: Vec<BandDelays>,
    band_factors: Vec<f64>,
    band_masks: Vec<u64>,
    meta_mode: MetastabilityMode,
    stats: BatchStats,
    /// Per-lane switching energy in joules (½·C·V² per transition).
    energy_j: [f64; LANES],
    faults: Option<Box<BatchFaultState>>,
    /// Applied-event ceiling per lane; exceeding lanes go dead.
    event_budget: Option<u64>,
    /// Lanes the budget applies to (default all; measurement kernels
    /// narrow this to the faulted lanes, mirroring the scalar flow
    /// that only installs a budget alongside a fault plan).
    budget_lanes: u64,
    /// Lanes frozen by an exhausted budget; excluded from every
    /// subsequent event.
    dead: u64,
    /// Cooperative supervision checked (strided) by the fallible
    /// `try_run_*` methods; `None` (the default) keeps the hot loop
    /// free of supervision, like the fault state.
    supervisor: Option<psnt_sup::Supervisor>,
}

/// Coalesced events between supervision checks in the batch `try_run_*`
/// loops (each batch event covers up to 64 lanes, so the effective
/// per-instance stride matches the scalar kernel's).
const BATCH_SUPERVISION_STRIDE: u64 = 1024;

impl<'a> BatchSimulator<'a> {
    /// Creates a batch simulator at the typical PVT point.
    ///
    /// # Errors
    ///
    /// Propagates structural validation failures from
    /// [`Netlist::validate`].
    pub fn new(netlist: &'a Netlist, supply: Voltage) -> Result<BatchSimulator<'a>, NetlistError> {
        BatchSimulator::with_pvt(netlist, supply, Pvt::typical())
    }

    /// Creates a batch simulator at an explicit PVT point.
    ///
    /// # Errors
    ///
    /// Propagates structural validation failures from
    /// [`Netlist::validate`].
    pub fn with_pvt(
        netlist: &'a Netlist,
        supply: Voltage,
        pvt: Pvt,
    ) -> Result<BatchSimulator<'a>, NetlistError> {
        let topo = netlist.sim_topology()?;
        let n = netlist.net_count();
        debug_assert!(
            netlist
                .gates()
                .iter()
                .all(|g| g.inputs().len() <= MAX_GATE_INPUTS),
            "gate fan-in exceeds the inline input buffer"
        );
        let mut is_input = vec![false; n];
        for &i in netlist.inputs() {
            is_input[i.index()] = true;
        }
        let mut sim = BatchSimulator {
            netlist,
            topo,
            val: vec![0; n],
            def: vec![0; n],
            prev_val: vec![0; n],
            prev_def: vec![0; n],
            pend_val: vec![0; n],
            pend_def: vec![0; n],
            pend_mask: vec![0; n],
            gen: vec![0; n * LANES],
            last_change: vec![Time::from_seconds(-1.0); n * LANES],
            is_input,
            queue: BinaryHeap::new(),
            now: Time::ZERO,
            seq: 0,
            domain_supply: vec![supply; netlist.domains().len()],
            pvt,
            band_off: Vec::new(),
            band_delays: Vec::new(),
            band_factors: Vec::new(),
            band_masks: Vec::new(),
            meta_mode: MetastabilityMode::Deterministic,
            stats: BatchStats::default(),
            energy_j: [0.0; LANES],
            faults: None,
            event_budget: None,
            budget_lanes: ALL_LANES,
            dead: 0,
            supervisor: None,
        };
        sim.rebuild_delay_cache();
        sim.initialize();
        Ok(sim)
    }

    /// Rewinds to the just-constructed state keeping every allocation,
    /// like the scalar [`reset`](crate::sim::Simulator::reset): supplies,
    /// PVT, metastability mode, budget and the installed fault plans are
    /// retained; values, pending events, statistics, energy, dead lanes
    /// and the fault schedules/streams restart.
    pub fn reset(&mut self) {
        self.val.fill(0);
        self.def.fill(0);
        self.prev_val.fill(0);
        self.prev_def.fill(0);
        self.pend_val.fill(0);
        self.pend_def.fill(0);
        self.pend_mask.fill(0);
        self.gen.fill(0);
        self.last_change.fill(Time::from_seconds(-1.0));
        self.queue.clear();
        self.now = Time::ZERO;
        self.seq = 0;
        self.stats = BatchStats::default();
        self.energy_j = [0.0; LANES];
        self.dead = 0;
        if let Some(f) = self.faults.as_mut() {
            f.rearm();
        }
        self.initialize();
    }

    /// Recomputes the banded delay cache of every gate at the current
    /// supplies/PVT and fault factors.
    fn rebuild_delay_cache(&mut self) {
        let gates = self.netlist.gates();
        self.band_off.clear();
        self.band_delays.clear();
        self.band_factors.clear();
        self.band_masks.clear();
        for (gi, g) in gates.iter().enumerate() {
            self.band_off.push(self.band_delays.len() as u32);
            let base = self.base_delays(g.domain(), g);
            let mut lane_factors = [1.0f64; LANES];
            let banded = match self.faults.as_deref() {
                Some(f) if f.any_delay => {
                    lane_factors.copy_from_slice(&f.delay_factor[gi * LANES..(gi + 1) * LANES]);
                    true
                }
                _ => false,
            };
            if !banded {
                self.band_factors.push(1.0);
                self.band_masks.push(ALL_LANES);
                self.band_delays.push(base);
                continue;
            }
            let (nb, factors, masks) = plan_bands(&lane_factors);
            for k in 0..nb {
                self.band_factors.push(factors[k]);
                self.band_masks.push(masks[k]);
                self.band_delays.push(base.scaled(factors[k]));
            }
        }
        self.band_off.push(self.band_delays.len() as u32);
    }

    /// One gate's healthy (rise, fall, worst) delays at the current
    /// supply of `domain` — the same three arcs the scalar kernel caches.
    fn base_delays(&self, domain: DomainId, g: &crate::graph::Gate) -> BandDelays {
        let supply = self.domain_supply[domain.index()];
        let load = self.topo.load(g.output());
        BandDelays {
            rise: g
                .cell()
                .propagation_delay_edge(supply, load, &self.pvt, true),
            fall: g
                .cell()
                .propagation_delay_edge(supply, load, &self.pvt, false),
            worst: g.cell().propagation_delay(supply, load, &self.pvt),
        }
    }

    /// Refreshes the cached delays of the gates in one domain after its
    /// supply changed. Band structure (factors, masks) is unchanged —
    /// only the healthy base retimes.
    fn refresh_domain_delays(&mut self, domain: DomainId) {
        for (gi, g) in self.netlist.gates().iter().enumerate() {
            if g.domain() != domain {
                continue;
            }
            let base = self.base_delays(domain, g);
            let b0 = self.band_off[gi] as usize;
            let b1 = self.band_off[gi + 1] as usize;
            for b in b0..b1 {
                self.band_delays[b] = base.scaled(self.band_factors[b]);
            }
        }
    }

    /// Installs up to [`LANES`] fault plans, one per lane; lanes past
    /// `plans.len()` (and lanes with empty plans) run healthy. Replaces
    /// any previously installed plans; an all-empty slice is exactly
    /// [`clear_fault_plans`](BatchSimulator::clear_fault_plans). As with
    /// the scalar kernel, follow with [`reset`](BatchSimulator::reset)
    /// so stuck nets pin their initial state and schedules re-arm.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNet`] for names that do not
    /// resolve, [`NetlistError::InvalidFault`] for invalid plans or more
    /// than [`LANES`] plans, and
    /// [`NetlistError::UnsupportedBatchFault`] — naming the fault kind
    /// and the offending lane — for any `SupplyGlitch` fault (not
    /// batchable: it would need a per-lane delay cache — run those on
    /// the scalar kernel). The previous plans are left untouched on
    /// error.
    pub fn set_fault_plans(&mut self, plans: &[FaultPlan]) -> Result<(), NetlistError> {
        if plans.len() > LANES {
            return Err(NetlistError::InvalidFault(format!(
                "{} fault plans exceed the {LANES} lanes of one batch",
                plans.len()
            )));
        }
        if plans.iter().all(|p| p.is_empty()) {
            self.clear_fault_plans();
            return Ok(());
        }
        for plan in plans {
            if !plan.is_empty() {
                plan.validate()
                    .map_err(|e| NetlistError::InvalidFault(e.to_string()))?;
            }
        }
        let mut state = BatchFaultState {
            stuck_mask: vec![0; self.netlist.net_count()],
            stuck_val: vec![0; self.netlist.net_count()],
            stuck_def: vec![0; self.netlist.net_count()],
            delay_factor: vec![1.0; self.netlist.gates().len() * LANES],
            any_delay: false,
            upsets: Vec::new(),
            next_upset: 0,
            transient_mask: 0,
            transient_p: [0.0; LANES],
            transient_seeds: [0; LANES],
            rngs: std::array::from_fn(|_| SplitMix64::new(0)),
            plan_mask: 0,
        };
        for (lane, plan) in plans.iter().enumerate() {
            if plan.is_empty() {
                continue;
            }
            let bit = 1u64 << lane;
            state.plan_mask |= bit;
            for fault in &plan.faults {
                match fault {
                    Fault::StuckAt { net, value } => {
                        let id = self.netlist.net_by_name(net)?;
                        let ni = id.index();
                        let (v, d) = logic_planes(*value);
                        state.stuck_mask[ni] |= bit;
                        state.stuck_val[ni] = (state.stuck_val[ni] & !bit) | (v & bit);
                        state.stuck_def[ni] = (state.stuck_def[ni] & !bit) | (d & bit);
                    }
                    Fault::DelayScale { gate, factor } => {
                        let gi = self
                            .netlist
                            .gates()
                            .iter()
                            .position(|g| g.name() == gate)
                            .ok_or_else(|| NetlistError::UnknownNet(gate.clone()))?;
                        state.delay_factor[gi * LANES + lane] *= factor;
                        state.any_delay = true;
                    }
                    Fault::BitUpset { ff, at } => {
                        let fi = self
                            .netlist
                            .dffs()
                            .iter()
                            .position(|d| d.name() == ff)
                            .ok_or_else(|| NetlistError::UnknownNet(ff.clone()))?;
                        state.upsets.push((*at, fi, lane));
                    }
                    Fault::SupplyGlitch { .. } => {
                        return Err(NetlistError::UnsupportedBatchFault {
                            fault: "supply-glitch",
                            lane,
                        });
                    }
                    Fault::Transient { probability, seed } => {
                        state.transient_mask |= bit;
                        state.transient_p[lane] = *probability;
                        state.transient_seeds[lane] = *seed;
                        state.rngs[lane] = SplitMix64::new(*seed);
                    }
                    // Campaign/harness-level faults; the event kernel
                    // ignores them (panics, sink errors, cancellation
                    // and deadline trips are applied by the layers
                    // above).
                    Fault::SitePanic { .. }
                    | Fault::SinkError { .. }
                    | Fault::WorkerPanic { .. }
                    | Fault::CancelAt { .. }
                    | Fault::DeadlineTrip => {}
                }
            }
        }
        // Stable sort: equal times keep (lane, plan) insertion order, so
        // each lane sees its upsets in the scalar kernel's order.
        state.upsets.sort_by(|a, b| a.0.total_cmp(&b.0));
        self.faults = Some(Box::new(state));
        self.rebuild_delay_cache();
        Ok(())
    }

    /// Removes any installed fault plans and restores the healthy delay
    /// cache. No-op on a fault-free simulator.
    pub fn clear_fault_plans(&mut self) {
        if self.faults.take().is_some() {
            self.rebuild_delay_cache();
        }
    }

    /// Whether (non-empty) fault plans are installed.
    pub fn has_fault_plans(&self) -> bool {
        self.faults.is_some()
    }

    /// Lanes whose installed fault plan is non-empty (0 when none are).
    pub fn fault_lanes(&self) -> u64 {
        self.faults.as_deref().map_or(0, |f| f.plan_mask)
    }

    /// Installs (or clears) the per-lane applied-event ceiling. A lane
    /// in [`budget lanes`](BatchSimulator::set_event_budget_lanes) that
    /// exceeds it goes dead (see the module docs) instead of erroring.
    pub fn set_event_budget(&mut self, budget: Option<u64>) {
        self.event_budget = budget;
    }

    /// The installed event budget, if any.
    pub fn event_budget(&self) -> Option<u64> {
        self.event_budget
    }

    /// Narrows the event budget to a subset of lanes (default: all).
    /// Measurement kernels pass [`fault_lanes`](BatchSimulator::fault_lanes)
    /// so healthy lanes stay unguarded, mirroring the scalar flow that
    /// only installs a budget alongside a fault plan.
    pub fn set_event_budget_lanes(&mut self, lanes: u64) {
        self.budget_lanes = lanes;
    }

    /// Lanes frozen by an exhausted event budget. A dead lane's state
    /// matches the scalar simulator at its `BudgetExceeded` stop.
    pub fn dead_lanes(&self) -> u64 {
        self.dead
    }

    /// Installs (or clears, with `None`) a cooperative
    /// [`Supervisor`](psnt_sup::Supervisor), checked every
    /// [`BATCH_SUPERVISION_STRIDE`] coalesced events by the fallible
    /// [`try_run_until`](BatchSimulator::try_run_until) /
    /// [`try_run_to_quiescence`](BatchSimulator::try_run_to_quiescence)
    /// loops. A trip surfaces as [`NetlistError::Interrupted`] with the
    /// batch kernel still usable; the infallible `run_*` methods ignore
    /// the supervisor, exactly like the scalar kernel.
    pub fn set_supervisor(&mut self, supervisor: Option<psnt_sup::Supervisor>) {
        self.supervisor = supervisor;
    }

    /// The installed supervisor, if any.
    pub fn supervisor(&self) -> Option<&psnt_sup::Supervisor> {
        self.supervisor.as_ref()
    }

    /// Selects how metastable captures are modelled (batch-wide).
    pub fn set_metastability_mode(&mut self, mode: MetastabilityMode) {
        self.meta_mode = mode;
    }

    /// The supply voltage powering the default (core) domain.
    pub fn supply(&self) -> Voltage {
        self.domain_supply[DomainId::CORE.index()]
    }

    /// Changes the supply voltage of every domain for subsequently
    /// scheduled gate delays.
    pub fn set_supply(&mut self, supply: Voltage) {
        for s in &mut self.domain_supply {
            *s = supply;
        }
        self.rebuild_delay_cache();
    }

    /// The supply voltage of one domain.
    pub fn domain_supply(&self, domain: DomainId) -> Voltage {
        self.domain_supply[domain.index()]
    }

    /// Changes one domain's supply for subsequently scheduled gate
    /// delays (the PREPARE/SENSE rail step of a measurement run).
    ///
    /// # Panics
    ///
    /// Panics if `domain` was not declared on the netlist.
    pub fn set_domain_supply(&mut self, domain: DomainId, supply: Voltage) {
        self.domain_supply[domain.index()] = supply;
        self.refresh_domain_delays(domain);
    }

    /// Current simulation time (shared by all lanes).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Per-lane run statistics so far.
    pub fn stats(&self) -> &BatchStats {
        &self.stats
    }

    /// One lane's switching energy so far, in joules.
    pub fn switching_energy_joules(&self, lane: usize) -> f64 {
        self.energy_j[lane]
    }

    /// The current value of a net in one lane.
    pub fn value(&self, net: NetId, lane: usize) -> Logic {
        lane_logic(self.val[net.index()], self.def[net.index()], lane)
    }

    fn initialize(&mut self) {
        // Constants and FF power-on values land in every lane, then
        // combinational logic settles in topological order (zero-delay),
        // exactly like the scalar kernel. Stuck-at faults pin their
        // lanes before and during settling.
        for &(net, value) in self.netlist.consts() {
            let (v, d) = logic_planes(value);
            self.val[net.index()] = v;
            self.def[net.index()] = d;
        }
        for ff in self.netlist.dffs() {
            let (v, d) = logic_planes(ff.init());
            self.val[ff.q().index()] = v;
            self.def[ff.q().index()] = d;
        }
        if let Some(f) = self.faults.as_deref() {
            for ni in 0..self.val.len() {
                let sm = f.stuck_mask[ni];
                if sm != 0 {
                    self.val[ni] = (self.val[ni] & !sm) | (f.stuck_val[ni] & sm);
                    self.def[ni] = (self.def[ni] & !sm) | (f.stuck_def[ni] & sm);
                }
            }
        }
        for k in 0..self.topo.topo_gates().len() {
            let gi = self.topo.topo_gates()[k];
            let gate = &self.netlist.gates()[gi.index()];
            let pins = self.topo.gate_inputs(gi);
            let mut ins = [(0u64, 0u64); MAX_GATE_INPUTS];
            for (j, &i) in pins.iter().enumerate() {
                ins[j] = (self.val[i.index()], self.def[i.index()]);
            }
            let (mut v, mut d) = eval_planes(gate.cell().function(), &ins[..pins.len()]);
            let oi = gate.output().index();
            if let Some(f) = self.faults.as_deref() {
                let sm = f.stuck_mask[oi];
                if sm != 0 {
                    v = (v & !sm) | (f.stuck_val[oi] & sm);
                    d = (d & !sm) | (f.stuck_def[oi] & sm);
                }
            }
            self.val[oi] = v;
            self.def[oi] = d;
        }
        self.prev_val.copy_from_slice(&self.val);
        self.prev_def.copy_from_slice(&self.def);
    }

    /// Drives a primary input in every lane at absolute time `at`
    /// (transport semantics, like the scalar kernel). Z collapses to X.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NotAnInput`] for non-input nets.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the current simulation time; use
    /// [`BatchSimulator::try_drive`] for the error instead.
    pub fn drive(&mut self, net: NetId, value: Logic, at: Time) -> Result<(), NetlistError> {
        match self.try_drive(net, value, at) {
            Err(NetlistError::DriveInPast { net, at_ps, now_ps }) => {
                panic!("cannot drive in the past: net {net:?} at {at_ps} ps < now {now_ps} ps")
            }
            other => other,
        }
    }

    /// Fallible [`drive`](BatchSimulator::drive).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NotAnInput`] for non-input nets and
    /// [`NetlistError::DriveInPast`] when `at` precedes the current
    /// simulation time.
    pub fn try_drive(&mut self, net: NetId, value: Logic, at: Time) -> Result<(), NetlistError> {
        if !self.is_input[net.index()] {
            return Err(NetlistError::NotAnInput(
                self.netlist.net(net).name().to_owned(),
            ));
        }
        if at < self.now {
            return Err(NetlistError::DriveInPast {
                net: self.netlist.net(net).name().to_owned(),
                at_ps: at.picoseconds(),
                now_ps: self.now.picoseconds(),
            });
        }
        let (v, d) = logic_planes(value);
        self.seq += 1;
        self.queue.push(std::cmp::Reverse(BatchEvent {
            time: at,
            seq: self.seq,
            net,
            lanes: ALL_LANES,
            val: v,
            def: d,
        }));
        Ok(())
    }

    /// Drives a periodic clock on `net`: rising edges at
    /// `start, start+period, …` for `cycles` cycles, 50 % duty.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NotAnInput`] for non-input nets.
    pub fn drive_clock(
        &mut self,
        net: NetId,
        start: Time,
        period: Time,
        cycles: usize,
    ) -> Result<(), NetlistError> {
        self.drive(net, Logic::Zero, self.now)?;
        for k in 0..cycles {
            let rise = start + period * k as f64;
            self.drive(net, Logic::One, rise)?;
            self.drive(net, Logic::Zero, rise + period / 2.0)?;
        }
        Ok(())
    }

    // --- BATCH HOT LOOP START ------------------------------------------
    // CI greps this region for vector types: the per-event path must
    // not allocate per instance — lane state lives in planes and fixed
    // stack arrays. (Pre-sized buffers created at construction are
    // indexed, never grown, here.)

    /// Schedules one coalesced event for `lanes` of `net`, stamping each
    /// lane's generation (the inertial-cancellation handshake) and
    /// recording the pending planes.
    fn schedule_lanes(&mut self, time: Time, net: NetId, lanes: u64, val: u64, def: u64) {
        debug_assert_ne!(lanes, 0);
        let ni = net.index();
        self.seq += 1;
        let mut m = lanes;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            self.gen[ni * LANES + l] = self.seq;
        }
        self.pend_mask[ni] |= lanes;
        self.pend_val[ni] = (self.pend_val[ni] & !lanes) | (val & lanes);
        self.pend_def[ni] = (self.pend_def[ni] & !lanes) | (def & lanes);
        self.queue.push(std::cmp::Reverse(BatchEvent {
            time,
            seq: self.seq,
            net,
            lanes,
            val,
            def,
        }));
    }

    /// Processes every event scheduled at or before `t`, then advances
    /// the clock to `t`. Lanes that exhaust the event budget go dead
    /// (the batch analogue of the scalar `BudgetExceeded` stop).
    pub fn run_until(&mut self, t: Time) {
        match self.run_until_guarded(t, None) {
            Ok(()) => (),
            Err(_) => unreachable!("unsupervised batch run cannot be interrupted"),
        }
    }

    /// Supervised [`run_until`](BatchSimulator::run_until): identical
    /// event-for-event while the installed
    /// [supervisor](BatchSimulator::set_supervisor) holds. With no
    /// supervisor installed it never fails.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Interrupted`] when the supervisor trips
    /// at a strided check; the kernel remains usable (time holds at the
    /// last applied event).
    pub fn try_run_until(&mut self, t: Time) -> Result<(), NetlistError> {
        let sup = self.supervisor.clone();
        self.run_until_guarded(t, sup.as_ref())
    }

    fn run_until_guarded(
        &mut self,
        t: Time,
        sup: Option<&psnt_sup::Supervisor>,
    ) -> Result<(), NetlistError> {
        let mut until_check = BATCH_SUPERVISION_STRIDE;
        loop {
            let next = self.queue.peek().map(|r| r.0.time);
            if self.faults.is_some() {
                let horizon = match next {
                    Some(te) if te <= t => te,
                    _ => t,
                };
                if self.inject_due_upset(Some(horizon)) {
                    continue;
                }
            }
            let Some(&std::cmp::Reverse(ev)) = self.queue.peek() else {
                break;
            };
            if ev.time > t {
                break;
            }
            self.queue.pop();
            self.apply(ev);
            if let Some(s) = sup {
                until_check -= 1;
                if until_check == 0 {
                    until_check = BATCH_SUPERVISION_STRIDE;
                    s.charge_events(BATCH_SUPERVISION_STRIDE);
                    if let Err(reason) = s.check_at(self.now.picoseconds()) {
                        return Err(NetlistError::Interrupted(reason));
                    }
                }
            }
        }
        self.now = self.now.max(t);
        Ok(())
    }

    /// Runs until the event queue drains, or `max` batch events changed
    /// at least one lane (a divergence guard — note the guard counts
    /// coalesced events, not per-lane changes). Returns the final time.
    pub fn run_to_quiescence(&mut self, max: u64) -> Time {
        match self.run_quiescence_guarded(max, None) {
            Ok(t) => t,
            Err(_) => unreachable!("unsupervised batch run cannot be interrupted"),
        }
    }

    /// Supervised
    /// [`run_to_quiescence`](BatchSimulator::run_to_quiescence): same
    /// event order, stopped cooperatively when the installed
    /// [supervisor](BatchSimulator::set_supervisor) trips.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Interrupted`] when the supervisor trips
    /// at a strided check.
    pub fn try_run_to_quiescence(&mut self, max: u64) -> Result<Time, NetlistError> {
        let sup = self.supervisor.clone();
        self.run_quiescence_guarded(max, sup.as_ref())
    }

    fn run_quiescence_guarded(
        &mut self,
        max: u64,
        sup: Option<&psnt_sup::Supervisor>,
    ) -> Result<Time, NetlistError> {
        let mut applied = 0;
        let mut until_check = BATCH_SUPERVISION_STRIDE;
        loop {
            if self.faults.is_some() {
                let horizon = self.queue.peek().map(|r| r.0.time);
                if self.inject_due_upset(horizon) {
                    continue;
                }
            }
            let Some(std::cmp::Reverse(ev)) = self.queue.pop() else {
                break;
            };
            if self.apply(ev) != 0 {
                applied += 1;
                if applied >= max {
                    break;
                }
                if let Some(s) = sup {
                    until_check -= 1;
                    if until_check == 0 {
                        until_check = BATCH_SUPERVISION_STRIDE;
                        s.charge_events(BATCH_SUPERVISION_STRIDE);
                        if let Err(reason) = s.check_at(self.now.picoseconds()) {
                            return Err(NetlistError::Interrupted(reason));
                        }
                    }
                }
            }
        }
        Ok(self.now)
    }

    /// Injects at most one due `BitUpset` with trigger time `<= horizon`
    /// into its single lane. Returns whether anything was injected.
    fn inject_due_upset(&mut self, horizon: Option<Time>) -> bool {
        let Some(f) = self.faults.as_mut() else {
            return false;
        };
        let Some(&(at, ffi, lane)) = f.upsets.get(f.next_upset) else {
            return false;
        };
        if horizon.is_some_and(|h| at > h) {
            return false;
        }
        f.next_upset += 1;
        // Invert the flip-flop output once in this lane; X flips to One
        // so the disturbance is observable (scalar semantics).
        let q = self.netlist.dffs()[ffi].q();
        let qi = q.index();
        let bit = 1u64 << lane;
        let eff = if self.pend_mask[qi] & bit != 0 {
            lane_logic(self.pend_val[qi], self.pend_def[qi], lane)
        } else {
            lane_logic(self.val[qi], self.def[qi], lane)
        };
        let flipped = match eff {
            Logic::One => Logic::Zero,
            _ => Logic::One,
        };
        let (v, d) = logic_planes(flipped);
        let when = at.max(self.now);
        self.schedule_lanes(when, q, bit, v, d);
        true
    }

    /// Applies one event: stuck rewrite, generation check, lane-wise
    /// commit, energy/stats, fanout evaluation and FF captures — each
    /// step mirroring the scalar `apply` order. Returns the mask of
    /// lanes whose value changed.
    fn apply(&mut self, ev: BatchEvent) -> u64 {
        let ni = ev.net.index();
        let mut mask = ev.lanes & !self.dead;
        let mut v = ev.val;
        let mut d = ev.def;
        // Stuck-at interception at commit time: stuck lanes rewrite to
        // the pinned value, which the changed-mask below then discards.
        if let Some(f) = self.faults.as_deref() {
            let sm = f.stuck_mask[ni];
            if sm != 0 {
                v = (v & !sm) | (f.stuck_val[ni] & sm);
                d = (d & !sm) | (f.stuck_def[ni] & sm);
            }
        }
        // Generation check — the inertial cancellation. Primary inputs
        // use transport semantics and skip it (their events are never
        // superseded), like the scalar kernel's un-bumped versions.
        if !self.is_input[ni] {
            let mut live = 0u64;
            let mut m = mask;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                m &= m - 1;
                if self.gen[ni * LANES + l] == ev.seq {
                    live |= 1 << l;
                } else {
                    self.stats.cancelled[l] += 1;
                }
            }
            mask = live;
            self.pend_mask[ni] &= !live;
        }
        if mask == 0 {
            return 0;
        }
        self.now = self.now.max(ev.time);
        let changed = mask & ((v ^ self.val[ni]) | (d ^ self.def[ni]));
        if changed == 0 {
            return 0;
        }
        let keep = !changed;
        let old_val = self.val[ni];
        let old_def = self.def[ni];
        self.prev_val[ni] = (self.prev_val[ni] & keep) | (old_val & changed);
        self.prev_def[ni] = (self.prev_def[ni] & keep) | (old_def & changed);
        self.val[ni] = (old_val & keep) | (v & changed);
        self.def[ni] = (old_def & keep) | (d & changed);
        // Dynamic energy: ½·C·V² per changed lane, charged from the
        // driving gate's domain supply — identical per lane because
        // supplies are batch-global (SupplyGlitch is rejected).
        let volts = self.domain_supply[self.topo.driver_domain(ev.net).index()].volts();
        let energy = 0.5 * self.topo.load(ev.net).farads() * volts * volts;
        let mut newly_dead = 0u64;
        let mut m = changed;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            self.last_change[ni * LANES + l] = ev.time;
            self.stats.events[l] += 1;
            self.energy_j[l] += energy;
            if let Some(b) = self.event_budget {
                if self.budget_lanes & (1 << l) != 0 && self.stats.events[l] > b {
                    newly_dead |= 1 << l;
                }
            }
        }
        // Re-evaluate combinational fanout for the changed lanes only
        // (scalar apply returns before fanout on a same-value event).
        for idx in 0..self.topo.fanout(ev.net).len() {
            let gi = self.topo.fanout(ev.net)[idx];
            self.evaluate_gate(gi, ev.time, changed);
        }
        // Clock pins: lanes with a Zero→One edge sample their FFs.
        let rising = changed & old_def & !old_val & self.def[ni] & self.val[ni];
        if rising != 0 {
            for idx in 0..self.topo.clk_fanout(ev.net).len() {
                let fi = self.topo.clk_fanout(ev.net)[idx];
                self.capture_ff(fi, ev.time, rising);
            }
        }
        // Budget-crossing lanes die only after this event finished in
        // full — the scalar kernel also applies the crossing event
        // (fanout scheduling included) before erroring out.
        self.dead |= newly_dead;
        changed
    }

    /// Re-evaluates one gate for `lanes`, scheduling per (delay band,
    /// output edge) coalesced events for lanes whose outcome differs
    /// from the effective (pending-or-current) output.
    fn evaluate_gate(&mut self, gi: GateId, at: Time, lanes: u64) {
        let gate = &self.netlist.gates()[gi.index()];
        let pins = self.topo.gate_inputs(gi);
        let mut ins = [(0u64, 0u64); MAX_GATE_INPUTS];
        for (k, &i) in pins.iter().enumerate() {
            ins[k] = (self.val[i.index()], self.def[i.index()]);
        }
        let (nv, nd) = eval_planes(gate.cell().function(), &ins[..pins.len()]);
        let out = gate.output();
        let oi = out.index();
        let pm = self.pend_mask[oi];
        let eff_v = (self.val[oi] & !pm) | (self.pend_val[oi] & pm);
        let eff_d = (self.def[oi] & !pm) | (self.pend_def[oi] & pm);
        let diff = lanes & ((nv ^ eff_v) | (nd ^ eff_d));
        if diff == 0 {
            return;
        }
        // Edge-specific arcs within each delay band: rising lanes take
        // the rise arc, falling the fall arc, unknown the worst arc.
        let b0 = self.band_off[gi.index()] as usize;
        let b1 = self.band_off[gi.index() + 1] as usize;
        for b in b0..b1 {
            let bm = self.band_masks[b] & diff;
            if bm == 0 {
                continue;
            }
            let delays = self.band_delays[b];
            let rise = bm & nd & nv;
            if rise != 0 {
                self.schedule_lanes(at + delays.rise, out, rise, nv, nd);
            }
            let fall = bm & nd & !nv;
            if fall != 0 {
                self.schedule_lanes(at + delays.fall, out, fall, nv, nd);
            }
            let unknown = bm & !nd;
            if unknown != 0 {
                self.schedule_lanes(at + delays.worst, out, unknown, nv, nd);
            }
        }
    }

    /// Samples one flip-flop on a rising clock edge in `rising` lanes.
    /// Each lane runs the scalar capture pipeline (arrival window,
    /// metastability, transient flip, effective-Q compare); resulting
    /// captures are grouped by (value, clk-to-out) into coalesced
    /// events using fixed stack buffers.
    fn capture_ff(&mut self, fi: DffId, edge: Time, rising: u64) {
        let ff = &self.netlist.dffs()[fi.index()];
        let di = ff.d().index();
        let q = ff.q();
        let qi = q.index();
        let mut n_groups = 0usize;
        let mut g_value = [Logic::X; LANES];
        let mut g_delay = [Time::ZERO; LANES];
        let mut g_mask = [0u64; LANES];
        let mut m = rising;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            let bit = 1u64 << l;
            let arrival = self.last_change[di * LANES + l] - edge;
            let d_new = lane_logic(self.val[di], self.def[di], l);
            let d_old = lane_logic(self.prev_val[di], self.prev_def[di], l);
            let outcome = ff.model().sample(arrival, d_new, d_old);
            self.stats.ff_captures[l] += 1;
            let mut value = if outcome.metastable {
                self.stats.ff_violations[l] += 1;
                match self.meta_mode {
                    MetastabilityMode::Deterministic => outcome.value,
                    MetastabilityMode::PropagateX => Logic::X,
                }
            } else {
                outcome.value
            };
            // Transient fault: one per-lane stream draw per capture
            // (flip or not, keeping the stream aligned with captures).
            if let Some(f) = self.faults.as_mut() {
                if f.transient_mask & bit != 0 && f.rngs[l].next_f64() < f.transient_p[l] {
                    value = match value {
                        Logic::One => Logic::Zero,
                        Logic::Zero => Logic::One,
                        other => other,
                    };
                }
            }
            let eff = if self.pend_mask[qi] & bit != 0 {
                lane_logic(self.pend_val[qi], self.pend_def[qi], l)
            } else {
                lane_logic(self.val[qi], self.def[qi], l)
            };
            if value == eff {
                continue;
            }
            let mut k = 0;
            while k < n_groups {
                if g_value[k] == value
                    && g_delay[k].total_cmp(&outcome.clk_to_out) == Ordering::Equal
                {
                    break;
                }
                k += 1;
            }
            if k == n_groups {
                g_value[k] = value;
                g_delay[k] = outcome.clk_to_out;
                g_mask[k] = 0;
                n_groups += 1;
            }
            g_mask[k] |= bit;
        }
        for k in 0..n_groups {
            let (v, d) = logic_planes(g_value[k]);
            self.schedule_lanes(edge + g_delay[k], q, g_mask[k], v, d);
        }
    }

    // --- BATCH HOT LOOP END --------------------------------------------
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use psnt_cells::dff::Dff;
    use psnt_cells::gates::StdCell;

    fn v(x: f64) -> Voltage {
        Voltage::from_v(x)
    }

    #[test]
    fn plane_ops_match_scalar_eval_exhaustively() {
        // Every gate function, every input combination over {0, 1, X}
        // (Z has no plane encoding; it collapses to X on entry), packed
        // one combination per lane.
        let functions = [
            GateFunction::Inv,
            GateFunction::Buf,
            GateFunction::Nand2,
            GateFunction::Nor2,
            GateFunction::And2,
            GateFunction::Or2,
            GateFunction::Xor2,
            GateFunction::Xnor2,
            GateFunction::Nand3,
            GateFunction::Nor3,
            GateFunction::And3,
            GateFunction::Or3,
            GateFunction::Mux2,
            GateFunction::Aoi21,
            GateFunction::Oai21,
        ];
        let levels = [Logic::Zero, Logic::One, Logic::X];
        for f in functions {
            let arity = f.num_inputs();
            let combos = 3usize.pow(arity as u32);
            assert!(combos <= LANES);
            let mut ins = [(0u64, 0u64); MAX_GATE_INPUTS];
            let mut expected = [Logic::X; LANES];
            for (c, exp) in expected.iter_mut().enumerate().take(combos) {
                let mut key = c;
                let mut scalar_ins = [Logic::X; MAX_GATE_INPUTS];
                for (pin, slot) in scalar_ins.iter_mut().enumerate().take(arity) {
                    let value = levels[key % 3];
                    key /= 3;
                    *slot = value;
                    let (pv, pd) = logic_planes(value);
                    let bit = 1u64 << c;
                    ins[pin].0 = (ins[pin].0 & !bit) | (pv & bit);
                    ins[pin].1 = (ins[pin].1 & !bit) | (pd & bit);
                }
                *exp = f.eval(&scalar_ins[..arity]);
            }
            let (ov, od) = eval_planes(f, &ins[..arity]);
            assert_eq!(ov & !od, 0, "{f:?}: val ⊄ def");
            for (c, &want) in expected.iter().enumerate().take(combos) {
                assert_eq!(
                    lane_logic(ov, od, c),
                    want,
                    "{f:?} lane {c} diverges from scalar eval"
                );
            }
        }
    }

    /// A small clocked circuit: two inverter chains into an XOR, whose
    /// output feeds a DFF clocked by a dedicated input.
    fn clocked_netlist() -> Netlist {
        let mut n = Netlist::new("batch_test");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let clk = n.add_input("clk");
        let mut pa = a;
        for i in 0..3 {
            pa = n
                .add_gate(format!("ia{i}"), StdCell::inverter(1.0), &[pa])
                .unwrap();
        }
        let mut pb = b;
        for i in 0..2 {
            pb = n
                .add_gate(format!("ib{i}"), StdCell::inverter(1.0), &[pb])
                .unwrap();
        }
        let x = n.add_gate("x", StdCell::xor2(1.0), &[pa, pb]).unwrap();
        let q = n.add_dff("ff", Dff::standard_90nm(), x, clk, Logic::Zero);
        n.mark_output("q", q);
        n
    }

    /// Runs the shared stimulus on a scalar simulator carrying `plan`
    /// and on one lane of `batch`, then asserts value/stats/energy
    /// bit-identity on every net at the end.
    fn assert_lane_matches(n: &Netlist, batch: &BatchSimulator<'_>, lane: usize, plan: &FaultPlan) {
        let mut sim = Simulator::new(n, v(1.0)).unwrap();
        sim.set_fault_plan(plan).unwrap();
        sim.reset();
        drive_stimulus_scalar(&mut sim, n);
        sim.run_until(Time::from_ns(40.0));
        for (id, _net) in n.nets() {
            assert_eq!(
                batch.value(id, lane),
                sim.value(id),
                "net {:?} lane {lane}",
                n.net(id).name()
            );
        }
        assert_eq!(batch.stats().lane(lane), *sim.stats(), "stats lane {lane}");
        assert_eq!(
            batch.switching_energy_joules(lane).to_bits(),
            sim.switching_energy_joules().to_bits(),
            "energy lane {lane}"
        );
    }

    fn drive_stimulus_scalar(sim: &mut Simulator<'_>, n: &Netlist) {
        let a = n.net_by_name("a").unwrap();
        let b = n.net_by_name("b").unwrap();
        let clk = n.net_by_name("clk").unwrap();
        sim.drive(a, Logic::Zero, Time::ZERO).unwrap();
        sim.drive(b, Logic::One, Time::ZERO).unwrap();
        sim.drive(a, Logic::One, Time::from_ns(4.0)).unwrap();
        sim.drive(b, Logic::Zero, Time::from_ns(9.0)).unwrap();
        sim.drive_clock(clk, Time::from_ns(6.0), Time::from_ns(8.0), 4)
            .unwrap();
    }

    fn drive_stimulus_batch(sim: &mut BatchSimulator<'_>, n: &Netlist) {
        let a = n.net_by_name("a").unwrap();
        let b = n.net_by_name("b").unwrap();
        let clk = n.net_by_name("clk").unwrap();
        sim.drive(a, Logic::Zero, Time::ZERO).unwrap();
        sim.drive(b, Logic::One, Time::ZERO).unwrap();
        sim.drive(a, Logic::One, Time::from_ns(4.0)).unwrap();
        sim.drive(b, Logic::Zero, Time::from_ns(9.0)).unwrap();
        sim.drive_clock(clk, Time::from_ns(6.0), Time::from_ns(8.0), 4)
            .unwrap();
    }

    #[test]
    fn healthy_lanes_match_scalar_simulator() {
        let n = clocked_netlist();
        let mut batch = BatchSimulator::new(&n, v(1.0)).unwrap();
        drive_stimulus_batch(&mut batch, &n);
        batch.run_until(Time::from_ns(40.0));
        for lane in [0, 1, 37, 63] {
            assert_lane_matches(&n, &batch, lane, &FaultPlan::new());
        }
    }

    #[test]
    fn per_lane_fault_plans_match_scalar_runs() {
        let n = clocked_netlist();
        let plans = vec![
            FaultPlan::new(),
            FaultPlan::new().with(Fault::stuck_at("ia1.out", Logic::Zero)),
            FaultPlan::new().with(Fault::stuck_at("x.out", Logic::One)),
            FaultPlan::new().with(Fault::delay_scale("ia0", 3.0)),
            FaultPlan::new()
                .with(Fault::stuck_at("ib0.out", Logic::One))
                .with(Fault::delay_scale("x", 1.7)),
            FaultPlan::new().with(Fault::bit_upset("ff", Time::from_ns(16.0))),
            FaultPlan::new().with(Fault::Transient {
                probability: 0.8,
                seed: 41,
            }),
        ];
        let mut batch = BatchSimulator::new(&n, v(1.0)).unwrap();
        batch.set_fault_plans(&plans).unwrap();
        batch.reset();
        drive_stimulus_batch(&mut batch, &n);
        batch.run_until(Time::from_ns(40.0));
        for (lane, plan) in plans.iter().enumerate() {
            assert_lane_matches(&n, &batch, lane, plan);
        }
        // Lanes past the plan list run healthy.
        assert_lane_matches(&n, &batch, 63, &FaultPlan::new());
    }

    #[test]
    fn banding_is_exact_for_few_distinct_factors() {
        let n = clocked_netlist();
        // 8 distinct factors cycling over the lanes: banding stays exact.
        let plans: Vec<FaultPlan> = (0..LANES)
            .map(|l| FaultPlan::new().with(Fault::delay_scale("ia0", 1.0 + 0.25 * (l % 8) as f64)))
            .collect();
        let mut batch = BatchSimulator::new(&n, v(1.0)).unwrap();
        batch.set_fault_plans(&plans).unwrap();
        batch.reset();
        drive_stimulus_batch(&mut batch, &n);
        batch.run_until(Time::from_ns(40.0));
        for lane in [0, 5, 7, 8, 42] {
            assert_lane_matches(&n, &batch, lane, &plans[lane]);
        }
    }

    #[test]
    fn quantized_banding_respects_geometric_bound() {
        let mut factors = [0.0f64; LANES];
        for (l, f) in factors.iter_mut().enumerate() {
            *f = 1.0 + 0.02 * l as f64; // 64 distinct values, spread 2.26×
        }
        let (nb, band_f, band_m) = plan_bands(&factors);
        assert_eq!(nb, MAX_DELAY_BANDS);
        let mut covered = 0u64;
        for m in band_m.iter().take(nb) {
            assert_eq!(covered & m, 0, "bands overlap");
            covered |= m;
        }
        assert_eq!(covered, ALL_LANES);
        let fmin: f64 = 1.0;
        let fmax: f64 = 1.0 + 0.02 * 63.0;
        let r = (fmax / fmin).powf(1.0 / (MAX_DELAY_BANDS - 1) as f64);
        let bound = r.sqrt();
        for (l, &f) in factors.iter().enumerate() {
            let band = (0..nb)
                .find(|&k| band_m[k] & (1 << l) != 0)
                .expect("lane in a band");
            let ratio = band_f[band] / f;
            assert!(
                ratio < bound * 1.000_001 && ratio > 1.0 / (bound * 1.000_001),
                "lane {l}: snapped {} vs true {f} breaks the √r bound {bound}",
                band_f[band]
            );
        }
    }

    #[test]
    fn budget_deadens_only_guarded_lanes() {
        let n = clocked_netlist();
        let mut batch = BatchSimulator::new(&n, v(1.0)).unwrap();
        batch.set_event_budget(Some(3));
        batch.set_event_budget_lanes(1); // guard lane 0 only
        drive_stimulus_batch(&mut batch, &n);
        batch.run_until(Time::from_ns(40.0));
        assert_eq!(batch.dead_lanes(), 1);
        // Lane 0 froze at budget + 1 applied events (the crossing event
        // lands in full, like the scalar BudgetExceeded stop).
        assert_eq!(batch.stats().events[0], 4);
        // Unguarded lanes ran to completion and still match scalar.
        assert_lane_matches(&n, &batch, 1, &FaultPlan::new());
    }

    #[test]
    fn supply_glitch_plans_are_rejected() {
        let n = clocked_netlist();
        let mut batch = BatchSimulator::new(&n, v(1.0)).unwrap();
        let glitch = || {
            FaultPlan::new().with(Fault::supply_glitch(
                "core",
                (Time::from_ns(1.0), Time::from_ns(2.0)),
                Voltage::from_mv(-50.0),
            ))
        };
        let err = batch.set_fault_plans(&[glitch()]).unwrap_err();
        assert_eq!(
            err,
            NetlistError::UnsupportedBatchFault {
                fault: "supply-glitch",
                lane: 0,
            }
        );
        assert!(!batch.has_fault_plans());
        // The lane index names the offending plan, not the batch: a
        // glitch hiding behind healthy lanes is reported at its lane.
        let plans = vec![FaultPlan::new(), FaultPlan::new(), glitch()];
        let err = batch.set_fault_plans(&plans).unwrap_err();
        assert_eq!(
            err,
            NetlistError::UnsupportedBatchFault {
                fault: "supply-glitch",
                lane: 2,
            }
        );
    }

    #[test]
    fn too_many_plans_are_rejected() {
        let n = clocked_netlist();
        let mut batch = BatchSimulator::new(&n, v(1.0)).unwrap();
        let plans = vec![FaultPlan::new(); LANES + 1];
        assert!(matches!(
            batch.set_fault_plans(&plans),
            Err(NetlistError::InvalidFault(_))
        ));
    }

    #[test]
    fn reset_rearms_fault_schedules_bit_identically() {
        let n = clocked_netlist();
        let plans = vec![
            FaultPlan::new().with(Fault::bit_upset("ff", Time::from_ns(16.0))),
            FaultPlan::new().with(Fault::Transient {
                probability: 0.5,
                seed: 7,
            }),
        ];
        let mut batch = BatchSimulator::new(&n, v(1.0)).unwrap();
        batch.set_fault_plans(&plans).unwrap();
        batch.reset();
        drive_stimulus_batch(&mut batch, &n);
        batch.run_until(Time::from_ns(40.0));
        let first: Vec<Logic> = n.nets().map(|(id, _)| batch.value(id, 0)).collect();
        let stats = batch.stats().clone();
        batch.reset();
        drive_stimulus_batch(&mut batch, &n);
        batch.run_until(Time::from_ns(40.0));
        let second: Vec<Logic> = n.nets().map(|(id, _)| batch.value(id, 0)).collect();
        assert_eq!(first, second);
        assert_eq!(stats, *batch.stats());
    }
}
