//! Kernel-equivalence proptests for the optimized simulator.
//!
//! The PR-3 kernel (reusable simulators, CSR topology, per-gate delay
//! cache, selective trace capture) must not change a single simulation
//! result. These properties pin the contract:
//!
//! (a) a `reset()`-reused simulator is bit-identical to a fresh
//!     `Simulator::new` over random stimulus sequences;
//! (b) the per-gate delay cache agrees with on-demand delay computation
//!     across supplies and PVT corners, including after supply changes;
//! (c) `TraceMode::Watched` records exactly what `TraceMode::Full`
//!     records on the watched nets.

use proptest::prelude::*;
use psnt_cells::gates::StdCell;
use psnt_cells::logic::Logic;
use psnt_cells::process::{ProcessCorner, Pvt};
use psnt_cells::units::{Temperature, Time, Voltage};
use psnt_netlist::graph::{NetId, Netlist};
use psnt_netlist::sim::{Simulator, TraceMode};

/// A random combinational DAG with a flip-flop on every fourth gate
/// output: each gate reads previously created nets only, so the graph is
/// acyclic by construction.
fn random_netlist(
    gate_picks: &[(u8, u8, u8, u8)],
    n_inputs: usize,
) -> (Netlist, Vec<NetId>, NetId, Vec<NetId>) {
    let mut n = Netlist::new("equiv");
    let clk = n.add_input("clk");
    let inputs: Vec<NetId> = (0..n_inputs)
        .map(|i| n.add_input(format!("in{i}")))
        .collect();
    let mut nets = inputs.clone();
    let mut interesting = Vec::new();
    let ff = psnt_cells::dff::Dff::standard_90nm();
    for (gi, &(kind, a, b, c)) in gate_picks.iter().enumerate() {
        let cell = match kind % 6 {
            0 => StdCell::inverter(1.0),
            1 => StdCell::nand2(1.0),
            2 => StdCell::nor2(1.0),
            3 => StdCell::xor2(1.0),
            4 => StdCell::mux2(1.0),
            _ => StdCell::and3(1.0),
        };
        let pick = |x: u8| nets[x as usize % nets.len()];
        let ins: Vec<NetId> = match cell.num_inputs() {
            1 => vec![pick(a)],
            2 => vec![pick(a), pick(b)],
            _ => vec![pick(a), pick(b), pick(c)],
        };
        let out = n.add_gate(format!("g{gi}"), cell, &ins).unwrap();
        interesting.push(out);
        if gi % 4 == 3 {
            let q = n.add_dff(format!("ff{gi}"), ff, out, clk, Logic::Zero);
            interesting.push(q);
            nets.push(q);
        }
        nets.push(out);
    }
    let last = *interesting.last().unwrap();
    n.mark_output("keep", last);
    (n, inputs, clk, interesting)
}

/// Applies one stimulus "measurement" — input drives plus a clock burst —
/// and runs it out.
fn apply_stimulus(
    sim: &mut Simulator<'_>,
    inputs: &[NetId],
    clk: NetId,
    bits: &[bool],
    flips: &[bool],
) {
    for (i, (&net, &b)) in inputs.iter().zip(bits).enumerate() {
        sim.drive(net, Logic::from(b), Time::from_ps(10.0 * i as f64))
            .unwrap();
    }
    for (i, (&net, (&b, &f))) in inputs.iter().zip(bits.iter().zip(flips)).enumerate() {
        sim.drive(
            net,
            Logic::from(b ^ f),
            Time::from_ns(4.0) + Time::from_ps(10.0 * i as f64),
        )
        .unwrap();
    }
    sim.drive_clock(clk, Time::from_ns(2.0), Time::from_ns(3.0), 4)
        .unwrap();
    sim.run_to_quiescence(1_000_000);
}

/// Everything observable about a finished run, for exact comparison:
/// every gate/FF output value plus the full event statistics.
fn snapshot(sim: &Simulator<'_>, nets: &[NetId]) -> (Vec<Logic>, u64, u64, u64, u64) {
    let values = nets.iter().map(|&net| sim.value(net)).collect();
    let s = sim.stats();
    (
        values,
        s.events,
        s.cancelled,
        s.ff_captures,
        s.ff_violations,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (a) Fresh construction vs `reset()` reuse: one simulator replaying
    /// a sequence of random measurements matches a fresh simulator per
    /// measurement on every net value, event statistic, switching-energy
    /// accumulator and trace edge.
    #[test]
    fn reset_reuse_is_bit_identical_to_fresh(
        gate_picks in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..20),
        measurements in proptest::collection::vec(
            (proptest::collection::vec(any::<bool>(), 3), proptest::collection::vec(any::<bool>(), 3)),
            1..4,
        ),
    ) {
        let (n, inputs, clk, interesting) = random_netlist(&gate_picks, 3);
        let mut reused = Simulator::new(&n, Voltage::from_v(1.0)).unwrap();
        for (mi, (bits, flips)) in measurements.iter().enumerate() {
            if mi > 0 {
                reused.reset();
            }
            apply_stimulus(&mut reused, &inputs, clk, bits, flips);
            let mut fresh = Simulator::new(&n, Voltage::from_v(1.0)).unwrap();
            apply_stimulus(&mut fresh, &inputs, clk, bits, flips);
            prop_assert_eq!(
                snapshot(&reused, &interesting),
                snapshot(&fresh, &interesting),
                "measurement {}", mi
            );
            prop_assert_eq!(
                reused.switching_energy_joules().to_bits(),
                fresh.switching_energy_joules().to_bits(),
                "energy diverged at measurement {}", mi
            );
            for &net in &interesting {
                prop_assert_eq!(
                    reused.trace().edges(reused.signal(net)),
                    fresh.trace().edges(fresh.signal(net)),
                    "trace diverged on {} at measurement {}", n.net(net).name(), mi
                );
            }
        }
    }

    /// (b) The per-gate delay cache equals on-demand computation from the
    /// cell's delay model at every (supply, PVT) point visited, including
    /// after `set_supply` / `set_domain_supply` invalidations.
    #[test]
    fn delay_cache_matches_on_demand(
        gate_picks in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..16),
        supply_mv in 700.0..1250.0f64,
        second_mv in 700.0..1250.0f64,
        corner_idx in 0usize..5,
        temp_c in -20.0..110.0f64,
    ) {
        let (n, _, _, _) = random_netlist(&gate_picks, 3);
        let corner = ProcessCorner::ALL[corner_idx];
        let pvt = Pvt::new(corner, Voltage::from_v(1.0), Temperature::from_celsius(temp_c));
        let mut supply = Voltage::from_mv(supply_mv);
        let mut sim = Simulator::with_pvt(&n, supply, pvt).unwrap();

        let check = |sim: &Simulator<'_>, supply: Voltage| {
            for (gi, g) in n.gates().iter().enumerate() {
                let gid = psnt_netlist::graph::GateId::from_index(gi);
                let load = n.load(g.output());
                let (rise, fall, worst) = sim.cached_gate_delays(gid);
                assert_eq!(rise, g.cell().propagation_delay_edge(supply, load, &pvt, true));
                assert_eq!(fall, g.cell().propagation_delay_edge(supply, load, &pvt, false));
                assert_eq!(worst, g.cell().propagation_delay(supply, load, &pvt));
            }
        };
        check(&sim, supply);
        // Whole-simulator supply change rebuilds every entry.
        supply = Voltage::from_mv(second_mv);
        sim.set_supply(supply);
        check(&sim, supply);
        // A per-domain change refreshes that domain (all gates here are
        // in the core domain) and a reset must leave the cache intact.
        sim.set_domain_supply(psnt_netlist::graph::DomainId::CORE, Voltage::from_mv(supply_mv));
        sim.reset();
        check(&sim, Voltage::from_mv(supply_mv));
    }

    /// (c) `TraceMode::Watched` agrees with `TraceMode::Full` on the
    /// watched nets: identical edge lists, identical simulated values.
    #[test]
    fn watched_trace_agrees_with_full(
        gate_picks in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..20),
        watch_picks in proptest::collection::vec(any::<u8>(), 1..5),
        bits in proptest::collection::vec(any::<bool>(), 3),
        flips in proptest::collection::vec(any::<bool>(), 3),
    ) {
        let (n, inputs, clk, interesting) = random_netlist(&gate_picks, 3);
        let watched: Vec<NetId> = watch_picks
            .iter()
            .map(|&w| interesting[w as usize % interesting.len()])
            .collect();
        let mut full = Simulator::new(&n, Voltage::from_v(1.0)).unwrap();
        let mut part = Simulator::with_options(
            &n,
            Voltage::from_v(1.0),
            Pvt::typical(),
            TraceMode::Watched(watched.clone()),
        )
        .unwrap();
        apply_stimulus(&mut full, &inputs, clk, &bits, &flips);
        apply_stimulus(&mut part, &inputs, clk, &bits, &flips);
        prop_assert_eq!(snapshot(&full, &interesting), snapshot(&part, &interesting));
        for &net in &watched {
            prop_assert_eq!(
                full.trace().edges(full.signal(net)),
                part.trace().edges(part.signal(net)),
                "watched trace diverged on {}", n.net(net).name()
            );
        }
    }
}
