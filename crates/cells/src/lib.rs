//! # psnt-cells — standard-cell timing substrate
//!
//! This crate is the lowest layer of the `psn-thermometer` workspace, the
//! reproduction of *“A fully digital power supply noise thermometer”*
//! (Graziano & Vittori, IEEE SOCC 2009). It stands in for what the paper
//! obtained from a 90 nm standard-cell library plus ELDO post-layout
//! simulation:
//!
//! * [`units`] — typed physical quantities ([`units::Time`],
//!   [`units::Voltage`], [`units::Capacitance`], …);
//! * [`logic`] — four-valued logic and vectors;
//! * [`process`] — process corners, temperature derating, PVT points;
//! * [`mosfet`] — the Sakurai–Newton alpha-power-law drive model;
//! * [`delay`] — gate delay models (analytic alpha-power and NLDM-style
//!   tables), the physics behind the sensor's voltage→delay conversion;
//! * [`gates`] — combinational standard cells;
//! * [`dff`] — the flip-flop with setup/hold windows and metastability,
//!   the element the sensor deliberately drives into violation;
//! * [`latch`] — a level-sensitive latch (used by the Razor baseline);
//! * [`library`] — a named cell collection (the `.lib` analogue).
//!
//! # Example: the sensing principle in three lines
//!
//! ```
//! use psnt_cells::delay::{AlphaPowerDelay, DelayModel};
//! use psnt_cells::process::Pvt;
//! use psnt_cells::units::{Capacitance, Voltage};
//!
//! let inv = AlphaPowerDelay::paper_sense_inverter();
//! let c = Capacitance::from_pf(2.0);
//! let nominal = inv.propagation_delay(Voltage::from_v(1.00), c, &Pvt::typical());
//! let droopy = inv.propagation_delay(Voltage::from_v(0.90), c, &Pvt::typical());
//! // A supply droop slows the inverter — that is the whole sensor.
//! assert!(droopy > nominal);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod delay;
pub mod dff;
pub mod error;
pub mod fastmath;
pub mod gates;
pub mod latch;
pub mod library;
pub mod logic;
pub mod mosfet;
pub mod process;
pub mod units;

pub use delay::{AlphaPowerDelay, DelayModel, TableDelay};
pub use dff::{Dff, SampleOutcome};
pub use error::CellError;
pub use gates::{GateFunction, StdCell};
pub use latch::Latch;
pub use library::CellLibrary;
pub use logic::{Logic, LogicVector};
pub use mosfet::AlphaPowerModel;
pub use process::{ProcessCorner, Pvt};
pub use units::{
    Capacitance, Current, Frequency, Inductance, Resistance, Temperature, Time, Voltage,
};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::AlphaPowerDelay>();
        assert_send_sync::<crate::TableDelay>();
        assert_send_sync::<crate::Dff>();
        assert_send_sync::<crate::CellLibrary>();
        assert_send_sync::<crate::LogicVector>();
        assert_send_sync::<crate::Pvt>();
    }
}
