//! Edge-triggered D flip-flop with setup/hold windows and metastability.
//!
//! The paper's sensor works by *deliberately* running a flip-flop into a
//! setup violation: when the noisy supply sags, the delay-sense node `DS`
//! arrives after `CP − t_setup` and the FF "fails the evaluation"
//! (captures the stale value). Fig. 2 additionally shows the tell-tale
//! metastability signature — "OUT delay increases in a not linear way" as
//! the data edge approaches the failure boundary, on *both* sides of it.
//!
//! [`Dff::sample`] models three orthogonal aspects of a capture:
//!
//! * **captured value** — deterministic and spec-accurate: the new value
//!   is captured iff the data edge settles at least `t_setup` before the
//!   clock edge; any later arrival keeps the old value (this is the
//!   boundary the sensor's thresholds are calibrated against);
//! * **violation flag** — raised whenever the data edge falls inside the
//!   spec setup/hold window `(−t_setup, +t_hold)`;
//! * **resolution delay** — the clock-to-output delay is amplified by the
//!   classic `τ·ln(w/Δ)` law as the arrival approaches the capture
//!   boundary within the metastability window `w`, whichever side it is
//!   on. A passing-but-barely capture therefore resolves late, exactly as
//!   the paper's Fig. 2 cases 1–3 show.
//!
//! [`Dff::sample_with_rng`] additionally randomises the captured value
//! inside the metastability window (probability of the new value falling
//! linearly from 1 at `boundary − w` to 0 at `boundary + w`).
//!
//! # Examples
//!
//! ```
//! use psnt_cells::dff::Dff;
//! use psnt_cells::logic::Logic;
//! use psnt_cells::units::Time;
//!
//! let ff = Dff::standard_90nm();
//! // Data arrived 50 ps before the clock edge: comfortably captured.
//! let ok = ff.sample(Time::from_ps(-50.0), Logic::One, Logic::Zero);
//! assert_eq!(ok.value, Logic::One);
//! assert!(!ok.metastable);
//! // Data arrived 10 ps after the edge: the old value is retained.
//! let late = ff.sample(Time::from_ps(10.0), Logic::One, Logic::Zero);
//! assert_eq!(late.value, Logic::Zero);
//! ```

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::CellError;
use crate::logic::Logic;
use crate::units::{Capacitance, Time};

/// Result of a flip-flop sampling event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampleOutcome {
    /// The captured output value.
    pub value: Logic,
    /// Delay from the active clock edge to a settled output.
    pub clk_to_out: Time,
    /// `true` when the data edge violated the spec setup/hold window.
    pub metastable: bool,
    /// Proximity to the capture boundary in `[0, 1]`: 0 outside the
    /// metastability window, 1 exactly at the boundary (longest
    /// resolution).
    pub severity: f64,
}

impl SampleOutcome {
    fn clean(value: Logic, clk_to_out: Time) -> SampleOutcome {
        SampleOutcome {
            value,
            clk_to_out,
            metastable: false,
            severity: 0.0,
        }
    }
}

/// A positive-edge-triggered D flip-flop timing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Dff {
    setup: Time,
    hold: Time,
    clk_to_q: Time,
    /// Metastability resolution time constant τ.
    tau: Time,
    /// Half-width of the metastability region around the capture
    /// boundary; arrivals within it resolve slowly.
    meta_window: Time,
    /// Upper bound on the resolution-time amplification, to keep the
    /// model finite exactly at the boundary.
    max_resolution: Time,
    d_capacitance: Capacitance,
    clk_capacitance: Capacitance,
}

impl Dff {
    /// Creates a flip-flop model.
    ///
    /// # Errors
    ///
    /// Returns [`CellError::InvalidParameter`] when any duration is
    /// negative, `clk_to_q`, `tau` or `meta_window` is non-positive, or
    /// `max_resolution < clk_to_q`.
    pub fn new(
        setup: Time,
        hold: Time,
        clk_to_q: Time,
        tau: Time,
        meta_window: Time,
        max_resolution: Time,
    ) -> Result<Dff, CellError> {
        if setup < Time::ZERO || hold < Time::ZERO {
            return Err(CellError::InvalidParameter {
                name: "setup/hold",
                reason: "setup and hold must be non-negative".into(),
            });
        }
        if clk_to_q <= Time::ZERO {
            return Err(CellError::InvalidParameter {
                name: "clk_to_q",
                reason: "clock-to-Q must be positive".into(),
            });
        }
        if tau <= Time::ZERO || meta_window <= Time::ZERO {
            return Err(CellError::InvalidParameter {
                name: "tau/meta_window",
                reason: "metastability constants must be positive".into(),
            });
        }
        if max_resolution < clk_to_q {
            return Err(CellError::InvalidParameter {
                name: "max_resolution",
                reason: "resolution bound must be at least clk_to_q".into(),
            });
        }
        Ok(Dff {
            setup,
            hold,
            clk_to_q,
            tau,
            meta_window,
            max_resolution,
            d_capacitance: Capacitance::from_ff(2.2),
            clk_capacitance: Capacitance::from_ff(1.6),
        })
    }

    /// The 90 nm library flip-flop used by the sensor: 30 ps setup,
    /// 15 ps hold, 90 ps clock-to-Q, τ = 12 ps, 8 ps metastability
    /// half-window, resolution capped at 600 ps. The 30 ps setup together
    /// with the PG's 84 ps clock-path offset yields the 54 ps base sense
    /// window of `DESIGN.md` §2.
    pub fn standard_90nm() -> Dff {
        Dff {
            setup: Time::from_ps(30.0),
            hold: Time::from_ps(15.0),
            clk_to_q: Time::from_ps(90.0),
            tau: Time::from_ps(12.0),
            meta_window: Time::from_ps(8.0),
            max_resolution: Time::from_ps(600.0),
            d_capacitance: Capacitance::from_ff(2.2),
            clk_capacitance: Capacitance::from_ff(1.6),
        }
    }

    /// Setup time.
    pub fn setup(&self) -> Time {
        self.setup
    }

    /// Hold time.
    pub fn hold(&self) -> Time {
        self.hold
    }

    /// Nominal clock-to-Q delay.
    pub fn clk_to_q(&self) -> Time {
        self.clk_to_q
    }

    /// Metastability resolution time constant τ.
    pub fn tau(&self) -> Time {
        self.tau
    }

    /// Half-width of the metastability region around the capture boundary.
    pub fn meta_window(&self) -> Time {
        self.meta_window
    }

    /// Flip-flop area in gate equivalents (a 90 nm D-FF is ≈ 4.5 NAND2
    /// footprints).
    pub fn area_ge(&self) -> f64 {
        4.5
    }

    /// Leakage power estimate in nanowatts.
    pub fn leakage_nw(&self) -> f64 {
        self.area_ge() * crate::gates::LEAKAGE_NW_PER_GE
    }

    /// Capacitance of the D pin.
    pub fn d_capacitance(&self) -> Capacitance {
        self.d_capacitance
    }

    /// Capacitance of the CLK pin.
    pub fn clk_capacitance(&self) -> Capacitance {
        self.clk_capacitance
    }

    /// The capture boundary relative to the clock edge: data settling at
    /// or before `−t_setup` is captured, anything later is not.
    pub fn capture_boundary(&self) -> Time {
        -self.setup
    }

    /// Samples a data edge arriving at `arrival_after_edge` relative to the
    /// active clock edge (negative = before the edge). `new_value` is the
    /// level the data settles to; `old_value` is the level it had before.
    ///
    /// Deterministic: the new value is captured iff the arrival respects
    /// the setup time. Use [`Dff::sample_with_rng`] for a stochastic
    /// boundary.
    pub fn sample(
        &self,
        arrival_after_edge: Time,
        new_value: Logic,
        old_value: Logic,
    ) -> SampleOutcome {
        let boundary = self.capture_boundary();
        let value = if arrival_after_edge <= boundary {
            new_value
        } else {
            old_value
        };
        let violation = arrival_after_edge > -self.setup && arrival_after_edge < self.hold;
        let severity = self.severity(arrival_after_edge);
        if !violation && severity == 0.0 {
            return SampleOutcome::clean(value, self.clk_to_q);
        }
        SampleOutcome {
            value,
            clk_to_out: self.resolution_delay(severity),
            metastable: violation,
            severity,
        }
    }

    /// Like [`Dff::sample`], but resolving captures inside the
    /// metastability window randomly: the probability of capturing the new
    /// value falls linearly from 1 at `boundary − w` to 0 at
    /// `boundary + w`.
    pub fn sample_with_rng<R: Rng + ?Sized>(
        &self,
        arrival_after_edge: Time,
        new_value: Logic,
        old_value: Logic,
        rng: &mut R,
    ) -> SampleOutcome {
        let base = self.sample(arrival_after_edge, new_value, old_value);
        if base.severity == 0.0 {
            return base;
        }
        let p_new = self.capture_probability(arrival_after_edge);
        let value = if rng.gen_bool(p_new.clamp(0.0, 1.0)) {
            new_value
        } else {
            old_value
        };
        SampleOutcome { value, ..base }
    }

    /// Probability of capturing the *new* value for a data edge at the
    /// given arrival: 1 below `boundary − w`, 0 above `boundary + w`,
    /// linear in between (0.5 exactly at the capture boundary).
    pub fn capture_probability(&self, arrival_after_edge: Time) -> f64 {
        let boundary = self.capture_boundary();
        let w = self.meta_window;
        let x = (arrival_after_edge - (boundary - w)) / (w * 2.0);
        (1.0 - x).clamp(0.0, 1.0)
    }

    /// Proximity to the capture boundary: 1 at the boundary, falling
    /// linearly to 0 at `±meta_window`.
    fn severity(&self, arrival_after_edge: Time) -> f64 {
        let delta = (arrival_after_edge - self.capture_boundary()).abs();
        if delta >= self.meta_window {
            0.0
        } else {
            1.0 - delta / self.meta_window
        }
    }

    /// Resolution delay for a given severity: `clk_to_q` away from the
    /// boundary, growing as `τ·ln(1/(1−severity))`, capped at the model's
    /// resolution bound.
    fn resolution_delay(&self, severity: f64) -> Time {
        if severity >= 1.0 {
            return self.max_resolution;
        }
        let extra = self.tau * (1.0 / (1.0 - severity)).ln();
        (self.clk_to_q + extra).min(self.max_resolution)
    }
}

impl Default for Dff {
    fn default() -> Dff {
        Dff::standard_90nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ff() -> Dff {
        Dff::standard_90nm()
    }

    fn ps(t: f64) -> Time {
        Time::from_ps(t)
    }

    #[test]
    fn constructor_validates() {
        assert!(Dff::new(ps(30.0), ps(15.0), ps(90.0), ps(12.0), ps(8.0), ps(600.0)).is_ok());
        assert!(Dff::new(ps(-1.0), ps(15.0), ps(90.0), ps(12.0), ps(8.0), ps(600.0)).is_err());
        assert!(Dff::new(ps(30.0), ps(15.0), Time::ZERO, ps(12.0), ps(8.0), ps(600.0)).is_err());
        assert!(Dff::new(ps(30.0), ps(15.0), ps(90.0), Time::ZERO, ps(8.0), ps(600.0)).is_err());
        assert!(Dff::new(
            ps(30.0),
            ps(15.0),
            ps(90.0),
            ps(12.0),
            Time::ZERO,
            ps(600.0)
        )
        .is_err());
        assert!(Dff::new(ps(30.0), ps(15.0), ps(90.0), ps(12.0), ps(8.0), ps(10.0)).is_err());
    }

    #[test]
    fn clean_capture_well_before_setup() {
        let out = ff().sample(ps(-60.0), Logic::One, Logic::Zero);
        assert_eq!(out.value, Logic::One);
        assert!(!out.metastable);
        assert_eq!(out.clk_to_out, ff().clk_to_q());
        assert_eq!(out.severity, 0.0);
    }

    #[test]
    fn capture_flips_exactly_at_setup_boundary() {
        // The sensor's thresholds are calibrated against this boundary.
        let at = ff().sample(ps(-30.0), Logic::One, Logic::Zero);
        assert_eq!(at.value, Logic::One, "arrival == −t_setup still captures");
        let just_late = ff().sample(ps(-29.999), Logic::One, Logic::Zero);
        assert_eq!(just_late.value, Logic::Zero, "any setup violation fails");
    }

    #[test]
    fn clean_retention_after_hold() {
        let out = ff().sample(ps(20.0), Logic::One, Logic::Zero);
        assert_eq!(out.value, Logic::Zero);
        assert!(!out.metastable);
        assert_eq!(out.clk_to_out, ff().clk_to_q());
    }

    #[test]
    fn spec_window_flags_violation() {
        for a in [-29.0, -10.0, 0.0, 14.0] {
            let out = ff().sample(ps(a), Logic::One, Logic::Zero);
            assert!(out.metastable, "arrival {a} ps should violate the window");
            assert_eq!(out.value, Logic::Zero, "violations keep the old value");
        }
        for a in [-31.0, 15.0, 50.0] {
            let out = ff().sample(ps(a), Logic::One, Logic::Zero);
            assert!(!out.metastable, "arrival {a} ps is outside the window");
        }
    }

    #[test]
    fn resolution_delay_amplified_on_both_sides_of_boundary() {
        // Paper Fig. 2: OUT delay grows non-linearly as DS approaches the
        // failure point — including for captures that still pass.
        let f = ff();
        let passing_near = f.sample(ps(-31.0), Logic::One, Logic::Zero);
        assert_eq!(passing_near.value, Logic::One);
        assert!(passing_near.clk_to_out > f.clk_to_q());
        let failing_near = f.sample(ps(-29.0), Logic::One, Logic::Zero);
        assert_eq!(failing_near.value, Logic::Zero);
        assert!(failing_near.clk_to_out > f.clk_to_q());
        // Symmetric proximity → symmetric amplification.
        assert!((passing_near.clk_to_out - failing_near.clk_to_out).abs() < ps(1e-9));
    }

    #[test]
    fn resolution_delay_grows_nonlinearly_toward_boundary() {
        let f = ff();
        let mut prev = Time::ZERO;
        let mut deltas = Vec::new();
        for a in [-37.0, -35.0, -33.0, -31.5, -30.5, -30.1] {
            let out = f.sample(ps(a), Logic::One, Logic::Zero);
            assert!(
                out.clk_to_out >= prev,
                "resolution must grow toward the boundary"
            );
            deltas.push(out.clk_to_out - prev);
            prev = out.clk_to_out;
        }
        // Non-linear growth: the last increment dominates the first.
        assert!(deltas[deltas.len() - 1] > deltas[1]);
    }

    #[test]
    fn boundary_hits_resolution_cap() {
        let f = ff();
        let out = f.sample(f.capture_boundary(), Logic::One, Logic::Zero);
        assert!((out.severity - 1.0).abs() < 1e-9);
        assert_eq!(out.clk_to_out, ps(600.0));
    }

    #[test]
    fn capture_probability_profile() {
        let f = ff();
        // Far before the window: certain capture.
        assert_eq!(f.capture_probability(ps(-100.0)), 1.0);
        // Far after: certain failure.
        assert_eq!(f.capture_probability(ps(100.0)), 0.0);
        // At the capture boundary: 50/50.
        let mid = f.capture_probability(f.capture_boundary());
        assert!((mid - 0.5).abs() < 1e-9);
        // Monotone decreasing across the region.
        let mut prev = 1.0;
        for i in -45..=-15 {
            let p = f.capture_probability(ps(i as f64));
            assert!(p <= prev + 1e-12);
            prev = p;
        }
    }

    #[test]
    fn stochastic_sampling_respects_probability() {
        let f = ff();
        let mut rng = StdRng::seed_from_u64(42);
        // 1 ps inside the capture side of the metastability window:
        // p(new) ≈ 0.94.
        let mut new_count = 0;
        for _ in 0..1000 {
            let out = f.sample_with_rng(ps(-37.0), Logic::One, Logic::Zero, &mut rng);
            if out.value == Logic::One {
                new_count += 1;
            }
        }
        assert!(
            (880..=990).contains(&new_count),
            "expected ~94 % new captures, got {new_count}"
        );

        // At the boundary: close to 50/50.
        let mut new_count = 0;
        for _ in 0..2000 {
            let out = f.sample_with_rng(f.capture_boundary(), Logic::One, Logic::Zero, &mut rng);
            if out.value == Logic::One {
                new_count += 1;
            }
        }
        assert!(
            (800..=1200).contains(&new_count),
            "boundary biased: {new_count}"
        );
    }

    #[test]
    fn stochastic_equals_deterministic_outside_window() {
        let f = ff();
        let mut rng = StdRng::seed_from_u64(7);
        for a in [-200.0, -50.0, 0.0, 50.0] {
            let out = f.sample_with_rng(ps(a), Logic::One, Logic::Zero, &mut rng);
            assert_eq!(out, f.sample(ps(a), Logic::One, Logic::Zero), "arrival {a}");
        }
    }

    #[test]
    fn pin_capacitances_positive() {
        assert!(ff().d_capacitance() > Capacitance::ZERO);
        assert!(ff().clk_capacitance() > Capacitance::ZERO);
    }

    proptest! {
        #[test]
        fn outcome_value_is_one_of_inputs(arrival in -100.0..100.0f64) {
            let out = ff().sample(ps(arrival), Logic::One, Logic::Zero);
            prop_assert!(out.value == Logic::One || out.value == Logic::Zero);
        }

        #[test]
        fn severity_bounded(arrival in -100.0..100.0f64) {
            let out = ff().sample(ps(arrival), Logic::One, Logic::Zero);
            prop_assert!((0.0..=1.0).contains(&out.severity));
        }

        #[test]
        fn clk_to_out_bounded(arrival in -100.0..100.0f64) {
            let f = ff();
            let out = f.sample(ps(arrival), Logic::One, Logic::Zero);
            prop_assert!(out.clk_to_out >= f.clk_to_q());
            prop_assert!(out.clk_to_out <= ps(600.0));
        }

        #[test]
        fn violation_iff_inside_spec_window(arrival in -100.0..100.0f64) {
            let f = ff();
            let a = ps(arrival);
            let out = f.sample(a, Logic::One, Logic::Zero);
            let inside = a > -f.setup() && a < f.hold();
            prop_assert_eq!(out.metastable, inside);
        }

        #[test]
        fn capture_deterministic_at_boundary(arrival in -100.0..100.0f64) {
            let f = ff();
            let a = ps(arrival);
            let out = f.sample(a, Logic::One, Logic::Zero);
            if a <= f.capture_boundary() {
                prop_assert_eq!(out.value, Logic::One);
            } else {
                prop_assert_eq!(out.value, Logic::Zero);
            }
        }
    }
}
