//! Alpha-power-law MOSFET drive model (Sakurai–Newton).
//!
//! The paper's sensing principle rests on one physical fact: the
//! propagation delay of a CMOS inverter grows as its supply voltage drops,
//! approximately linearly within the range of interest (the paper cites its
//! ref. \[9\] for the in-range linearity). The alpha-power law
//!
//! ```text
//! I_dsat = K · (V_gs − V_th)^α
//! ```
//!
//! captures exactly that behaviour for short-channel devices (α ≈ 1.3 at
//! 90 nm, versus the long-channel square law α = 2). The gate delay for a
//! full-swing transition driving capacitance `C` is then
//!
//! ```text
//! t_pd ≈ C · V_dd / (2 · I_dsat) ∝ C · V_dd / (V_dd − V_th)^α
//! ```
//!
//! which is monotone decreasing in `V_dd` above threshold and near-linear
//! in the 0.9–1.1 V window the paper measures — the property that makes
//! the INV+FF element a voltage sensor.
//!
//! # Examples
//!
//! ```
//! use psnt_cells::mosfet::AlphaPowerModel;
//! use psnt_cells::units::Voltage;
//!
//! let m = AlphaPowerModel::typical_90nm();
//! let hi = m.drive_current(Voltage::from_v(1.1));
//! let lo = m.drive_current(Voltage::from_v(0.9));
//! assert!(hi > lo); // more headroom, more drive
//! ```

use serde::{Deserialize, Serialize};

use crate::error::CellError;
use crate::process::Pvt;
use crate::units::{Capacitance, Current, Time, Voltage};

/// Sakurai–Newton alpha-power-law transistor model.
///
/// All values describe the *typical* (TT, 25 °C) device; corner and
/// temperature effects are applied through [`Pvt`] at evaluation time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlphaPowerModel {
    /// Transconductance coefficient `K` in A/V^α.
    k: f64,
    /// Typical threshold voltage.
    vth: Voltage,
    /// Velocity-saturation index α (2.0 long-channel … ~1.1 highly
    /// velocity-saturated).
    alpha: f64,
}

impl AlphaPowerModel {
    /// Creates a model from raw parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CellError::InvalidParameter`] when `k <= 0`, `vth <= 0`
    /// or `alpha` is outside `(1.0, 2.0]`.
    // The `!(x > 0.0)` forms below are deliberate NaN-rejecting guards.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn new(k: f64, vth: Voltage, alpha: f64) -> Result<AlphaPowerModel, CellError> {
        if !(k > 0.0) {
            return Err(CellError::InvalidParameter {
                name: "k",
                reason: format!("transconductance must be positive, got {k}"),
            });
        }
        if !(vth > Voltage::ZERO) {
            return Err(CellError::InvalidParameter {
                name: "vth",
                reason: format!("threshold must be positive, got {vth}"),
            });
        }
        if !(alpha > 1.0 && alpha <= 2.0) {
            return Err(CellError::InvalidParameter {
                name: "alpha",
                reason: format!("alpha must be in (1, 2], got {alpha}"),
            });
        }
        Ok(AlphaPowerModel { k, vth, alpha })
    }

    /// A representative 90 nm general-purpose device: `V_th` = 0.30 V,
    /// α = 1.3. `K` is normalised so that a unit-drive inverter charging
    /// 1 pF at 1.0 V takes ≈ 32 ps — the calibration that places the
    /// paper's Fig. 4/5 thresholds correctly (see `DESIGN.md` §2).
    pub fn typical_90nm() -> AlphaPowerModel {
        // t = C·V/(2·K·(V−Vth)^α)  ⇒  K = C·V/(2·t·(V−Vth)^α).
        // With C = 1 pF, V = 1.0, Vth = 0.3, α = 1.3, t = 32 ps:
        // (0.7)^1.3 = 0.6294, K = 1e-12 / (2·32e-12·0.6294) = 0.02483 A/V^α.
        AlphaPowerModel {
            k: 1.0e-12 / (2.0 * 32.0e-12 * 0.7f64.powf(1.3)),
            vth: Voltage::from_v(0.30),
            alpha: 1.3,
        }
    }

    /// The typical threshold voltage.
    pub fn vth(&self) -> Voltage {
        self.vth
    }

    /// The velocity-saturation index α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The transconductance coefficient `K` in A/V^α.
    pub fn k(&self) -> f64 {
        self.k
    }

    /// Saturation drive current at gate overdrive `vdd − vth`, at the
    /// typical corner. Zero at or below threshold (sub-threshold leakage
    /// is irrelevant at the time scales modelled here).
    pub fn drive_current(&self, vdd: Voltage) -> Current {
        self.drive_current_at(vdd, &Pvt::typical())
    }

    /// Saturation drive current including corner/temperature effects.
    pub fn drive_current_at(&self, vdd: Voltage, pvt: &Pvt) -> Current {
        let vth = pvt.effective_vth(self.vth);
        let overdrive = vdd - vth;
        if overdrive <= Voltage::ZERO {
            return Current::ZERO;
        }
        let i = self.k * overdrive.volts().powf(self.alpha) * pvt.drive_factor();
        Current::from_a(i)
    }

    /// Full-swing switching delay driving `load` from supply `vdd`,
    /// `t = C·V / (2·I_dsat)`, at the typical corner.
    ///
    /// Returns an effectively infinite delay (1 s) when the device has no
    /// overdrive, modelling a stalled transition.
    pub fn switching_delay(&self, vdd: Voltage, load: Capacitance) -> Time {
        self.switching_delay_at(vdd, load, &Pvt::typical())
    }

    /// Full-swing switching delay including corner/temperature effects.
    pub fn switching_delay_at(&self, vdd: Voltage, load: Capacitance, pvt: &Pvt) -> Time {
        let i = self.drive_current_at(vdd, pvt);
        if i.amps() <= 0.0 {
            return Time::from_seconds(1.0);
        }
        Time::from_seconds(load.farads() * vdd.volts() / (2.0 * i.amps()))
    }

    /// Effective switching resistance `V / (2·I)` at the given supply —
    /// useful for RC-style estimates.
    pub fn effective_resistance(&self, vdd: Voltage, pvt: &Pvt) -> Option<f64> {
        let i = self.drive_current_at(vdd, pvt);
        if i.amps() <= 0.0 {
            None
        } else {
            Some(vdd.volts() / (2.0 * i.amps()))
        }
    }
}

impl Default for AlphaPowerModel {
    fn default() -> AlphaPowerModel {
        AlphaPowerModel::typical_90nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::ProcessCorner;
    use crate::units::Temperature;
    use proptest::prelude::*;

    #[test]
    fn constructor_validates() {
        assert!(AlphaPowerModel::new(0.01, Voltage::from_v(0.3), 1.3).is_ok());
        assert!(AlphaPowerModel::new(0.0, Voltage::from_v(0.3), 1.3).is_err());
        assert!(AlphaPowerModel::new(0.01, Voltage::ZERO, 1.3).is_err());
        assert!(AlphaPowerModel::new(0.01, Voltage::from_v(0.3), 1.0).is_err());
        assert!(AlphaPowerModel::new(0.01, Voltage::from_v(0.3), 2.5).is_err());
    }

    #[test]
    fn calibration_point_32ps_per_pf() {
        let m = AlphaPowerModel::typical_90nm();
        let t = m.switching_delay(Voltage::from_v(1.0), Capacitance::from_pf(1.0));
        assert!(
            (t.picoseconds() - 32.0).abs() < 0.01,
            "expected 32 ps, got {t}"
        );
    }

    #[test]
    fn delay_decreases_with_supply() {
        let m = AlphaPowerModel::typical_90nm();
        let c = Capacitance::from_pf(2.0);
        let mut prev = Time::from_seconds(10.0);
        for mv in (850..=1200).step_by(25) {
            let t = m.switching_delay(Voltage::from_mv(mv as f64), c);
            assert!(t < prev, "delay not monotone at {mv} mV");
            prev = t;
        }
    }

    #[test]
    fn delay_scales_linearly_with_load() {
        let m = AlphaPowerModel::typical_90nm();
        let v = Voltage::from_v(1.0);
        let t1 = m.switching_delay(v, Capacitance::from_pf(1.0));
        let t3 = m.switching_delay(v, Capacitance::from_pf(3.0));
        assert!((t3 / t1 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn below_threshold_stalls() {
        let m = AlphaPowerModel::typical_90nm();
        assert_eq!(m.drive_current(Voltage::from_v(0.25)), Current::ZERO);
        let t = m.switching_delay(Voltage::from_v(0.25), Capacitance::from_pf(1.0));
        assert!(t >= Time::from_seconds(1.0));
        assert!(m
            .effective_resistance(Voltage::from_v(0.25), &Pvt::typical())
            .is_none());
    }

    #[test]
    fn slow_corner_is_slower() {
        let m = AlphaPowerModel::typical_90nm();
        let v = Voltage::from_v(1.0);
        let c = Capacitance::from_pf(1.0);
        let tt = m.switching_delay_at(v, c, &Pvt::typical());
        let ss = m.switching_delay_at(
            v,
            c,
            &Pvt::new(ProcessCorner::SS, v, Temperature::from_celsius(25.0)),
        );
        let ff = m.switching_delay_at(
            v,
            c,
            &Pvt::new(ProcessCorner::FF, v, Temperature::from_celsius(25.0)),
        );
        assert!(ss > tt, "SS should be slower than TT");
        assert!(ff < tt, "FF should be faster than TT");
    }

    #[test]
    fn hot_is_slower_than_cold() {
        let m = AlphaPowerModel::typical_90nm();
        let v = Voltage::from_v(1.0);
        let c = Capacitance::from_pf(1.0);
        let hot = Pvt::new(ProcessCorner::TT, v, Temperature::from_celsius(125.0));
        let cold = Pvt::new(ProcessCorner::TT, v, Temperature::from_celsius(-40.0));
        assert!(m.switching_delay_at(v, c, &hot) > m.switching_delay_at(v, c, &cold));
    }

    #[test]
    fn near_linear_in_range_of_interest() {
        // The paper (via its ref. [9]) relies on delay-vs-VDD being
        // approximately linear within 0.9–1.1 V. Check the max deviation
        // from the chord is small (< 3 %).
        let m = AlphaPowerModel::typical_90nm();
        let c = Capacitance::from_pf(2.0);
        let t_lo = m.switching_delay(Voltage::from_v(0.9), c).picoseconds();
        let t_hi = m.switching_delay(Voltage::from_v(1.1), c).picoseconds();
        for i in 0..=20 {
            let v = 0.9 + 0.01 * i as f64;
            let t = m.switching_delay(Voltage::from_v(v), c).picoseconds();
            let chord = t_lo + (t_hi - t_lo) * (v - 0.9) / 0.2;
            let rel = ((t - chord) / t).abs();
            assert!(rel < 0.03, "deviation {rel:.4} at {v} V");
        }
    }

    proptest! {
        #[test]
        fn drive_monotone_in_vdd(a in 0.35..1.5f64, d in 0.001..0.5f64) {
            let m = AlphaPowerModel::typical_90nm();
            let lo = m.drive_current(Voltage::from_v(a));
            let hi = m.drive_current(Voltage::from_v(a + d));
            prop_assert!(hi > lo);
        }

        #[test]
        fn delay_positive_and_finite(v in 0.4..1.5f64, c in 0.01..10.0f64) {
            let m = AlphaPowerModel::typical_90nm();
            let t = m.switching_delay(Voltage::from_v(v), Capacitance::from_pf(c));
            prop_assert!(t > Time::ZERO);
            prop_assert!(t.is_finite());
        }
    }
}
