//! Level-sensitive D latch.
//!
//! Used by the Razor-style baseline in `psnt-core::baseline`: Razor pairs
//! each pipeline flip-flop with a *shadow latch* that stays transparent
//! after the clock edge, so late (setup-violating) data still reaches the
//! shadow and the main/shadow disagreement flags a timing error.
//!
//! # Examples
//!
//! ```
//! use psnt_cells::latch::Latch;
//! use psnt_cells::logic::Logic;
//!
//! let mut latch = Latch::new();
//! latch.update(Logic::One, Logic::One);  // enable high: transparent
//! assert_eq!(latch.q(), Logic::One);
//! latch.update(Logic::Zero, Logic::Zero); // enable low: opaque, holds
//! assert_eq!(latch.q(), Logic::One);
//! ```

use serde::{Deserialize, Serialize};

use crate::logic::Logic;
use crate::units::Time;

/// A transparent-high level-sensitive latch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Latch {
    q: Logic,
    d_to_q: Time,
}

impl Latch {
    /// Creates a latch with unknown initial state and a typical 90 nm
    /// data-to-output delay of 60 ps.
    pub fn new() -> Latch {
        Latch {
            q: Logic::X,
            d_to_q: Time::from_ps(60.0),
        }
    }

    /// Creates a latch with a specific transparent-path delay.
    pub fn with_delay(d_to_q: Time) -> Latch {
        Latch {
            q: Logic::X,
            d_to_q,
        }
    }

    /// Current output value.
    pub fn q(&self) -> Logic {
        self.q
    }

    /// Data-to-output delay while transparent.
    pub fn d_to_q(&self) -> Time {
        self.d_to_q
    }

    /// Applies the data and enable levels. While `enable` is high the
    /// latch is transparent (`Q` follows `D`); while low it holds. An
    /// unknown enable poisons the state unless `D` already equals `Q`.
    pub fn update(&mut self, d: Logic, enable: Logic) {
        match enable {
            Logic::One => self.q = d,
            Logic::Zero => {}
            Logic::X | Logic::Z => {
                if self.q != d {
                    self.q = Logic::X;
                }
            }
        }
    }

    /// Forces the stored state (model reset).
    pub fn set(&mut self, value: Logic) {
        self.q = value;
    }
}

impl Default for Latch {
    fn default() -> Latch {
        Latch::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_unknown() {
        assert_eq!(Latch::new().q(), Logic::X);
    }

    #[test]
    fn transparent_when_enabled() {
        let mut l = Latch::new();
        l.update(Logic::One, Logic::One);
        assert_eq!(l.q(), Logic::One);
        l.update(Logic::Zero, Logic::One);
        assert_eq!(l.q(), Logic::Zero);
    }

    #[test]
    fn opaque_when_disabled() {
        let mut l = Latch::new();
        l.update(Logic::One, Logic::One);
        l.update(Logic::Zero, Logic::Zero);
        assert_eq!(l.q(), Logic::One);
        l.update(Logic::X, Logic::Zero);
        assert_eq!(l.q(), Logic::One);
    }

    #[test]
    fn unknown_enable_poisons_on_disagreement() {
        let mut l = Latch::new();
        l.update(Logic::One, Logic::One);
        l.update(Logic::One, Logic::X); // D agrees with Q: state survives
        assert_eq!(l.q(), Logic::One);
        l.update(Logic::Zero, Logic::X); // disagreement: unknown
        assert_eq!(l.q(), Logic::X);
    }

    #[test]
    fn set_and_delay() {
        let mut l = Latch::with_delay(Time::from_ps(45.0));
        assert_eq!(l.d_to_q(), Time::from_ps(45.0));
        l.set(Logic::Zero);
        assert_eq!(l.q(), Logic::Zero);
    }
}
