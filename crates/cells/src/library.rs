//! A named collection of standard cells — the software analogue of a
//! Liberty `.lib`.
//!
//! The default [`CellLibrary::typical_90nm`] mirrors the 90 nm library the
//! paper characterised its sensor against: inverters, basic gates and
//! MUXes at drive strengths X1/X2/X4, plus the sensor flip-flop.
//!
//! # Examples
//!
//! ```
//! use psnt_cells::library::CellLibrary;
//!
//! let lib = CellLibrary::typical_90nm();
//! let inv = lib.cell("INVX1")?;
//! assert_eq!(inv.num_inputs(), 1);
//! assert!(lib.cell_names().count() > 20);
//! # Ok::<(), psnt_cells::error::CellError>(())
//! ```

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::dff::Dff;
use crate::error::CellError;
use crate::gates::StdCell;

/// A library of combinational cells plus a sequential (DFF) model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellLibrary {
    name: String,
    cells: BTreeMap<String, StdCell>,
    dff: Dff,
}

impl CellLibrary {
    /// Creates an empty library with the given name and flip-flop model.
    pub fn new(name: impl Into<String>, dff: Dff) -> CellLibrary {
        CellLibrary {
            name: name.into(),
            cells: BTreeMap::new(),
            dff,
        }
    }

    /// The representative 90 nm library: every gate family at drive
    /// strengths X1, X2 and X4, plus [`Dff::standard_90nm`].
    pub fn typical_90nm() -> CellLibrary {
        let mut lib = CellLibrary::new("typ90", Dff::standard_90nm());
        for drive in [1.0, 2.0, 4.0] {
            lib.add(StdCell::inverter(drive));
            lib.add(StdCell::buffer(drive));
            lib.add(StdCell::nand2(drive));
            lib.add(StdCell::nor2(drive));
            lib.add(StdCell::and2(drive));
            lib.add(StdCell::or2(drive));
            lib.add(StdCell::xor2(drive));
            lib.add(StdCell::xnor2(drive));
            lib.add(StdCell::nand3(drive));
            lib.add(StdCell::nor3(drive));
            lib.add(StdCell::and3(drive));
            lib.add(StdCell::or3(drive));
            lib.add(StdCell::mux2(drive));
            lib.add(StdCell::aoi21(drive));
            lib.add(StdCell::oai21(drive));
        }
        lib
    }

    /// The library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds (or replaces) a cell, returning the previous cell with the
    /// same name if any.
    pub fn add(&mut self, cell: StdCell) -> Option<StdCell> {
        self.cells.insert(cell.name().to_owned(), cell)
    }

    /// Looks a cell up by name.
    ///
    /// # Errors
    ///
    /// Returns [`CellError::UnknownCell`] when absent.
    pub fn cell(&self, name: &str) -> Result<&StdCell, CellError> {
        self.cells
            .get(name)
            .ok_or_else(|| CellError::UnknownCell(name.to_owned()))
    }

    /// `true` when the library contains `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.cells.contains_key(name)
    }

    /// The sequential cell model.
    pub fn dff(&self) -> &Dff {
        &self.dff
    }

    /// Iterates over cell names in sorted order.
    pub fn cell_names(&self) -> impl Iterator<Item = &str> {
        self.cells.keys().map(String::as_str)
    }

    /// Iterates over all cells in name order.
    pub fn iter(&self) -> impl Iterator<Item = &StdCell> {
        self.cells.values()
    }

    /// Number of combinational cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when the library holds no combinational cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates::GateFunction;

    #[test]
    fn typical_library_contents() {
        let lib = CellLibrary::typical_90nm();
        assert_eq!(lib.name(), "typ90");
        assert_eq!(lib.len(), 45); // 15 families × 3 drives
        for name in ["INVX1", "NAND2X2", "MUX2X4", "AOI21X1", "XNOR2X2"] {
            assert!(lib.contains(name), "missing {name}");
        }
        assert!(!lib.contains("INVX9"));
    }

    #[test]
    fn lookup_known_and_unknown() {
        let lib = CellLibrary::typical_90nm();
        let cell = lib.cell("NOR2X1").unwrap();
        assert_eq!(cell.function(), GateFunction::Nor2);
        let err = lib.cell("FOO").unwrap_err();
        assert_eq!(err, CellError::UnknownCell("FOO".into()));
    }

    #[test]
    fn add_replaces_and_returns_previous() {
        let mut lib = CellLibrary::new("t", Dff::standard_90nm());
        assert!(lib.is_empty());
        assert!(lib.add(StdCell::inverter(1.0)).is_none());
        let prev = lib.add(StdCell::inverter(1.0));
        assert!(prev.is_some());
        assert_eq!(lib.len(), 1);
    }

    #[test]
    fn names_sorted() {
        let lib = CellLibrary::typical_90nm();
        let names: Vec<&str> = lib.cell_names().collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert_eq!(names.len(), lib.iter().count());
    }

    #[test]
    fn dff_accessible() {
        let lib = CellLibrary::typical_90nm();
        assert_eq!(lib.dff(), &Dff::standard_90nm());
    }
}
