//! Strongly typed physical quantities used throughout the workspace.
//!
//! Every quantity is a thin `f64` newtype ([C-NEWTYPE]) with an explicit
//! canonical unit, so a [`Time`] can never be confused with a [`Voltage`]
//! at a call site. Canonical units are chosen so that the numbers occurring
//! in 90 nm standard-cell timing are O(1)–O(1000):
//!
//! * [`Time`] — **picoseconds**
//! * [`Voltage`] — **volts**
//! * [`Capacitance`] — **picofarads**
//! * [`Current`] — **amperes**
//! * [`Resistance`] — **ohms**
//! * [`Inductance`] — **henries**
//! * [`Frequency`] — **hertz**
//! * [`Temperature`] — **degrees Celsius**
//!
//! # Examples
//!
//! ```
//! use psnt_cells::units::{Time, Voltage, Capacitance};
//!
//! let window = Time::from_ps(54.0) + Time::from_ps(65.0);
//! assert_eq!(window, Time::from_ps(119.0));
//!
//! let vdd = Voltage::from_mv(950.0);
//! assert!((vdd.volts() - 0.95).abs() < 1e-12);
//!
//! let c = Capacitance::from_ff(81.0);
//! assert!((c.picofarads() - 0.081).abs() < 1e-12);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Implements the shared arithmetic surface for an `f64` quantity newtype.
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Returns the raw value in the canonical unit.
            #[inline]
            pub const fn raw(self) -> f64 {
                self.0
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> $name {
                $name(self.0.abs())
            }

            /// Returns the smaller of two quantities.
            #[inline]
            pub fn min(self, other: $name) -> $name {
                $name(self.0.min(other.0))
            }

            /// Returns the larger of two quantities.
            #[inline]
            pub fn max(self, other: $name) -> $name {
                $name(self.0.max(other.0))
            }

            /// Clamps the quantity between `lo` and `hi`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[inline]
            pub fn clamp(self, lo: $name, hi: $name) -> $name {
                assert!(lo.0 <= hi.0, "clamp bounds inverted");
                $name(self.0.clamp(lo.0, hi.0))
            }

            /// Total ordering that treats NaN as greater than all values,
            /// mirroring [`f64::total_cmp`].
            #[inline]
            pub fn total_cmp(&self, other: &$name) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }

            /// `true` when the underlying value is finite (not NaN/∞).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Linear interpolation between `self` (at `t = 0`) and `other`
            /// (at `t = 1`). `t` outside `[0, 1]` extrapolates.
            #[inline]
            pub fn lerp(self, other: $name, t: f64) -> $name {
                $name(self.0 + (other.0 - self.0) * t)
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|q| q.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }
    };
}

quantity!(
    /// A time span or instant, stored in **picoseconds**.
    ///
    /// ```
    /// use psnt_cells::units::Time;
    /// assert_eq!(Time::from_ns(1.5).picoseconds(), 1500.0);
    /// ```
    Time,
    "ps"
);

quantity!(
    /// An electric potential, stored in **volts**.
    ///
    /// ```
    /// use psnt_cells::units::Voltage;
    /// assert_eq!(Voltage::from_mv(900.0), Voltage::from_v(0.9));
    /// ```
    Voltage,
    "V"
);

quantity!(
    /// A capacitance, stored in **picofarads**.
    ///
    /// ```
    /// use psnt_cells::units::Capacitance;
    /// assert_eq!(Capacitance::from_ff(2000.0), Capacitance::from_pf(2.0));
    /// ```
    Capacitance,
    "pF"
);

quantity!(
    /// An electric current, stored in **amperes**.
    ///
    /// ```
    /// use psnt_cells::units::Current;
    /// assert_eq!(Current::from_ma(250.0).amps(), 0.25);
    /// ```
    Current,
    "A"
);

quantity!(
    /// A resistance, stored in **ohms**.
    ///
    /// ```
    /// use psnt_cells::units::Resistance;
    /// assert_eq!(Resistance::from_milliohms(500.0).ohms(), 0.5);
    /// ```
    Resistance,
    "Ω"
);

quantity!(
    /// An inductance, stored in **henries**.
    ///
    /// ```
    /// use psnt_cells::units::Inductance;
    /// assert_eq!(Inductance::from_nh(2.0).henries(), 2.0e-9);
    /// ```
    Inductance,
    "H"
);

quantity!(
    /// A frequency, stored in **hertz**.
    ///
    /// ```
    /// use psnt_cells::units::Frequency;
    /// assert_eq!(Frequency::from_mhz(100.0).hertz(), 1.0e8);
    /// ```
    Frequency,
    "Hz"
);

quantity!(
    /// A temperature, stored in **degrees Celsius**.
    ///
    /// ```
    /// use psnt_cells::units::Temperature;
    /// assert_eq!(Temperature::from_celsius(25.0).celsius(), 25.0);
    /// ```
    Temperature,
    "°C"
);

impl Time {
    /// Constructs a time from picoseconds.
    #[inline]
    pub const fn from_ps(ps: f64) -> Time {
        Time(ps)
    }

    /// Constructs a time from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: f64) -> Time {
        Time(ns * 1.0e3)
    }

    /// Constructs a time from microseconds.
    #[inline]
    pub const fn from_us(us: f64) -> Time {
        Time(us * 1.0e6)
    }

    /// Constructs a time from seconds.
    #[inline]
    pub const fn from_seconds(s: f64) -> Time {
        Time(s * 1.0e12)
    }

    /// The value in picoseconds.
    #[inline]
    pub const fn picoseconds(self) -> f64 {
        self.0
    }

    /// The value in nanoseconds.
    #[inline]
    pub fn nanoseconds(self) -> f64 {
        self.0 * 1.0e-3
    }

    /// The value in seconds.
    #[inline]
    pub fn seconds(self) -> f64 {
        self.0 * 1.0e-12
    }

    /// The period of the given frequency.
    ///
    /// # Panics
    ///
    /// Panics if `f` is zero.
    #[inline]
    pub fn period_of(f: Frequency) -> Time {
        assert!(f.hertz() != 0.0, "period of zero frequency");
        Time::from_seconds(1.0 / f.hertz())
    }
}

impl Voltage {
    /// Constructs a voltage from volts.
    #[inline]
    pub const fn from_v(v: f64) -> Voltage {
        Voltage(v)
    }

    /// Constructs a voltage from millivolts.
    #[inline]
    pub const fn from_mv(mv: f64) -> Voltage {
        Voltage(mv * 1.0e-3)
    }

    /// The value in volts.
    #[inline]
    pub const fn volts(self) -> f64 {
        self.0
    }

    /// The value in millivolts.
    #[inline]
    pub fn millivolts(self) -> f64 {
        self.0 * 1.0e3
    }
}

impl Capacitance {
    /// Constructs a capacitance from picofarads.
    #[inline]
    pub const fn from_pf(pf: f64) -> Capacitance {
        Capacitance(pf)
    }

    /// Constructs a capacitance from femtofarads.
    #[inline]
    pub const fn from_ff(ff: f64) -> Capacitance {
        Capacitance(ff * 1.0e-3)
    }

    /// Constructs a capacitance from nanofarads.
    #[inline]
    pub const fn from_nf(nf: f64) -> Capacitance {
        Capacitance(nf * 1.0e3)
    }

    /// The value in picofarads.
    #[inline]
    pub const fn picofarads(self) -> f64 {
        self.0
    }

    /// The value in femtofarads.
    #[inline]
    pub fn femtofarads(self) -> f64 {
        self.0 * 1.0e3
    }

    /// The value in farads.
    #[inline]
    pub fn farads(self) -> f64 {
        self.0 * 1.0e-12
    }
}

impl Current {
    /// Constructs a current from amperes.
    #[inline]
    pub const fn from_a(a: f64) -> Current {
        Current(a)
    }

    /// Constructs a current from milliamperes.
    #[inline]
    pub const fn from_ma(ma: f64) -> Current {
        Current(ma * 1.0e-3)
    }

    /// The value in amperes.
    #[inline]
    pub const fn amps(self) -> f64 {
        self.0
    }

    /// The value in milliamperes.
    #[inline]
    pub fn milliamps(self) -> f64 {
        self.0 * 1.0e3
    }
}

impl Resistance {
    /// Constructs a resistance from ohms.
    #[inline]
    pub const fn from_ohms(ohms: f64) -> Resistance {
        Resistance(ohms)
    }

    /// Constructs a resistance from milliohms.
    #[inline]
    pub const fn from_milliohms(mo: f64) -> Resistance {
        Resistance(mo * 1.0e-3)
    }

    /// The value in ohms.
    #[inline]
    pub const fn ohms(self) -> f64 {
        self.0
    }
}

impl Inductance {
    /// Constructs an inductance from henries.
    #[inline]
    pub const fn from_h(h: f64) -> Inductance {
        Inductance(h)
    }

    /// Constructs an inductance from nanohenries.
    #[inline]
    pub const fn from_nh(nh: f64) -> Inductance {
        Inductance(nh * 1.0e-9)
    }

    /// Constructs an inductance from picohenries.
    #[inline]
    pub const fn from_ph(ph: f64) -> Inductance {
        Inductance(ph * 1.0e-12)
    }

    /// The value in henries.
    #[inline]
    pub const fn henries(self) -> f64 {
        self.0
    }
}

impl Frequency {
    /// Constructs a frequency from hertz.
    #[inline]
    pub const fn from_hz(hz: f64) -> Frequency {
        Frequency(hz)
    }

    /// Constructs a frequency from megahertz.
    #[inline]
    pub const fn from_mhz(mhz: f64) -> Frequency {
        Frequency(mhz * 1.0e6)
    }

    /// Constructs a frequency from gigahertz.
    #[inline]
    pub const fn from_ghz(ghz: f64) -> Frequency {
        Frequency(ghz * 1.0e9)
    }

    /// The value in hertz.
    #[inline]
    pub const fn hertz(self) -> f64 {
        self.0
    }

    /// The frequency whose period is `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is zero.
    #[inline]
    pub fn from_period(t: Time) -> Frequency {
        assert!(t.picoseconds() != 0.0, "frequency of zero period");
        Frequency(1.0 / t.seconds())
    }
}

impl Temperature {
    /// Constructs a temperature from degrees Celsius.
    #[inline]
    pub const fn from_celsius(c: f64) -> Temperature {
        Temperature(c)
    }

    /// The value in degrees Celsius.
    #[inline]
    pub const fn celsius(self) -> f64 {
        self.0
    }

    /// The value in kelvin.
    #[inline]
    pub fn kelvin(self) -> f64 {
        self.0 + 273.15
    }
}

/// `R · C` has the dimension of time: convenience for RC time constants.
impl Mul<Capacitance> for Resistance {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: Capacitance) -> Time {
        Time::from_seconds(self.ohms() * rhs.farads())
    }
}

/// `C · V` has the dimension of charge; dividing by current yields time.
/// This helper computes the constant-current (dis)charge time `C·V / I`.
///
/// # Panics
///
/// Panics if `i` is zero.
pub fn charge_time(c: Capacitance, v: Voltage, i: Current) -> Time {
    assert!(i.amps() != 0.0, "charge_time with zero current");
    Time::from_seconds(c.farads() * v.volts() / i.amps())
}

/// Ohm's law: `V / R`.
///
/// # Panics
///
/// Panics if `r` is zero.
pub fn ohms_law_current(v: Voltage, r: Resistance) -> Current {
    assert!(r.ohms() != 0.0, "ohms_law_current with zero resistance");
    Current::from_a(v.volts() / r.ohms())
}

/// Ohm's law: `I · R`.
pub fn ohms_law_voltage(i: Current, r: Resistance) -> Voltage {
    Voltage::from_v(i.amps() * r.ohms())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn time_conversions_roundtrip() {
        assert_eq!(Time::from_ns(1.0).picoseconds(), 1000.0);
        assert_eq!(Time::from_us(1.0).picoseconds(), 1.0e6);
        assert_eq!(Time::from_seconds(1.0).picoseconds(), 1.0e12);
        assert!((Time::from_ps(2500.0).nanoseconds() - 2.5).abs() < 1e-12);
        assert!((Time::from_ps(1.0).seconds() - 1.0e-12).abs() < 1e-24);
    }

    #[test]
    fn voltage_conversions() {
        assert_eq!(Voltage::from_mv(1000.0), Voltage::from_v(1.0));
        assert!((Voltage::from_v(0.9).millivolts() - 900.0).abs() < 1e-9);
    }

    #[test]
    fn capacitance_conversions() {
        assert_eq!(Capacitance::from_ff(1000.0), Capacitance::from_pf(1.0));
        assert_eq!(Capacitance::from_nf(1.0), Capacitance::from_pf(1000.0));
        assert!((Capacitance::from_pf(2.0).farads() - 2.0e-12).abs() < 1e-24);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Time::from_ps(10.0);
        let b = Time::from_ps(4.0);
        assert_eq!(a + b, Time::from_ps(14.0));
        assert_eq!(a - b, Time::from_ps(6.0));
        assert_eq!(a * 2.0, Time::from_ps(20.0));
        assert_eq!(2.0 * a, Time::from_ps(20.0));
        assert_eq!(a / 2.0, Time::from_ps(5.0));
        assert_eq!(a / b, 2.5);
        assert_eq!(-a, Time::from_ps(-10.0));
        let mut c = a;
        c += b;
        assert_eq!(c, Time::from_ps(14.0));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn min_max_clamp_abs() {
        let a = Voltage::from_v(0.9);
        let b = Voltage::from_v(1.1);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(Voltage::from_v(1.3).clamp(a, b), b);
        assert_eq!(Voltage::from_v(0.5).clamp(a, b), a);
        assert_eq!(Voltage::from_v(-0.2).abs(), Voltage::from_v(0.2));
    }

    #[test]
    #[should_panic(expected = "clamp bounds inverted")]
    fn clamp_inverted_bounds_panics() {
        let _ = Time::from_ps(1.0).clamp(Time::from_ps(2.0), Time::from_ps(1.0));
    }

    #[test]
    fn sum_iterator() {
        let total: Time = (1..=4).map(|i| Time::from_ps(i as f64)).sum();
        assert_eq!(total, Time::from_ps(10.0));
    }

    #[test]
    fn display_formatting() {
        assert_eq!(format!("{:.2}", Time::from_ps(12.345)), "12.35 ps");
        assert_eq!(format!("{}", Voltage::from_v(1.0)), "1 V");
        assert_eq!(format!("{:.1}", Capacitance::from_pf(2.0)), "2.0 pF");
    }

    #[test]
    fn rc_time_constant() {
        let tau = Resistance::from_ohms(1000.0) * Capacitance::from_pf(1.0);
        assert!((tau.picoseconds() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn charge_time_matches_analytic() {
        // 1 pF charged by 1 mA across 1 V: t = CV/I = 1e-12 / 1e-3 = 1 ns.
        let t = charge_time(
            Capacitance::from_pf(1.0),
            Voltage::from_v(1.0),
            Current::from_ma(1.0),
        );
        assert!((t.nanoseconds() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ohms_law_helpers() {
        let i = ohms_law_current(Voltage::from_v(1.0), Resistance::from_ohms(50.0));
        assert!((i.amps() - 0.02).abs() < 1e-12);
        let v = ohms_law_voltage(Current::from_a(0.02), Resistance::from_ohms(50.0));
        assert!((v.volts() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn frequency_period_roundtrip() {
        let f = Frequency::from_mhz(100.0);
        let t = Time::period_of(f);
        assert!((t.nanoseconds() - 10.0).abs() < 1e-9);
        let f2 = Frequency::from_period(t);
        assert!((f2.hertz() - f.hertz()).abs() < 1.0);
    }

    #[test]
    fn temperature_kelvin() {
        assert!((Temperature::from_celsius(25.0).kelvin() - 298.15).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Voltage::from_v(0.9);
        let b = Voltage::from_v(1.1);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert!((a.lerp(b, 0.5).volts() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn total_cmp_handles_equal() {
        use std::cmp::Ordering;
        assert_eq!(
            Time::from_ps(1.0).total_cmp(&Time::from_ps(1.0)),
            Ordering::Equal
        );
        assert_eq!(
            Time::from_ps(1.0).total_cmp(&Time::from_ps(2.0)),
            Ordering::Less
        );
    }

    proptest! {
        #[test]
        fn add_sub_inverse(a in -1.0e9..1.0e9f64, b in -1.0e9..1.0e9f64) {
            let x = Time::from_ps(a);
            let y = Time::from_ps(b);
            let back = (x + y) - y;
            prop_assert!((back.picoseconds() - a).abs() <= 1e-3_f64.max(a.abs() * 1e-12));
        }

        #[test]
        fn scalar_mul_distributes(a in -1.0e6..1.0e6f64, b in -1.0e6..1.0e6f64, k in -100.0..100.0f64) {
            let lhs = (Voltage::from_v(a) + Voltage::from_v(b)) * k;
            let rhs = Voltage::from_v(a) * k + Voltage::from_v(b) * k;
            prop_assert!((lhs.volts() - rhs.volts()).abs() <= 1e-6_f64.max(lhs.volts().abs() * 1e-9));
        }

        #[test]
        fn lerp_bounded(a in -10.0..10.0f64, b in -10.0..10.0f64, t in 0.0..1.0f64) {
            let lo = a.min(b);
            let hi = a.max(b);
            let v = Voltage::from_v(a).lerp(Voltage::from_v(b), t).volts();
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }

        #[test]
        fn min_max_consistent(a in -1.0e6..1.0e6f64, b in -1.0e6..1.0e6f64) {
            let x = Time::from_ps(a);
            let y = Time::from_ps(b);
            prop_assert!(x.min(y) <= x.max(y));
            prop_assert_eq!(x.min(y) + x.max(y), x + y);
        }
    }
}
