//! Error types for the cell substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by the `psnt-cells` crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CellError {
    /// A character other than `0`, `1`, `x`/`X`, `z`/`Z` was parsed as a
    /// logic level.
    InvalidLogicChar(char),
    /// A cell name was not found in the library.
    UnknownCell(String),
    /// A delay table was constructed with non-monotonic or empty axes.
    InvalidTable(String),
    /// A physical parameter was outside its valid domain (e.g. supply at or
    /// below threshold voltage).
    InvalidParameter {
        /// The parameter name.
        name: &'static str,
        /// Explanation of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellError::InvalidLogicChar(c) => {
                write!(f, "invalid logic character {c:?} (expected 0, 1, x or z)")
            }
            CellError::UnknownCell(name) => write!(f, "unknown cell {name:?}"),
            CellError::InvalidTable(why) => write!(f, "invalid delay table: {why}"),
            CellError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
        }
    }
}

impl Error for CellError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CellError::InvalidLogicChar('q').to_string().contains("'q'"));
        assert!(CellError::UnknownCell("INVX9".into())
            .to_string()
            .contains("INVX9"));
        assert!(CellError::InvalidTable("empty axis".into())
            .to_string()
            .contains("empty axis"));
        let e = CellError::InvalidParameter {
            name: "vdd",
            reason: "below threshold".into(),
        };
        assert!(e.to_string().contains("vdd"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<CellError>();
    }
}
