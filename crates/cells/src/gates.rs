//! Combinational standard cells: logic functions plus timing.
//!
//! A [`StdCell`] pairs a pure [`GateFunction`] with an
//! [`AlphaPowerDelay`] timing model and per-pin input capacitance — the
//! same information a Liberty library entry carries. The gate-level
//! simulator and STA in `psnt-netlist` are built on these.
//!
//! # Examples
//!
//! ```
//! use psnt_cells::gates::{GateFunction, StdCell};
//! use psnt_cells::logic::Logic;
//!
//! let nand = StdCell::nand2(1.0);
//! assert_eq!(nand.eval(&[Logic::One, Logic::One]), Logic::Zero);
//! assert_eq!(nand.eval(&[Logic::Zero, Logic::X]), Logic::One); // controlling 0
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::delay::{AlphaPowerDelay, DelayModel};
use crate::logic::Logic;
use crate::process::Pvt;
use crate::units::{Capacitance, Time, Voltage};

/// The boolean function computed by a combinational cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum GateFunction {
    /// Inverter.
    Inv,
    /// Non-inverting buffer.
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 3-input NAND.
    Nand3,
    /// 3-input NOR.
    Nor3,
    /// 3-input AND.
    And3,
    /// 3-input OR.
    Or3,
    /// 2:1 multiplexer; inputs are `[a, b, sel]`, output `a` when `sel=0`.
    Mux2,
    /// AND-OR-INVERT 2-1: `!(a·b + c)`; inputs `[a, b, c]`.
    Aoi21,
    /// OR-AND-INVERT 2-1: `!((a+b)·c)`; inputs `[a, b, c]`.
    Oai21,
}

impl GateFunction {
    /// Number of input pins.
    pub fn num_inputs(self) -> usize {
        match self {
            GateFunction::Inv | GateFunction::Buf => 1,
            GateFunction::Nand2
            | GateFunction::Nor2
            | GateFunction::And2
            | GateFunction::Or2
            | GateFunction::Xor2
            | GateFunction::Xnor2 => 2,
            GateFunction::Nand3
            | GateFunction::Nor3
            | GateFunction::And3
            | GateFunction::Or3
            | GateFunction::Mux2
            | GateFunction::Aoi21
            | GateFunction::Oai21 => 3,
        }
    }

    /// Evaluates the function with four-valued semantics.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    pub fn eval(self, inputs: &[Logic]) -> Logic {
        assert_eq!(
            inputs.len(),
            self.num_inputs(),
            "{self} expects {} inputs, got {}",
            self.num_inputs(),
            inputs.len()
        );
        match self {
            GateFunction::Inv => inputs[0].not(),
            GateFunction::Buf => inputs[0].not().not(),
            GateFunction::Nand2 => inputs[0].and(inputs[1]).not(),
            GateFunction::Nor2 => inputs[0].or(inputs[1]).not(),
            GateFunction::And2 => inputs[0].and(inputs[1]),
            GateFunction::Or2 => inputs[0].or(inputs[1]),
            GateFunction::Xor2 => inputs[0].xor(inputs[1]),
            GateFunction::Xnor2 => inputs[0].xor(inputs[1]).not(),
            GateFunction::Nand3 => inputs[0].and(inputs[1]).and(inputs[2]).not(),
            GateFunction::Nor3 => inputs[0].or(inputs[1]).or(inputs[2]).not(),
            GateFunction::And3 => inputs[0].and(inputs[1]).and(inputs[2]),
            GateFunction::Or3 => inputs[0].or(inputs[1]).or(inputs[2]),
            GateFunction::Mux2 => Logic::mux(inputs[2], inputs[0], inputs[1]),
            GateFunction::Aoi21 => inputs[0].and(inputs[1]).or(inputs[2]).not(),
            GateFunction::Oai21 => inputs[0].or(inputs[1]).and(inputs[2]).not(),
        }
    }

    /// Base cell area in gate equivalents (1 GE = one unit-drive NAND2)
    /// for a unit-drive cell of this function — representative 90 nm
    /// library relativities.
    pub fn base_area_ge(self) -> f64 {
        match self {
            GateFunction::Inv => 0.75,
            GateFunction::Buf => 1.0,
            GateFunction::Nand2 | GateFunction::Nor2 => 1.0,
            GateFunction::And2 | GateFunction::Or2 => 1.25,
            GateFunction::Xor2 | GateFunction::Xnor2 => 2.25,
            GateFunction::Nand3 | GateFunction::Nor3 => 1.5,
            GateFunction::And3 | GateFunction::Or3 => 1.75,
            GateFunction::Mux2 => 2.25,
            GateFunction::Aoi21 | GateFunction::Oai21 => 1.5,
        }
    }

    /// `true` when the output inverts a rising input majority (used to pick
    /// the right arc in slew-aware extensions; informational here).
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            GateFunction::Inv
                | GateFunction::Nand2
                | GateFunction::Nor2
                | GateFunction::Xnor2
                | GateFunction::Nand3
                | GateFunction::Nor3
                | GateFunction::Aoi21
                | GateFunction::Oai21
        )
    }
}

impl fmt::Display for GateFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateFunction::Inv => "INV",
            GateFunction::Buf => "BUF",
            GateFunction::Nand2 => "NAND2",
            GateFunction::Nor2 => "NOR2",
            GateFunction::And2 => "AND2",
            GateFunction::Or2 => "OR2",
            GateFunction::Xor2 => "XOR2",
            GateFunction::Xnor2 => "XNOR2",
            GateFunction::Nand3 => "NAND3",
            GateFunction::Nor3 => "NOR3",
            GateFunction::And3 => "AND3",
            GateFunction::Or3 => "OR3",
            GateFunction::Mux2 => "MUX2",
            GateFunction::Aoi21 => "AOI21",
            GateFunction::Oai21 => "OAI21",
        };
        f.write_str(s)
    }
}

/// Silicon area of one gate equivalent at 90 nm, in µm² (a unit-drive
/// NAND2 footprint).
pub const GE_AREA_90NM_UM2: f64 = 4.4;

/// Representative 90 nm GP leakage per gate equivalent at 25 °C, in nW.
pub const LEAKAGE_NW_PER_GE: f64 = 2.5;

/// A combinational standard cell: function + timing + pin loading.
///
/// By default one [`AlphaPowerDelay`] times both output edges. Cells
/// whose pull-up and pull-down see different supplies (the sensor's
/// HIGH-SENSE inverter: pull-up from the noisy rail, pull-down with full
/// gate drive from the clean-domain input) can carry a distinct
/// falling-edge model via [`StdCell::with_fall_model`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StdCell {
    name: String,
    function: GateFunction,
    delay: AlphaPowerDelay,
    #[serde(default)]
    fall_delay: Option<AlphaPowerDelay>,
    input_capacitance: Capacitance,
    #[serde(default)]
    area_ge: f64,
}

impl StdCell {
    /// Creates a cell from its parts.
    pub fn new(
        name: impl Into<String>,
        function: GateFunction,
        delay: AlphaPowerDelay,
        input_capacitance: Capacitance,
    ) -> StdCell {
        let area_ge = function.base_area_ge();
        StdCell {
            name: name.into(),
            function,
            delay,
            fall_delay: None,
            input_capacitance,
            area_ge,
        }
    }

    /// Returns a copy with an explicit area (gate equivalents).
    ///
    /// # Panics
    ///
    /// Panics if `ge` is not positive.
    #[must_use]
    pub fn with_area_ge(mut self, ge: f64) -> StdCell {
        assert!(ge > 0.0, "area must be positive");
        self.area_ge = ge;
        self
    }

    /// Returns a copy with a distinct timing model for *falling* output
    /// transitions (the default model then times rising ones only).
    #[must_use]
    pub fn with_fall_model(mut self, fall: AlphaPowerDelay) -> StdCell {
        self.fall_delay = Some(fall);
        self
    }

    fn standard(name: &str, function: GateFunction, intrinsic_ps: f64, drive: f64) -> StdCell {
        StdCell {
            name: format!("{name}X{}", drive as u32),
            function,
            delay: AlphaPowerDelay::logic_gate(intrinsic_ps).with_drive_strength(drive),
            fall_delay: None,
            // Input capacitance grows with the drive strength (wider
            // transistors present more gate capacitance).
            input_capacitance: Capacitance::from_ff(1.8 * drive),
            // Area grows sub-linearly with drive (shared internal stages).
            area_ge: function.base_area_ge() * (0.6 + 0.4 * drive),
        }
    }

    /// Minimum-size inverter family; `drive` is the strength multiplier.
    pub fn inverter(drive: f64) -> StdCell {
        StdCell::standard("INV", GateFunction::Inv, 12.0, drive)
    }

    /// Buffer (two inverters): slower intrinsic, non-inverting.
    pub fn buffer(drive: f64) -> StdCell {
        StdCell::standard("BUF", GateFunction::Buf, 28.0, drive)
    }

    /// 2-input NAND.
    pub fn nand2(drive: f64) -> StdCell {
        StdCell::standard("NAND2", GateFunction::Nand2, 16.0, drive)
    }

    /// 2-input NOR.
    pub fn nor2(drive: f64) -> StdCell {
        StdCell::standard("NOR2", GateFunction::Nor2, 18.0, drive)
    }

    /// 2-input AND (NAND + INV).
    pub fn and2(drive: f64) -> StdCell {
        StdCell::standard("AND2", GateFunction::And2, 26.0, drive)
    }

    /// 2-input OR (NOR + INV).
    pub fn or2(drive: f64) -> StdCell {
        StdCell::standard("OR2", GateFunction::Or2, 28.0, drive)
    }

    /// 2-input XOR.
    pub fn xor2(drive: f64) -> StdCell {
        StdCell::standard("XOR2", GateFunction::Xor2, 30.0, drive)
    }

    /// 2-input XNOR.
    pub fn xnor2(drive: f64) -> StdCell {
        StdCell::standard("XNOR2", GateFunction::Xnor2, 30.0, drive)
    }

    /// 3-input NAND.
    pub fn nand3(drive: f64) -> StdCell {
        StdCell::standard("NAND3", GateFunction::Nand3, 22.0, drive)
    }

    /// 3-input NOR.
    pub fn nor3(drive: f64) -> StdCell {
        StdCell::standard("NOR3", GateFunction::Nor3, 26.0, drive)
    }

    /// 3-input AND.
    pub fn and3(drive: f64) -> StdCell {
        StdCell::standard("AND3", GateFunction::And3, 32.0, drive)
    }

    /// 3-input OR.
    pub fn or3(drive: f64) -> StdCell {
        StdCell::standard("OR3", GateFunction::Or3, 34.0, drive)
    }

    /// 2:1 MUX (the PG uses matched MUXes on P and CP so their skew
    /// cancels — paper Fig. 7).
    pub fn mux2(drive: f64) -> StdCell {
        StdCell::standard("MUX2", GateFunction::Mux2, 34.0, drive)
    }

    /// AND-OR-INVERT 2-1.
    pub fn aoi21(drive: f64) -> StdCell {
        StdCell::standard("AOI21", GateFunction::Aoi21, 20.0, drive)
    }

    /// OR-AND-INVERT 2-1.
    pub fn oai21(drive: f64) -> StdCell {
        StdCell::standard("OAI21", GateFunction::Oai21, 20.0, drive)
    }

    /// The cell's library name, e.g. `NAND2X1`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The boolean function.
    pub fn function(&self) -> GateFunction {
        self.function
    }

    /// Number of input pins.
    pub fn num_inputs(&self) -> usize {
        self.function.num_inputs()
    }

    /// The timing model.
    pub fn delay_model(&self) -> &AlphaPowerDelay {
        &self.delay
    }

    /// Capacitance presented by one input pin.
    pub fn input_capacitance(&self) -> Capacitance {
        self.input_capacitance
    }

    /// Cell area in gate equivalents (1 GE = a unit-drive NAND2, ≈
    /// [`GE_AREA_90NM_UM2`] at 90 nm).
    pub fn area_ge(&self) -> f64 {
        self.area_ge
    }

    /// Leakage power estimate in nanowatts: [`LEAKAGE_NW_PER_GE`] per GE
    /// (representative 90 nm general-purpose silicon at 25 °C).
    pub fn leakage_nw(&self) -> f64 {
        self.area_ge * LEAKAGE_NW_PER_GE
    }

    /// Evaluates the cell's function.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` does not match the pin count.
    pub fn eval(&self, inputs: &[Logic]) -> Logic {
        self.function.eval(inputs)
    }

    /// Propagation delay driving `load` from `supply` at `pvt` — the
    /// worst (slower) edge when the cell has distinct edge models.
    pub fn propagation_delay(&self, supply: Voltage, load: Capacitance, pvt: &Pvt) -> Time {
        let rise = self.delay.propagation_delay(supply, load, pvt);
        match &self.fall_delay {
            None => rise,
            Some(fall) => rise.max(fall.propagation_delay(supply, load, pvt)),
        }
    }

    /// Propagation delay for a specific output edge: `rising = true` uses
    /// the primary (pull-up) model, `false` the falling model when one is
    /// set.
    pub fn propagation_delay_edge(
        &self,
        supply: Voltage,
        load: Capacitance,
        pvt: &Pvt,
        rising: bool,
    ) -> Time {
        match (&self.fall_delay, rising) {
            (Some(fall), false) => fall.propagation_delay(supply, load, pvt),
            _ => self.delay.propagation_delay(supply, load, pvt),
        }
    }
}

impl fmt::Display for StdCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.function)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn truth_tables_two_input() {
        use Logic::{One, Zero};
        let cases = [
            (
                GateFunction::Nand2,
                [(0, 0, 1), (0, 1, 1), (1, 0, 1), (1, 1, 0)],
            ),
            (
                GateFunction::Nor2,
                [(0, 0, 1), (0, 1, 0), (1, 0, 0), (1, 1, 0)],
            ),
            (
                GateFunction::And2,
                [(0, 0, 0), (0, 1, 0), (1, 0, 0), (1, 1, 1)],
            ),
            (
                GateFunction::Or2,
                [(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 1)],
            ),
            (
                GateFunction::Xor2,
                [(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 0)],
            ),
            (
                GateFunction::Xnor2,
                [(0, 0, 1), (0, 1, 0), (1, 0, 0), (1, 1, 1)],
            ),
        ];
        for (gate, table) in cases {
            for (a, b, q) in table {
                let ins = [
                    if a == 1 { One } else { Zero },
                    if b == 1 { One } else { Zero },
                ];
                let expect = if q == 1 { One } else { Zero };
                assert_eq!(gate.eval(&ins), expect, "{gate} {a}{b}");
            }
        }
    }

    #[test]
    fn three_input_functions() {
        use Logic::{One, Zero};
        assert_eq!(GateFunction::Nand3.eval(&[One, One, One]), Zero);
        assert_eq!(GateFunction::Nand3.eval(&[One, Zero, One]), One);
        assert_eq!(GateFunction::Nor3.eval(&[Zero, Zero, Zero]), One);
        assert_eq!(GateFunction::Nor3.eval(&[Zero, One, Zero]), Zero);
        assert_eq!(GateFunction::And3.eval(&[One, One, One]), One);
        assert_eq!(GateFunction::Or3.eval(&[Zero, Zero, One]), One);
        // AOI21: !(a·b + c)
        assert_eq!(GateFunction::Aoi21.eval(&[One, One, Zero]), Zero);
        assert_eq!(GateFunction::Aoi21.eval(&[Zero, One, Zero]), One);
        assert_eq!(GateFunction::Aoi21.eval(&[Zero, Zero, One]), Zero);
        // OAI21: !((a+b)·c)
        assert_eq!(GateFunction::Oai21.eval(&[Zero, Zero, One]), One);
        assert_eq!(GateFunction::Oai21.eval(&[One, Zero, One]), Zero);
        assert_eq!(GateFunction::Oai21.eval(&[One, One, Zero]), One);
    }

    #[test]
    fn mux_function() {
        use Logic::{One, Zero};
        assert_eq!(GateFunction::Mux2.eval(&[One, Zero, Zero]), One);
        assert_eq!(GateFunction::Mux2.eval(&[One, Zero, One]), Zero);
    }

    #[test]
    fn controlling_values_beat_x() {
        use Logic::{One, Zero, X};
        assert_eq!(GateFunction::Nand2.eval(&[Zero, X]), One);
        assert_eq!(GateFunction::Nor2.eval(&[One, X]), Zero);
        assert_eq!(GateFunction::And3.eval(&[X, Zero, X]), Zero);
        assert_eq!(GateFunction::Or3.eval(&[X, One, X]), One);
        // Non-controlling unknown propagates.
        assert_eq!(GateFunction::Nand2.eval(&[One, X]), X);
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn wrong_arity_panics() {
        GateFunction::Nand2.eval(&[Logic::One]);
    }

    #[test]
    fn cell_names_and_arity() {
        assert_eq!(StdCell::inverter(1.0).name(), "INVX1");
        assert_eq!(StdCell::nand2(4.0).name(), "NAND2X4");
        assert_eq!(StdCell::mux2(2.0).num_inputs(), 3);
        assert_eq!(StdCell::buffer(1.0).num_inputs(), 1);
    }

    #[test]
    fn higher_drive_is_faster_but_heavier() {
        let pvt = Pvt::typical();
        let v = Voltage::from_v(1.0);
        let load = Capacitance::from_ff(50.0);
        let x1 = StdCell::nand2(1.0);
        let x4 = StdCell::nand2(4.0);
        assert!(x4.propagation_delay(v, load, &pvt) < x1.propagation_delay(v, load, &pvt));
        assert!(x4.input_capacitance() > x1.input_capacitance());
    }

    #[test]
    fn edge_models_select_by_transition() {
        let rise = AlphaPowerDelay::paper_sense_inverter();
        let fall = AlphaPowerDelay::new(
            1.0e-6, // pure intrinsic arc
            Capacitance::from_ff(1.0),
            Time::from_ps(100.0),
            Voltage::from_v(0.3),
            1.3,
        )
        .unwrap();
        let cell = StdCell::new(
            "ASYM_INV",
            GateFunction::Inv,
            rise,
            Capacitance::from_ff(2.0),
        )
        .with_fall_model(fall);
        let pvt = Pvt::typical();
        let c = Capacitance::from_pf(2.0);
        let v = Voltage::from_v(0.9);
        let t_rise = cell.propagation_delay_edge(v, c, &pvt, true);
        let t_fall = cell.propagation_delay_edge(v, c, &pvt, false);
        // The rising arc is rail-limited; the falling arc is essentially
        // its fixed intrinsic.
        assert!(t_rise > Time::from_ps(110.0));
        assert!((t_fall - Time::from_ps(100.0)).abs() < Time::from_ps(1.0));
        // The undirected query reports the worst edge.
        assert_eq!(cell.propagation_delay(v, c, &pvt), t_rise.max(t_fall));
        // Cells without a fall model answer identically for both edges.
        let sym = StdCell::inverter(1.0);
        assert_eq!(
            sym.propagation_delay_edge(v, c, &pvt, true),
            sym.propagation_delay_edge(v, c, &pvt, false)
        );
    }

    #[test]
    fn inverting_classification() {
        assert!(GateFunction::Inv.is_inverting());
        assert!(GateFunction::Nand3.is_inverting());
        assert!(!GateFunction::Buf.is_inverting());
        assert!(!GateFunction::Mux2.is_inverting());
    }

    #[test]
    fn display_forms() {
        assert_eq!(GateFunction::Nand2.to_string(), "NAND2");
        assert_eq!(StdCell::inverter(2.0).to_string(), "INVX2 (INV)");
    }

    fn arb_logic() -> impl Strategy<Value = Logic> {
        prop_oneof![
            Just(Logic::Zero),
            Just(Logic::One),
            Just(Logic::X),
            Just(Logic::Z)
        ]
    }

    proptest! {
        #[test]
        fn nand_is_not_and(a in arb_logic(), b in arb_logic()) {
            prop_assert_eq!(
                GateFunction::Nand2.eval(&[a, b]),
                GateFunction::And2.eval(&[a, b]).not()
            );
            prop_assert_eq!(
                GateFunction::Nor2.eval(&[a, b]),
                GateFunction::Or2.eval(&[a, b]).not()
            );
        }

        #[test]
        fn known_inputs_give_known_outputs(bits in proptest::collection::vec(any::<bool>(), 3)) {
            let ins: Vec<Logic> = bits.iter().copied().map(Logic::from).collect();
            for f in [GateFunction::Nand3, GateFunction::Nor3, GateFunction::And3,
                      GateFunction::Or3, GateFunction::Mux2, GateFunction::Aoi21,
                      GateFunction::Oai21] {
                prop_assert!(f.eval(&ins).is_known(), "{} produced unknown", f);
            }
        }

        #[test]
        fn delay_positive(drive in 0.5..8.0f64, load_ff in 1.0..500.0f64) {
            let cell = StdCell::nand2(drive);
            let t = cell.propagation_delay(
                Voltage::from_v(1.0),
                Capacitance::from_ff(load_ff),
                &Pvt::typical(),
            );
            prop_assert!(t > Time::ZERO);
        }
    }
}
