//! Gate delay models: closed-form alpha-power delay and NLDM-style tables.
//!
//! Two interchangeable implementations of [`DelayModel`] are provided:
//!
//! * [`AlphaPowerDelay`] — the analytic model
//!   `t_pd = t₀ + A · (C_int + C_load) · V / (V − V_th)^α`, the software
//!   stand-in for the paper's ELDO post-layout characterisation (see
//!   `DESIGN.md` §2 for the calibration that places the paper's Fig. 4/5
//!   thresholds).
//! * [`TableDelay`] — a non-linear delay model (NLDM) lookup table over
//!   (supply voltage, load capacitance) with bilinear interpolation, the
//!   way a real Liberty `.lib` characterises cells. Mostly used by the
//!   ablation bench `xp_delay_model` to show the analytic model and a
//!   table sampled from it agree.
//!
//! # Examples
//!
//! ```
//! use psnt_cells::delay::{AlphaPowerDelay, DelayModel};
//! use psnt_cells::process::Pvt;
//! use psnt_cells::units::{Capacitance, Voltage};
//!
//! let inv = AlphaPowerDelay::paper_sense_inverter();
//! let pvt = Pvt::typical();
//! let fast = inv.propagation_delay(Voltage::from_v(1.05), Capacitance::from_pf(2.0), &pvt);
//! let slow = inv.propagation_delay(Voltage::from_v(0.95), Capacitance::from_pf(2.0), &pvt);
//! assert!(slow > fast); // lower supply, later DS arrival
//! ```

use serde::{Deserialize, Serialize};

use crate::error::CellError;
use crate::process::Pvt;
use crate::units::{Capacitance, Time, Voltage};

/// A model mapping (supply, load, PVT) to a propagation delay.
///
/// Implementations must be monotone: delay must not decrease when the
/// supply drops or the load grows. The property tests in this module and
/// the calibration tests in `psnt-core` rely on it.
pub trait DelayModel {
    /// Propagation delay of the cell's switching arc when powered from
    /// `supply` and driving `load`, at operating point `pvt`.
    fn propagation_delay(&self, supply: Voltage, load: Capacitance, pvt: &Pvt) -> Time;
}

/// Delay returned when a stage has no overdrive and cannot switch.
pub const STALLED: Time = Time::from_seconds(1.0);

/// Closed-form alpha-power-law delay:
/// `t_pd = t₀ + A · (C_int + C_load) · V / (V − V_th)^α / drive`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlphaPowerDelay {
    /// Drive coefficient `A` in ps/pF (per unit of `g(V) = V/(V−V_th)^α`).
    a_ps_per_pf: f64,
    /// Intrinsic (self-load) capacitance of the output node.
    c_intrinsic: Capacitance,
    /// Fixed parasitic delay added to every transition.
    t_intrinsic: Time,
    /// Typical threshold voltage.
    vth: Voltage,
    /// Velocity-saturation index.
    alpha: f64,
}

impl AlphaPowerDelay {
    /// Creates a model from raw parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CellError::InvalidParameter`] when `a_ps_per_pf <= 0`,
    /// `c_intrinsic < 0`, `t_intrinsic < 0`, `vth <= 0` or `alpha` is
    /// outside `(1, 2]`.
    // The `!(x > 0.0)` forms below are deliberate: they reject NaN as
    // well as non-positive values in one test.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn new(
        a_ps_per_pf: f64,
        c_intrinsic: Capacitance,
        t_intrinsic: Time,
        vth: Voltage,
        alpha: f64,
    ) -> Result<AlphaPowerDelay, CellError> {
        if !(a_ps_per_pf > 0.0) {
            return Err(CellError::InvalidParameter {
                name: "a_ps_per_pf",
                reason: format!("drive coefficient must be positive, got {a_ps_per_pf}"),
            });
        }
        if c_intrinsic < Capacitance::ZERO {
            return Err(CellError::InvalidParameter {
                name: "c_intrinsic",
                reason: format!("intrinsic capacitance must be non-negative, got {c_intrinsic}"),
            });
        }
        if t_intrinsic < Time::ZERO {
            return Err(CellError::InvalidParameter {
                name: "t_intrinsic",
                reason: format!("intrinsic delay must be non-negative, got {t_intrinsic}"),
            });
        }
        if !(vth > Voltage::ZERO) {
            return Err(CellError::InvalidParameter {
                name: "vth",
                reason: format!("threshold must be positive, got {vth}"),
            });
        }
        if !(alpha > 1.0 && alpha <= 2.0) {
            return Err(CellError::InvalidParameter {
                name: "alpha",
                reason: format!("alpha must be in (1, 2], got {alpha}"),
            });
        }
        Ok(AlphaPowerDelay {
            a_ps_per_pf,
            c_intrinsic,
            t_intrinsic,
            vth,
            alpha,
        })
    }

    /// The calibrated model of the paper's sense inverter (90 nm, minimum
    /// drive, powered from the noisy rail): `A` = 32 ps/pF,
    /// `C_int` = 0.205 pF, `V_th` = 0.30 V, α = 1.3, no extra parasitic
    /// delay. With the paper's delay-code table and a 54 ps base window
    /// this reproduces the published thresholds (see `DESIGN.md` §2).
    pub fn paper_sense_inverter() -> AlphaPowerDelay {
        AlphaPowerDelay {
            a_ps_per_pf: 32.0,
            c_intrinsic: Capacitance::from_ff(205.0),
            t_intrinsic: Time::ZERO,
            vth: Voltage::from_v(0.30),
            alpha: 1.3,
        }
    }

    /// A fast logic gate model used for the control-path standard cells
    /// (strong drive, tiny intrinsic load): roughly 15 ps unloaded,
    /// ~45 ps/pF of fanout load at nominal supply.
    pub fn logic_gate(intrinsic_ps: f64) -> AlphaPowerDelay {
        AlphaPowerDelay {
            a_ps_per_pf: 28.0,
            c_intrinsic: Capacitance::from_ff(2.0),
            t_intrinsic: Time::from_ps(intrinsic_ps),
            vth: Voltage::from_v(0.30),
            alpha: 1.3,
        }
    }

    /// The drive coefficient `A` in ps/pF.
    pub fn a_ps_per_pf(&self) -> f64 {
        self.a_ps_per_pf
    }

    /// The intrinsic output capacitance.
    pub fn c_intrinsic(&self) -> Capacitance {
        self.c_intrinsic
    }

    /// The fixed parasitic delay.
    pub fn t_intrinsic(&self) -> Time {
        self.t_intrinsic
    }

    /// The typical threshold voltage.
    pub fn vth(&self) -> Voltage {
        self.vth
    }

    /// The velocity-saturation index.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Returns a copy with a different drive coefficient — a cell with
    /// `k` times the drive strength has `A / k`.
    ///
    /// # Panics
    ///
    /// Panics if `k <= 0`.
    #[must_use]
    pub fn with_drive_strength(mut self, k: f64) -> AlphaPowerDelay {
        assert!(k > 0.0, "drive strength must be positive");
        self.a_ps_per_pf /= k;
        self
    }

    /// The voltage-sensitivity kernel `g(V) = V / (V − V_th)^α` at the
    /// given operating point, or `None` without overdrive.
    ///
    /// Evaluated through [`crate::fastmath::powf_pos`] so the scalar
    /// path and the batched 64-lane path execute the same float
    /// program (the bit-identity contract of `DESIGN.md` §14); the
    /// kernel is accurate to ~1e-13 relative on this domain.
    pub fn voltage_kernel(&self, supply: Voltage, pvt: &Pvt) -> Option<f64> {
        let vth = pvt.effective_vth(self.vth);
        let overdrive = supply - vth;
        if overdrive <= Voltage::ZERO {
            return None;
        }
        Some(supply.volts() / crate::fastmath::powf_pos(overdrive.volts(), self.alpha))
    }
}

impl DelayModel for AlphaPowerDelay {
    fn propagation_delay(&self, supply: Voltage, load: Capacitance, pvt: &Pvt) -> Time {
        let Some(g) = self.voltage_kernel(supply, pvt) else {
            return STALLED;
        };
        let c_total = (self.c_intrinsic + load).picofarads();
        let switching = self.a_ps_per_pf * c_total * g / pvt.drive_factor();
        self.t_intrinsic + Time::from_ps(switching)
    }
}

/// An NLDM-style two-dimensional delay lookup table indexed by supply
/// voltage and load capacitance, with bilinear interpolation inside the
/// characterised region and clamping outside it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableDelay {
    voltages: Vec<Voltage>,
    loads: Vec<Capacitance>,
    /// Row-major: `delays[vi * loads.len() + ci]`.
    delays: Vec<Time>,
}

impl TableDelay {
    /// Builds a table from its axes and row-major delay values.
    ///
    /// # Errors
    ///
    /// Returns [`CellError::InvalidTable`] when an axis is empty or not
    /// strictly increasing, or the value count does not match the grid.
    pub fn new(
        voltages: Vec<Voltage>,
        loads: Vec<Capacitance>,
        delays: Vec<Time>,
    ) -> Result<TableDelay, CellError> {
        if voltages.is_empty() || loads.is_empty() {
            return Err(CellError::InvalidTable("empty axis".into()));
        }
        if voltages.windows(2).any(|w| w[1] <= w[0]) {
            return Err(CellError::InvalidTable(
                "voltage axis not strictly increasing".into(),
            ));
        }
        if loads.windows(2).any(|w| w[1] <= w[0]) {
            return Err(CellError::InvalidTable(
                "load axis not strictly increasing".into(),
            ));
        }
        if delays.len() != voltages.len() * loads.len() {
            return Err(CellError::InvalidTable(format!(
                "expected {} values, got {}",
                voltages.len() * loads.len(),
                delays.len()
            )));
        }
        Ok(TableDelay {
            voltages,
            loads,
            delays,
        })
    }

    /// Characterises a table by sampling `model` on the given axes at
    /// operating point `pvt` — the software analogue of running SPICE to
    /// produce a Liberty table.
    ///
    /// # Errors
    ///
    /// Returns [`CellError::InvalidTable`] for invalid axes.
    pub fn characterize<M: DelayModel>(
        model: &M,
        voltages: Vec<Voltage>,
        loads: Vec<Capacitance>,
        pvt: &Pvt,
    ) -> Result<TableDelay, CellError> {
        let mut delays = Vec::with_capacity(voltages.len() * loads.len());
        for &v in &voltages {
            for &c in &loads {
                delays.push(model.propagation_delay(v, c, pvt));
            }
        }
        TableDelay::new(voltages, loads, delays)
    }

    /// The voltage axis.
    pub fn voltages(&self) -> &[Voltage] {
        &self.voltages
    }

    /// The load axis.
    pub fn loads(&self) -> &[Capacitance] {
        &self.loads
    }

    fn bracket(values: &[f64], x: f64) -> (usize, f64) {
        // Returns the lower index and the interpolation fraction, clamping
        // outside the characterised range.
        if x <= values[0] || values.len() == 1 {
            return (0, 0.0);
        }
        let last = values.len() - 1;
        if x >= values[last] {
            return (last.saturating_sub(1), 1.0);
        }
        match values.partition_point(|&v| v <= x) {
            0 => (0, 0.0),
            idx => {
                let lo = idx - 1;
                let span = values[idx] - values[lo];
                ((lo), (x - values[lo]) / span)
            }
        }
    }

    fn at(&self, vi: usize, ci: usize) -> Time {
        self.delays[vi * self.loads.len() + ci]
    }
}

impl DelayModel for TableDelay {
    fn propagation_delay(&self, supply: Voltage, load: Capacitance, _pvt: &Pvt) -> Time {
        let vaxis: Vec<f64> = self.voltages.iter().map(|v| v.volts()).collect();
        let caxis: Vec<f64> = self.loads.iter().map(|c| c.picofarads()).collect();
        let (vi, vf) = TableDelay::bracket(&vaxis, supply.volts());
        let (ci, cf) = TableDelay::bracket(&caxis, load.picofarads());
        let vi1 = (vi + 1).min(self.voltages.len() - 1);
        let ci1 = (ci + 1).min(self.loads.len() - 1);
        let lo = self.at(vi, ci).lerp(self.at(vi, ci1), cf);
        let hi = self.at(vi1, ci).lerp(self.at(vi1, ci1), cf);
        lo.lerp(hi, vf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pvt() -> Pvt {
        Pvt::typical()
    }

    #[test]
    fn constructor_validates() {
        let c = Capacitance::from_ff(200.0);
        let t = Time::ZERO;
        let v = Voltage::from_v(0.3);
        assert!(AlphaPowerDelay::new(32.0, c, t, v, 1.3).is_ok());
        assert!(AlphaPowerDelay::new(0.0, c, t, v, 1.3).is_err());
        assert!(AlphaPowerDelay::new(32.0, Capacitance::from_pf(-1.0), t, v, 1.3).is_err());
        assert!(AlphaPowerDelay::new(32.0, c, Time::from_ps(-1.0), v, 1.3).is_err());
        assert!(AlphaPowerDelay::new(32.0, c, t, Voltage::ZERO, 1.3).is_err());
        assert!(AlphaPowerDelay::new(32.0, c, t, v, 0.9).is_err());
    }

    #[test]
    fn paper_inverter_fig4_calibration_point() {
        // Paper Fig. 4: at C = 2 pF the failure threshold is 0.9360 V with
        // a 119 ps window (delay code 011). Equivalently, the delay at
        // V = 0.936 and C = 2 pF must be ≈ 119 ps.
        let inv = AlphaPowerDelay::paper_sense_inverter();
        let t = inv.propagation_delay(Voltage::from_v(0.936), Capacitance::from_pf(2.0), &pvt());
        assert!(
            (t.picoseconds() - 119.0).abs() < 1.0,
            "expected ≈119 ps, got {t}"
        );
    }

    #[test]
    fn delay_monotone_decreasing_in_supply() {
        let inv = AlphaPowerDelay::paper_sense_inverter();
        let c = Capacitance::from_pf(2.0);
        let mut prev = STALLED;
        for mv in (800..=1250).step_by(10) {
            let t = inv.propagation_delay(Voltage::from_mv(mv as f64), c, &pvt());
            assert!(t < prev, "not monotone at {mv} mV");
            prev = t;
        }
    }

    #[test]
    fn delay_monotone_increasing_in_load() {
        let inv = AlphaPowerDelay::paper_sense_inverter();
        let v = Voltage::from_v(1.0);
        let mut prev = Time::ZERO;
        for ff in (100..=4000).step_by(100) {
            let t = inv.propagation_delay(v, Capacitance::from_ff(ff as f64), &pvt());
            assert!(t > prev, "not monotone at {ff} fF");
            prev = t;
        }
    }

    #[test]
    fn no_overdrive_stalls() {
        let inv = AlphaPowerDelay::paper_sense_inverter();
        let t = inv.propagation_delay(Voltage::from_v(0.3), Capacitance::from_pf(1.0), &pvt());
        assert_eq!(t, STALLED);
        assert!(inv.voltage_kernel(Voltage::from_v(0.2), &pvt()).is_none());
    }

    #[test]
    fn drive_strength_scales_delay() {
        let x1 = AlphaPowerDelay::paper_sense_inverter();
        let x4 = x1.with_drive_strength(4.0);
        let v = Voltage::from_v(1.0);
        let c = Capacitance::from_pf(2.0);
        let t1 = x1.propagation_delay(v, c, &pvt()) - x1.t_intrinsic();
        let t4 = x4.propagation_delay(v, c, &pvt()) - x4.t_intrinsic();
        assert!((t1 / t4 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn slow_corner_increases_delay() {
        let inv = AlphaPowerDelay::paper_sense_inverter();
        let v = Voltage::from_v(1.0);
        let c = Capacitance::from_pf(2.0);
        let tt = inv.propagation_delay(v, c, &Pvt::typical());
        let ss = inv.propagation_delay(
            v,
            c,
            &Pvt::new(
                crate::process::ProcessCorner::SS,
                v,
                crate::units::Temperature::from_celsius(25.0),
            ),
        );
        assert!(ss > tt);
    }

    #[test]
    fn table_validation() {
        let v = vec![Voltage::from_v(0.9), Voltage::from_v(1.1)];
        let c = vec![Capacitance::from_pf(1.0), Capacitance::from_pf(2.0)];
        let d = vec![Time::from_ps(10.0); 4];
        assert!(TableDelay::new(v.clone(), c.clone(), d.clone()).is_ok());
        assert!(TableDelay::new(vec![], c.clone(), vec![]).is_err());
        assert!(TableDelay::new(
            vec![Voltage::from_v(1.1), Voltage::from_v(0.9)],
            c.clone(),
            d.clone()
        )
        .is_err());
        assert!(TableDelay::new(v.clone(), c, vec![Time::ZERO; 3]).is_err());
    }

    #[test]
    fn table_reproduces_grid_points() {
        let model = AlphaPowerDelay::paper_sense_inverter();
        let voltages: Vec<Voltage> = (80..=120)
            .step_by(5)
            .map(|v| Voltage::from_mv(v as f64 * 10.0))
            .collect();
        let loads: Vec<Capacitance> = (5..=40)
            .step_by(5)
            .map(|c| Capacitance::from_ff(c as f64 * 100.0))
            .collect();
        let table =
            TableDelay::characterize(&model, voltages.clone(), loads.clone(), &pvt()).unwrap();
        for &v in &voltages {
            for &c in &loads {
                let exact = model.propagation_delay(v, c, &pvt());
                let interp = table.propagation_delay(v, c, &pvt());
                assert!(
                    (exact.picoseconds() - interp.picoseconds()).abs() < 1e-6,
                    "grid point mismatch at {v} {c}"
                );
            }
        }
    }

    #[test]
    fn table_interpolation_close_to_model() {
        let model = AlphaPowerDelay::paper_sense_inverter();
        let voltages: Vec<Voltage> = (0..=20)
            .map(|i| Voltage::from_v(0.8 + 0.025 * i as f64))
            .collect();
        let loads: Vec<Capacitance> = (0..=16)
            .map(|i| Capacitance::from_pf(0.5 + 0.25 * i as f64))
            .collect();
        let table = TableDelay::characterize(&model, voltages, loads, &pvt()).unwrap();
        // Off-grid points: interpolation error should be well under 1 %.
        for &(v, c) in &[(0.913, 1.87), (1.004, 2.11), (1.09, 3.33)] {
            let exact = model
                .propagation_delay(Voltage::from_v(v), Capacitance::from_pf(c), &pvt())
                .picoseconds();
            let interp = table
                .propagation_delay(Voltage::from_v(v), Capacitance::from_pf(c), &pvt())
                .picoseconds();
            let rel = ((exact - interp) / exact).abs();
            assert!(rel < 0.01, "interp error {rel:.4} at {v} V / {c} pF");
        }
    }

    #[test]
    fn table_clamps_out_of_range() {
        let model = AlphaPowerDelay::paper_sense_inverter();
        let voltages = vec![
            Voltage::from_v(0.9),
            Voltage::from_v(1.0),
            Voltage::from_v(1.1),
        ];
        let loads = vec![Capacitance::from_pf(1.0), Capacitance::from_pf(2.0)];
        let table = TableDelay::characterize(&model, voltages, loads, &pvt()).unwrap();
        let below =
            table.propagation_delay(Voltage::from_v(0.5), Capacitance::from_pf(1.5), &pvt());
        let at_edge =
            table.propagation_delay(Voltage::from_v(0.9), Capacitance::from_pf(1.5), &pvt());
        assert_eq!(below, at_edge);
        let beyond =
            table.propagation_delay(Voltage::from_v(2.0), Capacitance::from_pf(5.0), &pvt());
        let corner =
            table.propagation_delay(Voltage::from_v(1.1), Capacitance::from_pf(2.0), &pvt());
        assert_eq!(beyond, corner);
    }

    #[test]
    fn single_point_table() {
        let table = TableDelay::new(
            vec![Voltage::from_v(1.0)],
            vec![Capacitance::from_pf(1.0)],
            vec![Time::from_ps(42.0)],
        )
        .unwrap();
        let t = table.propagation_delay(Voltage::from_v(0.7), Capacitance::from_pf(9.0), &pvt());
        assert_eq!(t, Time::from_ps(42.0));
    }

    proptest! {
        #[test]
        fn alpha_power_monotone_supply(v in 0.5..1.4f64, dv in 0.001..0.2f64, c in 0.1..5.0f64) {
            let m = AlphaPowerDelay::paper_sense_inverter();
            let c = Capacitance::from_pf(c);
            let t_lo = m.propagation_delay(Voltage::from_v(v), c, &pvt());
            let t_hi = m.propagation_delay(Voltage::from_v(v + dv), c, &pvt());
            prop_assert!(t_hi <= t_lo);
        }

        #[test]
        fn alpha_power_monotone_load(v in 0.5..1.4f64, c in 0.1..5.0f64, dc in 0.001..2.0f64) {
            let m = AlphaPowerDelay::paper_sense_inverter();
            let v = Voltage::from_v(v);
            let t_small = m.propagation_delay(v, Capacitance::from_pf(c), &pvt());
            let t_big = m.propagation_delay(v, Capacitance::from_pf(c + dc), &pvt());
            prop_assert!(t_big >= t_small);
        }

        #[test]
        fn table_interpolation_within_envelope(v in 0.9..1.1f64, c in 1.0..2.0f64) {
            // Bilinear interpolation of a monotone function stays within
            // the corner values of its bracketing cell.
            let model = AlphaPowerDelay::paper_sense_inverter();
            let voltages: Vec<Voltage> = (0..=4).map(|i| Voltage::from_v(0.9 + 0.05 * i as f64)).collect();
            let loads: Vec<Capacitance> = (0..=4).map(|i| Capacitance::from_pf(1.0 + 0.25 * i as f64)).collect();
            let table = TableDelay::characterize(&model, voltages, loads, &pvt()).unwrap();
            let t = table.propagation_delay(Voltage::from_v(v), Capacitance::from_pf(c), &pvt());
            // Worst corner: lowest V, highest C; best: highest V, lowest C.
            let worst = table.propagation_delay(Voltage::from_v(0.9), Capacitance::from_pf(2.0), &pvt());
            let best = table.propagation_delay(Voltage::from_v(1.1), Capacitance::from_pf(1.0), &pvt());
            prop_assert!(t <= worst);
            prop_assert!(t >= best);
        }
    }
}
