//! Branch-free transcendental kernels shared by the scalar and batched
//! simulation paths.
//!
//! The bit-identity contract of the 64-lane Monte-Carlo batch (see
//! `DESIGN.md` §14) requires the scalar per-trial path and the
//! structure-of-arrays lane path to execute *the same float program*:
//! a lane result must equal the standalone scalar run bit for bit. The
//! standard library routes `powf`/`ln`/`cos` through libm, whose scalar
//! entry points the auto-vectorizer cannot touch, so both paths instead
//! share these polynomial kernels. They are pure straight-line float
//! code — no tables, no data-dependent branches (range selection uses
//! arithmetic selects) — which lets LLVM unroll and vectorize them
//! across lanes while the scalar caller inlines the very same sequence.
//!
//! Accuracy targets (validated by the tests below) are ~1e-13 relative
//! over the domains the delay and mismatch models use, far inside every
//! physical tolerance in the workspace (threshold searches terminate at
//! 10 µV on ~1 V quantities; paper reproduction tests allow 3 mV).
//!
//! The Horner chains use `f64::mul_add` so hosts with hardware FMA
//! (anything this decade; the workspace builds `target-cpu=native`)
//! fuse each step into one instruction. On a host without FMA the
//! compiler falls back to the correctly-rounded libm `fma` — slower,
//! but the numbers (and thus the scalar/batch bit-identity) are the
//! same everywhere.
//!
//! Domain notes: these are *not* general libm replacements. `log2`/`ln`
//! expect finite positive inputs, `exp2` expects `|x| < 1000`, and
//! `cos` expects `|x| < 1e6` (one magic-number reduction); all callers
//! in-tree satisfy these by construction.

/// ln(2), split high/low so `exp2`'s argument reduction stays exact.
const LN_2: f64 = std::f64::consts::LN_2;
/// Magic constant for branch-free round-to-nearest of `|x| < 2^51`.
const ROUND_MAGIC: f64 = 6755399441055744.0; // 1.5 * 2^52

/// Round to nearest integer (ties to even), returned as `f64`.
/// Branch-free; valid for `|x| < 2^51`.
#[inline(always)]
fn round_nearest(x: f64) -> f64 {
    (x + ROUND_MAGIC) - ROUND_MAGIC
}

/// Split a finite, positive, normal `x = 2^e · m` with
/// `m ∈ [√½, √2) ≈ [0.707, 1.414)`; returns `(m, e)`. Branch-free.
#[inline(always)]
fn split_normal(x: f64) -> (f64, f64) {
    const MANT_MASK: u64 = 0x000F_FFFF_FFFF_FFFF;
    const ONE_BITS: u64 = 0x3FF0_0000_0000_0000;
    let bits = x.to_bits();
    let mut e = (((bits >> 52) & 0x7FF) as i64 - 1023) as f64;
    let mut m = f64::from_bits((bits & MANT_MASK) | ONE_BITS);
    // Re-center m into [√½, √2): arithmetic select, no branch.
    let hi = m > std::f64::consts::SQRT_2;
    let half = if hi { 0.5 } else { 1.0 };
    let bump = if hi { 1.0 } else { 0.0 };
    m *= half;
    e += bump;
    (m, e)
}

/// The atanh-series tail of `ln m`: `1 + s²/3 + s⁴/5 + … + s¹⁶/17`,
/// fused multiply-adds in Estrin form (`|s| ≤ 0.172` after
/// re-centering, so truncation sits past 1e-16).
///
/// Estrin splits the chain into even/odd halves in `s⁴` that evaluate
/// in parallel — the bisection probe is one long dependency chain per
/// lane group, so halving the polynomial's serial depth shows up
/// directly in the probe latency.
#[inline(always)]
fn atanh_poly(s2: f64) -> f64 {
    let s4 = s2 * s2;
    let even = (1.0f64 / 17.0)
        .mul_add(s4, 1.0 / 13.0)
        .mul_add(s4, 1.0 / 9.0)
        .mul_add(s4, 1.0 / 5.0)
        .mul_add(s4, 1.0);
    let odd = (1.0f64 / 15.0)
        .mul_add(s4, 1.0 / 11.0)
        .mul_add(s4, 1.0 / 7.0)
        .mul_add(s4, 1.0 / 3.0);
    odd.mul_add(s2, even)
}

/// Base-2 logarithm of a finite, positive, normal `x`.
///
/// Decomposes `x = 2^e · m` (see [`split_normal`]) and evaluates the
/// atanh series of `ln m` in `s = (m−1)/(m+1)`.
#[inline(always)]
pub fn log2(x: f64) -> f64 {
    let (m, e) = split_normal(x);
    let s = (m - 1.0) / (m + 1.0);
    let ln_m = 2.0 * s * atanh_poly(s * s);
    ln_m.mul_add(std::f64::consts::LOG2_E, e)
}

/// Both base-2 logarithms of a pair of finite, positive, normal inputs,
/// sharing **one** division between them.
///
/// The threshold bisection's fails-predicate needs `log₂ v` and
/// `log₂(v − vth)` every probe; the vectorized probe loop is
/// divider-bound, so the two series arguments `sₓ = (mₓ−1)/(mₓ+1)` are
/// formed from a single reciprocal of the product of denominators:
/// `inv = 1/((mₓ+1)(m_y+1))`, `sₓ = (mₓ−1)·(m_y+1)·inv`, and likewise
/// for `y`. Slightly different rounding than two [`log2`] calls (~1 ulp
/// on `s`), identical on both the scalar and the 64-lane path — the
/// bit-identity contract cares that the two paths share this exact
/// program, not which rounding it picks.
#[inline(always)]
pub fn log2_pair(x: f64, y: f64) -> (f64, f64) {
    let (mx, ex) = split_normal(x);
    let (my, ey) = split_normal(y);
    let dx = mx + 1.0;
    let dy = my + 1.0;
    let inv = 1.0 / (dx * dy);
    let sx = (mx - 1.0) * dy * inv;
    let sy = (my - 1.0) * dx * inv;
    let lx = (2.0 * sx * atanh_poly(sx * sx)).mul_add(std::f64::consts::LOG2_E, ex);
    let ly = (2.0 * sy * atanh_poly(sy * sy)).mul_add(std::f64::consts::LOG2_E, ey);
    (lx, ly)
}

/// Natural logarithm of a finite, positive, normal `x`.
#[inline(always)]
pub fn ln(x: f64) -> f64 {
    log2(x) * LN_2
}

/// `2^x` for `|x| < 1000`.
///
/// Splits `x = n + r` with `n` integral and `|r| ≤ ½`, evaluates
/// `2^r = e^{r·ln2}` by a degree-12 Taylor polynomial
/// (`|r·ln2| ≤ 0.347`, truncation ≈ 1e-16), and applies `2^n` through
/// the exponent bits.
#[inline(always)]
pub fn exp2(x: f64) -> f64 {
    let n = round_nearest(x);
    let t = (x - n) * LN_2;
    // e^t, Taylor to t¹²/12! (Horner, fused multiply-adds).
    let p = (1.0f64 / 479001600.0)
        .mul_add(t, 1.0 / 39916800.0)
        .mul_add(t, 1.0 / 3628800.0)
        .mul_add(t, 1.0 / 362880.0)
        .mul_add(t, 1.0 / 40320.0)
        .mul_add(t, 1.0 / 5040.0)
        .mul_add(t, 1.0 / 720.0)
        .mul_add(t, 1.0 / 120.0)
        .mul_add(t, 1.0 / 24.0)
        .mul_add(t, 1.0 / 6.0)
        .mul_add(t, 1.0 / 2.0)
        .mul_add(t, 1.0)
        .mul_add(t, 1.0);
    let scale = f64::from_bits((((n as i64) + 1023) as u64) << 52);
    p * scale
}

/// `2^x` for `|x| < 1000`, degree-8 (~2e-10 relative).
///
/// The threshold-bisection probe kernel: the search walks `t = log₂`
/// of the overdrive geometrically, so each probe is two of these and
/// nothing else — no division, no mantissa split (see
/// `psnt-core::lanes`). Eight fused multiply-adds reach 2e-10 relative
/// over `|r·ln2| ≤ 0.347`, five decades below the 10 µV bisection
/// tolerance on ~1 V quantities; use [`exp2`] where full precision
/// matters.
#[inline(always)]
pub fn exp2_fast(x: f64) -> f64 {
    // `big`'s low mantissa bits hold round(x) as an integer (the magic
    // constant keeps the value in [2^52, 2^53)), so `2^n` packs with a
    // bitcast, add, and shift — no float→int conversion, which LLVM
    // refuses to vectorize on some targets.
    let big = x + ROUND_MAGIC;
    let n = big - ROUND_MAGIC;
    let t = (x - n) * LN_2;
    let p = (1.0f64 / 40320.0)
        .mul_add(t, 1.0 / 5040.0)
        .mul_add(t, 1.0 / 720.0)
        .mul_add(t, 1.0 / 120.0)
        .mul_add(t, 1.0 / 24.0)
        .mul_add(t, 1.0 / 6.0)
        .mul_add(t, 1.0 / 2.0)
        .mul_add(t, 1.0)
        .mul_add(t, 1.0);
    let scale = f64::from_bits(big.to_bits().wrapping_add(1023) << 52);
    p * scale
}

/// `x^a` for positive, normal `x` (the alpha-power overdrive kernel:
/// `x` is an overdrive voltage, `a` the velocity-saturation index).
#[inline(always)]
pub fn powf_pos(x: f64, a: f64) -> f64 {
    exp2(a * log2(x))
}

/// Cosine for `|x| < 1e6` (the Box–Muller phase, `x ∈ [0, 2π)`).
///
/// Cody–Waite reduction by π/2 into `|r| ≤ π/4`, then quadrant
/// selection between the sin/cos Taylor kernels with arithmetic
/// selects only.
#[inline(always)]
pub fn cos(x: f64) -> f64 {
    // π/2 split into three parts so k·π/2 subtracts exactly; the hi
    // part is the nearest double to π/2, mid/lo carry the residual.
    const PIO2_HI: f64 = std::f64::consts::FRAC_PI_2;
    const PIO2_MID: f64 = 6.123_233_995_736_766e-17;
    const PIO2_LO: f64 = -1.497_384_904_859_228_3e-33;
    // `big`'s low mantissa bits hold the quadrant index k as an
    // integer (see `exp2_fast`), so the quadrant parity tests below are
    // plain bit tests — no float→int conversion, which LLVM refuses to
    // vectorize on some targets.
    let big = x * std::f64::consts::FRAC_2_PI + ROUND_MAGIC;
    let k = big - ROUND_MAGIC;
    let r = k.mul_add(-PIO2_LO, k.mul_add(-PIO2_MID, k.mul_add(-PIO2_HI, x)));
    let r2 = r * r;
    // sin r / r and cos r kernels, Taylor with fused multiply-adds
    // (|r| ≤ π/4 + reduction slack).
    let sin_p = r
        * (1.0f64 / 6227020800.0)
            .mul_add(r2, -1.0 / 39916800.0)
            .mul_add(r2, 1.0 / 362880.0)
            .mul_add(r2, -1.0 / 5040.0)
            .mul_add(r2, 1.0 / 120.0)
            .mul_add(r2, -1.0 / 6.0)
            .mul_add(r2, 1.0);
    let cos_p = (-1.0f64 / 87178291200.0)
        .mul_add(r2, 1.0 / 479001600.0)
        .mul_add(r2, -1.0 / 3628800.0)
        .mul_add(r2, 1.0 / 40320.0)
        .mul_add(r2, -1.0 / 720.0)
        .mul_add(r2, 1.0 / 24.0)
        .mul_add(r2, -1.0 / 2.0)
        .mul_add(r2, 1.0);
    // Quadrant: cos(r + k·π/2) cycles {cos r, −sin r, −cos r, sin r}.
    let kb = big.to_bits();
    let swap = (kb & 1) != 0;
    let body = if swap { sin_p } else { cos_p };
    let negate = (kb.wrapping_add(1) & 2) != 0;
    let sign = if negate { -1.0 } else { 1.0 };
    sign * body
}

/// Box–Muller transform of two uniforms: `u1 ∈ (0, 1]` (strictly
/// positive), `u2 ∈ [0, 1)` → one standard-normal deviate.
///
/// This is the *shared float program* both the scalar per-trial
/// mismatch draw and the 64-lane batched draw execute — the uniforms
/// come from each lane's own RNG stream, the transform is this
/// branch-free kernel, so lane `i` of a batch produces bit-for-bit the
/// deviates the standalone scalar trial `i` would.
#[inline(always)]
pub fn gaussian_from_uniforms(u1: f64, u2: f64) -> f64 {
    (-2.0 * ln(u1)).sqrt() * cos(std::f64::consts::TAU * u2)
}

/// `1/√r` for `r ∈ [0, ~1000]`, ~3e-11 relative, without touching the
/// divider unit: bit-trick seed (the classic `0x5FE6EB50C7B537A9`
/// doubled-precision magic, ~3.4e-2 relative) refined by three Newton
/// steps, each squaring the error. `vdivpd` and `vsqrtpd` share one
/// non-pipelined execution unit on current x86, so moving square roots
/// onto the FMA ports is what lets the three radii of
/// [`gaussian3_from_uniforms`] overlap with its single division.
///
/// `rsqrt(0)` returns a finite garbage value (≈1e154) instead of ∞ —
/// callers multiply by `r`, so the `r = 0` radius still comes out 0.
#[inline(always)]
fn rsqrt(r: f64) -> f64 {
    let y0 = f64::from_bits(0x5FE6_EB50_C7B5_37A9_u64.wrapping_sub(r.to_bits() >> 1));
    let h = -0.5 * r;
    let y1 = y0 * (h * y0).mul_add(y0, 1.5);
    let y2 = y1 * (h * y1).mul_add(y1, 1.5);
    y2 * (h * y2).mul_add(y2, 1.5)
}

/// Three Box–Muller deviates from six uniforms
/// (`u = [u1a, u2a, u1b, u2b, u1c, u2c]`, odd slots strictly positive),
/// fused so the whole triple costs **one** division and **zero** IEEE
/// square roots.
///
/// A mismatch draw needs exactly three gaussians per element (drive,
/// load, threshold); evaluated as three [`gaussian_from_uniforms`]
/// calls, the 64-lane transform loop is bound by the divider unit —
/// each `ln` pays a divide for its atanh argument `s = (m−1)/(m+1)` and
/// each radius an IEEE `sqrt` on the same unit. Here the three `s`
/// arguments share a single batched reciprocal (`inv = 1/(d₁d₂d₃)`,
/// `sᵢ = nᵢ·dⱼd_k·inv`) and the radii go through the FMA-only
/// [`rsqrt`], leaving one divide per three gaussians.
///
/// Slightly different rounding than three independent scalar calls
/// (~1 ulp on `s`, ~3e-11 on the radius) — which is why *both* the
/// scalar `perturb_element` and the lane loop route through this exact
/// kernel: the bit-identity contract cares that the paths share the
/// program, not which rounding it picks.
#[inline(always)]
pub fn gaussian3_from_uniforms(u: &[f64; 6]) -> (f64, f64, f64) {
    let (m1, e1) = split_normal(u[0]);
    let (m2, e2) = split_normal(u[2]);
    let (m3, e3) = split_normal(u[4]);
    let d1 = m1 + 1.0;
    let d2 = m2 + 1.0;
    let d3 = m3 + 1.0;
    let d12 = d1 * d2;
    let inv = 1.0 / (d12 * d3);
    let s1 = (m1 - 1.0) * (d2 * d3) * inv;
    let s2 = (m2 - 1.0) * (d1 * d3) * inv;
    let s3 = (m3 - 1.0) * d12 * inv;
    const NEG_2_LN_2: f64 = -2.0 * LN_2;
    let r1 = (2.0 * s1 * atanh_poly(s1 * s1)).mul_add(std::f64::consts::LOG2_E, e1) * NEG_2_LN_2;
    let r2 = (2.0 * s2 * atanh_poly(s2 * s2)).mul_add(std::f64::consts::LOG2_E, e2) * NEG_2_LN_2;
    let r3 = (2.0 * s3 * atanh_poly(s3 * s3)).mul_add(std::f64::consts::LOG2_E, e3) * NEG_2_LN_2;
    let z1 = (r1 * rsqrt(r1)) * cos(std::f64::consts::TAU * u[1]);
    let z2 = (r2 * rsqrt(r2)) * cos(std::f64::consts::TAU * u[3]);
    let z3 = (r3 * rsqrt(r3)) * cos(std::f64::consts::TAU * u[5]);
    (z1, z2, z3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_err(got: f64, want: f64) -> f64 {
        if want == 0.0 {
            got.abs()
        } else {
            ((got - want) / want).abs()
        }
    }

    #[test]
    fn log2_matches_std() {
        let mut x = 1.0e-6;
        while x < 1.0e4 {
            assert!(
                rel_err(log2(x), x.log2()) < 5e-13 || (log2(x) - x.log2()).abs() < 5e-14,
                "log2({x})"
            );
            x *= 1.0371;
        }
    }

    #[test]
    fn ln_matches_std() {
        for &x in &[
            2.2e-16, 1.0e-9, 0.01, 0.5, 0.999999, 1.0, 1.37, 2.0, 3.0, 1000.0,
        ] {
            let err = (ln(x) - x.ln()).abs();
            let tol = 5e-13 * x.ln().abs().max(1e-3);
            assert!(err < tol, "ln({x}): {} vs {}", ln(x), x.ln());
        }
    }

    #[test]
    fn exp2_matches_std() {
        let mut x = -60.0;
        while x < 60.0 {
            assert!(rel_err(exp2(x), x.exp2()) < 5e-14, "exp2({x})");
            x += 0.137;
        }
    }

    #[test]
    fn powf_matches_std_on_overdrive_domain() {
        // The delay kernel's domain: overdrive ∈ (0, ~3] V, α ∈ (1, 2].
        for i in 0..400 {
            let x = 1.0e-4 + 3.0 * (i as f64) / 400.0;
            for &a in &[1.05, 1.3, 1.7, 2.0] {
                let got = powf_pos(x, a);
                let want = x.powf(a);
                assert!(
                    rel_err(got, want) < 1e-12,
                    "powf_pos({x}, {a}) = {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn cos_matches_std_on_box_muller_domain() {
        let mut x = 0.0;
        while x < std::f64::consts::TAU {
            let err = (cos(x) - x.cos()).abs();
            assert!(err < 2e-13, "cos({x}): {} vs {}", cos(x), x.cos());
            x += 0.0137;
        }
        // A few wider points (phase wrap robustness).
        for &x in &[10.0, 100.0, 12345.678] {
            assert!((cos(x) - x.cos()).abs() < 1e-10, "cos({x})");
        }
    }

    #[test]
    fn rsqrt_matches_ieee_sqrt() {
        let mut r = 2.2e-16;
        while r < 1000.0 {
            let got = r * rsqrt(r);
            let want = r.sqrt();
            assert!(rel_err(got, want) < 1e-10, "sqrt via rsqrt({r})");
            r *= 1.137;
        }
        // r = 0 must not poison the radius (0 · finite = 0).
        assert_eq!(0.0 * rsqrt(0.0), 0.0);
        assert!(rsqrt(0.0).is_finite());
    }

    #[test]
    fn gaussian3_matches_three_scalar_transforms() {
        // The fused kernel reorders the divisions and replaces sqrt, so
        // it is *not* bit-identical to three independent transforms —
        // but it must agree to ~1e-9 absolute (both paths share the
        // fused program; this pins it to the reference transform).
        let mut x = 0.013f64;
        for _ in 0..500 {
            let u = [
                x,
                (x * 1.7) % 1.0,
                (x * 2.3) % 1.0 + 1.0e-12,
                (x * 3.1) % 1.0,
                (x * 4.9) % 1.0 + 1.0e-12,
                (x * 5.3) % 1.0,
            ];
            let (z1, z2, z3) = gaussian3_from_uniforms(&u);
            let w1 = gaussian_from_uniforms(u[0], u[1]);
            let w2 = gaussian_from_uniforms(u[2], u[3]);
            let w3 = gaussian_from_uniforms(u[4], u[5]);
            for (z, w) in [(z1, w1), (z2, w2), (z3, w3)] {
                assert!((z - w).abs() < 1e-9, "u={u:?}: {z} vs {w}");
            }
            x = (x * 1.618 + 0.00731) % 1.0 + 1.0e-9;
        }
    }

    #[test]
    fn powf_stays_monotone_over_fine_grid() {
        // The threshold bisection relies on a monotone fails-predicate;
        // verify the kernel does not wobble at bisection resolution.
        let mut prev = 0.0;
        for i in 1..200_000 {
            let x = 1.0e-2 + 1.0e-5 * i as f64;
            let y = powf_pos(x, 1.3);
            assert!(y >= prev, "non-monotone at {x}");
            prev = y;
        }
    }
}
