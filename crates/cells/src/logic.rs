//! Four-valued digital logic (`0`, `1`, `X`, `Z`) and logic vectors.
//!
//! The event-driven simulator in `psnt-netlist` and the sensor models in
//! `psnt-core` operate on [`Logic`] values. `X` models an unknown or
//! metastable value (e.g. a flip-flop whose setup time was violated and
//! which has not resolved yet); `Z` models an undriven net.
//!
//! Gate evaluation follows the usual dominance rules of IEEE-1164-style
//! logic: a controlling input (e.g. `0` on an AND) forces the output even
//! when the other input is `X`/`Z`; otherwise uncertainty propagates.
//!
//! # Examples
//!
//! ```
//! use psnt_cells::logic::Logic;
//!
//! assert_eq!(Logic::Zero.and(Logic::X), Logic::Zero); // controlling 0
//! assert_eq!(Logic::One.and(Logic::X), Logic::X);     // X propagates
//! assert_eq!(Logic::One.or(Logic::X), Logic::One);    // controlling 1
//! ```

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::CellError;

/// A four-valued logic level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Logic {
    /// Driven low.
    Zero,
    /// Driven high.
    One,
    /// Unknown (uninitialised, metastable or conflicting).
    #[default]
    X,
    /// High impedance (undriven).
    Z,
}

impl Logic {
    /// All four levels, in display order `0, 1, X, Z`.
    pub const ALL: [Logic; 4] = [Logic::Zero, Logic::One, Logic::X, Logic::Z];

    /// `true` when the value is a definite `0` or `1`.
    #[inline]
    pub fn is_known(self) -> bool {
        matches!(self, Logic::Zero | Logic::One)
    }

    /// Converts a definite level to `bool`; `None` for `X`/`Z`.
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic::Zero => Some(false),
            Logic::One => Some(true),
            Logic::X | Logic::Z => None,
        }
    }

    /// Logical negation. `X`/`Z` invert to `X` (a floating input reads as
    /// unknown through a gate). Also available as the `!` operator via
    /// the [`std::ops::Not`] impl.
    #[inline]
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Logic {
        match self {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            Logic::X | Logic::Z => Logic::X,
        }
    }

    /// Logical AND with dominance: `0` wins over `X`/`Z`.
    #[inline]
    #[must_use]
    pub fn and(self, rhs: Logic) -> Logic {
        match (self, rhs) {
            (Logic::Zero, _) | (_, Logic::Zero) => Logic::Zero,
            (Logic::One, Logic::One) => Logic::One,
            _ => Logic::X,
        }
    }

    /// Logical OR with dominance: `1` wins over `X`/`Z`.
    #[inline]
    #[must_use]
    pub fn or(self, rhs: Logic) -> Logic {
        match (self, rhs) {
            (Logic::One, _) | (_, Logic::One) => Logic::One,
            (Logic::Zero, Logic::Zero) => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// Logical XOR; any uncertainty poisons the result.
    #[inline]
    #[must_use]
    pub fn xor(self, rhs: Logic) -> Logic {
        match (self.to_bool(), rhs.to_bool()) {
            (Some(a), Some(b)) => Logic::from(a ^ b),
            _ => Logic::X,
        }
    }

    /// Two-input multiplexer: returns `a` when `sel` is `0`, `b` when `sel`
    /// is `1`. When `sel` is unknown the output is known only if both data
    /// inputs agree on a definite value.
    #[inline]
    #[must_use]
    pub fn mux(sel: Logic, a: Logic, b: Logic) -> Logic {
        match sel {
            Logic::Zero => a,
            Logic::One => b,
            Logic::X | Logic::Z => {
                if a == b && a.is_known() {
                    a
                } else {
                    Logic::X
                }
            }
        }
    }

    /// Resolution of two drivers on the same net (wired logic).
    /// `Z` yields to any driver; conflicting or unknown drivers give `X`.
    #[inline]
    #[must_use]
    pub fn resolve(self, rhs: Logic) -> Logic {
        match (self, rhs) {
            (Logic::Z, v) | (v, Logic::Z) => v,
            (a, b) if a == b => a,
            _ => Logic::X,
        }
    }

    /// The character used in waveform dumps: `0`, `1`, `x`, `z`.
    #[inline]
    pub fn to_char(self) -> char {
        match self {
            Logic::Zero => '0',
            Logic::One => '1',
            Logic::X => 'x',
            Logic::Z => 'z',
        }
    }
}

impl std::ops::Not for Logic {
    type Output = Logic;

    #[inline]
    fn not(self) -> Logic {
        Logic::not(self)
    }
}

impl From<bool> for Logic {
    #[inline]
    fn from(b: bool) -> Logic {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }
}

impl TryFrom<char> for Logic {
    type Error = CellError;

    fn try_from(c: char) -> Result<Logic, CellError> {
        match c {
            '0' => Ok(Logic::Zero),
            '1' => Ok(Logic::One),
            'x' | 'X' => Ok(Logic::X),
            'z' | 'Z' => Ok(Logic::Z),
            other => Err(CellError::InvalidLogicChar(other)),
        }
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// An ordered vector of [`Logic`] values.
///
/// Bit 0 is the **leftmost** character in the textual form, matching how
/// the paper prints sensor outputs (e.g. `0011111`, most-loaded element
/// first). Indexing is positional, not numeric.
///
/// ```
/// use psnt_cells::logic::{Logic, LogicVector};
///
/// let v: LogicVector = "0011111".parse().unwrap();
/// assert_eq!(v.len(), 7);
/// assert_eq!(v.get(0), Some(Logic::Zero));
/// assert_eq!(v.count_ones(), 5);
/// assert_eq!(v.to_string(), "0011111");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct LogicVector(Vec<Logic>);

impl LogicVector {
    /// Creates an empty vector.
    pub fn new() -> LogicVector {
        LogicVector(Vec::new())
    }

    /// Creates a vector of `n` copies of `value`.
    pub fn repeat(value: Logic, n: usize) -> LogicVector {
        LogicVector(vec![value; n])
    }

    /// Creates a vector of `n` zeros.
    pub fn zeros(n: usize) -> LogicVector {
        LogicVector::repeat(Logic::Zero, n)
    }

    /// Creates a vector of `n` ones.
    pub fn ones(n: usize) -> LogicVector {
        LogicVector::repeat(Logic::One, n)
    }

    /// Creates a vector from booleans.
    pub fn from_bools<I: IntoIterator<Item = bool>>(bits: I) -> LogicVector {
        LogicVector(bits.into_iter().map(Logic::from).collect())
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Returns the element at `i`, if in range.
    pub fn get(&self, i: usize) -> Option<Logic> {
        self.0.get(i).copied()
    }

    /// Sets the element at `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn set(&mut self, i: usize, v: Logic) {
        self.0[i] = v;
    }

    /// Appends an element.
    pub fn push(&mut self, v: Logic) {
        self.0.push(v);
    }

    /// Iterates over the elements.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, Logic>> {
        self.0.iter().copied()
    }

    /// View of the underlying slice.
    pub fn as_slice(&self) -> &[Logic] {
        &self.0
    }

    /// Number of definite `1` elements.
    pub fn count_ones(&self) -> usize {
        self.0.iter().filter(|&&b| b == Logic::One).count()
    }

    /// Number of definite `0` elements.
    pub fn count_zeros(&self) -> usize {
        self.0.iter().filter(|&&b| b == Logic::Zero).count()
    }

    /// `true` when every element is a definite `0` or `1`.
    pub fn is_fully_known(&self) -> bool {
        self.0.iter().all(|b| b.is_known())
    }

    /// Element-wise negation.
    #[must_use]
    pub fn not(&self) -> LogicVector {
        LogicVector(self.0.iter().map(|b| b.not()).collect())
    }

    /// Interprets the vector as an unsigned big-endian integer
    /// (element 0 is the most significant bit). Returns `None` when any
    /// element is `X`/`Z` or the vector is longer than 64 elements.
    pub fn to_u64(&self) -> Option<u64> {
        if self.0.len() > 64 {
            return None;
        }
        let mut acc = 0u64;
        for b in &self.0 {
            acc = (acc << 1) | u64::from(b.to_bool()?);
        }
        Some(acc)
    }

    /// Builds a vector of width `width` from the unsigned integer `value`
    /// (big-endian: element 0 is the most significant bit).
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or `value` does not fit in `width` bits.
    pub fn from_u64(value: u64, width: usize) -> LogicVector {
        assert!(width <= 64, "width > 64");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        let mut out = LogicVector::zeros(width);
        for i in 0..width {
            let bit = (value >> (width - 1 - i)) & 1 == 1;
            out.set(i, Logic::from(bit));
        }
        out
    }
}

impl FromIterator<Logic> for LogicVector {
    fn from_iter<I: IntoIterator<Item = Logic>>(iter: I) -> LogicVector {
        LogicVector(iter.into_iter().collect())
    }
}

impl Extend<Logic> for LogicVector {
    fn extend<I: IntoIterator<Item = Logic>>(&mut self, iter: I) {
        self.0.extend(iter);
    }
}

impl IntoIterator for LogicVector {
    type Item = Logic;
    type IntoIter = std::vec::IntoIter<Logic>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a> IntoIterator for &'a LogicVector {
    type Item = Logic;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Logic>>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl FromStr for LogicVector {
    type Err = CellError;

    fn from_str(s: &str) -> Result<LogicVector, CellError> {
        s.chars().map(Logic::try_from).collect::<Result<_, _>>()
    }
}

impl fmt::Display for LogicVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{}", b.to_char())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn not_truth_table() {
        assert_eq!(Logic::Zero.not(), Logic::One);
        assert_eq!(Logic::One.not(), Logic::Zero);
        assert_eq!(Logic::X.not(), Logic::X);
        assert_eq!(Logic::Z.not(), Logic::X);
    }

    #[test]
    fn not_operator_matches_method() {
        for v in Logic::ALL {
            assert_eq!(!v, v.not());
        }
    }

    #[test]
    fn and_dominance() {
        for v in Logic::ALL {
            assert_eq!(Logic::Zero.and(v), Logic::Zero);
            assert_eq!(v.and(Logic::Zero), Logic::Zero);
        }
        assert_eq!(Logic::One.and(Logic::One), Logic::One);
        assert_eq!(Logic::One.and(Logic::X), Logic::X);
        assert_eq!(Logic::Z.and(Logic::One), Logic::X);
    }

    #[test]
    fn or_dominance() {
        for v in Logic::ALL {
            assert_eq!(Logic::One.or(v), Logic::One);
            assert_eq!(v.or(Logic::One), Logic::One);
        }
        assert_eq!(Logic::Zero.or(Logic::Zero), Logic::Zero);
        assert_eq!(Logic::Zero.or(Logic::X), Logic::X);
    }

    #[test]
    fn xor_poisoned_by_unknown() {
        assert_eq!(Logic::One.xor(Logic::Zero), Logic::One);
        assert_eq!(Logic::One.xor(Logic::One), Logic::Zero);
        assert_eq!(Logic::One.xor(Logic::X), Logic::X);
        assert_eq!(Logic::Z.xor(Logic::Zero), Logic::X);
    }

    #[test]
    fn mux_select() {
        assert_eq!(Logic::mux(Logic::Zero, Logic::One, Logic::Zero), Logic::One);
        assert_eq!(Logic::mux(Logic::One, Logic::One, Logic::Zero), Logic::Zero);
        // Unknown select with agreeing inputs stays known.
        assert_eq!(Logic::mux(Logic::X, Logic::One, Logic::One), Logic::One);
        assert_eq!(Logic::mux(Logic::X, Logic::One, Logic::Zero), Logic::X);
    }

    #[test]
    fn resolve_wired() {
        assert_eq!(Logic::Z.resolve(Logic::One), Logic::One);
        assert_eq!(Logic::Zero.resolve(Logic::Z), Logic::Zero);
        assert_eq!(Logic::One.resolve(Logic::One), Logic::One);
        assert_eq!(Logic::One.resolve(Logic::Zero), Logic::X);
        assert_eq!(Logic::Z.resolve(Logic::Z), Logic::Z);
    }

    #[test]
    fn char_roundtrip() {
        for v in Logic::ALL {
            assert_eq!(Logic::try_from(v.to_char()).unwrap(), v);
        }
        assert!(Logic::try_from('q').is_err());
    }

    #[test]
    fn vector_parse_and_display() {
        let v: LogicVector = "0011111".parse().unwrap();
        assert_eq!(v.len(), 7);
        assert_eq!(v.count_ones(), 5);
        assert_eq!(v.count_zeros(), 2);
        assert_eq!(v.to_string(), "0011111");
        assert!(v.is_fully_known());

        let w: LogicVector = "1x0z".parse().unwrap();
        assert!(!w.is_fully_known());
        assert_eq!(w.to_string(), "1x0z");
        assert!("10a1".parse::<LogicVector>().is_err());
    }

    #[test]
    fn vector_u64_roundtrip() {
        let v = LogicVector::from_u64(0b0011111, 7);
        assert_eq!(v.to_string(), "0011111");
        assert_eq!(v.to_u64(), Some(0b0011111));
        let w: LogicVector = "1x1".parse().unwrap();
        assert_eq!(w.to_u64(), None);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn from_u64_overflow_panics() {
        let _ = LogicVector::from_u64(8, 3);
    }

    #[test]
    fn vector_constructors() {
        assert_eq!(LogicVector::zeros(3).to_string(), "000");
        assert_eq!(LogicVector::ones(2).to_string(), "11");
        assert_eq!(
            LogicVector::from_bools([true, false, true]).to_string(),
            "101"
        );
        assert!(LogicVector::new().is_empty());
    }

    #[test]
    fn vector_not() {
        let v: LogicVector = "01xz".parse().unwrap();
        assert_eq!(v.not().to_string(), "10xx");
    }

    #[test]
    fn vector_collect_and_extend() {
        let mut v: LogicVector = [Logic::One, Logic::Zero].into_iter().collect();
        v.extend([Logic::X]);
        assert_eq!(v.to_string(), "10x");
        let bits: Vec<Logic> = (&v).into_iter().collect();
        assert_eq!(bits.len(), 3);
    }

    fn arb_logic() -> impl Strategy<Value = Logic> {
        prop_oneof![
            Just(Logic::Zero),
            Just(Logic::One),
            Just(Logic::X),
            Just(Logic::Z)
        ]
    }

    proptest! {
        #[test]
        fn demorgan_holds_for_known(a in any::<bool>(), b in any::<bool>()) {
            let (la, lb) = (Logic::from(a), Logic::from(b));
            prop_assert_eq!(la.and(lb).not(), la.not().or(lb.not()));
            prop_assert_eq!(la.or(lb).not(), la.not().and(lb.not()));
        }

        #[test]
        fn and_or_commutative(a in arb_logic(), b in arb_logic()) {
            prop_assert_eq!(a.and(b), b.and(a));
            prop_assert_eq!(a.or(b), b.or(a));
            prop_assert_eq!(a.xor(b), b.xor(a));
            prop_assert_eq!(a.resolve(b), b.resolve(a));
        }

        #[test]
        fn double_negation_known(a in any::<bool>()) {
            let l = Logic::from(a);
            prop_assert_eq!(l.not().not(), l);
        }

        #[test]
        fn u64_roundtrip(value in 0u64..128, ) {
            let v = LogicVector::from_u64(value, 7);
            prop_assert_eq!(v.to_u64(), Some(value));
            prop_assert_eq!(v.len(), 7);
        }

        #[test]
        fn string_roundtrip(s in "[01xz]{0,32}") {
            let v: LogicVector = s.parse().unwrap();
            prop_assert_eq!(v.to_string(), s);
        }
    }
}
