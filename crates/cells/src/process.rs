//! Process corners, temperature derating and PVT operating points.
//!
//! The paper notes that the sensor characteristic shifts with process
//! variations ("in slow conditions, the INV is slower and thus the VDD-n
//! threshold value is lower") and proposes compensating via the delay code.
//! This module provides the corner model that drives that behaviour: each
//! [`ProcessCorner`] scales cell drive strength and threshold voltage, and
//! temperature applies a first-order mobility derating.
//!
//! # Examples
//!
//! ```
//! use psnt_cells::process::{ProcessCorner, Pvt};
//! use psnt_cells::units::{Temperature, Voltage};
//!
//! let slow = Pvt::new(ProcessCorner::SS, Voltage::from_v(1.0), Temperature::from_celsius(125.0));
//! let typ = Pvt::typical();
//! // Slow silicon + hot corner has weaker drive than typical.
//! assert!(slow.drive_factor() < typ.drive_factor());
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::units::{Temperature, Voltage};

/// A manufacturing process corner.
///
/// The two letters give the NMOS and PMOS speed respectively, following
/// foundry convention: `SS` = slow/slow, `FF` = fast/fast, `SF` = slow
/// NMOS / fast PMOS, and so on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ProcessCorner {
    /// Slow NMOS, slow PMOS — worst-case delay.
    SS,
    /// Typical NMOS, typical PMOS — nominal.
    #[default]
    TT,
    /// Fast NMOS, fast PMOS — best-case delay.
    FF,
    /// Slow NMOS, fast PMOS.
    SF,
    /// Fast NMOS, slow PMOS.
    FS,
}

impl ProcessCorner {
    /// All five corners.
    pub const ALL: [ProcessCorner; 5] = [
        ProcessCorner::SS,
        ProcessCorner::TT,
        ProcessCorner::FF,
        ProcessCorner::SF,
        ProcessCorner::FS,
    ];

    /// NMOS drive-current multiplier relative to typical.
    pub fn nmos_drive(self) -> f64 {
        match self {
            ProcessCorner::SS => 0.85,
            ProcessCorner::TT => 1.0,
            ProcessCorner::FF => 1.15,
            ProcessCorner::SF => 0.85,
            ProcessCorner::FS => 1.15,
        }
    }

    /// PMOS drive-current multiplier relative to typical.
    pub fn pmos_drive(self) -> f64 {
        match self {
            ProcessCorner::SS => 0.85,
            ProcessCorner::TT => 1.0,
            ProcessCorner::FF => 1.15,
            ProcessCorner::SF => 1.15,
            ProcessCorner::FS => 0.85,
        }
    }

    /// Threshold-voltage shift relative to typical, in volts. Slow devices
    /// have a higher `V_th`, fast devices a lower one (±60 mV is a
    /// representative 90 nm global-corner spread).
    pub fn vth_shift(self) -> Voltage {
        match self {
            ProcessCorner::SS => Voltage::from_mv(60.0),
            ProcessCorner::TT => Voltage::ZERO,
            ProcessCorner::FF => Voltage::from_mv(-60.0),
            // Cross corners: the inverter switching point shifts but the
            // average threshold stays near typical.
            ProcessCorner::SF | ProcessCorner::FS => Voltage::ZERO,
        }
    }

    /// Combined (geometric-mean) drive multiplier, used for symmetric
    /// CMOS stages such as an inverter with balanced rise/fall.
    pub fn drive(self) -> f64 {
        (self.nmos_drive() * self.pmos_drive()).sqrt()
    }
}

impl fmt::Display for ProcessCorner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProcessCorner::SS => "SS",
            ProcessCorner::TT => "TT",
            ProcessCorner::FF => "FF",
            ProcessCorner::SF => "SF",
            ProcessCorner::FS => "FS",
        };
        f.write_str(s)
    }
}

/// Reference temperature at which drive factors are 1.0.
pub const NOMINAL_TEMPERATURE: Temperature = Temperature::from_celsius(25.0);

/// First-order mobility derating: drive current drops ~0.2 %/°C above the
/// 25 °C reference (and rises below it). Clamped to stay positive.
pub fn temperature_drive_factor(t: Temperature) -> f64 {
    const SLOPE_PER_C: f64 = 0.002;
    let delta = t.celsius() - NOMINAL_TEMPERATURE.celsius();
    (1.0 - SLOPE_PER_C * delta).max(0.1)
}

/// A complete process/voltage/temperature operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pvt {
    /// Manufacturing corner.
    pub corner: ProcessCorner,
    /// Nominal supply voltage of the clean (non-noisy) domain.
    pub nominal_vdd: Voltage,
    /// Junction temperature.
    pub temperature: Temperature,
}

impl Pvt {
    /// Creates an operating point.
    pub fn new(corner: ProcessCorner, nominal_vdd: Voltage, temperature: Temperature) -> Pvt {
        Pvt {
            corner,
            nominal_vdd,
            temperature,
        }
    }

    /// The typical 90 nm operating point used throughout the paper:
    /// TT corner, 1.0 V, 25 °C.
    pub fn typical() -> Pvt {
        Pvt::new(ProcessCorner::TT, Voltage::from_v(1.0), NOMINAL_TEMPERATURE)
    }

    /// Worst-case-delay sign-off point: SS, 0.9 V, 125 °C.
    pub fn slow() -> Pvt {
        Pvt::new(
            ProcessCorner::SS,
            Voltage::from_v(0.9),
            Temperature::from_celsius(125.0),
        )
    }

    /// Best-case-delay sign-off point: FF, 1.1 V, −40 °C.
    pub fn fast() -> Pvt {
        Pvt::new(
            ProcessCorner::FF,
            Voltage::from_v(1.1),
            Temperature::from_celsius(-40.0),
        )
    }

    /// Combined drive factor from corner and temperature (voltage enters
    /// the delay equation directly, not through this factor).
    pub fn drive_factor(&self) -> f64 {
        self.corner.drive() * temperature_drive_factor(self.temperature)
    }

    /// Effective threshold voltage for a device with typical threshold
    /// `vth_tt` at this operating point.
    pub fn effective_vth(&self, vth_tt: Voltage) -> Voltage {
        vth_tt + self.corner.vth_shift()
    }
}

impl Default for Pvt {
    fn default() -> Pvt {
        Pvt::typical()
    }
}

impl fmt::Display for Pvt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} / {:.2} / {:.0}",
            self.corner, self.nominal_vdd, self.temperature
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corner_ordering_of_drive() {
        assert!(ProcessCorner::SS.drive() < ProcessCorner::TT.drive());
        assert!(ProcessCorner::TT.drive() < ProcessCorner::FF.drive());
    }

    #[test]
    fn cross_corners_balance() {
        // SF and FS have the same geometric-mean drive as each other.
        let sf = ProcessCorner::SF.drive();
        let fs = ProcessCorner::FS.drive();
        assert!((sf - fs).abs() < 1e-12);
        // And sit between SS and FF.
        assert!(sf > ProcessCorner::SS.drive());
        assert!(sf < ProcessCorner::FF.drive());
    }

    #[test]
    fn vth_shift_signs() {
        assert!(ProcessCorner::SS.vth_shift() > Voltage::ZERO);
        assert!(ProcessCorner::FF.vth_shift() < Voltage::ZERO);
        assert_eq!(ProcessCorner::TT.vth_shift(), Voltage::ZERO);
    }

    #[test]
    fn temperature_derating_monotone() {
        let cold = temperature_drive_factor(Temperature::from_celsius(-40.0));
        let nom = temperature_drive_factor(NOMINAL_TEMPERATURE);
        let hot = temperature_drive_factor(Temperature::from_celsius(125.0));
        assert!(cold > nom);
        assert!((nom - 1.0).abs() < 1e-12);
        assert!(hot < nom);
        assert!(hot > 0.0);
    }

    #[test]
    fn extreme_temperature_clamped_positive() {
        assert!(temperature_drive_factor(Temperature::from_celsius(1.0e6)) > 0.0);
    }

    #[test]
    fn pvt_presets() {
        let t = Pvt::typical();
        assert_eq!(t.corner, ProcessCorner::TT);
        assert!((t.drive_factor() - 1.0).abs() < 1e-12);
        assert!(Pvt::slow().drive_factor() < 1.0);
        assert!(Pvt::fast().drive_factor() > 1.0);
        assert_eq!(Pvt::default(), Pvt::typical());
    }

    #[test]
    fn effective_vth_shifts_with_corner() {
        let vth = Voltage::from_v(0.30);
        assert_eq!(Pvt::typical().effective_vth(vth), vth);
        assert!(Pvt::slow().effective_vth(vth) > vth);
        assert!(Pvt::fast().effective_vth(vth) < vth);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ProcessCorner::SS.to_string(), "SS");
        let p = Pvt::typical();
        let s = p.to_string();
        assert!(s.contains("TT"), "{s}");
        assert!(s.contains("1.00 V"), "{s}");
    }
}
