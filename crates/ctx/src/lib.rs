//! Unified execution context for the whole workspace.
//!
//! PRs 1–3 grew the system along three orthogonal axes — telemetry
//! (`psnt-obs`), deterministic parallelism (`psnt-engine`) and
//! reusable-simulator performance — and each axis was wired in as a
//! new suffixed method variant (`run_observed`, `run_on`,
//! `measure_with`, …). [`RunCtx`] collapses that cross-product: one
//! context bundles
//!
//! * the parallel [`Engine`] handle (cheap to clone, `jobs = 1` is the
//!   inline serial path),
//! * an optional exclusive borrow of an [`Observer`] for telemetry,
//! * a pool of reusable [`Simulator`]s keyed by netlist identity, so
//!   repeated gate-level measures reuse allocations and the delay
//!   cache via `reset()` instead of rebuilding the kernel, and
//! * the SplitMix64 seed policy used to derive per-trial RNG streams.
//!
//! Every layer takes `&mut RunCtx` as its first argument; the old
//! suffixed variants survive as `#[deprecated]` one-line shims that
//! build a default context (serial engine, no observer).
//!
//! # Determinism contract
//!
//! A `RunCtx` never changes observable results: for any workload the
//! ctx path is bit-identical to the legacy variants at any worker
//! count, and record-for-record identical in the telemetry stream.
//! This is pinned by the `ctx_equiv` proptests at the workspace root.
//!
//! ```
//! use psnt_ctx::RunCtx;
//! use psnt_engine::Engine;
//!
//! // A default context: serial engine, no observer, seed 0.
//! let mut ctx = RunCtx::serial();
//! assert_eq!(ctx.engine().jobs(), 1);
//! assert!(ctx.observer().is_none());
//!
//! // A parallel context seeded for a Monte-Carlo sweep.
//! let mut ctx = RunCtx::new(Engine::new(4)).with_seed(2024);
//! assert_eq!(ctx.seed(), 2024);
//! ```

#![warn(missing_docs)]

use psnt_engine::{split_seed, Engine};
use psnt_fault::FaultPlan;
use psnt_netlist::{BatchSimulator, Netlist, Simulator};
use psnt_obs::Observer;
use psnt_sup::Supervisor;

/// A pool of reusable [`Simulator`]s keyed by netlist identity.
///
/// The pool exists so ctx-threaded gate-level measures get the PR 3
/// `make_sim` + `reset()` fast path without the caller managing a
/// simulator by hand: the first measure against a netlist pays the
/// construction cost (topology flattening, delay cache), every later
/// measure against the *same* netlist reuses it.
///
/// # Keying and soundness
///
/// Entries are keyed by the netlist's address. That is sound because
/// every pooled `Simulator<'env>` holds a `&'env Netlist` borrow, so
/// the netlist cannot move or drop while the pool is alive — an
/// address therefore names one netlist for the pool's whole lifetime.
#[derive(Debug, Default)]
pub struct SimPool<'env> {
    sims: Vec<(usize, Simulator<'env>)>,
}

impl<'env> SimPool<'env> {
    /// Creates an empty pool.
    pub fn new() -> SimPool<'env> {
        SimPool::default()
    }

    /// Number of distinct netlists with a pooled simulator.
    pub fn len(&self) -> usize {
        self.sims.len()
    }

    /// True when no simulator has been pooled yet.
    pub fn is_empty(&self) -> bool {
        self.sims.is_empty()
    }

    /// Returns the pooled simulator for `netlist`, building it with
    /// `build` on first use. The caller is expected to `reset()` the
    /// simulator before driving it (exactly as with a hand-managed
    /// `make_sim` simulator).
    ///
    /// # Errors
    ///
    /// Propagates the builder's error when the first construction
    /// fails; nothing is pooled in that case.
    pub fn get_or_insert_with<E>(
        &mut self,
        netlist: &'env Netlist,
        build: impl FnOnce() -> Result<Simulator<'env>, E>,
    ) -> Result<&mut Simulator<'env>, E> {
        let key = netlist as *const Netlist as usize;
        if let Some(ix) = self.sims.iter().position(|(k, _)| *k == key) {
            return Ok(&mut self.sims[ix].1);
        }
        let sim = build()?;
        self.sims.push((key, sim));
        Ok(&mut self.sims.last_mut().expect("just pushed").1)
    }
}

/// A pool of reusable [`BatchSimulator`]s keyed by netlist identity —
/// the 64-lane sibling of [`SimPool`], with the same address-keying
/// soundness argument. Batched fault-campaign sweeps reuse one batch
/// kernel (topology, planes, banded delay cache) across chunks of 64
/// plans instead of rebuilding it per chunk.
#[derive(Debug, Default)]
pub struct BatchSimPool<'env> {
    sims: Vec<(usize, BatchSimulator<'env>)>,
}

impl<'env> BatchSimPool<'env> {
    /// Creates an empty pool.
    pub fn new() -> BatchSimPool<'env> {
        BatchSimPool::default()
    }

    /// Number of distinct netlists with a pooled batch simulator.
    pub fn len(&self) -> usize {
        self.sims.len()
    }

    /// True when no batch simulator has been pooled yet.
    pub fn is_empty(&self) -> bool {
        self.sims.is_empty()
    }

    /// Returns the pooled batch simulator for `netlist`, building it
    /// with `build` on first use.
    ///
    /// # Errors
    ///
    /// Propagates the builder's error when the first construction
    /// fails; nothing is pooled in that case.
    pub fn get_or_insert_with<E>(
        &mut self,
        netlist: &'env Netlist,
        build: impl FnOnce() -> Result<BatchSimulator<'env>, E>,
    ) -> Result<&mut BatchSimulator<'env>, E> {
        let key = netlist as *const Netlist as usize;
        if let Some(ix) = self.sims.iter().position(|(k, _)| *k == key) {
            return Ok(&mut self.sims[ix].1);
        }
        let sim = build()?;
        self.sims.push((key, sim));
        Ok(&mut self.sims.last_mut().expect("just pushed").1)
    }
}

/// The execution context threaded through every layer of the
/// workspace: engine + observer + simulator pool + seed policy.
///
/// See the [crate docs](crate) for the design rationale and the
/// determinism contract. `'env` is the lifetime of the environment the
/// context may borrow from: the observed [`Observer`] and any netlist
/// whose simulator is pooled.
#[derive(Debug)]
pub struct RunCtx<'env> {
    engine: Engine,
    observer: Option<&'env mut Observer>,
    seed: u64,
    pool: SimPool<'env>,
    batch_pool: BatchSimPool<'env>,
    fault_plan: Option<FaultPlan>,
    supervisor: Supervisor,
}

impl Default for RunCtx<'_> {
    fn default() -> Self {
        RunCtx::serial()
    }
}

impl<'env> RunCtx<'env> {
    /// The default context the deprecated shims construct: serial
    /// engine, no observer, seed 0, empty pool.
    pub fn serial() -> RunCtx<'env> {
        RunCtx::new(Engine::serial())
    }

    /// A context over the given engine; no observer, seed 0.
    pub fn new(engine: Engine) -> RunCtx<'env> {
        RunCtx {
            engine,
            observer: None,
            seed: 0,
            pool: SimPool::new(),
            batch_pool: BatchSimPool::new(),
            fault_plan: None,
            supervisor: Supervisor::detached(),
        }
    }

    /// A context whose worker count comes from the `PSNT_JOBS`
    /// environment variable (see [`psnt_engine::JOBS_ENV`]).
    pub fn from_env() -> RunCtx<'env> {
        RunCtx::new(Engine::from_env())
    }

    /// Attaches an observer (builder style).
    #[must_use]
    pub fn with_observer(mut self, observer: &'env mut Observer) -> RunCtx<'env> {
        self.observer = Some(observer);
        self
    }

    /// Attaches an optional observer (builder style) — the shape the
    /// legacy `*_observed(…, Option<&mut Observer>)` shims need.
    #[must_use]
    pub fn with_observer_opt(mut self, observer: Option<&'env mut Observer>) -> RunCtx<'env> {
        self.observer = observer;
        self
    }

    /// Sets the base seed for seed-split RNG streams (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> RunCtx<'env> {
        self.seed = seed;
        self
    }

    /// Attaches a fault plan (builder style). Gate-level measures run
    /// through this context install the plan on their pooled simulator;
    /// an **empty** plan is normalised to "no plan" so it cannot
    /// perturb the fault-free fast path (the kernel treats the two
    /// identically — pinned by the `fault_equiv` proptests).
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> RunCtx<'env> {
        self.fault_plan = if plan.is_empty() { None } else { Some(plan) };
        self
    }

    /// Attaches a supervisor (builder style). Every context starts
    /// with a detached supervisor ([`Supervisor::detached`]) that
    /// never trips, so supervised entry points are bit-identical to
    /// the unsupervised path unless a caller installs a real token or
    /// budget.
    #[must_use]
    pub fn with_supervisor(mut self, supervisor: Supervisor) -> RunCtx<'env> {
        self.supervisor = supervisor;
        self
    }

    /// Replaces the supervisor in place — the sweep-friendly twin of
    /// [`RunCtx::with_supervisor`]: a service frontend re-arms the same
    /// warm context with a fresh token + budget per request.
    pub fn set_supervisor(&mut self, supervisor: Supervisor) {
        self.supervisor = supervisor;
    }

    /// The supervisor every supervised loop checks. Clones are cheap
    /// and share the token, event counter and forced-trip flag.
    pub fn supervisor(&self) -> &Supervisor {
        &self.supervisor
    }

    /// The engine handle. Cheap to clone when a batch needs an owned
    /// copy alongside the observer borrow.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The base seed of the SplitMix64 seed policy.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives the `index`-th decorrelated child seed from the base
    /// seed via SplitMix64 — one stream per trial, so results are
    /// independent of how trials are scheduled across workers.
    pub fn child_seed(&self, index: u64) -> u64 {
        split_seed(self.seed, index)
    }

    /// Replaces the base seed in place — the sweep-friendly twin of
    /// [`RunCtx::with_seed`]: an experiment driver comparing policy
    /// arms re-arms the same context (keeping its warm simulator
    /// pools) at a fixed seed before each sub-run, so every arm sees
    /// identical traffic.
    pub fn set_seed(&mut self, seed: u64) {
        self.seed = seed;
    }

    /// Reborrows the observer, if one is attached. Call sites use this
    /// at each telemetry point; each call hands out a fresh short
    /// reborrow, so a single context serves many sequential stages.
    pub fn observer(&mut self) -> Option<&mut Observer> {
        self.observer.as_deref_mut()
    }

    /// True when an observer is attached (without borrowing it).
    pub fn has_observer(&self) -> bool {
        self.observer.is_some()
    }

    /// Replaces the fault plan in place — the sweep-friendly twin of
    /// [`RunCtx::with_fault_plan`], letting a fault-coverage loop
    /// reinstall one plan after another on the same context (and its
    /// pooled simulators). Empty plans normalise to `None`.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault_plan = plan.filter(|p| !p.is_empty());
    }

    /// The fault plan attached to this context, if any. `None` means a
    /// healthy run; callers driving a [`Simulator`] through the pool
    /// should mirror this into
    /// [`Simulator::set_fault_plan`] / [`Simulator::clear_fault_plan`].
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// The reusable-simulator pool.
    pub fn pool(&mut self) -> &mut SimPool<'env> {
        &mut self.pool
    }

    /// The reusable **batch**-simulator pool — 64-lane kernels for
    /// fault-campaign sweeps, pooled with the same netlist-address
    /// keying as [`RunCtx::pool`].
    pub fn batch_pool(&mut self) -> &mut BatchSimPool<'env> {
        &mut self.batch_pool
    }

    /// Splits the context into its engine, observer and pool parts so
    /// a call site can hold the pool and the observer at once.
    pub fn parts(&mut self) -> (&Engine, Option<&mut Observer>, &mut SimPool<'env>) {
        (&self.engine, self.observer.as_deref_mut(), &mut self.pool)
    }

    /// Splits the context into its pool and fault-plan parts so a call
    /// site can install the plan on a pooled simulator while holding
    /// the pool borrow.
    pub fn pool_parts(&mut self) -> (&mut SimPool<'env>, Option<&FaultPlan>) {
        (&mut self.pool, self.fault_plan.as_ref())
    }

    /// Splits the context into observer, pool and fault-plan parts —
    /// for kernels that run a pooled simulator *and* fold its
    /// profiling counters into the observer afterwards, which needs
    /// both borrows live at once.
    pub fn obs_pool_parts(
        &mut self,
    ) -> (
        Option<&mut Observer>,
        &mut SimPool<'env>,
        Option<&FaultPlan>,
    ) {
        (
            self.observer.as_deref_mut(),
            &mut self.pool,
            self.fault_plan.as_ref(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ctx_is_serial_unobserved_seed_zero() {
        let mut ctx = RunCtx::default();
        assert_eq!(ctx.engine().jobs(), 1);
        assert!(!ctx.has_observer());
        assert!(ctx.observer().is_none());
        assert_eq!(ctx.seed(), 0);
        assert!(ctx.pool().is_empty());
    }

    #[test]
    fn builders_compose() {
        let mut obs = Observer::ring(8);
        let mut ctx = RunCtx::new(Engine::new(3))
            .with_seed(7)
            .with_observer(&mut obs);
        assert_eq!(ctx.engine().jobs(), 3);
        assert_eq!(ctx.seed(), 7);
        assert!(ctx.has_observer());
        // Two sequential reborrows from the same context.
        ctx.observer().unwrap().metrics.counter_add("ctx.test", 1);
        ctx.observer().unwrap().metrics.counter_add("ctx.test", 1);
        drop(ctx);
        assert_eq!(obs.metrics.counter_value("ctx.test"), 2);
    }

    #[test]
    fn empty_fault_plan_is_normalised_to_none() {
        use psnt_cells::logic::Logic;
        use psnt_fault::{Fault, FaultPlan};
        let ctx = RunCtx::serial().with_fault_plan(FaultPlan::new());
        assert!(ctx.fault_plan().is_none(), "empty plan must vanish");
        let mut ctx = RunCtx::serial()
            .with_fault_plan(FaultPlan::new().with(Fault::stuck_at("n", Logic::Zero)));
        assert_eq!(ctx.fault_plan().map(FaultPlan::len), Some(1));
        let (pool, plan) = ctx.pool_parts();
        assert!(pool.is_empty() && plan.is_some());
    }

    #[test]
    fn child_seeds_match_engine_seed_policy() {
        let mut ctx = RunCtx::serial().with_seed(99);
        assert_eq!(ctx.child_seed(0), split_seed(99, 0));
        assert_eq!(ctx.child_seed(5), split_seed(99, 5));
        // In-place re-seed matches the builder path exactly.
        ctx.set_seed(7);
        assert_eq!(ctx.seed(), 7);
        assert_eq!(
            ctx.child_seed(0),
            RunCtx::serial().with_seed(7).child_seed(0)
        );
        assert_ne!(ctx.child_seed(0), ctx.child_seed(1));
    }

    #[test]
    fn default_supervisor_is_detached_and_replaceable() {
        use psnt_sup::{CancelToken, Interrupt, RunBudget, Supervisor};
        let ctx = RunCtx::serial();
        assert!(ctx.supervisor().check().is_ok(), "detached never trips");
        let token = CancelToken::new();
        let mut ctx = RunCtx::serial()
            .with_supervisor(Supervisor::new(token.clone(), RunBudget::unlimited()));
        token.cancel();
        assert_eq!(ctx.supervisor().check(), Err(Interrupt::Cancelled));
        // In-place re-arm restores a clean supervisor on the same ctx.
        ctx.set_supervisor(Supervisor::detached());
        assert!(ctx.supervisor().check().is_ok());
    }

    #[test]
    fn pool_reuses_one_simulator_per_netlist() {
        use psnt_cells::units::Voltage;
        use psnt_netlist::NetlistError;
        let mut a = Netlist::new("a");
        let n = a.add_input("in");
        a.mark_output("out", n);
        let b = a.clone();

        let mut ctx = RunCtx::serial();
        let pool = ctx.pool();
        let first = pool
            .get_or_insert_with(&a, || Simulator::new(&a, Voltage::from_v(1.0)))
            .unwrap() as *mut _;
        let again = pool
            .get_or_insert_with(&a, || -> Result<Simulator<'_>, NetlistError> {
                panic!("builder must not run twice for the same netlist")
            })
            .unwrap() as *mut _;
        assert_eq!(first, again, "same netlist must reuse the pooled sim");
        pool.get_or_insert_with(&b, || Simulator::new(&b, Voltage::from_v(1.0)))
            .unwrap();
        assert_eq!(pool.len(), 2);
    }
}
