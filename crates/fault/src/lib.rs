//! Deterministic fault-injection plans.
//!
//! A [`FaultPlan`] is a serde-able list of [`Fault`]s describing how a
//! simulated die deviates from the healthy netlist: stuck nodes, slow or
//! fast gates, single-event upsets, supply glitches, and seeded transient
//! capture errors. Plans are *descriptions only* — the event kernel in
//! `psnt-netlist` resolves net/gate/flip-flop names against a concrete
//! [`Netlist`](../psnt_netlist/struct.Netlist.html) and applies the
//! faults at schedule/commit time, so an **empty plan is bit-identical to
//! a fault-free run** (pinned by proptest in `tests/fault_equiv.rs`).
//!
//! Determinism contract: every fault is either static (stuck-at, delay
//! scale), time-triggered (bit upset, supply glitch), or drawn from a
//! [`SplitMix64`] stream whose seed is part of the plan (transient).
//! Nothing consults wall-clock time or ambient randomness, so the same
//! plan over the same stimulus reproduces the same faulty trace at any
//! worker count.
//!
//! ```
//! use psnt_fault::{Fault, FaultPlan};
//! use psnt_cells::logic::Logic;
//!
//! let plan = FaultPlan::new()
//!     .with(Fault::stuck_at("inv3.out", Logic::Zero))
//!     .with(Fault::delay_scale("inv1", 1.8));
//! let json = plan.to_json();
//! assert_eq!(FaultPlan::from_json(&json).unwrap(), plan);
//! ```

use psnt_cells::logic::Logic;
use psnt_cells::units::{Time, Voltage};
use serde::{json, Deserialize, Serialize};

/// One injected hardware defect or disturbance.
///
/// Variant names refer to netlist objects **by name** (as passed to
/// `Netlist::add_net` / `add_gate` / `add_dff` / `add_domain`); the
/// simulator resolves them when the plan is installed and reports
/// `NetlistError::UnknownNet` for names that do not exist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Fault {
    /// The net is tied to `value` for the whole run: every scheduled
    /// transition on it is rewritten to `value` at commit time, and the
    /// settled initial state pins it too (classic stuck-at-0/1 model).
    StuckAt {
        /// Net name, e.g. `"inv3.out"`.
        net: String,
        /// The value the defect ties the node to.
        value: Logic,
    },
    /// The gate's propagation delays (rise, fall) are multiplied by
    /// `factor` — `> 1` models a resistive/slow transistor, `< 1` a fast
    /// (hold-hazard) one. Applied when the delay cache is built, so the
    /// event hot path pays nothing.
    DelayScale {
        /// Gate instance name, e.g. `"inv1"`.
        gate: String,
        /// Multiplier on both delay arcs; must be finite and `> 0`.
        factor: f64,
    },
    /// Single-event upset: the flip-flop's output is inverted once at
    /// time `at` (X flips to [`Logic::One`] so the disturbance is
    /// observable). The flip propagates through fanout like any edge.
    BitUpset {
        /// Flip-flop instance name, e.g. `"ff4"`.
        ff: String,
        /// Simulation time of the upset.
        at: Time,
    },
    /// The named supply domain's rail moves by `dv` inside the window
    /// (inclusive start, exclusive end); delays are re-derived at both
    /// boundaries from the momentary supply.
    SupplyGlitch {
        /// Domain name, e.g. `"vdd_noisy"`.
        domain: String,
        /// `(start, end)` of the glitch, `start <= end`.
        window: (Time, Time),
        /// Signed rail excursion (negative = droop).
        dv: Voltage,
    },
    /// Seeded transient capture errors: every flip-flop capture
    /// independently inverts its sampled value with `probability`, drawn
    /// from a [`SplitMix64`] stream over `seed`. Same seed + same
    /// stimulus → same error sequence.
    Transient {
        /// Per-capture flip probability in `[0, 1]`.
        probability: f64,
        /// Stream seed (decorrelate runs by varying it).
        seed: u64,
    },
    /// Harness-level fault: the campaign job for scan site `site` panics
    /// on its first attempt. Exists to exercise the graceful-degradation
    /// path (`JobOutcome::Failed` → `SiteOutcome::Degraded`) end to end;
    /// the event kernel ignores it.
    SitePanic {
        /// Zero-based site index within the campaign's placement order.
        site: usize,
    },
    /// Harness-level fault: a streamed campaign's record sink starts
    /// returning errors after delivering `after_records` records —
    /// exercises the abort path (producer joined, terminal
    /// `StreamRecord::Aborted` emitted, partials preserved). The event
    /// kernel ignores it; test sinks and the chaos soak harness apply
    /// it.
    SinkError {
        /// Records the sink delivers successfully before failing.
        after_records: u64,
    },
    /// Harness-level fault: the campaign job with global index `job`
    /// panics on attempt `attempt` — the generalisation of
    /// [`Fault::SitePanic`] past attempt 0, so retry policies can be
    /// defeated deterministically (set `attempt` ≥ the policy's
    /// max attempts − 1 to exhaust every retry). The event kernel
    /// ignores it.
    WorkerPanic {
        /// Zero-based global job index within the batch.
        job: usize,
        /// The attempt number (0-based) on which the job panics; the
        /// job panics on every attempt up to and including this one.
        attempt: u32,
    },
    /// Harness-level fault: the run's cancellation token is cancelled
    /// when the workload stepper reaches `cycle` — a deterministic
    /// stand-in for an operator's Ctrl-C, so cancellation-at-a-point
    /// is reproducible in tests. The event kernel ignores it.
    CancelAt {
        /// The stepper cycle at which cancellation fires.
        cycle: u64,
    },
    /// Harness-level fault: the run's supervisor is force-expired at
    /// the first supervised boundary, exercising the genuine
    /// wall-clock-deadline path without waiting out a real deadline.
    /// The event kernel ignores it.
    DeadlineTrip,
}

impl Fault {
    /// Shorthand for [`Fault::StuckAt`].
    pub fn stuck_at(net: impl Into<String>, value: Logic) -> Fault {
        Fault::StuckAt {
            net: net.into(),
            value,
        }
    }

    /// Shorthand for [`Fault::DelayScale`].
    pub fn delay_scale(gate: impl Into<String>, factor: f64) -> Fault {
        Fault::DelayScale {
            gate: gate.into(),
            factor,
        }
    }

    /// Shorthand for [`Fault::BitUpset`].
    pub fn bit_upset(ff: impl Into<String>, at: Time) -> Fault {
        Fault::BitUpset { ff: ff.into(), at }
    }

    /// Shorthand for [`Fault::SupplyGlitch`].
    pub fn supply_glitch(domain: impl Into<String>, window: (Time, Time), dv: Voltage) -> Fault {
        Fault::SupplyGlitch {
            domain: domain.into(),
            window,
            dv,
        }
    }

    /// True when the 64-lane batch kernel can carry this fault on a
    /// single lane. Everything is batch-supported except
    /// [`Fault::SupplyGlitch`]: the rail excursion retimes the *shared*
    /// delay cache, so it cannot be confined to one lane of a word.
    pub fn batch_supported(&self) -> bool {
        !matches!(self, Fault::SupplyGlitch { .. })
    }

    /// True for the harness-level faults the event kernel ignores —
    /// faults applied by the campaign/workload layers (panics, sink
    /// errors, cancellation, deadline trips) rather than inside the
    /// simulated die.
    pub fn is_harness_level(&self) -> bool {
        matches!(
            self,
            Fault::SitePanic { .. }
                | Fault::SinkError { .. }
                | Fault::WorkerPanic { .. }
                | Fault::CancelAt { .. }
                | Fault::DeadlineTrip
        )
    }
}

/// A deterministic list of faults to inject into one run.
///
/// The default plan is empty; an empty plan installed on a simulator is
/// bit-identical to no plan at all.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The faults, applied together.
    #[serde(default)]
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Builder: appends `fault` and returns the plan.
    pub fn with(mut self, fault: Fault) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of faults in the plan.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Validates value ranges that do not need a netlist: delay factors
    /// must be finite and positive, probabilities in `[0, 1]`, glitch
    /// windows ordered. Name resolution happens later, in the simulator.
    pub fn validate(&self) -> Result<(), PlanError> {
        for (i, fault) in self.faults.iter().enumerate() {
            match fault {
                Fault::DelayScale { gate, factor } => {
                    if !factor.is_finite() || *factor <= 0.0 {
                        return Err(PlanError {
                            index: i,
                            reason: format!(
                                "delay factor {factor} for gate {gate:?} must be finite and > 0"
                            ),
                        });
                    }
                }
                Fault::Transient { probability, .. } => {
                    if !probability.is_finite() || !(0.0..=1.0).contains(probability) {
                        return Err(PlanError {
                            index: i,
                            reason: format!(
                                "transient probability {probability} must be in [0, 1]"
                            ),
                        });
                    }
                }
                Fault::SupplyGlitch { domain, window, .. } => {
                    if window.1 < window.0 {
                        return Err(PlanError {
                            index: i,
                            reason: format!("glitch window on {domain:?} ends before it starts"),
                        });
                    }
                }
                Fault::StuckAt { .. }
                | Fault::BitUpset { .. }
                | Fault::SitePanic { .. }
                | Fault::SinkError { .. }
                | Fault::WorkerPanic { .. }
                | Fault::CancelAt { .. }
                | Fault::DeadlineTrip => {}
            }
        }
        Ok(())
    }

    /// Serializes the plan to JSON (the `--fault-plan <file.json>`
    /// format).
    pub fn to_json(&self) -> String {
        json::to_string(self)
    }

    /// Parses a plan from JSON, then [`validate`](FaultPlan::validate)s
    /// it.
    pub fn from_json(text: &str) -> Result<FaultPlan, PlanError> {
        let plan: FaultPlan = json::from_str(text).map_err(|e| PlanError {
            index: 0,
            reason: format!("malformed fault plan: {e:?}"),
        })?;
        plan.validate()?;
        Ok(plan)
    }

    /// True when every fault in the plan is
    /// [`Fault::batch_supported`] — the precondition for assigning the
    /// plan to a lane of the 64-wide batch simulator. Campaign code
    /// uses this to route supply-glitch plans to the scalar path while
    /// everything else sweeps 64-per-word.
    pub fn batch_supported(&self) -> bool {
        self.faults.iter().all(Fault::batch_supported)
    }

    /// The sites named by [`Fault::SitePanic`] entries, for the campaign
    /// layer.
    pub fn panicking_sites(&self) -> Vec<usize> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::SitePanic { site } => Some(*site),
                _ => None,
            })
            .collect()
    }

    /// The earliest [`Fault::SinkError`] threshold in the plan, if any:
    /// the record count after which a chaos-wrapped sink starts
    /// failing.
    pub fn sink_error_after(&self) -> Option<u64> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::SinkError { after_records } => Some(*after_records),
                _ => None,
            })
            .min()
    }

    /// The `(job, attempt)` pairs named by [`Fault::WorkerPanic`]
    /// entries, for the campaign layer: job `job` panics on attempts
    /// `0..=attempt`.
    pub fn worker_panics(&self) -> Vec<(usize, u32)> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::WorkerPanic { job, attempt } => Some((*job, *attempt)),
                _ => None,
            })
            .collect()
    }

    /// The earliest [`Fault::CancelAt`] cycle in the plan, if any.
    pub fn cancel_at_cycle(&self) -> Option<u64> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::CancelAt { cycle } => Some(*cycle),
                _ => None,
            })
            .min()
    }

    /// True when the plan carries a [`Fault::DeadlineTrip`].
    pub fn deadline_trip(&self) -> bool {
        self.faults.iter().any(|f| matches!(f, Fault::DeadlineTrip))
    }
}

/// A fault plan failed range validation or parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanError {
    /// Index of the offending fault within the plan (0 for parse errors).
    pub index: usize,
    /// Human-readable explanation.
    pub reason: String,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fault[{}]: {}", self.index, self.reason)
    }
}

impl std::error::Error for PlanError {}

/// SplitMix64 — the same mixer `psnt-engine` uses for per-job seeds,
/// repackaged as a sequential stream for transient-fault draws.
///
/// Kept dependency-free on purpose: `psnt-netlist` links this crate and
/// must not pull in the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitMix64 {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// A stream over `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly mixed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next draw in `[0, 1)` (53-bit mantissa).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_roundtrips() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        assert_eq!(FaultPlan::from_json(&plan.to_json()).unwrap(), plan);
    }

    #[test]
    fn full_taxonomy_roundtrips_through_json() {
        let plan = FaultPlan::new()
            .with(Fault::stuck_at("inv3.out", Logic::Zero))
            .with(Fault::stuck_at("p", Logic::One))
            .with(Fault::delay_scale("inv1", 1.8))
            .with(Fault::bit_upset("ff4", Time::from_ns(6.0)))
            .with(Fault::supply_glitch(
                "vdd_noisy",
                (Time::from_ns(2.0), Time::from_ns(4.0)),
                Voltage::from_v(-0.12),
            ))
            .with(Fault::Transient {
                probability: 0.25,
                seed: 99,
            })
            .with(Fault::SitePanic { site: 3 })
            .with(Fault::SinkError { after_records: 12 })
            .with(Fault::SinkError { after_records: 5 })
            .with(Fault::WorkerPanic { job: 9, attempt: 2 })
            .with(Fault::CancelAt { cycle: 500 })
            .with(Fault::CancelAt { cycle: 40 })
            .with(Fault::DeadlineTrip);
        let json = plan.to_json();
        let back = FaultPlan::from_json(&json).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.panicking_sites(), vec![3]);
        assert_eq!(back.sink_error_after(), Some(5), "earliest threshold wins");
        assert_eq!(back.worker_panics(), vec![(9, 2)]);
        assert_eq!(back.cancel_at_cycle(), Some(40), "earliest cycle wins");
        assert!(back.deadline_trip());
    }

    #[test]
    fn harness_faults_are_classified_and_absent_by_default() {
        assert!(Fault::SitePanic { site: 0 }.is_harness_level());
        assert!(Fault::SinkError { after_records: 1 }.is_harness_level());
        assert!(Fault::WorkerPanic { job: 0, attempt: 0 }.is_harness_level());
        assert!(Fault::CancelAt { cycle: 1 }.is_harness_level());
        assert!(Fault::DeadlineTrip.is_harness_level());
        assert!(!Fault::stuck_at("n", Logic::Zero).is_harness_level());
        let empty = FaultPlan::new();
        assert_eq!(empty.sink_error_after(), None);
        assert!(empty.worker_panics().is_empty());
        assert_eq!(empty.cancel_at_cycle(), None);
        assert!(!empty.deadline_trip());
    }

    #[test]
    fn validate_rejects_bad_ranges() {
        let bad_factor = FaultPlan::new().with(Fault::delay_scale("g", 0.0));
        assert!(bad_factor.validate().is_err());
        let bad_prob = FaultPlan::new().with(Fault::Transient {
            probability: 1.5,
            seed: 0,
        });
        assert!(bad_prob.validate().is_err());
        let bad_window = FaultPlan::new().with(Fault::supply_glitch(
            "d",
            (Time::from_ns(4.0), Time::from_ns(2.0)),
            Voltage::from_v(0.1),
        ));
        let err = bad_window.validate().unwrap_err();
        assert!(err.to_string().contains("window"));
    }

    #[test]
    fn batch_supported_excludes_only_supply_glitches() {
        let ok = FaultPlan::new()
            .with(Fault::stuck_at("n", Logic::One))
            .with(Fault::delay_scale("g", 2.0))
            .with(Fault::bit_upset("ff0", Time::from_ns(1.0)))
            .with(Fault::Transient {
                probability: 0.1,
                seed: 1,
            })
            .with(Fault::SitePanic { site: 0 });
        assert!(ok.batch_supported());
        let glitchy = ok.with(Fault::supply_glitch(
            "vdd",
            (Time::ZERO, Time::from_ns(1.0)),
            Voltage::from_v(-0.1),
        ));
        assert!(!glitchy.batch_supported());
        assert!(FaultPlan::new().batch_supported());
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(FaultPlan::from_json("not json").is_err());
        assert!(FaultPlan::from_json("{\"faults\": [{\"Nope\": {}}]}").is_err());
    }

    #[test]
    fn splitmix_is_deterministic_and_uniform_ish() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let draws: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let again: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(draws, again);
        let mut c = SplitMix64::new(7);
        let mean: f64 = (0..4096).map(|_| c.next_f64()).sum::<f64>() / 4096.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
        assert!((0.0..1.0).contains(&c.next_f64()));
    }
}
