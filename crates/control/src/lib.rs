//! # psnt-control — closed-loop droop mitigation
//!
//! The paper's argument for a *fully digital* noise sensor is that its
//! thermometer output is available on-chip, within cycles — early
//! enough for a power-aware policy to act on it. This crate supplies
//! that policy layer for the cycle-stepped co-simulation core in
//! `psnt-workload`: a [`Mitigator`] observes the thermometer codes
//! sensed at cycle *t* (optionally delayed through a [`DelayLine`]
//! modelling code-distribution latency) and mutates cycle *t + 1*
//! through the sanctioned [`Actuation`] interface — per-domain
//! clock-stretch (activity scaling), load-throttle and supply boost.
//! No controller touches simulator state directly.
//!
//! Determinism rules (enforced by CI): controllers are **sim-time
//! pure** — their decisions are functions of the frames they observed
//! and their own state, never of wall-clock time (a CI grep gate bars
//! wall-clock reads from this crate), ambient randomness, or thread
//! identity. Two runs with the same seed and latency produce
//! bit-identical actuation traces at any worker count.
//!
//! Built-in controllers ([`controllers`]):
//!
//! * [`ThresholdStretch`] — stretch the domain clock (scale activity)
//!   while the domain's worst code sits at or below a threshold;
//! * [`ThresholdThrottle`] — hold new traffic injection while engaged;
//! * [`SupplyBoost`] — step the domain supply up while engaged;
//! * [`PiBoost`] — a proportional-integral supply boost with
//!   anti-windup (clamped conditional integration) and a deadband.
//!
//! The threshold controllers carry mandatory hysteresis (release level
//! strictly above engage level), which is what keeps them from
//! limit-cycling when a code hovers at the threshold.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod controllers;

use serde::{Deserialize, Serialize};
use std::fmt;

pub use controllers::{PiBoost, SupplyBoost, ThresholdStretch, ThresholdThrottle};

/// Errors produced by the `psnt-control` crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ControlError {
    /// A controller parameter violated a constraint.
    InvalidConfig {
        /// The parameter name.
        name: &'static str,
        /// Explanation of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlError::InvalidConfig { name, reason } => {
                write!(f, "invalid controller configuration {name}: {reason}")
            }
        }
    }
}

impl std::error::Error for ControlError {}

/// One monitor site's contribution to a [`ControlFrame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteReading {
    /// The power domain (mesh tile) the site monitors.
    pub domain: usize,
    /// The HIGH-SENSE thermometer level the site reported, or `None`
    /// when the site degraded this cycle (a panicked sense). Lower
    /// levels mean deeper droop.
    pub level: Option<usize>,
}

/// Everything a [`Mitigator`] sees of one cycle: the thermometer codes
/// of every monitor site, already digital — exactly what the paper's
/// sensor ships on-chip.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlFrame {
    /// The cycle the codes were sensed at.
    pub cycle: u64,
    /// Per-site readings, in floorplan site order.
    pub readings: Vec<SiteReading>,
}

impl ControlFrame {
    /// The worst (minimum) healthy level observed in each of `domains`
    /// power domains; `None` for a domain with no healthy reading this
    /// cycle, which controllers treat as "hold previous actuation" —
    /// a degraded site never desyncs the loop.
    pub fn domain_min_levels(&self, domains: usize) -> Vec<Option<usize>> {
        let mut mins = vec![None; domains];
        for r in &self.readings {
            if let (Some(level), Some(slot)) = (r.level, mins.get_mut(r.domain)) {
                *slot = Some(slot.map_or(level, |m: usize| m.min(level)));
            }
        }
        mins
    }
}

/// Floor of the per-domain activity scale a clock-stretch may request:
/// stretching below 4× (scale 0.25) would starve a domain outright.
pub const MIN_STRETCH: f64 = 0.25;

/// Ceiling of the per-domain supply boost, in volts (a realistic
/// header-switch / LDO authority; more would cook the domain).
pub const MAX_BOOST_V: f64 = 0.2;

/// The sanctioned mutation interface between a [`Mitigator`] and the
/// cycle stepper: per-domain clock-stretch, load-throttle and supply
/// boost, all clamped to physical authority at the setter. The stepper
/// applies an actuation to cycle *t + 1* after the controller observed
/// cycle *t*; there is no other way for a controller to reach
/// simulator state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Actuation {
    stretch: Vec<f64>,
    throttle: Vec<bool>,
    boost: Vec<f64>,
}

impl Actuation {
    /// The do-nothing actuation over `domains` power domains: scale
    /// 1.0, no throttle, zero boost. A stepper driven with a neutral
    /// actuation is bit-identical to the uncontrolled batch path.
    pub fn neutral(domains: usize) -> Actuation {
        Actuation {
            stretch: vec![1.0; domains],
            throttle: vec![false; domains],
            boost: vec![0.0; domains],
        }
    }

    /// Number of power domains.
    pub fn domains(&self) -> usize {
        self.stretch.len()
    }

    /// Requests a clock stretch on `domain`: activity scales by
    /// `scale`, clamped into `[`[`MIN_STRETCH`]`, 1.0]` (non-finite
    /// requests clamp to 1.0).
    pub fn set_stretch(&mut self, domain: usize, scale: f64) {
        if let Some(s) = self.stretch.get_mut(domain) {
            *s = if scale.is_finite() {
                scale.clamp(MIN_STRETCH, 1.0)
            } else {
                1.0
            };
        }
    }

    /// Requests (or releases) a traffic-injection hold on `domain`.
    pub fn set_throttle(&mut self, domain: usize, on: bool) {
        if let Some(t) = self.throttle.get_mut(domain) {
            *t = on;
        }
    }

    /// Requests a supply boost on `domain`, in volts, clamped into
    /// `[0, `[`MAX_BOOST_V`]`]` (non-finite requests clamp to 0).
    pub fn set_boost(&mut self, domain: usize, volts: f64) {
        if let Some(b) = self.boost.get_mut(domain) {
            *b = if volts.is_finite() {
                volts.clamp(0.0, MAX_BOOST_V)
            } else {
                0.0
            };
        }
    }

    /// The activity scale of `domain`.
    pub fn stretch(&self, domain: usize) -> f64 {
        self.stretch[domain]
    }

    /// Whether `domain` is holding new injections.
    pub fn throttled(&self, domain: usize) -> bool {
        self.throttle[domain]
    }

    /// The supply boost of `domain`, volts.
    pub fn boost(&self, domain: usize) -> f64 {
        self.boost[domain]
    }

    /// Whether this actuation changes nothing (every domain at scale
    /// 1.0, unthrottled, zero boost).
    pub fn is_neutral(&self) -> bool {
        self.stretch.iter().all(|&s| s == 1.0)
            && self.throttle.iter().all(|&t| !t)
            && self.boost.iter().all(|&b| b == 0.0)
    }

    /// Number of domains with any engaged actuator.
    pub fn engaged_domains(&self) -> usize {
        (0..self.domains())
            .filter(|&d| self.stretch[d] < 1.0 || self.throttle[d] || self.boost[d] > 0.0)
            .count()
    }
}

/// A droop-mitigation policy: observes the thermometer codes of one
/// cycle and updates the actuation the stepper will apply to the next.
///
/// Implementations must be sim-time pure (see the crate docs) and must
/// tolerate degraded readings (`level: None`) by holding the affected
/// domain's previous actuation — never by resetting their own state.
pub trait Mitigator {
    /// A short, stable policy name for telemetry and experiment tables.
    fn name(&self) -> &'static str;

    /// Observes `frame` (sensed `latency` cycles ago when a
    /// [`DelayLine`] sits in front) and mutates `act`, the actuation
    /// applied to the next cycle.
    fn observe(&mut self, frame: &ControlFrame, act: &mut Actuation);

    /// Serializes the controller's state for checkpointing, or `None`
    /// (the default) when the policy does not support it — a resumed
    /// run then restarts the controller cold, which is safe but may
    /// diverge from the uninterrupted run until it re-converges.
    fn state_snapshot(&self) -> Option<String> {
        None
    }

    /// Restores state captured by [`Mitigator::state_snapshot`] on an
    /// identically configured controller; returns `false` (the
    /// default) when the payload is unsupported or unrecognized, in
    /// which case the controller keeps its current state.
    fn restore_state(&mut self, _snapshot: &str) -> bool {
        false
    }
}

impl fmt::Debug for dyn Mitigator + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mitigator({})", self.name())
    }
}

/// Models the distribution latency between the sensor's scan codes and
/// the controller: a frame pushed at cycle *t* emerges at cycle
/// *t + latency*. Latency 0 passes frames straight through — the
/// paper's best case of codes consumed on-chip the cycle they resolve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DelayLine {
    latency: usize,
    queue: std::collections::VecDeque<ControlFrame>,
}

impl DelayLine {
    /// A delay line of `latency` cycles.
    pub fn new(latency: usize) -> DelayLine {
        DelayLine {
            latency,
            queue: std::collections::VecDeque::with_capacity(latency + 1),
        }
    }

    /// The configured latency, cycles.
    pub fn latency(&self) -> usize {
        self.latency
    }

    /// Pushes this cycle's frame; returns the frame sensed `latency`
    /// cycles ago, or `None` while the line is still filling.
    pub fn push(&mut self, frame: ControlFrame) -> Option<ControlFrame> {
        self.queue.push_back(frame);
        if self.queue.len() > self.latency {
            self.queue.pop_front()
        } else {
            None
        }
    }

    /// The frames currently in flight, oldest first — what a
    /// checkpoint must capture to resume the loop without a sensing
    /// gap.
    pub fn in_flight(&self) -> impl Iterator<Item = &ControlFrame> {
        self.queue.iter()
    }

    /// Rebuilds a delay line with `frames` (oldest first) already in
    /// flight, as captured by [`DelayLine::in_flight`].
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidConfig`] when more than
    /// `latency` frames are supplied — a line never holds more between
    /// pushes, so such a snapshot is corrupt.
    pub fn with_in_flight(
        latency: usize,
        frames: Vec<ControlFrame>,
    ) -> Result<DelayLine, ControlError> {
        if frames.len() > latency {
            return Err(ControlError::InvalidConfig {
                name: "frames",
                reason: format!(
                    "{} frames in flight exceed the line's latency of {latency}",
                    frames.len()
                ),
            });
        }
        Ok(DelayLine {
            latency,
            queue: frames.into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(cycle: u64, levels: &[(usize, Option<usize>)]) -> ControlFrame {
        ControlFrame {
            cycle,
            readings: levels
                .iter()
                .map(|&(domain, level)| SiteReading { domain, level })
                .collect(),
        }
    }

    #[test]
    fn domain_min_levels_skip_degraded_readings() {
        let f = frame(
            3,
            &[
                (0, Some(5)),
                (0, Some(2)),
                (1, None),
                (2, Some(7)),
                (9, Some(0)),
            ],
        );
        // Domain 9 is out of range for a 3-domain view and ignored.
        assert_eq!(
            f.domain_min_levels(3),
            vec![Some(2), None, Some(7)],
            "worst healthy reading per domain"
        );
    }

    #[test]
    fn actuation_clamps_to_physical_authority() {
        let mut a = Actuation::neutral(2);
        assert!(a.is_neutral());
        a.set_stretch(0, 0.01);
        assert_eq!(a.stretch(0), MIN_STRETCH);
        a.set_stretch(0, 2.0);
        assert_eq!(a.stretch(0), 1.0);
        a.set_stretch(0, f64::NAN);
        assert_eq!(a.stretch(0), 1.0);
        a.set_boost(1, 5.0);
        assert_eq!(a.boost(1), MAX_BOOST_V);
        a.set_boost(1, -1.0);
        assert_eq!(a.boost(1), 0.0);
        a.set_throttle(1, true);
        assert!(a.throttled(1) && !a.is_neutral());
        assert_eq!(a.engaged_domains(), 1);
        // Out-of-range domains are ignored, not panicked on.
        a.set_stretch(7, 0.5);
        a.set_throttle(7, true);
        a.set_boost(7, 0.1);
        assert_eq!(a.domains(), 2);
    }

    #[test]
    fn delay_line_delays_by_exactly_latency() {
        let mut dl = DelayLine::new(3);
        assert_eq!(dl.latency(), 3);
        for c in 0u64..3 {
            assert_eq!(dl.push(frame(c, &[])), None, "still filling at {c}");
        }
        for c in 3u64..8 {
            let out = dl.push(frame(c, &[])).expect("line full");
            assert_eq!(out.cycle, c - 3);
        }
        // Latency 0 is a pass-through.
        let mut zero = DelayLine::new(0);
        assert_eq!(zero.push(frame(11, &[])).unwrap().cycle, 11);
    }
}
