//! The built-in mitigation policies.
//!
//! All four controllers share the same skeleton: reduce each
//! [`ControlFrame`](crate::ControlFrame) to per-domain worst levels
//! ([`ControlFrame::domain_min_levels`](crate::ControlFrame::domain_min_levels)),
//! then update per-domain actuator state. A domain whose every monitor
//! site degraded this cycle reads `None` and **holds** its previous
//! state — the loop never desyncs on a lost frame.
//!
//! The threshold controllers engage when the worst level sinks to
//! `engage_below` or lower and release only once it recovers to
//! `release_at` or higher, with `release_at > engage_below` enforced at
//! construction: the mandatory hysteresis band is what prevents
//! limit-cycling when a code hovers at one threshold (the stability
//! proptests in the workspace pin this at every tested latency).
//!
//! Hysteresis alone is not enough once the loop is closed: the
//! actuation *itself* lifts the observed code (a boosted rail reads
//! healthy), so a bare threshold releases one frame after engaging and
//! the next droop lands on a neutral domain. The `with_hold` dwell —
//! a minimum number of engaged frames before release is allowed —
//! keeps a domain actuated across the burst that triggered it, exactly
//! like the programmable stretch-hold window of a hardware droop
//! mitigator.

use psnt_cells::units::Voltage;
use serde::{Deserialize, Serialize};

use crate::{Actuation, ControlError, ControlFrame, Mitigator, MAX_BOOST_V, MIN_STRETCH};

/// Implements the [`Mitigator`] checkpoint hooks for a controller that
/// is `Serialize + Deserialize`: the snapshot is the whole controller
/// (configuration and mutable state), so a restored controller resumes
/// exactly where the captured one stopped.
macro_rules! serde_state_hooks {
    () => {
        fn state_snapshot(&self) -> Option<String> {
            Some(serde::json::to_string(self))
        }

        fn restore_state(&mut self, snapshot: &str) -> bool {
            match serde::json::from_str::<Self>(snapshot) {
                Ok(restored) => {
                    *self = restored;
                    true
                }
                Err(_) => false,
            }
        }
    };
}

/// Validates a hysteresis band shared by the threshold controllers.
fn validate_band(engage_below: usize, release_at: usize) -> Result<(), ControlError> {
    if release_at <= engage_below {
        return Err(ControlError::InvalidConfig {
            name: "release_at",
            reason: format!(
                "release level {release_at} must sit strictly above engage level \
                 {engage_below} (hysteresis prevents limit cycles)"
            ),
        });
    }
    Ok(())
}

/// Per-domain engage/release state machine with hysteresis and a
/// minimum engagement dwell.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Hysteresis {
    engage_below: usize,
    release_at: usize,
    hold: usize,
    engaged: Vec<bool>,
    dwell: Vec<usize>,
}

impl Hysteresis {
    fn new(domains: usize, engage_below: usize, release_at: usize) -> Hysteresis {
        Hysteresis {
            engage_below,
            release_at,
            hold: 0,
            engaged: vec![false; domains],
            dwell: vec![0; domains],
        }
    }

    /// Steps every domain against its worst level; `None` holds.
    ///
    /// Engaging arms a per-domain dwell counter of `hold` frames (an
    /// engage-qualifying reading re-arms it); release is refused until
    /// the counter drains, so an actuation that lifts its own reading
    /// cannot release one frame after engaging.
    fn step(&mut self, mins: &[Option<usize>]) {
        for (d, min) in mins.iter().enumerate() {
            if self.engaged[d] {
                self.dwell[d] = self.dwell[d].saturating_sub(1);
            }
            match min {
                Some(l) if *l <= self.engage_below => {
                    self.engaged[d] = true;
                    self.dwell[d] = self.hold;
                }
                Some(l) if *l >= self.release_at && self.dwell[d] == 0 => {
                    self.engaged[d] = false;
                }
                _ => {} // inside the band, or degraded: hold
            }
        }
    }
}

/// Threshold-triggered clock stretch: while a domain's worst
/// thermometer level sits at or below `engage_below`, the domain's
/// activity is scaled by `scale` (its clock stretched by `1/scale`),
/// spending less switching current per cycle until the rail recovers
/// past `release_at`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdStretch {
    scale: f64,
    hysteresis: Hysteresis,
}

impl ThresholdStretch {
    /// A stretch controller over `domains` power domains.
    ///
    /// # Errors
    ///
    /// [`ControlError::InvalidConfig`] when `release_at <= engage_below`
    /// or `scale` is outside `[`[`MIN_STRETCH`]`, 1)`.
    pub fn new(
        domains: usize,
        engage_below: usize,
        release_at: usize,
        scale: f64,
    ) -> Result<ThresholdStretch, ControlError> {
        validate_band(engage_below, release_at)?;
        if !scale.is_finite() || !(MIN_STRETCH..1.0).contains(&scale) {
            return Err(ControlError::InvalidConfig {
                name: "scale",
                reason: format!("stretch scale {scale} must be in [{MIN_STRETCH}, 1)"),
            });
        }
        Ok(ThresholdStretch {
            scale,
            hysteresis: Hysteresis::new(domains, engage_below, release_at),
        })
    }

    /// Sets the minimum engagement dwell: once a domain engages, it
    /// stays stretched for at least `frames` observed frames (the
    /// default `0` releases as soon as the code recovers).
    #[must_use]
    pub fn with_hold(mut self, frames: usize) -> ThresholdStretch {
        self.hysteresis.hold = frames;
        self
    }
}

impl Mitigator for ThresholdStretch {
    fn name(&self) -> &'static str {
        "threshold-stretch"
    }

    fn observe(&mut self, frame: &ControlFrame, act: &mut Actuation) {
        let mins = frame.domain_min_levels(act.domains());
        self.hysteresis.step(&mins);
        for (d, engaged) in self.hysteresis.engaged.iter().enumerate() {
            act.set_stretch(d, if *engaged { self.scale } else { 1.0 });
        }
    }

    serde_state_hooks!();
}

/// Threshold-triggered load throttle: while engaged, a domain's new
/// traffic injections are held back (deferred, not dropped) so its
/// switching current stops growing; held flits drain once the rail
/// recovers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThresholdThrottle {
    hysteresis: Hysteresis,
}

impl ThresholdThrottle {
    /// A throttle controller over `domains` power domains.
    ///
    /// # Errors
    ///
    /// [`ControlError::InvalidConfig`] when `release_at <= engage_below`.
    pub fn new(
        domains: usize,
        engage_below: usize,
        release_at: usize,
    ) -> Result<ThresholdThrottle, ControlError> {
        validate_band(engage_below, release_at)?;
        Ok(ThresholdThrottle {
            hysteresis: Hysteresis::new(domains, engage_below, release_at),
        })
    }

    /// Sets the minimum engagement dwell: once a domain engages, it
    /// stays throttled for at least `frames` observed frames (the
    /// default `0` releases as soon as the code recovers).
    #[must_use]
    pub fn with_hold(mut self, frames: usize) -> ThresholdThrottle {
        self.hysteresis.hold = frames;
        self
    }
}

impl Mitigator for ThresholdThrottle {
    fn name(&self) -> &'static str {
        "threshold-throttle"
    }

    fn observe(&mut self, frame: &ControlFrame, act: &mut Actuation) {
        let mins = frame.domain_min_levels(act.domains());
        self.hysteresis.step(&mins);
        for (d, engaged) in self.hysteresis.engaged.iter().enumerate() {
            act.set_throttle(d, *engaged);
        }
    }

    serde_state_hooks!();
}

/// Threshold-triggered supply boost: while engaged, the domain's rail
/// is stepped up by a fixed `boost` (a header-switch / LDO step),
/// directly offsetting the IR droop the codes reported.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SupplyBoost {
    boost_v: f64,
    hysteresis: Hysteresis,
}

impl SupplyBoost {
    /// A boost controller over `domains` power domains.
    ///
    /// # Errors
    ///
    /// [`ControlError::InvalidConfig`] when `release_at <= engage_below`
    /// or `boost` is outside `(0, `[`MAX_BOOST_V`]`]` volts.
    pub fn new(
        domains: usize,
        engage_below: usize,
        release_at: usize,
        boost: Voltage,
    ) -> Result<SupplyBoost, ControlError> {
        validate_band(engage_below, release_at)?;
        let boost_v = boost.volts();
        if !boost_v.is_finite() || boost_v <= 0.0 || boost_v > MAX_BOOST_V {
            return Err(ControlError::InvalidConfig {
                name: "boost",
                reason: format!("boost {boost_v} V must be in (0, {MAX_BOOST_V}] V"),
            });
        }
        Ok(SupplyBoost {
            boost_v,
            hysteresis: Hysteresis::new(domains, engage_below, release_at),
        })
    }

    /// Sets the minimum engagement dwell: once a domain engages, its
    /// rail stays boosted for at least `frames` observed frames (the
    /// default `0` releases as soon as the code recovers — which, for
    /// a boost that lifts its own reading, is the very next frame).
    #[must_use]
    pub fn with_hold(mut self, frames: usize) -> SupplyBoost {
        self.hysteresis.hold = frames;
        self
    }
}

impl Mitigator for SupplyBoost {
    fn name(&self) -> &'static str {
        "supply-boost"
    }

    fn observe(&mut self, frame: &ControlFrame, act: &mut Actuation) {
        let mins = frame.domain_min_levels(act.domains());
        self.hysteresis.step(&mins);
        for (d, engaged) in self.hysteresis.engaged.iter().enumerate() {
            act.set_boost(d, if *engaged { self.boost_v } else { 0.0 });
        }
    }

    serde_state_hooks!();
}

/// A proportional-integral supply boost with anti-windup.
///
/// Per domain, the error is `target_level − worst_level` (positive when
/// the rail droops below target); the boost applied is
/// `kp·err + integral`, the integral accumulating `ki·err` per
/// observed frame. Two guards keep the loop stable:
///
/// * **anti-windup** — the integral is clamped into
///   `[0, `[`MAX_BOOST_V`]`]`, so a saturated actuator cannot wind the
///   integral into a post-transient overshoot;
/// * **deadband** — errors of magnitude at most `deadband` hold the
///   output instead of updating it, so the quantised thermometer level
///   flickering one code around target cannot drive a limit cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiBoost {
    target_level: f64,
    kp: f64,
    ki: f64,
    deadband: f64,
    integral: Vec<f64>,
    output: Vec<f64>,
}

impl PiBoost {
    /// A PI boost controller over `domains` power domains holding each
    /// domain's worst level at `target_level`, with gains `kp` and
    /// `ki` in volts per thermometer level and a one-code default
    /// deadband.
    ///
    /// # Errors
    ///
    /// [`ControlError::InvalidConfig`] for non-finite or negative
    /// gains, or both gains zero.
    pub fn new(
        domains: usize,
        target_level: f64,
        kp: f64,
        ki: f64,
    ) -> Result<PiBoost, ControlError> {
        for (name, g) in [("kp", kp), ("ki", ki)] {
            if !g.is_finite() || g < 0.0 {
                return Err(ControlError::InvalidConfig {
                    name,
                    reason: format!("gain {g} must be finite and non-negative"),
                });
            }
        }
        if kp == 0.0 && ki == 0.0 {
            return Err(ControlError::InvalidConfig {
                name: "kp/ki",
                reason: "at least one gain must be positive".into(),
            });
        }
        if !target_level.is_finite() || target_level < 0.0 {
            return Err(ControlError::InvalidConfig {
                name: "target_level",
                reason: format!("target level {target_level} must be finite and non-negative"),
            });
        }
        Ok(PiBoost {
            target_level,
            kp,
            ki,
            deadband: 1.0,
            integral: vec![0.0; domains],
            output: vec![0.0; domains],
        })
    }

    /// Overrides the default one-code deadband (`0` disables it).
    #[must_use]
    pub fn with_deadband(mut self, deadband: f64) -> PiBoost {
        self.deadband = deadband.max(0.0);
        self
    }

    /// The current integral term of `domain`, volts (diagnostics; the
    /// anti-windup clamp keeps it inside `[0, `[`MAX_BOOST_V`]`]`).
    pub fn integral(&self, domain: usize) -> f64 {
        self.integral[domain]
    }
}

impl Mitigator for PiBoost {
    fn name(&self) -> &'static str {
        "pi-boost"
    }

    fn observe(&mut self, frame: &ControlFrame, act: &mut Actuation) {
        let mins = frame.domain_min_levels(act.domains());
        for (d, min) in mins.iter().enumerate() {
            let Some(level) = min else {
                // Degraded domain: hold integral and output.
                act.set_boost(d, self.output[d]);
                continue;
            };
            let err = self.target_level - *level as f64;
            if err.abs() > self.deadband {
                // Conditional integration with clamping: the integral
                // never exceeds what the actuator can deliver.
                self.integral[d] = (self.integral[d] + self.ki * err).clamp(0.0, MAX_BOOST_V);
                self.output[d] = (self.kp * err + self.integral[d]).clamp(0.0, MAX_BOOST_V);
            }
            act.set_boost(d, self.output[d]);
        }
    }

    serde_state_hooks!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SiteReading;

    fn frame(cycle: u64, levels: &[Option<usize>]) -> ControlFrame {
        ControlFrame {
            cycle,
            readings: levels
                .iter()
                .enumerate()
                .map(|(domain, &level)| SiteReading { domain, level })
                .collect(),
        }
    }

    #[test]
    fn hysteresis_band_is_mandatory() {
        assert!(ThresholdStretch::new(4, 2, 2, 0.5).is_err());
        assert!(ThresholdThrottle::new(4, 3, 3).is_err());
        assert!(SupplyBoost::new(4, 2, 2, Voltage::from_mv(50.0)).is_err());
        assert!(ThresholdStretch::new(4, 2, 4, 0.5).is_ok());
    }

    #[test]
    fn config_bounds_rejected() {
        assert!(ThresholdStretch::new(4, 2, 4, 1.0).is_err());
        assert!(ThresholdStretch::new(4, 2, 4, 0.1).is_err());
        assert!(SupplyBoost::new(4, 2, 4, Voltage::from_v(0.5)).is_err());
        assert!(SupplyBoost::new(4, 2, 4, Voltage::ZERO).is_err());
        assert!(PiBoost::new(4, 5.0, -0.1, 0.0).is_err());
        assert!(PiBoost::new(4, 5.0, 0.0, 0.0).is_err());
        assert!(PiBoost::new(4, 5.0, 0.02, 0.005).is_ok());
    }

    #[test]
    fn threshold_stretch_engages_and_releases_with_hysteresis() {
        let mut c = ThresholdStretch::new(2, 2, 4, 0.5).unwrap();
        let mut act = Actuation::neutral(2);
        c.observe(&frame(0, &[Some(6), Some(6)]), &mut act);
        assert!(act.is_neutral());
        // Domain 1 droops to level 2 → engaged.
        c.observe(&frame(1, &[Some(6), Some(2)]), &mut act);
        assert_eq!(act.stretch(1), 0.5);
        assert_eq!(act.stretch(0), 1.0);
        // Level 3 is inside the band → still engaged (no chattering).
        c.observe(&frame(2, &[Some(6), Some(3)]), &mut act);
        assert_eq!(act.stretch(1), 0.5);
        // Recovered to 4 → released.
        c.observe(&frame(3, &[Some(6), Some(4)]), &mut act);
        assert_eq!(act.stretch(1), 1.0);
    }

    #[test]
    fn hold_dwell_refuses_early_release() {
        // A boost lifts its own reading: without a dwell the loop
        // would release one frame after engaging.
        let mut c = SupplyBoost::new(1, 2, 4, Voltage::from_mv(60.0))
            .unwrap()
            .with_hold(3);
        let mut act = Actuation::neutral(1);
        c.observe(&frame(0, &[Some(1)]), &mut act);
        assert!(act.boost(0) > 0.0);
        // The boosted rail reads healthy, but the dwell pins the
        // actuation through frame 2 (three engaged frames total)...
        for cycle in 1..=2 {
            c.observe(&frame(cycle, &[Some(7)]), &mut act);
            assert!(act.boost(0) > 0.0, "released during dwell (frame {cycle})");
        }
        // ...after which a healthy reading releases it.
        c.observe(&frame(3, &[Some(7)]), &mut act);
        assert_eq!(act.boost(0), 0.0);
        // An engage-qualifying reading mid-dwell re-arms the timer.
        let mut c = ThresholdStretch::new(1, 2, 4, 0.5).unwrap().with_hold(2);
        let mut act = Actuation::neutral(1);
        c.observe(&frame(0, &[Some(1)]), &mut act);
        c.observe(&frame(1, &[Some(1)]), &mut act); // re-arms
        c.observe(&frame(2, &[Some(7)]), &mut act);
        assert_eq!(act.stretch(0), 0.5, "dwell re-armed by second engage");
        c.observe(&frame(3, &[Some(7)]), &mut act);
        assert_eq!(act.stretch(0), 1.0);
    }

    #[test]
    fn degraded_domain_holds_previous_actuation() {
        let mut c = ThresholdThrottle::new(1, 2, 4).unwrap();
        let mut act = Actuation::neutral(1);
        c.observe(&frame(0, &[Some(1)]), &mut act);
        assert!(act.throttled(0));
        // The domain's only site degrades: the throttle must hold, not
        // reset — a lost frame cannot desync the loop.
        c.observe(&frame(1, &[None]), &mut act);
        assert!(act.throttled(0));
        c.observe(&frame(2, &[Some(6)]), &mut act);
        assert!(!act.throttled(0));
    }

    #[test]
    fn supply_boost_applies_fixed_step() {
        let mut c = SupplyBoost::new(1, 2, 4, Voltage::from_mv(60.0)).unwrap();
        let mut act = Actuation::neutral(1);
        c.observe(&frame(0, &[Some(2)]), &mut act);
        assert!((act.boost(0) - 0.060).abs() < 1e-12);
        c.observe(&frame(1, &[Some(5)]), &mut act);
        assert_eq!(act.boost(0), 0.0);
    }

    #[test]
    fn state_snapshots_roundtrip_mid_run() {
        // Drive each controller into a non-trivial state, snapshot,
        // restore onto a fresh instance, and check both produce the
        // same actuation stream afterwards.
        let droop = frame(0, &[Some(1), Some(6)]);
        let recover = |c| frame(c, &[Some(7), Some(7)]);
        let mut act = Actuation::neutral(2);

        let mut a = ThresholdStretch::new(2, 2, 4, 0.5).unwrap().with_hold(3);
        a.observe(&droop, &mut act);
        let snap = a.state_snapshot().expect("serializable policy");
        let mut b = ThresholdStretch::new(2, 2, 4, 0.5).unwrap().with_hold(3);
        assert!(b.restore_state(&snap));
        assert_eq!(a, b);
        for c in 1..6u64 {
            let (mut aa, mut ba) = (Actuation::neutral(2), Actuation::neutral(2));
            a.observe(&recover(c), &mut aa);
            b.observe(&recover(c), &mut ba);
            assert_eq!(aa, ba, "frame {c}");
        }

        let mut p = PiBoost::new(2, 5.0, 0.01, 0.05).unwrap();
        for c in 0..10u64 {
            p.observe(&frame(c, &[Some(0), Some(7)]), &mut act);
        }
        let snap = p.state_snapshot().unwrap();
        let mut q = PiBoost::new(2, 5.0, 0.01, 0.05).unwrap();
        assert!(q.restore_state(&snap));
        assert_eq!(p.integral(0), q.integral(0), "integral state restored");

        // Garbage payloads are refused and leave state untouched.
        let before = q.clone();
        assert!(!q.restore_state("not json"));
        assert_eq!(q, before);
    }

    #[test]
    fn pi_boost_integrates_with_anti_windup() {
        let mut c = PiBoost::new(1, 5.0, 0.01, 0.05).unwrap().with_deadband(0.0);
        let mut act = Actuation::neutral(1);
        // Persistent deep droop: integral climbs but clamps at the
        // actuator's authority instead of winding up.
        for cycle in 0..200 {
            c.observe(&frame(cycle, &[Some(0)]), &mut act);
            assert!(act.boost(0) <= MAX_BOOST_V + 1e-12);
            assert!(c.integral(0) <= MAX_BOOST_V + 1e-12);
        }
        assert!((act.boost(0) - MAX_BOOST_V).abs() < 1e-9, "saturated");
        // Recovery above target unwinds promptly — no overshoot tail
        // beyond the clamped integral.
        for cycle in 200..600 {
            c.observe(&frame(cycle, &[Some(7)]), &mut act);
        }
        assert_eq!(act.boost(0), 0.0, "integral unwound after recovery");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// No limit cycling: under a *constant* observed level —
            /// any level, any hysteresis band — every controller's
            /// actuation settles within two frames and never toggles
            /// again. (Closed-loop stability at each response latency
            /// is pinned by the workspace-level proptests.)
            #[test]
            fn threshold_controllers_settle_under_constant_input(
                level in 0usize..8,
                engage in 0usize..6,
                gap in 1usize..3,
            ) {
                let release = engage + gap;
                let mut stretch = ThresholdStretch::new(3, engage, release, 0.5).unwrap();
                let mut throttle = ThresholdThrottle::new(3, engage, release).unwrap();
                let mut boost = SupplyBoost::new(3, engage, release, Voltage::from_mv(50.0)).unwrap();
                let mut act = Actuation::neutral(3);
                let f = |c: u64| frame(c, &[Some(level), Some(level), Some(level)]);
                let mut history = Vec::new();
                for c in 0..32u64 {
                    stretch.observe(&f(c), &mut act);
                    throttle.observe(&f(c), &mut act);
                    boost.observe(&f(c), &mut act);
                    history.push(act.clone());
                }
                for later in &history[2..] {
                    prop_assert_eq!(later, &history[1], "actuation toggled after settling");
                }
            }

            /// The PI controller's output is monotone in the droop
            /// depth and always inside the actuator's authority.
            #[test]
            fn pi_boost_bounded_and_monotone(
                kp in 0.0f64..0.05,
                ki in 0.001f64..0.02,
            ) {
                let mut boosts = Vec::new();
                for level in 0..8usize {
                    let mut c = PiBoost::new(1, 7.0, kp, ki).unwrap().with_deadband(0.0);
                    let mut act = Actuation::neutral(1);
                    for cycle in 0..16 {
                        c.observe(&frame(cycle, &[Some(level)]), &mut act);
                        prop_assert!((0.0..=MAX_BOOST_V + 1e-12).contains(&act.boost(0)));
                    }
                    boosts.push(act.boost(0));
                }
                for pair in boosts.windows(2) {
                    prop_assert!(pair[0] >= pair[1] - 1e-12, "deeper droop must boost no less");
                }
            }
        }
    }
}
