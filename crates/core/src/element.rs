//! The single-bit noise sensor — paper Fig. 1 (left).
//!
//! One element is an inverter powered from the rail under test, a load
//! capacitor `C` on its output node `DS`, and a flip-flop powered from
//! the clean supply. During PREPARE the element is forced to a known
//! state; at SENSE the input `P` toggles, `DS` follows after the
//! inverter's **voltage-dependent** propagation delay, and the FF clock
//! `CP` rises a fixed skew later. If the rail sagged, `DS` is late, the
//! FF setup time is violated and the FF keeps the stale PREPARE value —
//! a `0` in the output vector.
//!
//! The element therefore converts a voltage into a pass/fail bit with a
//! sharp threshold; [`SenseElement::threshold`] solves for it.
//!
//! # Examples
//!
//! ```
//! use psnt_cells::process::Pvt;
//! use psnt_cells::units::{Capacitance, Time, Voltage};
//! use psnt_core::element::{RailMode, SenseElement};
//!
//! let elem = SenseElement::paper(Capacitance::from_pf(2.0), RailMode::Supply);
//! let pvt = Pvt::typical();
//! let skew = Time::from_ps(149.0); // delay code 011: 84 ps insertion + 65 ps tap
//! assert!(elem.measure(Voltage::from_v(1.00), skew, &pvt).passed);
//! assert!(!elem.measure(Voltage::from_v(0.90), skew, &pvt).passed);
//! ```

use psnt_cells::delay::{AlphaPowerDelay, DelayModel};
use psnt_cells::dff::Dff;
use psnt_cells::logic::Logic;
use psnt_cells::process::Pvt;
use psnt_cells::units::{Capacitance, Time, Voltage};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::SensorError;

/// Which rail the element observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RailMode {
    /// HIGH-SENSE: the inverter is powered from noisy `VDD-n` against
    /// nominal ground; a *drop* in the rail delays `DS`.
    Supply,
    /// LOW-SENSE: the inverter is powered from nominal `VDD` against
    /// noisy `GND-n`; a *bounce* (rise) in the rail delays `DS`. PREPARE
    /// and SENSE polarities are opposite to HIGH-SENSE, as the paper
    /// notes.
    Ground,
}

/// One element's sampling result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElementReading {
    /// `true` when the FF captured the SENSE transition (no error).
    pub passed: bool,
    /// The captured output level (mode-dependent polarity).
    pub out: Logic,
    /// The DS propagation delay from the `P` edge.
    pub ds_delay: Time,
    /// Setup margin: positive means `DS` settled before `CP − t_setup`.
    pub slack: Time,
    /// `true` when the capture fell inside the setup/hold window.
    pub metastable: bool,
    /// Clock-edge-to-settled-output delay (grows near the boundary —
    /// paper Fig. 2's non-linear OUT delay).
    pub out_delay: Time,
}

/// A single INV + C + FF noise sensor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SenseElement {
    inv: AlphaPowerDelay,
    ff: Dff,
    load: Capacitance,
    mode: RailMode,
}

impl SenseElement {
    /// Assembles an element from explicit models.
    pub fn new(inv: AlphaPowerDelay, ff: Dff, load: Capacitance, mode: RailMode) -> SenseElement {
        SenseElement {
            inv,
            ff,
            load,
            mode,
        }
    }

    /// The paper's element: calibrated 90 nm sense inverter
    /// ([`AlphaPowerDelay::paper_sense_inverter`]) and library FF
    /// ([`Dff::standard_90nm`]) with the given added load.
    pub fn paper(load: Capacitance, mode: RailMode) -> SenseElement {
        SenseElement {
            inv: AlphaPowerDelay::paper_sense_inverter(),
            ff: Dff::standard_90nm(),
            load,
            mode,
        }
    }

    /// The added load capacitance at `DS`.
    pub fn load(&self) -> Capacitance {
        self.load
    }

    /// The rail mode.
    pub fn mode(&self) -> RailMode {
        self.mode
    }

    /// The inverter model.
    pub fn inverter(&self) -> &AlphaPowerDelay {
        &self.inv
    }

    /// The flip-flop model.
    pub fn flip_flop(&self) -> &Dff {
        &self.ff
    }

    /// The effective inverter supply for a rail level: the rail itself in
    /// HIGH-SENSE, `VDD_nominal − rail` in LOW-SENSE (ground bounce eats
    /// into the swing).
    pub fn effective_supply(&self, rail: Voltage, pvt: &Pvt) -> Voltage {
        match self.mode {
            RailMode::Supply => rail,
            RailMode::Ground => pvt.nominal_vdd - rail,
        }
    }

    /// The SENSE transition values (new, old) at the FF input for this
    /// mode: HIGH-SENSE drives `DS` high (PREPARE held it low), LOW-SENSE
    /// the opposite.
    fn sense_values(&self) -> (Logic, Logic) {
        match self.mode {
            RailMode::Supply => (Logic::One, Logic::Zero),
            RailMode::Ground => (Logic::Zero, Logic::One),
        }
    }

    /// DS propagation delay for a rail level.
    pub fn ds_delay(&self, rail: Voltage, pvt: &Pvt) -> Time {
        self.inv
            .propagation_delay(self.effective_supply(rail, pvt), self.load, pvt)
    }

    /// Performs one PREPARE/SENSE measurement with the `P`→`CP` pin skew
    /// produced by the pulse generator. Deterministic metastability
    /// resolution (see [`Dff::sample`]).
    pub fn measure(&self, rail: Voltage, skew: Time, pvt: &Pvt) -> ElementReading {
        let ds_delay = self.ds_delay(rail, pvt);
        let arrival_after_edge = ds_delay - skew;
        let (new, old) = self.sense_values();
        let outcome = self.ff.sample(arrival_after_edge, new, old);
        ElementReading {
            passed: outcome.value == new,
            out: outcome.value,
            ds_delay,
            slack: skew - self.ff.setup() - ds_delay,
            metastable: outcome.metastable,
            out_delay: outcome.clk_to_out,
        }
    }

    /// Like [`SenseElement::measure`] but resolving metastable captures
    /// stochastically.
    pub fn measure_with_rng<R: Rng + ?Sized>(
        &self,
        rail: Voltage,
        skew: Time,
        pvt: &Pvt,
        rng: &mut R,
    ) -> ElementReading {
        let ds_delay = self.ds_delay(rail, pvt);
        let arrival_after_edge = ds_delay - skew;
        let (new, old) = self.sense_values();
        let outcome = self.ff.sample_with_rng(arrival_after_edge, new, old, rng);
        ElementReading {
            passed: outcome.value == new,
            out: outcome.value,
            ds_delay,
            slack: skew - self.ff.setup() - ds_delay,
            metastable: outcome.metastable,
            out_delay: outcome.clk_to_out,
        }
    }

    /// The threshold search constants of this element as one lane of the
    /// batched kernel: `(ac_ps, t_int_ps, vth_eff_v, alpha, window_ps)`
    /// (see [`crate::lanes`]). `ac_ps` pre-associates
    /// `A · (C_int + C_load)` exactly as the delay kernel does, so a
    /// lane built from this tuple replays [`SenseElement::threshold`]
    /// bit for bit.
    pub fn lane_task(&self, skew: Time, pvt: &Pvt) -> (f64, f64, f64, f64, f64) {
        let window = skew - self.ff.setup();
        let vth_eff = pvt.effective_vth(self.inv.vth());
        let ac = self.inv.a_ps_per_pf() * (self.inv.c_intrinsic() + self.load).picofarads();
        (
            ac,
            self.inv.t_intrinsic().picoseconds(),
            vth_eff.volts(),
            self.inv.alpha(),
            window.picoseconds(),
        )
    }

    /// Converts an effective-supply threshold back to a rail value:
    /// identical for HIGH-SENSE, mirrored (`VDD_nom − V*`) for LOW-SENSE.
    pub fn rail_from_effective(&self, v_eff: Voltage, pvt: &Pvt) -> Voltage {
        match self.mode {
            RailMode::Supply => v_eff,
            RailMode::Ground => pvt.nominal_vdd - v_eff,
        }
    }

    /// Solves for the rail value at the pass/fail boundary
    /// (`ds_delay == skew − t_setup`): HIGH-SENSE fails *below* the
    /// returned voltage, LOW-SENSE fails *above* it. Bisection to 10 µV.
    ///
    /// The search runs through [`crate::lanes::solve_scalar`] — the
    /// scalar twin of the 64-lane lockstep kernel — so batched and
    /// standalone thresholds agree bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::ThresholdOutOfRange`] when the boundary is
    /// not bracketed inside the physical search range.
    pub fn threshold(&self, skew: Time, pvt: &Pvt) -> Result<Voltage, SensorError> {
        let (ac_ps, t_int_ps, vth_eff_v, alpha, window_ps) = self.lane_task(skew, pvt);
        let v_eff = crate::lanes::solve_scalar(
            ac_ps,
            t_int_ps,
            vth_eff_v,
            alpha,
            window_ps,
            pvt.drive_factor(),
        )
        .ok_or(SensorError::ThresholdOutOfRange {
            lo: crate::lanes::lo_bound_v(vth_eff_v),
            hi: crate::lanes::hi_bound_v(),
        })?;
        Ok(self.rail_from_effective(Voltage::from_v(v_eff), pvt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pvt() -> Pvt {
        Pvt::typical()
    }

    /// Delay code 011 at the sensor pins: 84 ps insertion + 65 ps tap.
    fn skew011() -> Time {
        Time::from_ps(149.0)
    }

    fn elem(pf: f64) -> SenseElement {
        SenseElement::paper(Capacitance::from_pf(pf), RailMode::Supply)
    }

    #[test]
    fn nominal_supply_passes_droop_fails() {
        let e = elem(2.0);
        let ok = e.measure(Voltage::from_v(1.0), skew011(), &pvt());
        assert!(ok.passed);
        assert_eq!(ok.out, Logic::One);
        assert!(ok.slack > Time::ZERO);
        let bad = e.measure(Voltage::from_v(0.90), skew011(), &pvt());
        assert!(!bad.passed);
        assert_eq!(bad.out, Logic::Zero);
        assert!(bad.slack < Time::ZERO);
    }

    #[test]
    fn fig4_calibration_threshold_at_2pf() {
        // Paper Fig. 4: C = 2 pF ⇒ threshold 0.9360 V (delay code 011).
        let e = elem(2.0);
        let t = e.threshold(skew011(), &pvt()).unwrap();
        assert!(
            (t.volts() - 0.936).abs() < 0.004,
            "threshold {t} vs paper 0.9360 V"
        );
    }

    #[test]
    fn threshold_grows_with_load() {
        // Paper: "the greater the load, the slower DS … the higher the
        // VDD-n causing [the error]".
        let mut prev = Voltage::ZERO;
        for pf in [1.0, 1.5, 2.0, 2.5, 3.0] {
            let t = elem(pf).threshold(skew011(), &pvt()).unwrap();
            assert!(t > prev, "not monotone at {pf} pF");
            prev = t;
        }
    }

    #[test]
    fn threshold_separates_pass_fail() {
        let e = elem(2.2);
        let t = e.threshold(skew011(), &pvt()).unwrap();
        let above = e.measure(t + Voltage::from_mv(10.0), skew011(), &pvt());
        let below = e.measure(t - Voltage::from_mv(10.0), skew011(), &pvt());
        assert!(above.passed);
        assert!(!below.passed);
    }

    #[test]
    fn ds_delay_increases_as_supply_drops() {
        // Paper Fig. 2: DS delay grows through cases 1→4 as VDD-n steps
        // down linearly.
        let e = elem(2.0);
        let cases = [1.00, 0.98, 0.96, 0.94];
        let delays: Vec<Time> = cases
            .iter()
            .map(|&v| e.ds_delay(Voltage::from_v(v), &pvt()))
            .collect();
        for w in delays.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn out_delay_grows_nonlinearly_near_failure() {
        // Paper Fig. 2: OUT delay grows non-linearly into metastability.
        let e = elem(2.0);
        let t = e.threshold(skew011(), &pvt()).unwrap();
        // Far above threshold: clean capture at the nominal clk-to-Q.
        let far = e.measure(t + Voltage::from_mv(120.0), skew011(), &pvt());
        assert!(far.passed && !far.metastable);
        // Barely above: still passes, but resolves late.
        let near_pass = e.measure(t + Voltage::from_mv(5.0), skew011(), &pvt());
        assert!(near_pass.passed);
        assert!(near_pass.out_delay > far.out_delay);
        // Barely below: fails, flagged as a window violation, resolves
        // even later.
        let near_fail = e.measure(t - Voltage::from_mv(1.0), skew011(), &pvt());
        assert!(!near_fail.passed);
        assert!(near_fail.metastable);
        assert!(near_fail.out_delay > near_pass.out_delay);
    }

    #[test]
    fn ground_mode_mirrors_supply_mode() {
        let e = SenseElement::paper(Capacitance::from_pf(2.0), RailMode::Ground);
        // Quiet ground: effective supply = 1.0 V → pass (captures the
        // falling SENSE transition).
        let ok = e.measure(Voltage::ZERO, skew011(), &pvt());
        assert!(ok.passed);
        assert_eq!(ok.out, Logic::Zero);
        // 100 mV bounce: effective supply 0.9 V → fail (stale 1).
        let bad = e.measure(Voltage::from_mv(100.0), skew011(), &pvt());
        assert!(!bad.passed);
        assert_eq!(bad.out, Logic::One);
    }

    #[test]
    fn ground_threshold_is_complementary() {
        let hs = SenseElement::paper(Capacitance::from_pf(2.0), RailMode::Supply);
        let ls = SenseElement::paper(Capacitance::from_pf(2.0), RailMode::Ground);
        let tv = hs.threshold(skew011(), &pvt()).unwrap();
        let tg = ls.threshold(skew011(), &pvt()).unwrap();
        // G* = VDD_nom − V*: bounce above ~64 mV fails.
        assert!((tg.volts() - (1.0 - tv.volts())).abs() < 1e-6);
        assert!(
            ls.measure(tg - Voltage::from_mv(10.0), skew011(), &pvt())
                .passed
        );
        assert!(
            !ls.measure(tg + Voltage::from_mv(10.0), skew011(), &pvt())
                .passed
        );
    }

    #[test]
    fn slow_corner_raises_threshold_requirement() {
        // Paper §III-A: "in slow conditions the INV is slower and thus the
        // VDD-n threshold value is lower" — wait: slower INV means the
        // element fails at *higher* VDD, i.e. the dynamic shifts up; the
        // compensating CP−P delay should then be *larger*. Verify the
        // shift direction our trim logic relies on: at SS the element
        // needs more voltage to pass the same window.
        let e = elem(2.0);
        let tt = e.threshold(skew011(), &pvt()).unwrap();
        let ss_pvt = Pvt::new(
            psnt_cells::process::ProcessCorner::SS,
            Voltage::from_v(1.0),
            psnt_cells::units::Temperature::from_celsius(25.0),
        );
        let ss = e.threshold(skew011(), &ss_pvt).unwrap();
        assert!(ss > tt, "SS threshold {ss} should exceed TT {tt}");
    }

    #[test]
    fn stochastic_measurement_matches_deterministic_away_from_boundary() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let e = elem(2.0);
        let mut rng = StdRng::seed_from_u64(5);
        let det = e.measure(Voltage::from_v(1.05), skew011(), &pvt());
        let sto = e.measure_with_rng(Voltage::from_v(1.05), skew011(), &pvt(), &mut rng);
        assert_eq!(det, sto);
    }

    #[test]
    fn threshold_out_of_range_detected() {
        // A tiny load with a huge window never fails in-range.
        let e = elem(0.01);
        let err = e.threshold(Time::from_ns(100.0), &pvt()).unwrap_err();
        assert!(matches!(err, SensorError::ThresholdOutOfRange { .. }));
    }

    proptest! {
        #[test]
        fn pass_fail_is_monotone_in_rail(v1 in 0.5..1.4f64, v2 in 0.5..1.4f64) {
            // If the element passes at the lower voltage it must pass at
            // the higher one (HIGH-SENSE).
            prop_assume!(v1 < v2);
            let e = elem(2.0);
            let lo = e.measure(Voltage::from_v(v1), skew011(), &pvt());
            let hi = e.measure(Voltage::from_v(v2), skew011(), &pvt());
            prop_assert!(!lo.passed || hi.passed);
        }

        #[test]
        fn larger_skew_never_hurts(v in 0.7..1.3f64, s1 in 100.0..200.0f64, ds in 1.0..100.0f64) {
            let e = elem(2.0);
            let a = e.measure(Voltage::from_v(v), Time::from_ps(s1), &pvt());
            let b = e.measure(Voltage::from_v(v), Time::from_ps(s1 + ds), &pvt());
            prop_assert!(!a.passed || b.passed);
        }

        #[test]
        fn threshold_within_search_range(pf in 1.0..3.5f64) {
            let t = elem(pf).threshold(skew011(), &pvt()).unwrap();
            prop_assert!(t.volts() > 0.31);
            prop_assert!(t.volts() < 3.0);
        }
    }
}
