//! Error types for the sensor core.

use std::error::Error;
use std::fmt;

/// Errors produced by the `psnt-core` crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SensorError {
    /// A delay code outside `0..=7` (or the configured table size).
    InvalidDelayCode {
        /// The offending code value.
        code: u8,
        /// Number of entries in the delay table.
        table_len: usize,
    },
    /// A configuration value was outside its valid domain.
    InvalidConfig {
        /// The parameter name.
        name: &'static str,
        /// Explanation of the violated constraint.
        reason: String,
    },
    /// A threshold search did not bracket a solution inside the search
    /// interval (the element never fails, or always fails, in range).
    ThresholdOutOfRange {
        /// Lower search bound, volts.
        lo: f64,
        /// Upper search bound, volts.
        hi: f64,
    },
    /// A waveform did not cover the requested measurement instant.
    WaveformGap {
        /// The uncovered instant, picoseconds.
        at_ps: f64,
    },
    /// An error bubbled up from a substrate crate.
    Netlist(psnt_netlist::NetlistError),
    /// A supervised sweep (e.g. Monte-Carlo yield under an armed
    /// supervisor) was stopped cooperatively before every trial ran.
    Interrupted(psnt_sup::Interrupt),
    /// A Monte-Carlo trial failed; carries the trial index so a
    /// 10⁴-instance sweep pinpoints the offending instance instead of
    /// dropping it (the batch and scalar paths agree on which index —
    /// the lowest — is reported).
    Trial {
        /// Zero-based index of the failing trial.
        index: usize,
        /// The underlying per-trial error.
        source: Box<SensorError>,
    },
}

impl fmt::Display for SensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SensorError::InvalidDelayCode { code, table_len } => {
                write!(f, "delay code {code} outside table of {table_len} entries")
            }
            SensorError::InvalidConfig { name, reason } => {
                write!(f, "invalid configuration {name}: {reason}")
            }
            SensorError::ThresholdOutOfRange { lo, hi } => {
                write!(f, "no failure threshold inside [{lo} V, {hi} V]")
            }
            SensorError::WaveformGap { at_ps } => {
                write!(f, "supply waveform does not cover t = {at_ps} ps")
            }
            SensorError::Netlist(e) => write!(f, "netlist error: {e}"),
            SensorError::Interrupted(reason) => write!(f, "sweep interrupted: {reason}"),
            SensorError::Trial { index, source } => {
                write!(f, "trial {index}: {source}")
            }
        }
    }
}

impl Error for SensorError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SensorError::Netlist(e) => Some(e),
            SensorError::Trial { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<psnt_netlist::NetlistError> for SensorError {
    fn from(e: psnt_netlist::NetlistError) -> SensorError {
        // A netlist-level interruption is the same cooperative stop —
        // surface it as `Interrupted` so callers match one variant.
        match e {
            psnt_netlist::NetlistError::Interrupted(reason) => SensorError::Interrupted(reason),
            other => SensorError::Netlist(other),
        }
    }
}

impl From<psnt_sup::Interrupt> for SensorError {
    fn from(reason: psnt_sup::Interrupt) -> SensorError {
        SensorError::Interrupted(reason)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SensorError::InvalidDelayCode {
            code: 9,
            table_len: 8
        }
        .to_string()
        .contains("9"));
        assert!(SensorError::InvalidConfig {
            name: "bits",
            reason: "zero".into()
        }
        .to_string()
        .contains("bits"));
        assert!(SensorError::ThresholdOutOfRange { lo: 0.5, hi: 1.5 }
            .to_string()
            .contains("0.5"));
        assert!(SensorError::WaveformGap { at_ps: 10.0 }
            .to_string()
            .contains("10"));
        let trial = SensorError::Trial {
            index: 137,
            source: Box::new(SensorError::ThresholdOutOfRange { lo: 0.5, hi: 1.5 }),
        };
        assert!(trial.to_string().contains("trial 137"));
        assert!(trial.to_string().contains("0.5"));
        assert!(Error::source(&trial).is_some());
    }

    #[test]
    fn netlist_error_wraps_with_source() {
        let inner = psnt_netlist::NetlistError::UnknownNet("x".into());
        let e = SensorError::from(inner.clone());
        assert!(e.to_string().contains("netlist"));
        assert!(Error::source(&e).is_some());
        assert_eq!(e, SensorError::Netlist(inner));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<SensorError>();
    }
}
