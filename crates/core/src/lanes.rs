//! The 64-lane analytic threshold kernel — SIMD-within-a-register
//! lockstep bisection (see `DESIGN.md` §14).
//!
//! One "lane" is one independent sense-element threshold search: a
//! mismatch Monte-Carlo trial, or one element of an array. The solver
//! runs up to [`LANES`] searches in lockstep — every live lane takes
//! one bisection step per iteration over structure-of-arrays state.
//! The search walks `t = log₂(v − vth)` geometrically, so the
//! fails-predicate needs no logarithm (and no divide) per probe: with
//! `k₂` precomputed by [`k2_for`] it is
//! `2^(α·t + k₂) − 2^t < vth` — two short
//! [`psnt_cells::fastmath::exp2_fast`] polynomials of pure fused
//! multiply-adds. The probe is straight-line code over contiguous
//! `f64` arrays that LLVM auto-vectorizes (the x86 vector divider is
//! the one non-pipelined unit; everything here runs at FMA throughput),
//! instead of one boxed libm call per probe.
//!
//! # Bit-identity contract
//!
//! [`solve_scalar`] is the *same float program* as one lane of
//! [`solve`]: identical constants, identical operation order, identical
//! masked-update semantics (a converged lane's bracket never moves
//! again). [`crate::element::SenseElement::threshold`] calls
//! [`solve_scalar`], so for any lane `l`,
//! `solve(tasks)[l] == element_l.threshold(..)` bit for bit — the
//! property the `batch_equiv` proptests pin. This is also why the loop
//! below must not be "improved" with early exits or reordered
//! arithmetic on one path only.
//!
//! # Allocation discipline
//!
//! This module is the batched hot loop: it contains **no heap
//! allocation** — no `Vec` of per-lane values, fixed arrays only — and
//! `scripts/ci.sh` greps it to keep things that way.

use psnt_cells::fastmath::{exp2_fast, log2};
use psnt_cells::units::Voltage;

/// Lanes evaluated per machine word — one mismatch instance per bit.
pub const LANES: usize = 64;

/// Per-lane inputs of the threshold search, structure-of-arrays.
///
/// Each lane bakes the per-instance constants of
/// `AlphaPowerDelay::propagation_delay` exactly as the scalar path
/// associates them: `ac_ps = A · (C_int + C_load)` in ps (the product
/// the scalar kernel forms first), the parasitic `t_int_ps`, the
/// corner-shifted `vth_eff_v`, the velocity-saturation `alpha`, and the
/// per-lane timing window `window_ps = skew − t_setup`.
#[derive(Debug)]
pub struct LaneTasks {
    /// Live lanes; entries `n..LANES` are ignored.
    pub n: usize,
    /// `A · (C_int + C_load)` per lane, ps.
    pub ac_ps: [f64; LANES],
    /// Parasitic delay per lane, ps.
    pub t_int_ps: [f64; LANES],
    /// Corner-shifted threshold voltage per lane, V.
    pub vth_eff_v: [f64; LANES],
    /// Velocity-saturation index per lane.
    pub alpha: [f64; LANES],
    /// Timing window `skew − t_setup` per lane, ps.
    pub window_ps: [f64; LANES],
}

impl Default for LaneTasks {
    fn default() -> LaneTasks {
        LaneTasks {
            n: 0,
            ac_ps: [0.0; LANES],
            t_int_ps: [0.0; LANES],
            vth_eff_v: [0.0; LANES],
            alpha: [0.0; LANES],
            window_ps: [0.0; LANES],
        }
    }
}

/// The lower search bound for a lane: 10 mV of overdrive above the
/// effective threshold, exactly as the scalar search brackets it.
#[inline(always)]
pub fn lo_bound_v(vth_eff_v: f64) -> f64 {
    (Voltage::from_v(vth_eff_v) + Voltage::from_mv(10.0)).volts()
}

/// The upper search bound, volts (shared by every lane).
#[inline(always)]
pub fn hi_bound_v() -> f64 {
    Voltage::from_v(3.0).volts()
}

/// The bisection termination width, volts (10 µV).
#[inline(always)]
fn tol_v() -> f64 {
    Voltage::from_mv(0.01).volts()
}

/// The log-space threshold of the fails-predicate for one lane:
/// `k₂ = log₂((window − t_int) · drive / (A·C))`, precomputed once per
/// search.
///
/// The physical predicate `t_int + A·C · g(v)/drive > window` with
/// `g(v) = v/(v−vth)^α` is equivalent (for `window − t_int > 0`) to
/// `v/(v−vth)^α > 2^k₂`; substituting the overdrive `x = v − vth` and
/// its logarithm `t = log₂ x` turns it into
/// `2^(α·t + k₂) − 2^t < vth` — a probe of two short `exp2`
/// polynomials and not much else (see [`probe`]). Returns `None` when
/// `window − t_int ≤ 0` (the element can never pass: the search is
/// unbracketed by construction).
#[inline(always)]
fn k2_for(ac_ps: f64, t_int_ps: f64, window_ps: f64, df: f64) -> Option<f64> {
    let wmt = window_ps - t_int_ps;
    if wmt > 0.0 {
        Some(log2(wmt * df / ac_ps))
    } else {
        None
    }
}

/// One probe of the geometric bisection at `t = log₂(v − vth_eff)`:
/// returns the overdrive `x = 2^t` (the search keeps both the `t`- and
/// the `x`-space bracket, so the probe's `exp2` is reused as the new
/// bracket edge) and whether the element *fails* at that overdrive,
/// `2^(α·t + k₂) − 2^t < vth` (see [`k2_for`]). The two
/// [`exp2_fast`] chains are independent, so the scalar caller overlaps
/// them and the 64-lane loop runs them as straight vector FMAs —
/// no division, no mantissa split.
#[inline(always)]
fn probe(k2: f64, vth_eff_v: f64, alpha: f64, t: f64) -> (f64, bool) {
    let x = exp2_fast(t);
    let fail = exp2_fast(alpha.mul_add(t, k2)) - x < vth_eff_v;
    (x, fail)
}

/// One scalar threshold search — the reference program each lane of
/// [`solve`] replays bit for bit. Returns the effective-supply
/// threshold in volts, or `None` when the pass/fail boundary is not
/// bracketed by `[lo_bound, hi_bound]`.
///
/// The bracket `(xl, xh) = (lo − vth, hi − vth)` is walked in `t-space`
/// (`tm` halves exactly), while termination — the bracket is narrower
/// than [`tol_v`] — and the returned midpoint stay in volts, so the
/// geometric walk keeps the same 10 µV contract as a linear bisection.
#[inline]
pub fn solve_scalar(
    ac_ps: f64,
    t_int_ps: f64,
    vth_eff_v: f64,
    alpha: f64,
    window_ps: f64,
    df: f64,
) -> Option<f64> {
    let k2 = k2_for(ac_ps, t_int_ps, window_ps, df)?;
    let mut xl = lo_bound_v(vth_eff_v) - vth_eff_v;
    let mut xh = hi_bound_v() - vth_eff_v;
    if xh <= xl {
        return None;
    }
    let mut tl = log2(xl);
    let mut th = log2(xh);
    let (_, f_lo) = probe(k2, vth_eff_v, alpha, tl);
    let (_, f_hi) = probe(k2, vth_eff_v, alpha, th);
    if !f_lo || f_hi {
        return None;
    }
    let tol = tol_v();
    while (xh - xl) > tol {
        let tm = tl + (th - tl) * 0.5;
        let (xm, f) = probe(k2, vth_eff_v, alpha, tm);
        if f {
            tl = tm;
            xl = xm;
        } else {
            th = tm;
            xh = xm;
        }
    }
    Some(vth_eff_v + (xl + (xh - xl) * 0.5))
}

/// Lockstep bisection across all live lanes.
///
/// Writes each lane's threshold (effective supply, volts) into
/// `out[l]` and returns a bitmask of lanes whose search bracket failed
/// (`out` is unspecified for those lanes). Bracket-failed lanes are
/// masked out of the iteration; converged lanes stop updating, so each
/// surviving lane's `(lo, hi)` sequence is exactly the one
/// [`solve_scalar`] produces for the same task.
pub fn solve(tasks: &LaneTasks, df: f64, out: &mut [f64; LANES]) -> u64 {
    let n = tasks.n;
    debug_assert!(n <= LANES);
    let mut xl = [0.0f64; LANES];
    let mut xh = [0.0f64; LANES];
    let mut tl = [0.0f64; LANES];
    let mut th = [0.0f64; LANES];
    let mut k2 = [0.0f64; LANES];
    let mut bad = 0u64;
    for l in 0..n {
        let vth = tasks.vth_eff_v[l];
        xl[l] = lo_bound_v(vth) - vth;
        xh[l] = hi_bound_v() - vth;
        let bracketed = xh[l] > xl[l]
            && match k2_for(tasks.ac_ps[l], tasks.t_int_ps[l], tasks.window_ps[l], df) {
                Some(k) => {
                    k2[l] = k;
                    tl[l] = log2(xl[l]);
                    th[l] = log2(xh[l]);
                    let (_, f_lo) = probe(k, vth, tasks.alpha[l], tl[l]);
                    let (_, f_hi) = probe(k, vth, tasks.alpha[l], th[l]);
                    f_lo && !f_hi
                }
                None => false,
            };
        if !bracketed {
            bad |= 1u64 << l;
            // Freeze the lane: zero-width bracket, never iterated.
            xh[l] = xl[l];
            th[l] = tl[l];
        }
    }
    let tol = tol_v();
    loop {
        let mut live = false;
        // The hot lockstep loop: one pass probes every live lane. Each
        // lane's bisection step is a long dependency chain (two exp2
        // polynomials → compare → select), but a pass holds 16
        // independent 4-lane vector groups in flight, so the chains
        // overlap and the loop runs at FMA throughput. The body is pure
        // straight-line float ops with arithmetic selects — no lane
        // branches — so LLVM vectorizes the probe across lanes.
        for l in 0..n {
            let active = (xh[l] - xl[l]) > tol;
            let tm = tl[l] + (th[l] - tl[l]) * 0.5;
            let (xm, f) = probe(k2[l], tasks.vth_eff_v[l], tasks.alpha[l], tm);
            let ntl = if f { tm } else { tl[l] };
            let nth = if f { th[l] } else { tm };
            let nxl = if f { xm } else { xl[l] };
            let nxh = if f { xh[l] } else { xm };
            tl[l] = if active { ntl } else { tl[l] };
            th[l] = if active { nth } else { th[l] };
            xl[l] = if active { nxl } else { xl[l] };
            xh[l] = if active { nxh } else { xh[l] };
            live |= active;
        }
        if !live {
            break;
        }
    }
    for l in 0..n {
        out[l] = tasks.vth_eff_v[l] + (xl[l] + (xh[l] - xl[l]) * 0.5);
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;
    use psnt_cells::delay::AlphaPowerDelay;
    use psnt_cells::process::Pvt;
    use psnt_cells::units::{Capacitance, Time};

    fn task_for(load_pf: f64, pvt: &Pvt, window_ps: f64) -> (f64, f64, f64, f64, f64) {
        let inv = AlphaPowerDelay::paper_sense_inverter();
        let ac =
            inv.a_ps_per_pf() * (inv.c_intrinsic() + Capacitance::from_pf(load_pf)).picofarads();
        (
            ac,
            inv.t_intrinsic().picoseconds(),
            pvt.effective_vth(inv.vth()).volts(),
            inv.alpha(),
            window_ps,
        )
    }

    #[test]
    fn lanes_match_scalar_bit_for_bit() {
        let pvt = Pvt::typical();
        let window =
            (Time::from_ps(149.0) - psnt_cells::dff::Dff::standard_90nm().setup()).picoseconds();
        let mut tasks = LaneTasks::default();
        let mut expect = [0.0f64; LANES];
        for (l, want) in expect.iter_mut().enumerate() {
            let load = 1.0 + 0.02 * l as f64;
            let (ac, t_int, vth, alpha, w) = task_for(load, &pvt, window);
            tasks.ac_ps[l] = ac;
            tasks.t_int_ps[l] = t_int;
            tasks.vth_eff_v[l] = vth;
            tasks.alpha[l] = alpha;
            tasks.window_ps[l] = w;
            *want = solve_scalar(ac, t_int, vth, alpha, w, pvt.drive_factor()).unwrap();
        }
        tasks.n = LANES;
        let mut out = [0.0f64; LANES];
        let bad = solve(&tasks, pvt.drive_factor(), &mut out);
        assert_eq!(bad, 0);
        for l in 0..LANES {
            assert_eq!(out[l].to_bits(), expect[l].to_bits(), "lane {l}");
        }
    }

    #[test]
    fn ragged_and_bad_lanes_are_masked() {
        let pvt = Pvt::typical();
        let df = pvt.drive_factor();
        let mut tasks = LaneTasks::default();
        // Lane 0: fine. Lane 1: absurd window — never bracketed.
        let (ac, t_int, vth, alpha, w) = task_for(2.0, &pvt, 119.0);
        tasks.ac_ps[0] = ac;
        tasks.t_int_ps[0] = t_int;
        tasks.vth_eff_v[0] = vth;
        tasks.alpha[0] = alpha;
        tasks.window_ps[0] = w;
        let (ac, t_int, vth, alpha, _) = task_for(2.0, &pvt, 119.0);
        tasks.ac_ps[1] = ac;
        tasks.t_int_ps[1] = t_int;
        tasks.vth_eff_v[1] = vth;
        tasks.alpha[1] = alpha;
        tasks.window_ps[1] = 1.0e9; // never fails at lo → unbracketed
        tasks.n = 2;
        let mut out = [0.0f64; LANES];
        let bad = solve(&tasks, df, &mut out);
        assert_eq!(bad, 0b10);
        let want = solve_scalar(
            tasks.ac_ps[0],
            tasks.t_int_ps[0],
            tasks.vth_eff_v[0],
            tasks.alpha[0],
            tasks.window_ps[0],
            df,
        )
        .unwrap();
        assert_eq!(out[0].to_bits(), want.to_bits());
        assert!(solve_scalar(ac, t_int, vth, alpha, 1.0e9, df).is_none());
    }
}
