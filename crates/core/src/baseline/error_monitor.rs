//! Self-checking error-probability monitor (paper ref. \[6\], Metra et al.).
//!
//! The scheme watches replicated critical-path replicas with self-checking
//! checkers; over many cycles it yields "a general information on the on
//! chip general error probability due to PSN". The paper's critique:
//! that aggregate probability "is difficult to be used, especially in
//! power-aware architectures" — it tells you *that* the supply is
//! marginal, not *what* the voltage is or *when* it sagged.
//!
//! The model: each monitored replica fails a cycle with a probability
//! that rises smoothly as the cycle's supply sample crosses the replica's
//! timing threshold (a logistic curve whose width reflects data-dependent
//! path selection); the monitor reports the failure fraction.
//!
//! # Examples
//!
//! ```
//! use psnt_cells::units::Voltage;
//! use psnt_core::baseline::ErrorProbabilityMonitor;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let monitor = ErrorProbabilityMonitor::typical();
//! let mut rng = StdRng::seed_from_u64(1);
//! let quiet = monitor.observe(&[Voltage::from_v(1.0); 2000], &mut rng);
//! assert!(quiet < 0.01);
//! ```

use psnt_cells::units::Voltage;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A Metra-style aggregate error-probability monitor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorProbabilityMonitor {
    /// Supply at which half the monitored cycles fail.
    threshold: Voltage,
    /// Logistic width (volts): data-dependent spread of exercised paths.
    spread: f64,
}

impl ErrorProbabilityMonitor {
    /// Creates a monitor with an explicit threshold and spread.
    pub fn new(threshold: Voltage, spread: Voltage) -> ErrorProbabilityMonitor {
        ErrorProbabilityMonitor {
            threshold,
            spread: spread.volts().max(1e-6),
        }
    }

    /// A monitor tuned to a CUT whose paths start failing around 0.9 V
    /// with a 20 mV data-dependent spread.
    pub fn typical() -> ErrorProbabilityMonitor {
        ErrorProbabilityMonitor::new(Voltage::from_v(0.9), Voltage::from_mv(20.0))
    }

    /// The 50 %-failure supply.
    pub fn threshold(&self) -> Voltage {
        self.threshold
    }

    /// Per-cycle failure probability at a supply sample.
    pub fn failure_probability(&self, supply: Voltage) -> f64 {
        let x = (self.threshold - supply).volts() / self.spread;
        1.0 / (1.0 + (-x).exp())
    }

    /// Observes a cycle-by-cycle supply trace and returns the measured
    /// failure fraction — all the scheme exposes.
    pub fn observe<R: Rng + ?Sized>(&self, supplies: &[Voltage], rng: &mut R) -> f64 {
        if supplies.is_empty() {
            return 0.0;
        }
        let failures = supplies
            .iter()
            .filter(|v| rng.gen_bool(self.failure_probability(**v).clamp(0.0, 1.0)))
            .count();
        failures as f64 / supplies.len() as f64
    }

    /// The analytic (infinite-sample) failure fraction for a trace.
    pub fn expected_rate(&self, supplies: &[Voltage]) -> f64 {
        if supplies.is_empty() {
            return 0.0;
        }
        supplies
            .iter()
            .map(|v| self.failure_probability(*v))
            .sum::<f64>()
            / supplies.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probability_is_sigmoid() {
        let m = ErrorProbabilityMonitor::typical();
        assert!(m.failure_probability(Voltage::from_v(1.0)) < 0.01);
        assert!((m.failure_probability(Voltage::from_v(0.9)) - 0.5).abs() < 1e-9);
        assert!(m.failure_probability(Voltage::from_v(0.8)) > 0.99);
        // Monotone decreasing in supply.
        let mut prev = 1.0;
        for mv in (800..=1000).step_by(10) {
            let p = m.failure_probability(Voltage::from_mv(mv as f64));
            assert!(p <= prev);
            prev = p;
        }
    }

    #[test]
    fn observed_rate_matches_expectation() {
        let m = ErrorProbabilityMonitor::typical();
        let mut rng = StdRng::seed_from_u64(9);
        let trace: Vec<Voltage> = (0..4000)
            .map(|i| Voltage::from_mv(880.0 + 40.0 * ((i % 10) as f64 / 10.0)))
            .collect();
        let observed = m.observe(&trace, &mut rng);
        let expected = m.expected_rate(&trace);
        assert!(
            (observed - expected).abs() < 0.03,
            "observed {observed} vs expected {expected}"
        );
    }

    #[test]
    fn aggregate_hides_when_and_what() {
        // Two very different noise situations with identical aggregate
        // rate — the information the thermometer preserves and this
        // scheme destroys.
        let m = ErrorProbabilityMonitor::typical();
        // (a) constant marginal supply.
        let steady = vec![Voltage::from_v(0.9); 1000];
        // (b) clean supply with deep but rare droops, tuned to the same
        // expected rate: p(1.0 V) ≈ 0, p(0.8 V) ≈ 1 → 50 % duty of droop.
        let mut bursty = vec![Voltage::from_v(1.0); 500];
        bursty.extend(vec![Voltage::from_v(0.8); 500]);
        let ra = m.expected_rate(&steady);
        let rb = m.expected_rate(&bursty);
        assert!((ra - rb).abs() < 0.01, "rates {ra} vs {rb} should collide");
    }

    #[test]
    fn empty_trace_is_zero() {
        let m = ErrorProbabilityMonitor::typical();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(m.observe(&[], &mut rng), 0.0);
        assert_eq!(m.expected_rate(&[]), 0.0);
    }

    #[test]
    fn spread_floor_guards_division() {
        let m = ErrorProbabilityMonitor::new(Voltage::from_v(0.9), Voltage::ZERO);
        // Degenerates to a step function without NaNs.
        assert!(m.failure_probability(Voltage::from_v(0.899)) > 0.99);
        assert!(m.failure_probability(Voltage::from_v(0.901)) < 0.01);
    }
}
