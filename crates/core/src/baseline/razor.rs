//! Razor-style shadow-latch timing-error detection (paper ref. \[8\]).
//!
//! Razor augments a pipeline flip-flop with a shadow latch clocked by a
//! delayed phase: when supply droop stretches the datapath beyond the
//! main FF's sampling point but the data still reaches the shadow latch,
//! main and shadow disagree and the error is flagged (and recoverable at
//! the microarchitecture level).
//!
//! The paper's critique, reproduced here: Razor "requires a careful
//! design of the sense block and of the recovering system which is
//! suitable for a pipeline based processor, and not for a general
//! architecture" — and as a *sensor* it only observes cycles where the
//! pipeline actually exercises the critical path, and it reports a
//! binary error, not a voltage.
//!
//! # Examples
//!
//! ```
//! use psnt_cells::units::{Time, Voltage};
//! use psnt_core::baseline::{RazorOutcome, RazorStage};
//!
//! let stage = RazorStage::typical_pipeline();
//! // Nominal supply, path exercised: no error.
//! let out = stage.evaluate(Voltage::from_v(1.0), true, Time::from_ns(2.0));
//! assert_eq!(out, RazorOutcome::NoError);
//! // Idle path: a droop goes completely unobserved.
//! let idle = stage.evaluate(Voltage::from_v(0.85), false, Time::from_ns(2.0));
//! assert_eq!(idle, RazorOutcome::NotExercised);
//! ```

use psnt_cells::delay::{AlphaPowerDelay, DelayModel};
use psnt_cells::process::Pvt;
use psnt_cells::units::{Capacitance, Time, Voltage};
use serde::{Deserialize, Serialize};

/// What a Razor stage reports for one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RazorOutcome {
    /// The datapath met timing; main and shadow agree.
    NoError,
    /// Main FF missed the data but the shadow latch caught it: a
    /// detected, recoverable timing error.
    Detected,
    /// The data arrived after even the shadow window: a silent data
    /// corruption Razor cannot flag (the failure mode that bounds how
    /// far voltage can be scaled).
    Missed,
    /// The monitored path was not exercised this cycle — Razor sees
    /// nothing regardless of the supply.
    NotExercised,
}

/// One Razor-protected pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RazorStage {
    /// The critical datapath modelled with the same alpha-power physics
    /// as the sensor (so the whole path scales with supply).
    path: AlphaPowerDelay,
    /// Switched-capacitance equivalent of one gate stage.
    gate_equivalent: Capacitance,
    /// Number of equivalent gate stages in the path.
    depth: f64,
    /// Main FF setup time.
    setup: Time,
    /// The shadow latch stays transparent this long after the main edge.
    shadow_window: Time,
    pvt: Pvt,
}

impl RazorStage {
    /// A typical 90 nm pipeline stage: a 28-gate path sized to consume
    /// ~80 % of a 2 ns cycle at nominal supply (first timing failure near
    /// 0.79 V), with a half-cycle shadow window.
    pub fn typical_pipeline() -> RazorStage {
        RazorStage {
            path: AlphaPowerDelay::new(
                32.0,
                Capacitance::ZERO,
                Time::ZERO,
                Voltage::from_v(0.30),
                1.3,
            )
            .expect("static parameters are valid"),
            gate_equivalent: Capacitance::from_pf(1.1),
            depth: 28.0,
            setup: Time::from_ps(30.0),
            shadow_window: Time::from_ps(1000.0),
            pvt: Pvt::typical(),
        }
    }

    /// Returns a copy with a different path depth (gate count).
    #[must_use]
    pub fn with_depth(mut self, depth: f64) -> RazorStage {
        self.depth = depth;
        self
    }

    /// The datapath delay at a supply voltage.
    pub fn path_delay(&self, supply: Voltage) -> Time {
        self.path
            .propagation_delay(supply, self.gate_equivalent * self.depth, &self.pvt)
    }

    /// The lowest supply at which the stage still meets timing for the
    /// given clock period (bisection).
    pub fn min_supply(&self, period: Time) -> Voltage {
        let meets = |v: Voltage| self.path_delay(v) <= period - self.setup;
        let (mut lo, mut hi) = (Voltage::from_v(0.4), Voltage::from_v(1.5));
        if meets(lo) {
            return lo;
        }
        if !meets(hi) {
            return hi;
        }
        for _ in 0..50 {
            let mid = lo.lerp(hi, 0.5);
            if meets(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }

    /// Evaluates one cycle: does the stage flag a timing error at this
    /// supply? `exercised` is whether the critical path toggles this
    /// cycle (Razor's fundamental observability condition).
    pub fn evaluate(&self, supply: Voltage, exercised: bool, period: Time) -> RazorOutcome {
        if !exercised {
            return RazorOutcome::NotExercised;
        }
        let arrival = self.path_delay(supply);
        if arrival <= period - self.setup {
            RazorOutcome::NoError
        } else if arrival <= period + self.shadow_window {
            RazorOutcome::Detected
        } else {
            RazorOutcome::Missed
        }
    }

    /// Error-detection statistics over a cycle-by-cycle supply trace with
    /// the given per-cycle activity pattern. Returns
    /// `(detected, missed, unobserved_droops)` where the last counts
    /// cycles whose supply violated timing while the path was idle.
    pub fn run_trace(
        &self,
        supplies: &[Voltage],
        activity: &[bool],
        period: Time,
    ) -> (usize, usize, usize) {
        let mut detected = 0;
        let mut missed = 0;
        let mut unobserved = 0;
        for (v, &active) in supplies.iter().zip(activity) {
            match self.evaluate(*v, active, period) {
                RazorOutcome::Detected => detected += 1,
                RazorOutcome::Missed => missed += 1,
                RazorOutcome::NotExercised => {
                    if self.path_delay(*v) > period - self.setup {
                        unobserved += 1;
                    }
                }
                RazorOutcome::NoError => {}
            }
        }
        (detected, missed, unobserved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn period() -> Time {
        Time::from_ns(2.0)
    }

    #[test]
    fn nominal_supply_meets_timing() {
        let s = RazorStage::typical_pipeline();
        let d = s.path_delay(Voltage::from_v(1.0));
        assert!(d < period() - Time::from_ps(30.0));
        assert!(d > period() * 0.5, "path should be reasonably critical");
        assert_eq!(
            s.evaluate(Voltage::from_v(1.0), true, period()),
            RazorOutcome::NoError
        );
    }

    #[test]
    fn droop_is_detected_then_missed() {
        let s = RazorStage::typical_pipeline();
        let vmin = s.min_supply(period());
        assert!(vmin.volts() > 0.5 && vmin.volts() < 1.0, "vmin {vmin}");
        // Just below the edge: detected by the shadow latch.
        let detected = s.evaluate(vmin - Voltage::from_mv(20.0), true, period());
        assert_eq!(detected, RazorOutcome::Detected);
        // Deep droop: even the shadow window is blown.
        let missed = s.evaluate(Voltage::from_v(0.45), true, period());
        assert_eq!(missed, RazorOutcome::Missed);
    }

    #[test]
    fn idle_path_sees_nothing() {
        let s = RazorStage::typical_pipeline();
        assert_eq!(
            s.evaluate(Voltage::from_v(0.5), false, period()),
            RazorOutcome::NotExercised
        );
    }

    #[test]
    fn trace_accounts_unobserved_droops() {
        let s = RazorStage::typical_pipeline();
        let vmin = s.min_supply(period());
        let low = vmin - Voltage::from_mv(30.0);
        let supplies = vec![
            Voltage::from_v(1.0), // fine, active
            low,                  // violating, active → detected
            low,                  // violating, idle → unobserved
            Voltage::from_v(1.0), // fine, idle
        ];
        let activity = vec![true, true, false, false];
        let (detected, missed, unobserved) = s.run_trace(&supplies, &activity, period());
        assert_eq!(detected, 1);
        assert_eq!(missed, 0);
        assert_eq!(unobserved, 1);
    }

    #[test]
    fn deeper_path_raises_min_supply() {
        let shallow = RazorStage::typical_pipeline().with_depth(20.0);
        let deep = RazorStage::typical_pipeline().with_depth(32.0);
        assert!(deep.min_supply(period()) > shallow.min_supply(period()));
    }

    #[test]
    fn min_supply_saturates_at_search_bounds() {
        let s = RazorStage::typical_pipeline().with_depth(1.0);
        // A single gate meets 2 ns at any supply in range.
        assert_eq!(s.min_supply(period()), Voltage::from_v(0.4));
        let heavy = RazorStage::typical_pipeline().with_depth(500.0);
        assert_eq!(heavy.min_supply(period()), Voltage::from_v(1.5));
    }
}
