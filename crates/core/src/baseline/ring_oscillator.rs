//! Ring-oscillator supply sensor (paper ref. \[7\], Ogasahara et al.).
//!
//! A ring of standard-cell inverters is powered from the *noisy* rail
//! pair; a counter in the clean domain counts its oscillations over a
//! measurement window. The count tracks the window-average of the
//! effective swing `VDD-n − GND-n`, from which a voltage estimate can be
//! inverted.
//!
//! Two structural limitations — the reasons the paper proposes the
//! thermometer instead — fall out of the physics:
//!
//! 1. the ring frequency depends only on the *difference* of the rails,
//!    so a 50 mV supply droop and a 50 mV ground bounce are
//!    indistinguishable ([`RingOscillatorSensor::count`] returns the same
//!    count for both);
//! 2. the count integrates over the whole window, so a short droop is
//!    smeared into a small average shift rather than pinpointed.
//!
//! # Examples
//!
//! ```
//! use psnt_cells::process::Pvt;
//! use psnt_cells::units::{Time, Voltage};
//! use psnt_core::baseline::RingOscillatorSensor;
//! use psnt_pdn::waveform::Waveform;
//!
//! let ro = RingOscillatorSensor::paper_31_stage();
//! let count = ro.count(
//!     &Waveform::constant(1.0), &Waveform::constant(0.0),
//!     Time::ZERO, Time::from_us(1.0), &Pvt::typical(),
//! );
//! assert!(count > 0);
//! ```

use psnt_cells::delay::{AlphaPowerDelay, DelayModel};
use psnt_cells::process::Pvt;
use psnt_cells::units::{Capacitance, Time, Voltage};
use psnt_pdn::waveform::Waveform;
use serde::{Deserialize, Serialize};

use crate::error::SensorError;

/// A ring-oscillator-based average-supply sensor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RingOscillatorSensor {
    stages: usize,
    inv: AlphaPowerDelay,
    stage_load: Capacitance,
}

impl RingOscillatorSensor {
    /// Creates a ring of `stages` inverters (must be odd and ≥ 3).
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidConfig`] for an even or too-short
    /// ring.
    pub fn new(
        stages: usize,
        inv: AlphaPowerDelay,
        stage_load: Capacitance,
    ) -> Result<RingOscillatorSensor, SensorError> {
        if stages < 3 || stages.is_multiple_of(2) {
            return Err(SensorError::InvalidConfig {
                name: "stages",
                reason: format!("ring needs an odd stage count >= 3, got {stages}"),
            });
        }
        Ok(RingOscillatorSensor {
            stages,
            inv,
            stage_load,
        })
    }

    /// A 31-stage ring of the same 90 nm inverters the thermometer uses,
    /// each loaded by its successor's input (≈ 12 fF per stage).
    pub fn paper_31_stage() -> RingOscillatorSensor {
        RingOscillatorSensor {
            stages: 31,
            inv: AlphaPowerDelay::paper_sense_inverter(),
            stage_load: Capacitance::from_ff(12.0),
        }
    }

    /// Number of ring stages.
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Oscillation period at a fixed effective supply
    /// (`2 · stages · t_inv`).
    pub fn period(&self, effective_supply: Voltage, pvt: &Pvt) -> Time {
        self.inv
            .propagation_delay(effective_supply, self.stage_load, pvt)
            * (2.0 * self.stages as f64)
    }

    /// Instantaneous frequency in Hz at a fixed effective supply.
    pub fn frequency(&self, effective_supply: Voltage, pvt: &Pvt) -> f64 {
        1.0 / self.period(effective_supply, pvt).seconds()
    }

    /// Counts full oscillations over `[from, from + window]` with the
    /// ring powered between the two rails: the phase integral of
    /// `f(vdd(t) − gnd(t))`, evaluated at 100 sub-steps.
    ///
    /// # Panics
    ///
    /// Panics if `window` is non-positive.
    pub fn count(
        &self,
        vdd: &Waveform,
        gnd: &Waveform,
        from: Time,
        window: Time,
        pvt: &Pvt,
    ) -> u64 {
        assert!(window > Time::ZERO, "measurement window must be positive");
        const STEPS: usize = 100;
        let dt = window / STEPS as f64;
        let mut phase = 0.0f64;
        for k in 0..STEPS {
            let t = from + dt * (k as f64 + 0.5);
            let swing = Voltage::from_v(vdd.sample(t) - gnd.sample(t));
            phase += dt.seconds() * self.frequency(swing, pvt);
        }
        phase as u64
    }

    /// Inverts a count back into the estimated *average* effective swing
    /// over the window, by bisection on the monotone count model.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::ThresholdOutOfRange`] when the count is not
    /// reachable inside the 0.4–2.0 V search range.
    pub fn estimate_swing(
        &self,
        count: u64,
        window: Time,
        pvt: &Pvt,
    ) -> Result<Voltage, SensorError> {
        let expected = |v: Voltage| window.seconds() * self.frequency(v, pvt);
        let (mut lo, mut hi) = (Voltage::from_v(0.4), Voltage::from_v(2.0));
        let target = count as f64;
        if expected(lo) > target || expected(hi) < target {
            return Err(SensorError::ThresholdOutOfRange {
                lo: lo.volts(),
                hi: hi.volts(),
            });
        }
        for _ in 0..60 {
            let mid = lo.lerp(hi, 0.5);
            if expected(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(lo.lerp(hi, 0.5))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psnt_pdn::sources::SupplyNoiseBuilder;

    fn pvt() -> Pvt {
        Pvt::typical()
    }

    fn ro() -> RingOscillatorSensor {
        RingOscillatorSensor::paper_31_stage()
    }

    #[test]
    fn constructor_validates() {
        let inv = AlphaPowerDelay::paper_sense_inverter();
        let c = Capacitance::from_ff(12.0);
        assert!(RingOscillatorSensor::new(31, inv, c).is_ok());
        assert!(RingOscillatorSensor::new(30, inv, c).is_err());
        assert!(RingOscillatorSensor::new(1, inv, c).is_err());
    }

    #[test]
    fn frequency_rises_with_supply() {
        let r = ro();
        let f_lo = r.frequency(Voltage::from_v(0.9), &pvt());
        let f_hi = r.frequency(Voltage::from_v(1.1), &pvt());
        assert!(f_hi > f_lo);
        // Sanity: tens-to-hundreds of MHz for a 31-stage 90 nm ring.
        let f_nom = r.frequency(Voltage::from_v(1.0), &pvt());
        assert!((1.0e7..2.0e9).contains(&f_nom), "f = {f_nom:.3e} Hz");
    }

    #[test]
    fn count_tracks_average_supply() {
        let r = ro();
        let window = Time::from_us(1.0);
        let quiet = r.count(
            &Waveform::constant(1.0),
            &Waveform::constant(0.0),
            Time::ZERO,
            window,
            &pvt(),
        );
        let droopy = r.count(
            &Waveform::constant(0.9),
            &Waveform::constant(0.0),
            Time::ZERO,
            window,
            &pvt(),
        );
        assert!(droopy < quiet);
    }

    #[test]
    fn cannot_distinguish_vdd_droop_from_gnd_bounce() {
        // The paper's core criticism of ref. [7]: identical counts for a
        // 60 mV supply droop and a 60 mV ground bounce.
        let r = ro();
        let window = Time::from_us(1.0);
        let droop = r.count(
            &Waveform::constant(0.94),
            &Waveform::constant(0.0),
            Time::ZERO,
            window,
            &pvt(),
        );
        let bounce = r.count(
            &Waveform::constant(1.0),
            &Waveform::constant(0.06),
            Time::ZERO,
            window,
            &pvt(),
        );
        assert_eq!(droop, bounce);
    }

    #[test]
    fn short_droop_is_smeared_into_the_average() {
        // A 100 mV droop lasting 5 % of the window shifts the count by
        // only a few percent — the RO cannot localise it.
        let r = ro();
        let window = Time::from_us(1.0);
        let vdd = SupplyNoiseBuilder::new(Voltage::from_v(1.0))
            .span(Time::ZERO, window)
            .resolution(Time::from_ns(1.0))
            .ramp(
                Voltage::from_mv(-100.0),
                Time::from_ns(475.0),
                Time::from_ns(480.0),
            )
            .ramp(
                Voltage::from_mv(100.0),
                Time::from_ns(520.0),
                Time::from_ns(525.0),
            )
            .build()
            .unwrap();
        let gnd = Waveform::constant(0.0);
        let with_droop = r.count(&vdd, &gnd, Time::ZERO, window, &pvt());
        let quiet = r.count(&Waveform::constant(1.0), &gnd, Time::ZERO, window, &pvt());
        let rel = (quiet as f64 - with_droop as f64) / quiet as f64;
        assert!(rel > 0.0, "droop must reduce the count");
        assert!(rel < 0.03, "count shift {rel:.4} should be marginal");
    }

    #[test]
    fn estimate_swing_inverts_count() {
        let r = ro();
        let window = Time::from_us(1.0);
        for v in [0.9, 1.0, 1.1] {
            let count = r.count(
                &Waveform::constant(v),
                &Waveform::constant(0.0),
                Time::ZERO,
                window,
                &pvt(),
            );
            let est = r.estimate_swing(count, window, &pvt()).unwrap();
            assert!(
                (est.volts() - v).abs() < 0.01,
                "estimated {est} for true {v} V"
            );
        }
    }

    #[test]
    fn estimate_out_of_range_rejected() {
        let r = ro();
        assert!(r
            .estimate_swing(u64::MAX, Time::from_ns(1.0), &pvt())
            .is_err());
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn empty_window_panics() {
        ro().count(
            &Waveform::constant(1.0),
            &Waveform::constant(0.0),
            Time::ZERO,
            Time::ZERO,
            &pvt(),
        );
    }
}
