//! Comparison systems from the paper's related work.
//!
//! The introduction positions the thermometer against three digital
//! alternatives; each is implemented here so the `xp_baseline` experiment
//! can reproduce the qualitative comparison:
//!
//! * [`ring_oscillator`] — the standard-cell RO capture circuit of
//!   Ogasahara et al. (paper ref. \[7\]): powerful for verification, but
//!   "as it is based on a ring oscillator, it cannot distinguish between
//!   power and ground voltage variations" — demonstrated by test and
//!   bench;
//! * [`razor`] — the Razor shadow-latch scheme of Ernst et al. (ref.
//!   \[8\]): detects PSN-induced *timing errors* in a pipeline, but only
//!   where and when the datapath is exercised, and gives no voltage
//!   value;
//! * [`error_monitor`] — the self-checking scheme of Metra et al. (ref.
//!   \[6\]): yields "a general information on the on chip general error
//!   probability due to PSN", i.e. a rate, not a waveform.

pub mod error_monitor;
pub mod razor;
pub mod ring_oscillator;

pub use error_monitor::ErrorProbabilityMonitor;
pub use razor::{RazorOutcome, RazorStage};
pub use ring_oscillator::RingOscillatorSensor;
