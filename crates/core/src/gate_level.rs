//! Gate-level twin of the sensor array.
//!
//! The paper's strongest claim is that the sensor is "fully digital and
//! standard cell based". This module takes that literally: it builds the
//! 7-element array as an actual [`Netlist`] — sense inverters in a
//! separate *noisy* power domain, load capacitors as wire parasitics on
//! the `DS-i` nets, library flip-flops clocked by a shared `CP` — and
//! runs complete PREPARE/SENSE measures through the event-driven
//! simulator. No sensor-specific behaviour is scripted: the setup
//! violations emerge from event timing and the flip-flop model, exactly
//! as they would in silicon.
//!
//! The equivalence tests check the gate-level twin bit-for-bit against
//! the behavioural [`ThermometerArray`](crate::thermometer::ThermometerArray) across the dynamic range — the
//! strongest internal-consistency evidence this reproduction offers.
//!
//! Edge asymmetry is modelled faithfully: the sense inverter's
//! falling-DS (PREPARE) transition is driven by a pull-down with full
//! gate drive from the clean-domain `P` signal, so it completes at a
//! fixed nominal rate no matter how deep the noisy rail droops; only the
//! rising (SENSE) transition is rail-limited. The cells carry distinct
//! edge models ([`StdCell::with_fall_model`]) to capture exactly that.
//!
//! # Examples
//!
//! ```
//! use psnt_cells::units::{Time, Voltage};
//! use psnt_core::gate_level::GateLevelArray;
//! use psnt_ctx::RunCtx;
//!
//! let array = GateLevelArray::paper()?;
//! let mut ctx = RunCtx::serial();
//! let code = array.measure(&mut ctx, Voltage::from_v(1.0), Time::from_ps(149.0))?;
//! assert_eq!(code.to_string(), "0011111"); // Fig. 9's first measure
//! # Ok::<(), psnt_core::error::SensorError>(())
//! ```

use psnt_cells::delay::AlphaPowerDelay;
use psnt_cells::dff::Dff;
use psnt_cells::gates::{GateFunction, StdCell};
use psnt_cells::logic::{Logic, LogicVector};
use psnt_cells::process::Pvt;
use psnt_cells::units::{Capacitance, Time, Voltage};
use psnt_ctx::RunCtx;
use psnt_fault::FaultPlan;
use psnt_netlist::batch::{BatchSimulator, LANES};
use psnt_netlist::graph::{DomainId, NetId, Netlist};
use psnt_netlist::sim::{Simulator, TraceMode};

use crate::code::ThermometerCode;
use crate::error::SensorError;
use crate::thermometer::CapacitorLadder;

/// Event budget installed on a simulator whenever a fault plan is
/// active. A healthy measure of the 7-element array applies a few
/// hundred events; the full system a few thousand — so this ceiling is
/// orders of magnitude above any legitimate run while still turning an
/// oscillating fault (e.g. a stuck-at closing a combinational loop)
/// into [`psnt_netlist::NetlistError::BudgetExceeded`] instead of a
/// hang.
const FAULTED_EVENT_BUDGET: u64 = 5_000_000;

/// One lane's outcome from [`GateLevelArray::measure_batch`]: the
/// `(sense, prepare)` code pair that lane measured, or its per-lane
/// error (e.g. `BudgetExceeded` for an oscillating fault plan).
pub type LaneMeasure = Result<(ThermometerCode, ThermometerCode), SensorError>;

/// Installs (or clears) a context's fault plan on a pooled simulator,
/// pairing it with the [`FAULTED_EVENT_BUDGET`] guard. Fault-free
/// contexts leave the simulator exactly as before — no plan, no budget
/// — preserving the bit-identity contract.
fn apply_ctx_faults(
    sim: &mut Simulator<'_>,
    plan: Option<&psnt_fault::FaultPlan>,
) -> Result<(), SensorError> {
    match plan {
        Some(p) => {
            sim.set_fault_plan(p).map_err(SensorError::from)?;
            sim.set_event_budget(Some(FAULTED_EVENT_BUDGET));
        }
        None => {
            sim.clear_fault_plan();
            sim.set_event_budget(None);
        }
    }
    Ok(())
}

/// Timing of the stimulus applied for one gate-level measure.
#[derive(Debug, Clone, Copy, PartialEq)]
struct MeasurePlan {
    /// PREPARE capture edge (CP rising with P = 1).
    prepare_edge: Time,
    /// SENSE launch (P falls).
    sense_launch: Time,
    /// SENSE capture edge (CP rising), `sense_launch + skew`.
    sense_edge: Time,
    /// When the outputs are read.
    read_at: Time,
}

/// The sensor array as a standard-cell netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct GateLevelArray {
    netlist: Netlist,
    noisy: DomainId,
    p: NetId,
    cp: NetId,
    /// FF output nets, ascending-load order.
    outs: Vec<NetId>,
    pvt: Pvt,
}

impl GateLevelArray {
    /// Builds the paper's 7-element array over the Fig. 5 ladder.
    ///
    /// # Errors
    ///
    /// Propagates netlist validation failures.
    pub fn paper() -> Result<GateLevelArray, SensorError> {
        GateLevelArray::new(&CapacitorLadder::paper_fig5(), Pvt::typical())
    }

    /// Builds a gate-level array over an arbitrary ladder.
    ///
    /// # Errors
    ///
    /// Propagates netlist validation failures.
    pub fn new(ladder: &CapacitorLadder, pvt: Pvt) -> Result<GateLevelArray, SensorError> {
        let mut n = Netlist::new("sensor_array");
        let noisy = n.add_domain("vdd_noisy");
        let p = n.add_input("P");
        let cp = n.add_input("CP");
        let ff = Dff::standard_90nm();
        // The calibrated sense inverter as a library cell. Its intrinsic
        // output capacitance lives in the delay model; the ladder
        // capacitor becomes wire parasitic on DS-i (minus the FF D-pin
        // load the netlist adds back). The rising (SENSE) edge is powered
        // from the noisy rail; the falling (PREPARE) edge discharges at a
        // fixed nominal rate — its NMOS gate is driven by the
        // clean-domain `P` — modelled per element as a constant-delay
        // fall arc.
        let rise_model = AlphaPowerDelay::paper_sense_inverter();
        let mut outs = Vec::with_capacity(ladder.len());
        for (i, &c) in ladder.caps().iter().enumerate() {
            let t_fall = {
                use psnt_cells::delay::DelayModel as _;
                rise_model.propagation_delay(pvt.nominal_vdd, c, &pvt)
            };
            let fall_model = AlphaPowerDelay::new(
                1.0e-6, // negligible load sensitivity: the arc is the intrinsic
                Capacitance::from_ff(1.0),
                t_fall,
                Voltage::from_v(0.05),
                1.3,
            )
            .expect("static fall-arc parameters are valid");
            let sense_inv = StdCell::new(
                format!("SENSE_INV_{i}"),
                GateFunction::Inv,
                rise_model,
                Capacitance::from_ff(2.0),
            )
            .with_fall_model(fall_model);
            let ds = n
                .add_gate(format!("inv{i}"), sense_inv, &[p])
                .map_err(SensorError::from)?;
            let wire = c - ff.d_capacitance();
            n.add_wire_capacitance(ds, wire);
            // The sense inverter draws from the noisy rail.
            let gate_id = psnt_netlist::graph::GateId::from_index(i);
            n.set_gate_domain(gate_id, noisy);
            let q = n.add_dff(format!("ff{i}"), ff, ds, cp, Logic::Zero);
            n.mark_output(format!("out{i}"), q);
            outs.push(q);
        }
        n.validate().map_err(SensorError::from)?;
        Ok(GateLevelArray {
            netlist: n,
            noisy,
            p,
            cp,
            outs,
            pvt,
        })
    }

    /// The underlying netlist (e.g. for STA or VCD export).
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The noisy power domain id.
    pub fn noisy_domain(&self) -> DomainId {
        self.noisy
    }

    /// Number of elements.
    pub fn bits(&self) -> usize {
        self.outs.len()
    }

    fn plan(skew: Time) -> MeasurePlan {
        let prepare_edge = Time::from_ns(2.0);
        let sense_launch = Time::from_ns(5.0);
        MeasurePlan {
            prepare_edge,
            sense_launch,
            sense_edge: sense_launch + skew,
            read_at: sense_launch + skew + Time::from_ns(1.0),
        }
    }

    /// Builds a fresh simulator for this array. A measure only reads
    /// the latched FF outputs, so trace capture is off entirely. The
    /// context's simulator pool calls this once per array and then
    /// reuses the instance, so a sweep amortises construction:
    ///
    /// ```
    /// use psnt_cells::units::{Time, Voltage};
    /// use psnt_core::gate_level::GateLevelArray;
    /// use psnt_ctx::RunCtx;
    ///
    /// let array = GateLevelArray::paper()?;
    /// let mut ctx = RunCtx::serial(); // pools one simulator for `array`
    /// for mv in [900.0, 1000.0] {
    ///     let code = array.measure(&mut ctx, Voltage::from_mv(mv), Time::from_ps(149.0))?;
    ///     let fresh = array.measure(&mut RunCtx::serial(), Voltage::from_mv(mv), Time::from_ps(149.0))?;
    ///     assert_eq!(code, fresh);
    /// }
    /// # Ok::<(), psnt_core::error::SensorError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates simulator construction failures.
    pub fn make_sim(&self) -> Result<Simulator<'_>, SensorError> {
        Simulator::with_options(
            &self.netlist,
            self.pvt.nominal_vdd,
            self.pvt,
            TraceMode::Off,
        )
        .map_err(SensorError::from)
    }

    /// Runs one full PREPARE/SENSE measure with the noisy rail at
    /// `rail` and the P→CP pin skew `skew`, returning the thermometer
    /// code (most-loaded element first, as the paper prints it). The
    /// simulator comes from the context's pool, so repeated measures
    /// reuse one allocation; every measure resets it first, keeping the
    /// result bit-identical to a fresh simulator.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn measure<'env>(
        &'env self,
        ctx: &mut RunCtx<'env>,
        rail: Voltage,
        skew: Time,
    ) -> Result<ThermometerCode, SensorError> {
        Ok(self.measure_detailed(ctx, rail, skew)?.0)
    }

    /// [`GateLevelArray::measure`] on a caller-held simulator from
    /// [`GateLevelArray::make_sim`].
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    #[deprecated(since = "0.1.0", note = "use `measure` with a `RunCtx`")]
    pub fn measure_with(
        &self,
        sim: &mut Simulator<'_>,
        rail: Voltage,
        skew: Time,
    ) -> Result<ThermometerCode, SensorError> {
        Ok(self.measure_detailed_on(sim, rail, skew)?.0)
    }

    /// Like [`GateLevelArray::measure`], but also returning the PREPARE
    /// code read just before the SENSE launch (the paper's Fig. 9 shows
    /// it as `0000000`).
    ///
    /// When the context carries a [`psnt_fault::FaultPlan`]
    /// ([`RunCtx::with_fault_plan`]), the plan is installed on the
    /// pooled simulator before the measure (and cleared again by a
    /// later fault-free context), with an event-budget guard so a fault
    /// that makes the netlist oscillate reports
    /// [`psnt_netlist::NetlistError::BudgetExceeded`] instead of
    /// hanging.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures, including invalid fault plans
    /// (unknown net/gate/FF names) and exceeded event budgets.
    pub fn measure_detailed<'env>(
        &'env self,
        ctx: &mut RunCtx<'env>,
        rail: Voltage,
        skew: Time,
    ) -> Result<(ThermometerCode, ThermometerCode), SensorError> {
        let (obs, pool, plan) = ctx.obs_pool_parts();
        let sim = pool.get_or_insert_with(&self.netlist, || self.make_sim())?;
        apply_ctx_faults(sim, plan)?;
        if obs.is_some() {
            sim.enable_profiling();
        }
        let result = self.measure_detailed_on(sim, rail, skew);
        if let Some(obs) = obs {
            sim.promote_stats_into(&mut obs.metrics);
            sim.fold_profile_into(&mut obs.metrics);
        }
        result
    }

    /// [`GateLevelArray::measure_detailed`] on a caller-held simulator.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    #[deprecated(since = "0.1.0", note = "use `measure_detailed` with a `RunCtx`")]
    pub fn measure_detailed_with(
        &self,
        sim: &mut Simulator<'_>,
        rail: Voltage,
        skew: Time,
    ) -> Result<(ThermometerCode, ThermometerCode), SensorError> {
        self.measure_detailed_on(sim, rail, skew)
    }

    fn measure_detailed_on(
        &self,
        sim: &mut Simulator<'_>,
        rail: Voltage,
        skew: Time,
    ) -> Result<(ThermometerCode, ThermometerCode), SensorError> {
        let plan = GateLevelArray::plan(skew);
        sim.reset();
        sim.set_domain_supply(self.noisy, rail);

        // PREPARE: P = 1 forces every DS low; a CP edge captures the 0s.
        sim.drive(self.p, Logic::One, Time::ZERO)
            .map_err(SensorError::from)?;
        sim.drive(self.cp, Logic::Zero, Time::ZERO)
            .map_err(SensorError::from)?;
        sim.drive(self.cp, Logic::One, plan.prepare_edge)
            .map_err(SensorError::from)?;
        sim.drive(self.cp, Logic::Zero, plan.prepare_edge + Time::from_ns(1.0))
            .map_err(SensorError::from)?;

        // SENSE: P falls; CP rises `skew` later; the FFs race the DS
        // transitions against their setup windows.
        sim.drive(self.p, Logic::Zero, plan.sense_launch)
            .map_err(SensorError::from)?;
        sim.drive(self.cp, Logic::One, plan.sense_edge)
            .map_err(SensorError::from)?;

        // Read the PREPARE code just before the SENSE launch…
        // (guarded: under a fault plan the simulator carries an event
        // budget, so an oscillating fault errors instead of hanging).
        sim.try_run_until(plan.sense_launch - Time::from_ps(1.0))
            .map_err(SensorError::from)?;
        let prepare = self.pack(sim);
        // …and the measure after everything settles.
        sim.try_run_until(plan.read_at).map_err(SensorError::from)?;
        let sense = self.pack(sim);
        Ok((sense, prepare))
    }

    fn pack(&self, sim: &Simulator<'_>) -> ThermometerCode {
        let bits: LogicVector = self.outs.iter().rev().map(|&q| sim.value(q)).collect();
        ThermometerCode::new(bits)
    }

    /// Builds a fresh 64-lane batch simulator for this array — the
    /// bit-parallel sibling of [`GateLevelArray::make_sim`], used by
    /// [`GateLevelArray::measure_batch`] to sweep up to [`LANES`] fault
    /// plans per run. The context's batch pool calls this once per
    /// array and reuses the instance across chunks.
    ///
    /// # Errors
    ///
    /// Propagates simulator construction failures.
    pub fn make_batch_sim(&self) -> Result<BatchSimulator<'_>, SensorError> {
        BatchSimulator::with_pvt(&self.netlist, self.pvt.nominal_vdd, self.pvt)
            .map_err(SensorError::from)
    }

    /// Runs one PREPARE/SENSE measure with a **different fault plan on
    /// each of up to [`LANES`] lanes**, in a single pass over the event
    /// queue. Lane `i` carries `plans[i]`; the per-lane result is
    /// exactly what [`GateLevelArray::measure_detailed`] returns for
    /// that plan alone — `(sense, prepare)` on success, or the same
    /// error a serial faulted measure reports (budget exceeded on an
    /// oscillating fault). The whole-call `Err` covers batch-level
    /// failures only: no plans, more than [`LANES`] plans, or a plan
    /// the batch kernel rejects up front (unknown targets,
    /// [`psnt_fault::Fault::SupplyGlitch`]). A glitch plan surfaces as
    /// [`psnt_netlist::NetlistError::UnsupportedBatchFault`] naming
    /// both the fault kind and the offending lane, so callers can route
    /// exactly that plan to the scalar kernel (see
    /// [`psnt_fault::FaultPlan::batch_supported`]).
    ///
    /// The batch simulator comes from the context's
    /// [`psnt_ctx::BatchSimPool`], so a fault-coverage campaign walking
    /// hundreds of plans amortises one kernel construction across all
    /// its 64-plan chunks.
    ///
    /// # Errors
    ///
    /// `plans` empty or longer than [`LANES`]; invalid fault plans;
    /// simulator construction failures.
    pub fn measure_batch<'env>(
        &'env self,
        ctx: &mut RunCtx<'env>,
        rail: Voltage,
        skew: Time,
        plans: &[FaultPlan],
    ) -> Result<Vec<LaneMeasure>, SensorError> {
        if plans.is_empty() || plans.len() > LANES {
            return Err(SensorError::InvalidConfig {
                name: "measure_batch",
                reason: format!("need 1..={LANES} fault plans, got {}", plans.len()),
            });
        }
        let pool = ctx.batch_pool();
        let sim = pool.get_or_insert_with(&self.netlist, || self.make_batch_sim())?;
        sim.set_fault_plans(plans).map_err(SensorError::from)?;
        sim.set_event_budget(Some(FAULTED_EVENT_BUDGET));
        sim.set_event_budget_lanes(sim.fault_lanes());
        let result = self.measure_batch_on(sim, rail, skew, plans.len());
        // Leave the pooled kernel fault-free for the next caller, like
        // `apply_ctx_faults` does for the scalar pool.
        sim.clear_fault_plans();
        sim.set_event_budget(None);
        result
    }

    fn measure_batch_on(
        &self,
        sim: &mut BatchSimulator<'_>,
        rail: Voltage,
        skew: Time,
        lanes: usize,
    ) -> Result<Vec<LaneMeasure>, SensorError> {
        let plan = GateLevelArray::plan(skew);
        sim.reset();
        sim.set_domain_supply(self.noisy, rail);

        // Identical stimulus to `measure_detailed_on`, broadcast to all
        // lanes; per-lane divergence comes only from the fault plans.
        sim.drive(self.p, Logic::One, Time::ZERO)
            .map_err(SensorError::from)?;
        sim.drive(self.cp, Logic::Zero, Time::ZERO)
            .map_err(SensorError::from)?;
        sim.drive(self.cp, Logic::One, plan.prepare_edge)
            .map_err(SensorError::from)?;
        sim.drive(self.cp, Logic::Zero, plan.prepare_edge + Time::from_ns(1.0))
            .map_err(SensorError::from)?;
        sim.drive(self.p, Logic::Zero, plan.sense_launch)
            .map_err(SensorError::from)?;
        sim.drive(self.cp, Logic::One, plan.sense_edge)
            .map_err(SensorError::from)?;

        sim.run_until(plan.sense_launch - Time::from_ps(1.0));
        let prepares: Vec<ThermometerCode> = (0..lanes).map(|l| self.pack_lane(sim, l)).collect();
        sim.run_until(plan.read_at);
        let dead = sim.dead_lanes();
        let stats = sim.stats().clone();
        Ok((0..lanes)
            .map(|l| {
                if dead >> l & 1 == 1 {
                    Err(SensorError::from(
                        psnt_netlist::NetlistError::BudgetExceeded {
                            budget: FAULTED_EVENT_BUDGET,
                            events: stats.events[l],
                        },
                    ))
                } else {
                    Ok((self.pack_lane(sim, l), prepares[l].clone()))
                }
            })
            .collect())
    }

    fn pack_lane(&self, sim: &BatchSimulator<'_>, lane: usize) -> ThermometerCode {
        let bits: LogicVector = self
            .outs
            .iter()
            .rev()
            .map(|&q| sim.value(q, lane))
            .collect();
        ThermometerCode::new(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::RailMode;
    use crate::pulsegen::{DelayCode, PulseGenerator};
    use crate::thermometer::ThermometerArray;

    fn skew011() -> Time {
        PulseGenerator::paper_table().skew(DelayCode::new(3).unwrap(), &Pvt::typical())
    }

    #[test]
    fn netlist_shape() {
        let a = GateLevelArray::paper().unwrap();
        assert_eq!(a.bits(), 7);
        assert_eq!(a.netlist().gates().len(), 7);
        assert_eq!(a.netlist().dffs().len(), 7);
        assert_eq!(a.netlist().domains().len(), 2);
        // Every sense inverter sits in the noisy domain.
        for g in a.netlist().gates() {
            assert_eq!(g.domain(), a.noisy_domain());
        }
    }

    #[test]
    fn prepare_code_is_all_zero() {
        let a = GateLevelArray::paper().unwrap();
        let (_, prepare) = a
            .measure_detailed(&mut RunCtx::serial(), Voltage::from_v(1.0), skew011())
            .unwrap();
        assert_eq!(prepare.to_string(), "0000000");
    }

    #[test]
    fn fig9_codes_from_the_gate_level_twin() {
        let a = GateLevelArray::paper().unwrap();
        let mut ctx = RunCtx::serial();
        let first = a
            .measure(&mut ctx, Voltage::from_v(1.0), skew011())
            .unwrap();
        assert_eq!(first.to_string(), "0011111");
        let second = a
            .measure(&mut ctx, Voltage::from_v(0.9), skew011())
            .unwrap();
        assert_eq!(second.to_string(), "0000011");
    }

    #[test]
    fn gate_level_matches_behavioural_across_the_range() {
        // The central consistency check: the netlist twin and the
        // behavioural array agree bit-for-bit over a dense voltage sweep
        // (voltages chosen off the exact threshold points, where float
        // association order could legitimately differ). One context pools
        // one simulator for the whole sweep.
        let gate = GateLevelArray::paper().unwrap();
        let behavioural = ThermometerArray::paper(RailMode::Supply);
        let pvt = Pvt::typical();
        let sk = skew011();
        let mut ctx = RunCtx::serial();
        for i in 0..=60 {
            let v = Voltage::from_v(0.8013 + 0.005 * i as f64);
            let a = gate.measure(&mut ctx, v, sk).unwrap();
            let b = behavioural.measure(v, sk, &pvt);
            assert_eq!(a, b, "divergence at {v}");
        }
    }

    #[test]
    fn gate_level_matches_behavioural_for_other_delay_codes() {
        let gate = GateLevelArray::paper().unwrap();
        let behavioural = ThermometerArray::paper(RailMode::Supply);
        let pvt = Pvt::typical();
        let pg = PulseGenerator::paper_table();
        let mut ctx = RunCtx::serial();
        for code_val in [0u8, 2, 5, 7] {
            let sk = pg.skew(DelayCode::new(code_val).unwrap(), &pvt);
            for mv in [880.0, 960.0, 1040.0, 1120.0, 1200.0] {
                let v = Voltage::from_mv(mv + 3.0);
                let a = gate.measure(&mut ctx, v, sk).unwrap();
                let b = behavioural.measure(v, sk, &pvt);
                assert_eq!(a, b, "divergence at {v}, code {code_val:03b}");
            }
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            /// The netlist twin and the behavioural array agree on random
            /// rail voltages across (and beyond) the dynamic range.
            #[test]
            fn gate_level_equals_behavioural_on_random_rails(mv in 780.0..1100.0f64) {
                let gate = GateLevelArray::paper().unwrap();
                let behavioural = crate::thermometer::ThermometerArray::paper(
                    crate::element::RailMode::Supply,
                );
                let v = Voltage::from_mv(mv);
                let sk = Time::from_ps(149.0);
                let a = gate.measure(&mut RunCtx::serial(), v, sk).unwrap();
                let b = behavioural.measure(v, sk, &Pvt::typical());
                prop_assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn ctx_fault_plan_reaches_the_pooled_simulator() {
        use psnt_fault::{Fault, FaultPlan};
        let a = GateLevelArray::paper().unwrap();
        let v = Voltage::from_v(1.0);
        let healthy = a.measure(&mut RunCtx::serial(), v, skew011()).unwrap();
        assert_eq!(healthy.to_string(), "0011111");

        // ff0.q stuck at 0 kills the most-loaded (last-printed) bit.
        let plan = FaultPlan::new().with(Fault::stuck_at("ff0.q", Logic::Zero));
        let mut ctx = RunCtx::serial().with_fault_plan(plan);
        let faulty = a.measure(&mut ctx, v, skew011()).unwrap();
        assert_eq!(faulty.to_string(), "0011110");

        // The same pooled simulator, handed a fault-free context again,
        // must return to the healthy code (plan cleared, budget off).
        let recovered = a.measure(&mut RunCtx::serial(), v, skew011()).unwrap();
        assert_eq!(recovered, healthy);
    }

    #[test]
    fn measure_batch_lanes_match_serial_faulted_measures() {
        use psnt_fault::{Fault, FaultPlan};
        let a = GateLevelArray::paper().unwrap();
        let sk = skew011();
        // A mixed campaign chunk: stuck FF outputs, stuck sense-inverter
        // outputs, a slowed sense inverter, and a healthy (empty) plan.
        let plans = vec![
            FaultPlan::new().with(Fault::stuck_at("ff0.q", Logic::Zero)),
            FaultPlan::new().with(Fault::stuck_at("ff6.q", Logic::One)),
            FaultPlan::new().with(Fault::stuck_at("inv3.out", Logic::One)),
            FaultPlan::new().with(Fault::delay_scale("inv2", 3.0)),
            FaultPlan::new(),
            FaultPlan::new()
                .with(Fault::stuck_at("inv0.out", Logic::Zero))
                .with(Fault::delay_scale("inv5", 1.5)),
        ];
        let mut ctx = RunCtx::serial();
        for rail in [1.0, 0.96, 0.9] {
            let v = Voltage::from_v(rail);
            let batch = a.measure_batch(&mut ctx, v, sk, &plans).unwrap();
            assert_eq!(batch.len(), plans.len());
            for (l, plan) in plans.iter().enumerate() {
                let mut serial_ctx = RunCtx::serial().with_fault_plan(plan.clone());
                let serial = a.measure_detailed(&mut serial_ctx, v, sk).unwrap();
                let lane = batch[l].as_ref().unwrap();
                assert_eq!(lane, &serial, "lane {l} at rail {rail}");
            }
        }
    }

    #[test]
    fn measure_batch_rejects_empty_and_oversized_chunks() {
        use psnt_fault::FaultPlan;
        let a = GateLevelArray::paper().unwrap();
        let mut ctx = RunCtx::serial();
        let v = Voltage::from_v(1.0);
        assert!(a.measure_batch(&mut ctx, v, skew011(), &[]).is_err());
        let too_many = vec![FaultPlan::new(); LANES + 1];
        assert!(a.measure_batch(&mut ctx, v, skew011(), &too_many).is_err());
    }

    #[test]
    fn measure_batch_names_unsupported_fault_and_lane() {
        use psnt_fault::{Fault, FaultPlan};
        use psnt_netlist::NetlistError;
        let a = GateLevelArray::paper().unwrap();
        let mut ctx = RunCtx::serial();
        let mut plans = vec![FaultPlan::new(); 4];
        plans[3] = FaultPlan::new().with(Fault::supply_glitch(
            "sensor",
            (Time::from_ps(100.0), Time::from_ps(200.0)),
            Voltage::from_mv(-40.0),
        ));
        assert!(!plans[3].batch_supported());
        let err = a
            .measure_batch(&mut ctx, Voltage::from_v(1.0), skew011(), &plans)
            .unwrap_err();
        let SensorError::Netlist(inner) = &err else {
            panic!("expected a netlist error, got {err}");
        };
        assert_eq!(
            inner,
            &NetlistError::UnsupportedBatchFault {
                fault: "supply-glitch",
                lane: 3,
            }
        );
        assert!(err.to_string().contains("lane 3"), "{err}");
    }

    #[test]
    fn unknown_fault_target_is_reported_not_panicked() {
        use psnt_fault::{Fault, FaultPlan};
        let a = GateLevelArray::paper().unwrap();
        let plan = FaultPlan::new().with(Fault::stuck_at("no_such_net", Logic::One));
        let mut ctx = RunCtx::serial().with_fault_plan(plan);
        let err = a
            .measure(&mut ctx, Voltage::from_v(1.0), skew011())
            .unwrap_err();
        assert!(err.to_string().contains("no_such_net"), "{err}");
    }

    #[test]
    fn control_domain_unaffected_by_noisy_rail() {
        // The FFs live in the clean domain and the PREPARE pull-down has
        // full gate drive: even a collapsed noisy rail (0.2 V, below the
        // device threshold) must not corrupt the PREPARE capture — only
        // the rail-limited SENSE transition stalls, failing every
        // element.
        let a = GateLevelArray::paper().unwrap();
        let mut ctx = RunCtx::serial();
        for rail in [0.2, 0.5] {
            let (sense, prepare) = a
                .measure_detailed(&mut ctx, Voltage::from_v(rail), skew011())
                .unwrap();
            assert_eq!(prepare.to_string(), "0000000", "rail {rail} V");
            assert!(sense.is_underflow(), "rail {rail} V");
        }
    }

    #[test]
    fn sta_shows_noisy_domain_droop_on_ds_paths() {
        use psnt_netlist::sta::{analyze_with_domain_supplies, StaConfig};
        let a = GateLevelArray::paper().unwrap();
        let cfg = StaConfig::default();
        let nominal = analyze_with_domain_supplies(a.netlist(), &cfg, &[]).unwrap();
        let droopy = analyze_with_domain_supplies(
            a.netlist(),
            &cfg,
            &[(a.noisy_domain(), Voltage::from_v(0.9))],
        )
        .unwrap();
        assert!(droopy.critical_delay() > nominal.critical_delay());
    }
}

/// A pure-delay standard cell for the PG delay line (`t_intrinsic`
/// dominates; the load term is negligible by construction).
fn dly_cell(name: &str, ps: f64) -> StdCell {
    StdCell::new(
        name,
        GateFunction::Buf,
        AlphaPowerDelay::new(
            1.0,
            Capacitance::from_ff(1.0),
            Time::from_ps(ps),
            Voltage::from_v(0.30),
            1.3,
        )
        .expect("static delay-cell parameters are valid"),
        Capacitance::from_ff(1.5),
    )
}

/// The pulse generator as a netlist — paper Fig. 7.
///
/// The CP branch runs through an insertion buffer and an 8-tap delay
/// line (cumulative tap delays matching the published table) into an
/// 8:1 MUX tree; the P branch carries an *identical* 3-level MUX chain
/// so the mux delays cancel in the P→CP skew, exactly the trick the
/// paper describes.
#[derive(Debug, Clone, PartialEq)]
pub struct GateLevelPulseGen {
    netlist: Netlist,
    p_in: NetId,
    cp_in: NetId,
    sel: [NetId; 3],
    p_out: NetId,
    cp_out: NetId,
}

impl GateLevelPulseGen {
    /// Builds the PG with the paper's tap table and the 84 ps insertion
    /// delay.
    ///
    /// # Errors
    ///
    /// Propagates netlist validation failures.
    pub fn paper() -> Result<GateLevelPulseGen, SensorError> {
        let mut n = Netlist::new("pulsegen");
        let p_in = n.add_input("p_in");
        let cp_in = n.add_input("cp_in");
        let sel = [
            n.add_input("sel0"),
            n.add_input("sel1"),
            n.add_input("sel2"),
        ];

        // CP branch: insertion + tap ladder (deltas sum to the table).
        let insertion = n
            .add_gate("ins", dly_cell("DLY84", 84.0), &[cp_in])
            .map_err(SensorError::from)?;
        let deltas = [26.0, 14.0, 10.0, 15.0, 12.0, 15.0, 8.0, 7.0];
        let mut taps = Vec::with_capacity(8);
        let mut prev = insertion;
        for (i, d) in deltas.into_iter().enumerate() {
            prev = n
                .add_gate(format!("tap{i}"), dly_cell(&format!("DLY{d}"), d), &[prev])
                .map_err(SensorError::from)?;
            taps.push(prev);
        }

        // 8:1 MUX tree on CP.
        let mux = StdCell::mux2(2.0);
        let mut level: Vec<NetId> = taps;
        for (li, s_net) in sel.iter().enumerate() {
            let mut next = Vec::with_capacity(level.len() / 2);
            for (pi, pair) in level.chunks(2).enumerate() {
                let m = n
                    .add_gate(
                        format!("cpmux{li}_{pi}"),
                        mux.clone(),
                        &[pair[0], pair[1], *s_net],
                    )
                    .map_err(SensorError::from)?;
                next.push(m);
            }
            level = next;
        }
        let cp_out = level[0];

        // Matched MUX chain on P (both data pins tied together: the cell
        // passes P through with the same delay regardless of the select).
        let mut p = p_in;
        for (li, s_net) in sel.iter().enumerate() {
            p = n
                .add_gate(format!("pmux{li}"), mux.clone(), &[p, p, *s_net])
                .map_err(SensorError::from)?;
        }
        let p_out = p;

        n.mark_output("p_out", p_out);
        n.mark_output("cp_out", cp_out);
        n.validate().map_err(SensorError::from)?;
        Ok(GateLevelPulseGen {
            netlist: n,
            p_in,
            cp_in,
            sel,
            p_out,
            cp_out,
        })
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The input/select/output net ids:
    /// `(p_in, cp_in, [sel0, sel1, sel2], p_out, cp_out)`.
    pub fn ports(&self) -> (NetId, NetId, [NetId; 3], NetId, NetId) {
        (self.p_in, self.cp_in, self.sel, self.p_out, self.cp_out)
    }

    /// Builds a fresh simulator for this PG, tracing only the two
    /// output nets the skew measurement reads. The context's simulator
    /// pool calls this once per PG and reuses the instance across a
    /// delay-code sweep.
    ///
    /// # Errors
    ///
    /// Propagates simulator construction failures.
    pub fn make_sim(&self) -> Result<Simulator<'_>, SensorError> {
        Simulator::with_options(
            &self.netlist,
            Voltage::from_v(1.0),
            Pvt::typical(),
            TraceMode::Watched(vec![self.p_out, self.cp_out]),
        )
        .map_err(SensorError::from)
    }

    /// Simulates one simultaneous P/CP edge pair through the PG and
    /// returns the measured output skew for a delay code. The simulator
    /// comes from the context's pool and is reset per call, so the
    /// result is bit-identical to a fresh simulator.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn measured_skew<'env>(
        &'env self,
        ctx: &mut RunCtx<'env>,
        code: crate::pulsegen::DelayCode,
    ) -> Result<Time, SensorError> {
        let (obs, pool, _) = ctx.obs_pool_parts();
        let sim = pool.get_or_insert_with(&self.netlist, || self.make_sim())?;
        if obs.is_some() {
            sim.enable_profiling();
        }
        let result = self.measured_skew_on(sim, code);
        if let Some(obs) = obs {
            sim.promote_stats_into(&mut obs.metrics);
            sim.fold_profile_into(&mut obs.metrics);
        }
        result
    }

    /// [`GateLevelPulseGen::measured_skew`] on a caller-held simulator
    /// from [`GateLevelPulseGen::make_sim`].
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    #[deprecated(since = "0.1.0", note = "use `measured_skew` with a `RunCtx`")]
    pub fn measured_skew_with(
        &self,
        sim: &mut Simulator<'_>,
        code: crate::pulsegen::DelayCode,
    ) -> Result<Time, SensorError> {
        self.measured_skew_on(sim, code)
    }

    fn measured_skew_on(
        &self,
        sim: &mut Simulator<'_>,
        code: crate::pulsegen::DelayCode,
    ) -> Result<Time, SensorError> {
        sim.reset();
        for (bit, &net) in self.sel.iter().enumerate() {
            let level = Logic::from(code.value() >> bit & 1 == 1);
            sim.drive(net, level, Time::ZERO)
                .map_err(SensorError::from)?;
        }
        sim.drive(self.p_in, Logic::Zero, Time::ZERO)
            .map_err(SensorError::from)?;
        sim.drive(self.cp_in, Logic::Zero, Time::ZERO)
            .map_err(SensorError::from)?;
        sim.run_until(Time::from_ns(2.0));
        let launch = Time::from_ns(3.0);
        sim.drive(self.p_in, Logic::One, launch)
            .map_err(SensorError::from)?;
        sim.drive(self.cp_in, Logic::One, launch)
            .map_err(SensorError::from)?;
        sim.run_until(Time::from_ns(6.0));
        let p_sig = sim.try_signal(self.p_out).map_err(SensorError::from)?;
        let cp_sig = sim.try_signal(self.cp_out).map_err(SensorError::from)?;
        let p_edge = sim.trace().first_edge_to(p_sig, Logic::One, launch).ok_or(
            SensorError::InvalidConfig {
                name: "p_out",
                reason: "P edge never reached the output".into(),
            },
        )?;
        let cp_edge = sim
            .trace()
            .first_edge_to(cp_sig, Logic::One, launch)
            .ok_or(SensorError::InvalidConfig {
                name: "cp_out",
                reason: "CP edge never reached the output".into(),
            })?;
        Ok(cp_edge - p_edge)
    }
}

/// The complete sensor system — CNTR, PG and array — flattened into one
/// standard-cell netlist and executed by the event-driven simulator.
/// This is the paper's Fig. 6 running in gates: the FSM sequences
/// PREPARE/SENSE, the PG sets the P→CP skew, and the array's flip-flops
/// race the DS transitions, with the sense inverters on their own noisy
/// power domain.
#[derive(Debug, Clone, PartialEq)]
pub struct GateLevelSystem {
    netlist: Netlist,
    noisy: DomainId,
    clk: NetId,
    enable: NetId,
    start: NetId,
    sel: [NetId; 3],
    array_p: NetId,
    array_cp: NetId,
    outs: Vec<NetId>,
}

/// One measure extracted from a gate-level system run.
#[derive(Debug, Clone, PartialEq)]
pub struct GateLevelMeasure {
    /// The thermometer code read after the SENSE capture.
    pub code: ThermometerCode,
    /// When `P` fell at the array pins.
    pub p_fall: Time,
    /// When `CP` rose at the array pins.
    pub cp_rise: Time,
}

impl GateLevelMeasure {
    /// The effective P→CP skew of this measure at the sensor pins.
    pub fn skew(&self) -> Time {
        self.cp_rise - self.p_fall
    }
}

impl GateLevelSystem {
    /// Composes the paper's system (8-bit iteration counter keeps the
    /// simulation light; the timing-critical 32-bit variant is analysed
    /// separately by [`crate::control::build_control_netlist`]).
    ///
    /// # Errors
    ///
    /// Propagates netlist validation failures.
    pub fn paper() -> Result<GateLevelSystem, SensorError> {
        let cntr = crate::control::build_control_netlist(&crate::control::CtrlNetlistConfig {
            counter_bits: 8,
            ..Default::default()
        });
        let pg = GateLevelPulseGen::paper()?;
        let array = GateLevelArray::paper()?;

        let mut top = Netlist::new("sensor_system");
        let clk = top.add_input("clk");
        let enable = top.add_input("enable");
        let start = top.add_input("start");
        let sel = [
            top.add_input("sel0"),
            top.add_input("sel1"),
            top.add_input("sel2"),
        ];

        // CNTR instance.
        let cntr_clk = cntr.net_by_name("clk").map_err(SensorError::from)?;
        let cntr_en = cntr.net_by_name("enable").map_err(SensorError::from)?;
        let cntr_st = cntr.net_by_name("start").map_err(SensorError::from)?;
        let cntr_map = top.instantiate(
            &cntr,
            "cntr",
            &[(cntr_clk, clk), (cntr_en, enable), (cntr_st, start)],
        );
        let out_net = |child: &Netlist, map: &[NetId], port: &str| -> NetId {
            let (_, net) = child
                .outputs()
                .iter()
                .find(|(name, _)| name == port)
                .expect("known port");
            map[net.index()]
        };
        let p_pulse = out_net(&cntr, &cntr_map, "p_pulse");
        let cp_raw = out_net(&cntr, &cntr_map, "cp");
        // The CP output decode (OR + AND) lags the P decode (NAND) by
        // ≈9.7 ps; a balancing delay cell on P restores the PG-defined
        // skew — the "accurate routing … as a differential pair" the
        // paper prescribes for the P/CP pair.
        let p_balanced = top
            .add_gate("p_balance", dly_cell("DLY9P7", 9.7), &[p_pulse])
            .map_err(SensorError::from)?;

        // PG instance.
        let (pg_p_in, pg_cp_in, pg_sel, pg_p_out, pg_cp_out) = pg.ports();
        let pg_map = top.instantiate(
            &pg.netlist,
            "pg",
            &[
                (pg_p_in, p_balanced),
                (pg_cp_in, cp_raw),
                (pg_sel[0], sel[0]),
                (pg_sel[1], sel[1]),
                (pg_sel[2], sel[2]),
            ],
        );
        let array_p = pg_map[pg_p_out.index()];
        let array_cp = pg_map[pg_cp_out.index()];

        // Array instance.
        let arr_map = top.instantiate(
            &array.netlist,
            "array",
            &[(array.p, array_p), (array.cp, array_cp)],
        );
        let noisy = top
            .domain_by_name("array.vdd_noisy")
            .expect("array domain recreated by instantiate");
        let outs: Vec<NetId> = array.outs.iter().map(|q| arr_map[q.index()]).collect();
        for (i, &q) in outs.iter().enumerate() {
            top.mark_output(format!("out{i}"), q);
        }
        top.validate().map_err(SensorError::from)?;
        Ok(GateLevelSystem {
            netlist: top,
            noisy,
            clk,
            enable,
            start,
            sel,
            array_p,
            array_cp,
            outs,
        })
    }

    /// The flattened netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The noisy (sense-inverter) power domain.
    pub fn noisy_domain(&self) -> DomainId {
        self.noisy
    }

    /// Builds a fresh simulator for this system, tracing only the
    /// two array-pin nets whose edges define the measured skew. The
    /// context's simulator pool calls this once per system and reuses
    /// the instance across delay codes or rail schedules.
    ///
    /// # Errors
    ///
    /// Propagates simulator construction failures.
    pub fn make_sim(&self) -> Result<Simulator<'_>, SensorError> {
        Simulator::with_options(
            &self.netlist,
            Voltage::from_v(1.0),
            Pvt::typical(),
            TraceMode::Watched(vec![self.array_p, self.array_cp]),
        )
        .map_err(SensorError::from)
    }

    /// Runs the system for `measures` complete sequences with the noisy
    /// rail stepped through `rails` (one level per measure), delay code
    /// on the `sel` pins, clock period 4 ns. Returns one
    /// [`GateLevelMeasure`] per rail level. The simulator comes from
    /// the context's pool and is reset per call, so results are
    /// bit-identical to a fresh simulator.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures, and reports a missing pulse if a
    /// sequence did not produce P/CP edges.
    pub fn run_measures<'env>(
        &'env self,
        ctx: &mut RunCtx<'env>,
        code: crate::pulsegen::DelayCode,
        rails: &[Voltage],
    ) -> Result<Vec<GateLevelMeasure>, SensorError> {
        let (obs, pool, plan) = ctx.obs_pool_parts();
        let sim = pool.get_or_insert_with(&self.netlist, || self.make_sim())?;
        apply_ctx_faults(sim, plan)?;
        if obs.is_some() {
            sim.enable_profiling();
        }
        let result = self.run_measures_on(sim, code, rails);
        if let Some(obs) = obs {
            sim.promote_stats_into(&mut obs.metrics);
            sim.fold_profile_into(&mut obs.metrics);
        }
        result
    }

    /// [`GateLevelSystem::run_measures`] on a caller-held simulator
    /// from [`GateLevelSystem::make_sim`].
    ///
    /// # Errors
    ///
    /// Propagates simulator failures, and reports a missing pulse if a
    /// sequence did not produce P/CP edges.
    #[deprecated(since = "0.1.0", note = "use `run_measures` with a `RunCtx`")]
    pub fn run_measures_with(
        &self,
        sim: &mut Simulator<'_>,
        code: crate::pulsegen::DelayCode,
        rails: &[Voltage],
    ) -> Result<Vec<GateLevelMeasure>, SensorError> {
        self.run_measures_on(sim, code, rails)
    }

    fn run_measures_on(
        &self,
        sim: &mut Simulator<'_>,
        code: crate::pulsegen::DelayCode,
        rails: &[Voltage],
    ) -> Result<Vec<GateLevelMeasure>, SensorError> {
        let period = Time::from_ns(4.0);
        sim.reset();
        // The previous run may have left the noisy rail drooped; every
        // sequence starts from the nominal 1.0 V rail.
        sim.set_domain_supply(self.noisy, Voltage::from_v(1.0));
        sim.drive(self.enable, Logic::One, Time::ZERO)
            .map_err(SensorError::from)?;
        sim.drive(self.start, Logic::One, Time::ZERO)
            .map_err(SensorError::from)?;
        for (bit, &net) in self.sel.iter().enumerate() {
            let level = Logic::from(code.value() >> bit & 1 == 1);
            sim.drive(net, level, Time::ZERO)
                .map_err(SensorError::from)?;
        }
        let cycles = rails.len() * 5 + 6;
        sim.drive_clock(self.clk, Time::from_ns(2.0), period, cycles)
            .map_err(SensorError::from)?;

        let mut measures = Vec::with_capacity(rails.len());
        let mut cursor = Time::ZERO;
        for (k, &rail) in rails.iter().enumerate() {
            sim.set_domain_supply(self.noisy, rail);
            // One measure occupies 5 cycles; run to just past its SENSE
            // capture (the sequence begins after 1 fill cycle).
            let sense_cycle = 4 + 5 * k; // clock edges counted from the first
            let sense_edge = Time::from_ns(2.0) + period * sense_cycle as f64;
            sim.try_run_until(sense_edge + period / 2.0)
                .map_err(SensorError::from)?;
            let p_sig = sim.try_signal(self.array_p).map_err(SensorError::from)?;
            let cp_sig = sim.try_signal(self.array_cp).map_err(SensorError::from)?;
            let p_fall = sim
                .trace()
                .first_edge_to(p_sig, Logic::Zero, cursor)
                .ok_or(SensorError::InvalidConfig {
                    name: "array_p",
                    reason: format!("no P pulse for measure {k}"),
                })?;
            let cp_rise = sim
                .trace()
                .first_edge_to(cp_sig, Logic::One, p_fall)
                .ok_or(SensorError::InvalidConfig {
                    name: "array_cp",
                    reason: format!("no CP edge for measure {k}"),
                })?;
            let bits: LogicVector = self.outs.iter().rev().map(|&q| sim.value(q)).collect();
            measures.push(GateLevelMeasure {
                code: ThermometerCode::new(bits),
                p_fall,
                cp_rise,
            });
            cursor = sense_edge + period / 2.0;
        }
        Ok(measures)
    }
}

#[cfg(test)]
mod system_tests {
    use super::*;
    use crate::element::RailMode;
    use crate::pulsegen::{DelayCode, PulseGenerator};
    use crate::thermometer::ThermometerArray;

    #[test]
    fn pulsegen_netlist_reproduces_the_tap_table() {
        // The standalone PG netlist must emit the published skews:
        // insertion (84 ps) + tap, independent of the matched MUXes.
        let pg = GateLevelPulseGen::paper().unwrap();
        let model = PulseGenerator::paper_table();
        let pvt = Pvt::typical();
        let mut ctx = RunCtx::serial();
        for code in DelayCode::all() {
            let measured = pg.measured_skew(&mut ctx, code).unwrap();
            let expected = model.skew(code, &pvt);
            let err = (measured - expected).abs();
            assert!(
                err < Time::from_ps(3.0),
                "code {code}: measured {measured} vs model {expected}"
            );
        }
    }

    #[test]
    fn pulsegen_netlist_shape() {
        let pg = GateLevelPulseGen::paper().unwrap();
        // 1 insertion + 8 taps + 7 CP muxes + 3 P muxes.
        assert_eq!(pg.netlist().gates().len(), 19);
        pg.netlist().validate().unwrap();
    }

    #[test]
    fn full_system_composes_and_validates() {
        let sys = GateLevelSystem::paper().unwrap();
        let n = sys.netlist();
        // CNTR (8-bit counter) + PG + array.
        assert_eq!(n.dffs().len(), 3 + 8 + 7);
        assert!(n.gates().len() > 60);
        assert!(n.domain_by_name("array.vdd_noisy").is_some());
        n.validate().unwrap();
    }

    #[test]
    fn full_system_runs_the_fig9_sequence_in_gates() {
        // The flattened CNTR+PG+array netlist executes two measures with
        // the noisy rail stepped 1.0 V → 0.9 V. Codes must match the
        // behavioural array evaluated at the *measured* pin skew (the
        // FSM output decode adds a few ps the behavioural PG model folds
        // into its insertion constant).
        let sys = GateLevelSystem::paper().unwrap();
        let code011 = DelayCode::new(3).unwrap();
        let rails = [Voltage::from_v(1.0), Voltage::from_v(0.9)];
        let measures = sys
            .run_measures(&mut RunCtx::serial(), code011, &rails)
            .unwrap();
        assert_eq!(measures.len(), 2);

        let behavioural = ThermometerArray::paper(RailMode::Supply);
        let pvt = Pvt::typical();
        for (m, &rail) in measures.iter().zip(&rails) {
            // The balanced decode restores the PG-defined skew.
            let skew = m.skew();
            assert!(
                (skew - Time::from_ps(149.0)).abs() < Time::from_ps(5.0),
                "pin skew {skew} off the 149 ps model"
            );
            let expect = behavioural.measure(rail, skew, &pvt);
            assert_eq!(m.code, expect, "rail {rail}: skew {skew}");
        }
        // And the headline: the gate-level system reads the paper's
        // Fig. 9 codes.
        assert_eq!(measures[0].code.to_string(), "0011111");
        assert_eq!(measures[1].code.to_string(), "0000011");
    }

    #[test]
    fn full_system_skew_tracks_the_delay_code() {
        let sys = GateLevelSystem::paper().unwrap();
        let rails = [Voltage::from_v(1.0)];
        let mut ctx = RunCtx::serial();
        let mut skew_for = |code_val: u8| {
            sys.run_measures(&mut ctx, DelayCode::new(code_val).unwrap(), &rails)
                .unwrap()[0]
                .skew()
        };
        let s0 = skew_for(0);
        let s3 = skew_for(3);
        let s7 = skew_for(7);
        assert!(s3 > s0 && s7 > s3, "{s0} / {s3} / {s7}");
        // Tap differences survive the composition: 107 − 26 = 81 ps.
        let spread = s7 - s0;
        assert!(
            (spread - Time::from_ps(81.0)).abs() < Time::from_ps(6.0),
            "tap spread {spread}"
        );
    }
}
