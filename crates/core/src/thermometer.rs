//! The multi-bit noise thermometer — paper Fig. 1 (right) and Fig. 5.
//!
//! Seven identical INV+FF elements share the same `P`/`CP` pulses; only
//! the load capacitor at each `DS-i` differs, rising along a ladder so
//! each flip-flop has a different failure threshold. The array output is
//! a [`ThermometerCode`] "proportional to the VDD-n value … in principle
//! similar to a flash A/D converter".
//!
//! Two ladders are provided:
//!
//! * [`CapacitorLadder::paper_fig5`] — calibrated so the delay-code-011
//!   thresholds land on the paper's published values (0.827, 0.896,
//!   0.929, …, 1.053 V);
//! * [`CapacitorLadder::linear`] — the idealised uniform ladder the paper
//!   describes ("the capacitor at DS-i increases linearly"), used by the
//!   ladder-design ablation.
//!
//! # Examples
//!
//! ```
//! use psnt_cells::process::Pvt;
//! use psnt_cells::units::{Time, Voltage};
//! use psnt_core::element::RailMode;
//! use psnt_core::thermometer::{CapacitorLadder, ThermometerArray};
//!
//! let array = ThermometerArray::paper(RailMode::Supply);
//! let skew = Time::from_ps(149.0); // delay code 011
//! let code = array.measure(Voltage::from_v(1.0), skew, &Pvt::typical());
//! assert_eq!(code.to_string(), "0011111"); // paper Fig. 9, first measure
//! # let _ = CapacitorLadder::paper_fig5();
//! ```

use std::sync::Mutex;

use psnt_cells::logic::LogicVector;
use psnt_cells::process::Pvt;
use psnt_cells::units::{Capacitance, Time, Voltage};
use psnt_ctx::RunCtx;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::code::ThermometerCode;
use crate::element::{ElementReading, RailMode, SenseElement};
use crate::error::SensorError;

/// An ascending ladder of load capacitances, one per array element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacitorLadder {
    caps: Vec<Capacitance>,
}

impl CapacitorLadder {
    /// Builds a ladder from explicit values.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidConfig`] when empty, non-positive or
    /// not strictly increasing.
    pub fn from_caps(caps: Vec<Capacitance>) -> Result<CapacitorLadder, SensorError> {
        if caps.is_empty() {
            return Err(SensorError::InvalidConfig {
                name: "ladder",
                reason: "must have at least one element".into(),
            });
        }
        if caps.iter().any(|&c| c <= Capacitance::ZERO) {
            return Err(SensorError::InvalidConfig {
                name: "ladder",
                reason: "capacitances must be positive".into(),
            });
        }
        if caps.windows(2).any(|w| w[1] <= w[0]) {
            return Err(SensorError::InvalidConfig {
                name: "ladder",
                reason: "capacitances must be strictly increasing".into(),
            });
        }
        Ok(CapacitorLadder { caps })
    }

    /// The idealised uniform ladder: `c0, c0+step, …` for `n` elements.
    ///
    /// # Errors
    ///
    /// Propagates [`CapacitorLadder::from_caps`] validation.
    pub fn linear(
        c0: Capacitance,
        step: Capacitance,
        n: usize,
    ) -> Result<CapacitorLadder, SensorError> {
        CapacitorLadder::from_caps((0..n).map(|i| c0 + step * i as f64).collect())
    }

    /// The 7-element ladder calibrated against the paper's Fig. 5
    /// (delay code 011 characteristics): thresholds at 0.827 / 0.896 /
    /// 0.929 / 0.961 / 0.992 / 1.021 / 1.053 V. Nearly linear with a
    /// slightly larger first step, as the published boundaries imply.
    pub fn paper_fig5() -> CapacitorLadder {
        CapacitorLadder {
            caps: [1.7504, 1.9129, 1.9861, 2.0541, 2.1179, 2.1756, 2.2373]
                .into_iter()
                .map(Capacitance::from_pf)
                .collect(),
        }
    }

    /// The capacitances, ascending.
    pub fn caps(&self) -> &[Capacitance] {
        &self.caps
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.caps.len()
    }

    /// `true` when empty (never, post-construction).
    pub fn is_empty(&self) -> bool {
        self.caps.is_empty()
    }
}

/// A decoded voltage interval for a thermometer code: the rail lies
/// between `lower` and `upper` (either side open-ended at the dynamic
/// range boundaries).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CodeInterval {
    /// Greatest threshold at or below the rail (absent at underflow).
    pub lower: Option<Voltage>,
    /// Smallest threshold above the rail (absent at overflow).
    pub upper: Option<Voltage>,
}

impl CodeInterval {
    /// The interval midpoint, when both bounds exist.
    pub fn midpoint(&self) -> Option<Voltage> {
        match (self.lower, self.upper) {
            (Some(a), Some(b)) => Some(a.lerp(b, 0.5)),
            _ => None,
        }
    }

    /// `true` when `v` is inside the (half-open) interval.
    pub fn contains(&self, v: Voltage) -> bool {
        self.lower.is_none_or(|lo| v >= lo) && self.upper.is_none_or(|hi| v < hi)
    }
}

/// Bounded memo for the per-element threshold search: the array's
/// thresholds are a pure function of `(skew, pvt)` (and the elements,
/// which are immutable post-construction), and virtually every caller —
/// `decode`, [`crate::system::SensorSystem`], the scan campaign, the
/// equivalent-time sampler — re-asks at a handful of operating points
/// many times. Each miss costs seven bisection searches (~18 `powf`
/// evaluations apiece), so the memo removes the dominant cost of repeat
/// decodes. A small move-to-front map (rather than the original
/// single-entry memo) keeps alternating-corner sweeps — e.g.
/// `calibration::trim_for_corner` bouncing between the reference and
/// corner PVT points — from thrashing the cache.
///
/// A `Mutex` (not a `RefCell`) keeps the array `Sync`: Monte-Carlo yield
/// closures capture `&ThermometerArray` across engine worker threads.
/// Key-based lookup makes invalidation automatic — a new skew or PVT
/// point simply misses and evicts the coldest entry — and perturbed
/// copies built through [`ThermometerArray::from_elements`] start with
/// a fresh (empty) memo. Hit/miss totals are tallied here and surfaced
/// through [`ThermometerArray::memo_stats`] so ctx-threaded callers can
/// fold them into a `MetricsRegistry`.
#[derive(Debug, Default)]
struct ThresholdMemo {
    state: Mutex<MemoState>,
}

/// Entries plus the hit/miss tally, guarded by one lock.
#[derive(Debug, Default)]
struct MemoState {
    entries: Vec<(Time, Pvt, Vec<Voltage>)>,
    hits: u64,
    misses: u64,
}

/// Distinct `(skew, pvt)` operating points retained per array. Sized
/// for the workloads in-tree: a trim sweep touches a reference plus a
/// few corners, a characterisation sweep one PVT point per code.
const THRESHOLD_MEMO_CAPACITY: usize = 8;

impl ThresholdMemo {
    fn get(&self, skew: Time, pvt: &Pvt) -> Option<Vec<Voltage>> {
        let mut state = self.state.lock().expect("threshold memo poisoned");
        match state
            .entries
            .iter()
            .position(|(s, p, _)| *s == skew && p == pvt)
        {
            Some(ix) => {
                state.hits += 1;
                // Move-to-front: the hottest operating points survive
                // eviction.
                let entry = state.entries.remove(ix);
                let thresholds = entry.2.clone();
                state.entries.insert(0, entry);
                Some(thresholds)
            }
            None => {
                state.misses += 1;
                None
            }
        }
    }

    fn put(&self, skew: Time, pvt: &Pvt, thresholds: &[Voltage]) {
        let mut state = self.state.lock().expect("threshold memo poisoned");
        if state.entries.iter().any(|(s, p, _)| *s == skew && p == pvt) {
            return;
        }
        if state.entries.len() >= THRESHOLD_MEMO_CAPACITY {
            state.entries.pop();
        }
        state.entries.insert(0, (skew, *pvt, thresholds.to_vec()));
    }

    fn stats(&self) -> (u64, u64) {
        let state = self.state.lock().expect("threshold memo poisoned");
        (state.hits, state.misses)
    }
}

/// A multi-bit sensor array: identical elements, rising loads.
#[derive(Debug, Serialize, Deserialize)]
pub struct ThermometerArray {
    elements: Vec<SenseElement>,
    mode: RailMode,
    #[serde(skip, default)]
    memo: ThresholdMemo,
}

impl Clone for ThermometerArray {
    fn clone(&self) -> ThermometerArray {
        ThermometerArray {
            elements: self.elements.clone(),
            mode: self.mode,
            memo: ThresholdMemo::default(),
        }
    }
}

impl PartialEq for ThermometerArray {
    fn eq(&self, other: &ThermometerArray) -> bool {
        // The memo is derived state; identity is elements + mode.
        self.elements == other.elements && self.mode == other.mode
    }
}

impl ThermometerArray {
    /// Builds an array of paper-calibrated elements over a ladder.
    pub fn new(ladder: &CapacitorLadder, mode: RailMode) -> ThermometerArray {
        ThermometerArray {
            elements: ladder
                .caps()
                .iter()
                .map(|&c| SenseElement::paper(c, mode))
                .collect(),
            mode,
            memo: ThresholdMemo::default(),
        }
    }

    /// The paper's 7-bit array ([`CapacitorLadder::paper_fig5`]).
    pub fn paper(mode: RailMode) -> ThermometerArray {
        ThermometerArray::new(&CapacitorLadder::paper_fig5(), mode)
    }

    /// Builds an array from explicit elements (e.g. mismatched copies
    /// from [`crate::mismatch`]). The caller is responsible for the
    /// intended load ordering — a mismatched array may legitimately have
    /// inverted thresholds, which is exactly what the yield analysis
    /// quantifies.
    ///
    /// # Panics
    ///
    /// Panics if `elements` is empty or an element's rail mode differs
    /// from `mode`.
    pub fn from_elements(elements: Vec<SenseElement>, mode: RailMode) -> ThermometerArray {
        assert!(!elements.is_empty(), "array needs at least one element");
        assert!(
            elements.iter().all(|e| e.mode() == mode),
            "all elements must observe the same rail"
        );
        ThermometerArray {
            elements,
            mode,
            memo: ThresholdMemo::default(),
        }
    }

    /// Number of output bits.
    pub fn bits(&self) -> usize {
        self.elements.len()
    }

    /// The rail this array observes.
    pub fn mode(&self) -> RailMode {
        self.mode
    }

    /// The elements, in ascending-load order.
    pub fn elements(&self) -> &[SenseElement] {
        &self.elements
    }

    /// Performs one measurement; the code prints most-loaded element
    /// first, matching the paper's `0011111` notation.
    pub fn measure(&self, rail: Voltage, skew: Time, pvt: &Pvt) -> ThermometerCode {
        self.measure_detailed(rail, skew, pvt).0
    }

    /// Like [`ThermometerArray::measure`] but also returning each
    /// element's reading (ascending-load order).
    pub fn measure_detailed(
        &self,
        rail: Voltage,
        skew: Time,
        pvt: &Pvt,
    ) -> (ThermometerCode, Vec<ElementReading>) {
        let readings: Vec<ElementReading> = self
            .elements
            .iter()
            .map(|e| e.measure(rail, skew, pvt))
            .collect();
        (ThermometerArray::pack(&readings), readings)
    }

    /// Stochastic variant: metastable boundary elements resolve randomly,
    /// occasionally producing bubble codes.
    pub fn measure_with_rng<R: Rng + ?Sized>(
        &self,
        rail: Voltage,
        skew: Time,
        pvt: &Pvt,
        rng: &mut R,
    ) -> ThermometerCode {
        let readings: Vec<ElementReading> = self
            .elements
            .iter()
            .map(|e| e.measure_with_rng(rail, skew, pvt, rng))
            .collect();
        ThermometerArray::pack(&readings)
    }

    fn pack(readings: &[ElementReading]) -> ThermometerCode {
        // Most-loaded first: reverse of the ascending element order.
        let bits: LogicVector = readings
            .iter()
            .rev()
            .map(|r| psnt_cells::logic::Logic::from(r.passed))
            .collect();
        ThermometerCode::new(bits)
    }

    /// Oversampled measurement: the mean *level* across `n` stochastic
    /// measures. Near a threshold, metastability dithers the boundary
    /// element, so the mean carries sub-LSB information about the rail —
    /// the stochastic-flash-ADC effect behind the paper's advice that
    /// "measures should be iterated".
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn oversampled_level<R: Rng + ?Sized>(
        &self,
        rail: Voltage,
        skew: Time,
        pvt: &Pvt,
        n: usize,
        rng: &mut R,
    ) -> f64 {
        assert!(n > 0, "need at least one measure");
        let total: usize = (0..n)
            .map(|_| {
                self.measure_with_rng(rail, skew, pvt, rng)
                    .correct_bubbles()
                    .level()
            })
            .sum();
        total as f64 / n as f64
    }

    /// The analytic expectation of the (stochastic) level at a rail
    /// value: the sum of each element's capture probability given its DS
    /// arrival. This is the smooth transfer curve that oversampling
    /// samples — strictly monotone in the rail across the dynamic range,
    /// which is what makes sub-LSB inversion possible.
    pub fn expected_level(&self, rail: Voltage, skew: Time, pvt: &Pvt) -> f64 {
        self.elements()
            .iter()
            .map(|e| {
                let arrival = e.ds_delay(rail, pvt) - skew;
                let p_new = e.flip_flop().capture_probability(arrival);
                match self.mode {
                    // Capturing the SENSE transition is a pass for both
                    // modes; only the rail→arrival mapping differs (and
                    // ds_delay already encodes it).
                    RailMode::Supply | RailMode::Ground => p_new,
                }
            })
            .sum()
    }

    /// Inverts an oversampled mean level into a sub-LSB voltage estimate
    /// by bisecting the analytic [`ThermometerArray::expected_level`]
    /// curve. With the paper's array the metastability windows of
    /// adjacent elements overlap (±8 ps ≈ 70 mV vs ~30 mV element
    /// spacing), so several elements dither simultaneously; the expected-
    /// level curve accounts for all of them at once. Returns `None` when
    /// the mean sits at a saturated end (nothing to interpolate).
    ///
    /// # Errors
    ///
    /// Propagates threshold-search failures (used for the bisection
    /// bracket).
    pub fn decode_oversampled(
        &self,
        mean_level: f64,
        skew: Time,
        pvt: &Pvt,
    ) -> Result<Option<Voltage>, SensorError> {
        let bits = self.bits() as f64;
        if mean_level <= 0.0 || mean_level >= bits {
            return Ok(None);
        }
        let (range_lo, range_hi) = self.dynamic_range(skew, pvt)?;
        let margin = Voltage::from_mv(150.0);
        // Bisect along the direction of increasing level: HIGH-SENSE
        // level rises with the rail, LOW-SENSE with a *shrinking* bounce.
        let (mut lo, mut hi) = match self.mode {
            RailMode::Supply => (range_lo - margin, range_hi + margin),
            RailMode::Ground => (range_hi + margin, range_lo - margin),
        };
        for _ in 0..60 {
            let mid = lo.lerp(hi, 0.5);
            if self.expected_level(mid, skew, pvt) < mean_level {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(Some(lo.lerp(hi, 0.5)))
    }

    /// Per-element failure thresholds, ascending-load order. For
    /// HIGH-SENSE these rise with load; for LOW-SENSE (ground) they fall.
    ///
    /// The last `(skew, pvt)` result is memoised, so repeated decodes at
    /// one operating point — the common case for a system run or scan
    /// campaign — skip the per-element searches entirely. Misses solve
    /// every element at once through the 64-lane lockstep kernel
    /// ([`crate::lanes::solve`], one lane per element) — bit-identical
    /// to the per-element [`SenseElement::threshold`] calls, which share
    /// the same float program.
    ///
    /// # Errors
    ///
    /// Propagates [`SenseElement::threshold`] failures.
    pub fn thresholds(&self, skew: Time, pvt: &Pvt) -> Result<Vec<Voltage>, SensorError> {
        if let Some(hit) = self.memo.get(skew, pvt) {
            return Ok(hit);
        }
        let th = self.solve_thresholds(skew, pvt)?;
        self.memo.put(skew, pvt, &th);
        Ok(th)
    }

    /// The memo-miss path: all elements through the lanes kernel, 64 per
    /// solve call, lowest failing element reported exactly like the
    /// serial per-element sweep.
    fn solve_thresholds(&self, skew: Time, pvt: &Pvt) -> Result<Vec<Voltage>, SensorError> {
        use crate::lanes::{self, LaneTasks, LANES};
        let df = pvt.drive_factor();
        let mut th = Vec::with_capacity(self.elements.len());
        for chunk in self.elements.chunks(LANES) {
            let mut tasks = LaneTasks {
                n: chunk.len(),
                ..LaneTasks::default()
            };
            for (l, e) in chunk.iter().enumerate() {
                let (ac_ps, t_int_ps, vth_eff_v, alpha, window_ps) = e.lane_task(skew, pvt);
                tasks.ac_ps[l] = ac_ps;
                tasks.t_int_ps[l] = t_int_ps;
                tasks.vth_eff_v[l] = vth_eff_v;
                tasks.alpha[l] = alpha;
                tasks.window_ps[l] = window_ps;
            }
            let mut out = [0.0f64; LANES];
            let mask = if chunk.len() == LANES {
                u64::MAX
            } else {
                (1u64 << chunk.len()) - 1
            };
            let bad = lanes::solve(&tasks, df, &mut out) & mask;
            if bad != 0 {
                let l = bad.trailing_zeros() as usize;
                return Err(SensorError::ThresholdOutOfRange {
                    lo: lanes::lo_bound_v(tasks.vth_eff_v[l]),
                    hi: lanes::hi_bound_v(),
                });
            }
            th.extend(
                chunk
                    .iter()
                    .zip(&out)
                    .map(|(e, &v)| e.rail_from_effective(Voltage::from_v(v), pvt)),
            );
        }
        Ok(th)
    }

    /// [`ThermometerArray::thresholds`] threaded through a [`RunCtx`]:
    /// memo misses run all elements through one 64-lane lockstep solve
    /// (bit-identical to the serial per-element sweep), and the call's
    /// memo hit/miss deltas are folded into the observer's metrics as
    /// the `thermometer.memo_hits` / `thermometer.memo_misses` counters.
    ///
    /// # Errors
    ///
    /// Propagates [`SenseElement::threshold`] failures.
    pub fn thresholds_ctx(
        &self,
        ctx: &mut RunCtx<'_>,
        skew: Time,
        pvt: &Pvt,
    ) -> Result<Vec<Voltage>, SensorError> {
        let (hits_before, misses_before) = self.memo.stats();
        let th = match self.memo.get(skew, pvt) {
            Some(hit) => hit,
            None => {
                let th = self.solve_thresholds(skew, pvt)?;
                self.memo.put(skew, pvt, &th);
                th
            }
        };
        if let Some(obs) = ctx.observer() {
            let (hits, misses) = self.memo.stats();
            obs.metrics
                .counter_add("thermometer.memo_hits", hits - hits_before);
            obs.metrics
                .counter_add("thermometer.memo_misses", misses - misses_before);
        }
        Ok(th)
    }

    /// Lifetime hit/miss totals of the threshold memo, as
    /// `(hits, misses)`. Derived state only: clones and deserialised
    /// arrays restart at zero.
    pub fn memo_stats(&self) -> (u64, u64) {
        self.memo.stats()
    }

    /// The measurable span `(min, max)` of rail values: outside it the
    /// code saturates at all-0 / all-1.
    ///
    /// # Errors
    ///
    /// Propagates threshold-search failures.
    pub fn dynamic_range(&self, skew: Time, pvt: &Pvt) -> Result<(Voltage, Voltage), SensorError> {
        let th = self.thresholds(skew, pvt)?;
        let lo = th
            .iter()
            .copied()
            .fold(Voltage::from_v(f64::INFINITY), Voltage::min);
        let hi = th
            .iter()
            .copied()
            .fold(Voltage::from_v(f64::NEG_INFINITY), Voltage::max);
        Ok((lo, hi))
    }

    /// Decodes a measured code into the rail-voltage interval it implies
    /// (the inverse of the array characteristic). Bubbles are corrected
    /// first.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidConfig`] when the code width does not
    /// match the array, and propagates threshold-search failures.
    pub fn decode(
        &self,
        code: &ThermometerCode,
        skew: Time,
        pvt: &Pvt,
    ) -> Result<CodeInterval, SensorError> {
        if code.width() != self.bits() {
            return Err(SensorError::InvalidConfig {
                name: "code",
                reason: format!(
                    "code width {} does not match array width {}",
                    code.width(),
                    self.bits()
                ),
            });
        }
        let mut asc = self.thresholds(skew, pvt)?;
        asc.sort_by(Voltage::total_cmp);
        let n = self.bits();
        let f = code.correct_bubbles().fail_count();
        Ok(match self.mode {
            RailMode::Supply => CodeInterval {
                // f elements fail ⇒ the rail sits between the (n−f)-th and
                // (n−f+1)-th ascending thresholds.
                lower: (f < n).then(|| asc[n - f - 1]),
                upper: (f > 0).then(|| asc[n - f]),
            },
            RailMode::Ground => CodeInterval {
                // Ground bounce fails *above* thresholds: f fails ⇒ the
                // bounce exceeds the f smallest thresholds.
                lower: (f > 0).then(|| asc[f - 1]),
                upper: (f < n).then(|| asc[f]),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pvt() -> Pvt {
        Pvt::typical()
    }

    /// Delay code 011: 84 ps insertion + 65 ps tap.
    fn skew011() -> Time {
        Time::from_ps(149.0)
    }

    /// Delay code 010: 84 ps insertion + 50 ps tap.
    fn skew010() -> Time {
        Time::from_ps(134.0)
    }

    fn array() -> ThermometerArray {
        ThermometerArray::paper(RailMode::Supply)
    }

    #[test]
    fn ladder_validation() {
        let pf = Capacitance::from_pf;
        assert!(CapacitorLadder::from_caps(vec![]).is_err());
        assert!(CapacitorLadder::from_caps(vec![pf(1.0), pf(1.0)]).is_err());
        assert!(CapacitorLadder::from_caps(vec![pf(2.0), pf(1.0)]).is_err());
        assert!(CapacitorLadder::from_caps(vec![pf(0.0), pf(1.0)]).is_err());
        let lin = CapacitorLadder::linear(pf(1.75), Capacitance::from_ff(81.0), 7).unwrap();
        assert_eq!(lin.len(), 7);
        assert!((lin.caps()[6].picofarads() - 2.236).abs() < 1e-9);
    }

    #[test]
    fn paper_ladder_reproduces_fig5_thresholds() {
        // Paper Fig. 5 / §III-B, delay code 011: thresholds at
        // 0.827, 0.896, 0.929, (0.961), 0.992, 1.021, 1.053 V.
        let th = array().thresholds(skew011(), &pvt()).unwrap();
        let expected = [0.827, 0.896, 0.929, 0.961, 0.992, 1.021, 1.053];
        for (i, (&t, &e)) in th.iter().zip(&expected).enumerate() {
            assert!(
                (t.volts() - e).abs() < 0.003,
                "element {i}: threshold {t} vs paper {e} V"
            );
        }
    }

    #[test]
    fn fig5_dynamic_range_code_011() {
        // "the threshold range goes from 0.827 V (all errors) to 1.053 V
        // (no errors)".
        let (lo, hi) = array().dynamic_range(skew011(), &pvt()).unwrap();
        assert!((lo.volts() - 0.827).abs() < 0.003, "low end {lo}");
        assert!((hi.volts() - 1.053).abs() < 0.003, "high end {hi}");
    }

    #[test]
    fn fig5_dynamic_range_code_010_shifts_up() {
        // "In case the delay code is 010, the dynamic ranges from 0.951 V
        // to 1.237 V (also overvoltages can be measured)".
        let (lo, hi) = array().dynamic_range(skew010(), &pvt()).unwrap();
        assert!((lo.volts() - 0.951).abs() < 0.004, "low end {lo}");
        // Our alpha-power model puts the top at ≈1.25 V vs the paper's
        // 1.237 V (1.4 % — see DESIGN.md §2); assert the shape.
        assert!((hi.volts() - 1.237).abs() < 0.025, "high end {hi}");
        let (lo011, hi011) = array().dynamic_range(skew011(), &pvt()).unwrap();
        assert!(lo > lo011 && hi > hi011, "010 range must sit above 011");
    }

    #[test]
    fn fig9_measurement_codes() {
        // Paper Fig. 9, delay code 011: VDD-n = 1.0 V ⇒ 0011111,
        // VDD-n = 0.9 V ⇒ 0000011.
        let a = array();
        let first = a.measure(Voltage::from_v(1.0), skew011(), &pvt());
        assert_eq!(first.to_string(), "0011111");
        let second = a.measure(Voltage::from_v(0.9), skew011(), &pvt());
        assert_eq!(second.to_string(), "0000011");
    }

    #[test]
    fn saturation_codes() {
        let a = array();
        let under = a.measure(Voltage::from_v(0.70), skew011(), &pvt());
        assert!(under.is_underflow());
        let over = a.measure(Voltage::from_v(1.20), skew011(), &pvt());
        assert!(over.is_overflow());
    }

    #[test]
    fn codes_are_canonical_and_monotone_in_voltage() {
        let a = array();
        let mut prev_level = 0;
        for mv in (700..=1200).step_by(5) {
            let code = a.measure(Voltage::from_mv(mv as f64), skew011(), &pvt());
            assert!(code.is_canonical(), "bubble at {mv} mV: {code}");
            assert!(
                code.level() >= prev_level,
                "level dropped at {mv} mV: {code}"
            );
            prev_level = code.level();
        }
        assert_eq!(prev_level, 7);
    }

    #[test]
    fn decode_inverts_measure() {
        // Paper: "0011111 corresponds to a VDD-n in the range
        // 0.992 V–1.021 V, while 0000011 to the range 0.896 V–0.929 V".
        let a = array();
        let code: ThermometerCode = "0011111".parse().unwrap();
        let interval = a.decode(&code, skew011(), &pvt()).unwrap();
        let lo = interval.lower.unwrap().volts();
        let hi = interval.upper.unwrap().volts();
        assert!((lo - 0.992).abs() < 0.003, "lower {lo}");
        assert!((hi - 1.021).abs() < 0.003, "upper {hi}");

        let code2: ThermometerCode = "0000011".parse().unwrap();
        let interval2 = a.decode(&code2, skew011(), &pvt()).unwrap();
        assert!((interval2.lower.unwrap().volts() - 0.896).abs() < 0.003);
        assert!((interval2.upper.unwrap().volts() - 0.929).abs() < 0.003);
    }

    #[test]
    fn decode_saturated_codes_open_ended() {
        let a = array();
        let over: ThermometerCode = "1111111".parse().unwrap();
        let i = a.decode(&over, skew011(), &pvt()).unwrap();
        assert!(i.lower.is_some() && i.upper.is_none());
        let under: ThermometerCode = "0000000".parse().unwrap();
        let i = a.decode(&under, skew011(), &pvt()).unwrap();
        assert!(i.lower.is_none() && i.upper.is_some());
    }

    #[test]
    fn decode_rejects_wrong_width() {
        let a = array();
        let code: ThermometerCode = "011".parse().unwrap();
        assert!(a.decode(&code, skew011(), &pvt()).is_err());
    }

    #[test]
    fn interval_contains_true_voltage() {
        let a = array();
        for mv in (840..=1040).step_by(7) {
            let v = Voltage::from_mv(mv as f64);
            let code = a.measure(v, skew011(), &pvt());
            let interval = a.decode(&code, skew011(), &pvt()).unwrap();
            assert!(
                interval.contains(v),
                "decoded interval missed {v} for code {code}"
            );
        }
    }

    #[test]
    fn ground_array_mirrors() {
        let a = ThermometerArray::paper(RailMode::Ground);
        // Quiet ground: the LS inverters see the full nominal swing, so
        // the code equals the HS code at nominal VDD — the two most-loaded
        // elements sit above 1.0 V and fail even with no bounce.
        let quiet = a.measure(Voltage::ZERO, skew011(), &pvt());
        assert_eq!(quiet.to_string(), "0011111");
        // Monotone: more bounce, more failures.
        let mut prev = quiet.fail_count();
        for mv in (0..=300).step_by(5) {
            let code = a.measure(Voltage::from_mv(mv as f64), skew011(), &pvt());
            assert!(code.is_canonical(), "bubble at {mv} mV bounce");
            let fails = code.fail_count();
            assert!(fails >= prev, "failures dropped at {mv} mV");
            prev = fails;
        }
        assert_eq!(prev, 7);
        // Ground thresholds fall with load (most-loaded trips first).
        let th = a.thresholds(skew011(), &pvt()).unwrap();
        for w in th.windows(2) {
            assert!(w[1] < w[0]);
        }
    }

    #[test]
    fn ground_decode_contains_true_bounce() {
        let a = ThermometerArray::paper(RailMode::Ground);
        for mv in (10..=160).step_by(7) {
            let g = Voltage::from_mv(mv as f64);
            let code = a.measure(g, skew011(), &pvt());
            let interval = a.decode(&code, skew011(), &pvt()).unwrap();
            assert!(interval.contains(g), "missed bounce {g} for {code}");
        }
    }

    #[test]
    fn stochastic_measurement_can_bubble_but_corrects() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let a = array();
        let mut rng = StdRng::seed_from_u64(11);
        // Sit exactly on a threshold: the boundary element resolves
        // randomly (and its immediate neighbours, ~3.5 ps away, are also
        // inside the 8 ps metastability window and may flip).
        let th = a.thresholds(skew011(), &pvt()).unwrap();
        let mut saw_both = (false, false);
        for _ in 0..64 {
            let code = a.measure_with_rng(th[3], skew011(), &pvt(), &mut rng);
            let fixed = code.correct_bubbles();
            assert!(fixed.is_canonical());
            let fails = fixed.fail_count();
            assert!(
                (1..=6).contains(&fails),
                "implausible fail count {fails} at a threshold"
            );
            match fails {
                3 => saw_both.0 = true,
                4 => saw_both.1 = true,
                _ => {}
            }
        }
        assert!(saw_both.0 && saw_both.1, "boundary element never flipped");
    }

    #[test]
    fn lane_solved_thresholds_match_per_element_search() {
        // The memo-miss path packs all elements into one 64-lane solve;
        // it must replay the standalone per-element search bit for bit.
        let a = array();
        let th = a.thresholds(skew011(), &pvt()).unwrap();
        for (e, t) in a.elements().iter().zip(&th) {
            let alone = e.threshold(skew011(), &pvt()).unwrap();
            assert_eq!(t.volts().to_bits(), alone.volts().to_bits());
        }
    }

    #[test]
    fn threshold_memo_is_transparent() {
        // Memo hit, key-based invalidation and clone-freshness all
        // produce exactly the values a cold array computes.
        let warm = array();
        let s11 = warm.thresholds(skew011(), &pvt()).unwrap();
        assert_eq!(warm.thresholds(skew011(), &pvt()).unwrap(), s11);
        // Changing the skew misses the memo and recomputes.
        let s10 = warm.thresholds(skew010(), &pvt()).unwrap();
        assert_eq!(s10, array().thresholds(skew010(), &pvt()).unwrap());
        assert_ne!(s10, s11);
        // A changed PVT point also misses.
        let hot = Pvt::new(
            psnt_cells::process::ProcessCorner::TT,
            Voltage::from_v(1.0),
            psnt_cells::units::Temperature::from_celsius(85.0),
        );
        let s_hot = warm.thresholds(skew011(), &hot).unwrap();
        assert_eq!(s_hot, array().thresholds(skew011(), &hot).unwrap());
        assert_ne!(s_hot, s11);
        // Clones start cold but agree.
        let cloned = warm.clone();
        assert_eq!(cloned.thresholds(skew011(), &pvt()).unwrap(), s11);
        assert_eq!(cloned, warm);
    }

    #[test]
    fn threshold_memo_keeps_alternating_corners_resident() {
        let warm = array();
        let hot = Pvt::new(
            psnt_cells::process::ProcessCorner::TT,
            Voltage::from_v(1.0),
            psnt_cells::units::Temperature::from_celsius(85.0),
        );
        assert_eq!(warm.memo_stats(), (0, 0));
        // Alternating between two operating points thrashed the old
        // single-entry memo; the bounded map keeps both resident, so
        // only the first visit of each point misses.
        for _ in 0..3 {
            warm.thresholds(skew011(), &pvt()).unwrap();
            warm.thresholds(skew011(), &hot).unwrap();
        }
        let (hits, misses) = warm.memo_stats();
        assert_eq!(misses, 2, "only the first visit of each point may miss");
        assert_eq!(hits, 4);

        // The ctx-threaded path returns the same values and folds the
        // call's hit/miss deltas into the observer's metrics.
        let mut obs = psnt_obs::Observer::ring(8);
        let mut ctx = RunCtx::serial().with_observer(&mut obs);
        let via_ctx = warm.thresholds_ctx(&mut ctx, skew011(), &pvt()).unwrap();
        drop(ctx);
        assert_eq!(via_ctx, warm.thresholds(skew011(), &pvt()).unwrap());
        assert_eq!(obs.metrics.counter_value("thermometer.memo_hits"), 1);
        assert_eq!(obs.metrics.counter_value("thermometer.memo_misses"), 0);

        // Clone-cold semantics extend to the tally.
        assert_eq!(warm.clone().memo_stats(), (0, 0));
    }

    #[test]
    fn interval_midpoint() {
        let i = CodeInterval {
            lower: Some(Voltage::from_v(0.9)),
            upper: Some(Voltage::from_v(1.0)),
        };
        assert!((i.midpoint().unwrap().volts() - 0.95).abs() < 1e-12);
        let open = CodeInterval {
            lower: None,
            upper: Some(Voltage::from_v(1.0)),
        };
        assert!(open.midpoint().is_none());
    }

    #[test]
    fn oversampling_resolves_below_one_lsb() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let a = array();
        let th = a.thresholds(skew011(), &pvt()).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        // Probe points straddling threshold T4 at sub-LSB offsets (the
        // LSB here is ~30 mV; the metastability window covers ≈ ±70 mV
        // around each threshold).
        for offset_mv in [-20.0, -8.0, 0.0, 8.0, 20.0] {
            let v = th[3] + Voltage::from_mv(offset_mv);
            let mean = a.oversampled_level(v, skew011(), &pvt(), 3000, &mut rng);
            let est = a
                .decode_oversampled(mean, skew011(), &pvt())
                .unwrap()
                .expect("in range");
            let err = (est - v).abs();
            assert!(
                err < Voltage::from_mv(6.0),
                "offset {offset_mv} mV: estimated {est} vs true {v} (err {err})"
            );
        }
    }

    #[test]
    fn oversampled_decode_saturation_returns_none() {
        let a = array();
        assert_eq!(a.decode_oversampled(0.0, skew011(), &pvt()).unwrap(), None);
        assert_eq!(a.decode_oversampled(7.0, skew011(), &pvt()).unwrap(), None);
        assert!(a
            .decode_oversampled(3.5, skew011(), &pvt())
            .unwrap()
            .is_some());
    }

    #[test]
    #[should_panic(expected = "at least one measure")]
    fn oversampled_level_rejects_zero_samples() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        let _ = array().oversampled_level(Voltage::from_v(1.0), skew011(), &pvt(), 0, &mut rng);
    }

    proptest! {
        #[test]
        fn measured_code_always_canonical(mv in 600.0..1300.0f64) {
            let code = array().measure(Voltage::from_mv(mv), skew011(), &pvt());
            prop_assert!(code.is_canonical());
        }

        #[test]
        fn level_monotone_in_voltage(a in 600.0..1300.0f64, b in 600.0..1300.0f64) {
            prop_assume!(a < b);
            let arr = array();
            let la = arr.measure(Voltage::from_mv(a), skew011(), &pvt()).level();
            let lb = arr.measure(Voltage::from_mv(b), skew011(), &pvt()).level();
            prop_assert!(la <= lb);
        }

        #[test]
        fn decode_roundtrip_contains_voltage(mv in 830.0..1050.0f64) {
            let arr = array();
            let v = Voltage::from_mv(mv);
            let code = arr.measure(v, skew011(), &pvt());
            let interval = arr.decode(&code, skew011(), &pvt()).unwrap();
            prop_assert!(interval.contains(v));
        }
    }
}
