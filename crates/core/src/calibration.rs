//! Characterisation and trimming — the data behind Figs. 4 and 5.
//!
//! The paper characterises the sensor twice:
//!
//! * **element sensitivity** (Fig. 4) — the failure-threshold voltage as
//!   a function of the load capacitance, "linear within the VDD-n range
//!   of interest";
//! * **array characteristic** (Fig. 5) — the per-element thresholds and
//!   overall dynamic range for each delay code, which is also the handle
//!   for *process-variation-aware* operation: a corner shifts the
//!   characteristic, and re-trimming the delay code moves it back.
//!
//! [`trim_for_corner`] implements a documented trim policy (the paper
//! leaves its own "not reported for sake of brevity"): pick the delay
//! code whose dynamic-range midpoint at the corner is closest to the
//! reference (TT) midpoint.
//!
//! # Examples
//!
//! ```
//! use psnt_cells::process::Pvt;
//! use psnt_core::calibration::array_characteristic;
//! use psnt_core::element::RailMode;
//! use psnt_core::pulsegen::{DelayCode, PulseGenerator};
//! use psnt_core::thermometer::ThermometerArray;
//! use psnt_ctx::RunCtx;
//!
//! let array = ThermometerArray::paper(RailMode::Supply);
//! let pg = PulseGenerator::paper_table();
//! let mut ctx = RunCtx::serial();
//! let ch = array_characteristic(&mut ctx, &array, &pg, DelayCode::new(3)?, &Pvt::typical())?;
//! assert_eq!(ch.thresholds.len(), 7);
//! # Ok::<(), psnt_core::error::SensorError>(())
//! ```

use psnt_cells::process::Pvt;
use psnt_cells::units::{Capacitance, Time, Voltage};
use psnt_ctx::RunCtx;
use psnt_engine::Engine;
use serde::{Deserialize, Serialize};

use crate::element::{RailMode, SenseElement};
use crate::error::SensorError;
use crate::pulsegen::{DelayCode, PulseGenerator};
use crate::thermometer::ThermometerArray;

/// One point of the Fig. 4 sensitivity curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensitivityPoint {
    /// The added load capacitance at `DS`.
    pub load: Capacitance,
    /// The rail threshold below (HIGH-SENSE) or above (LOW-SENSE) which
    /// the element fails.
    pub threshold: Voltage,
}

/// Sweeps the element failure threshold over load capacitances — the
/// Fig. 4 characterisation. `skew` is the P→CP pin skew (PG insertion
/// plus tap).
///
/// # Errors
///
/// Propagates threshold-search failures.
pub fn sensitivity_characteristic(
    mode: RailMode,
    skew: Time,
    pvt: &Pvt,
    loads: impl IntoIterator<Item = Capacitance>,
) -> Result<Vec<SensitivityPoint>, SensorError> {
    loads
        .into_iter()
        .map(|load| {
            let elem = SenseElement::paper(load, mode);
            Ok(SensitivityPoint {
                load,
                threshold: elem.threshold(skew, pvt)?,
            })
        })
        .collect()
}

/// Linear-regression fit of a sensitivity curve: returns
/// `(slope V/pF, intercept V, max |residual| V)` — quantifying the
/// paper's "linear behaviour within the range of interest".
///
/// # Panics
///
/// Panics when fewer than two points are supplied.
pub fn linear_fit(points: &[SensitivityPoint]) -> (f64, f64, f64) {
    assert!(points.len() >= 2, "need at least two points to fit");
    let n = points.len() as f64;
    let xs: Vec<f64> = points.iter().map(|p| p.load.picofarads()).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.threshold.volts()).collect();
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let intercept = (sy - slope * sx) / n;
    let max_residual = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| (y - (slope * x + intercept)).abs())
        .fold(0.0, f64::max);
    (slope, intercept, max_residual)
}

/// The Fig. 5 characterisation of one delay code.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayCharacteristic {
    /// The delay code characterised.
    pub code: DelayCode,
    /// The P→CP skew it produces at this operating point.
    pub skew: Time,
    /// Per-element thresholds, ascending-load order.
    pub thresholds: Vec<Voltage>,
    /// The measurable range `(all-errors boundary, no-errors boundary)`.
    pub range: (Voltage, Voltage),
}

impl ArrayCharacteristic {
    /// The midpoint of the dynamic range.
    pub fn midpoint(&self) -> Voltage {
        self.range.0.lerp(self.range.1, 0.5)
    }
}

/// Characterises an array for one delay code at an operating point.
///
/// The per-element threshold searches run as one 64-lane lockstep solve
/// (one lane per element, see `psnt_core::lanes`) — bit-identical to a
/// serial per-element sweep at any worker count. Results are served
/// from the array's threshold memo on repeat visits, and the memo's
/// hit/miss deltas land in the context observer's metrics.
///
/// # Errors
///
/// Propagates threshold-search failures (lowest-indexed element wins
/// when several fail).
pub fn array_characteristic(
    ctx: &mut RunCtx<'_>,
    array: &ThermometerArray,
    pg: &PulseGenerator,
    code: DelayCode,
    pvt: &Pvt,
) -> Result<ArrayCharacteristic, SensorError> {
    let skew = pg.skew(code, pvt);
    let thresholds = array.thresholds_ctx(ctx, skew, pvt)?;
    let lo = thresholds
        .iter()
        .copied()
        .fold(Voltage::from_v(f64::INFINITY), Voltage::min);
    let hi = thresholds
        .iter()
        .copied()
        .fold(Voltage::from_v(f64::NEG_INFINITY), Voltage::max);
    Ok(ArrayCharacteristic {
        code,
        skew,
        thresholds,
        range: (lo, hi),
    })
}

/// [`array_characteristic`] with a bare engine handle.
#[deprecated(since = "0.1.0", note = "use `array_characteristic` with a `RunCtx`")]
pub fn array_characteristic_on(
    engine: &Engine,
    array: &ThermometerArray,
    pg: &PulseGenerator,
    code: DelayCode,
    pvt: &Pvt,
) -> Result<ArrayCharacteristic, SensorError> {
    array_characteristic(&mut RunCtx::new(engine.clone()), array, pg, code, pvt)
}

/// The result of a corner trim.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrimResult {
    /// The delay code chosen for the corner.
    pub code: DelayCode,
    /// Dynamic-range midpoint error against the reference, volts.
    pub residual: Voltage,
    /// The corner's midpoint with the *reference* code, for comparison
    /// (what the error would have been without trimming).
    pub untrimmed_residual: Voltage,
}

/// Chooses the delay code that best restores the reference (typically
/// TT) characteristic at a different operating point: minimal
/// dynamic-range midpoint error. This is the documented stand-in for the
/// paper's unpublished internal delay-code policy.
///
/// The per-delay-code characterisations run on the context's engine
/// (one characterisation per code, scheduled as independent jobs), and
/// each characterisation solves its element thresholds through the
/// 64-lane lockstep kernel. The winning code is selected by a serial
/// fold over the ordered results (first minimum in code order), so the
/// trim is bit-identical at any worker count; a serial context is the
/// `jobs = 1` path of this code.
///
/// # Errors
///
/// Propagates characterisation failures (lowest code wins when several
/// fail).
pub fn trim_for_corner(
    ctx: &mut RunCtx<'_>,
    array: &ThermometerArray,
    pg: &PulseGenerator,
    reference_code: DelayCode,
    reference_pvt: &Pvt,
    corner_pvt: &Pvt,
) -> Result<TrimResult, SensorError> {
    let reference = array_characteristic(ctx, array, pg, reference_code, reference_pvt)?;
    let target = reference.midpoint();

    let codes = DelayCode::all();
    let characteristics = ctx.engine().try_map(codes.len(), |i| {
        array_characteristic(&mut RunCtx::serial(), array, pg, codes[i], corner_pvt)
    })?;

    let mut best: Option<(DelayCode, Voltage)> = None;
    let mut untrimmed = Voltage::ZERO;
    for (code, ch) in codes.iter().zip(&characteristics) {
        let err = (ch.midpoint() - target).abs();
        if *code == reference_code {
            untrimmed = err;
        }
        if best.is_none_or(|(_, e)| err < e) {
            best = Some((*code, err));
        }
    }
    let (code, residual) = best.expect("delay-code table is non-empty");
    Ok(TrimResult {
        code,
        residual,
        untrimmed_residual: untrimmed,
    })
}

/// [`trim_for_corner`] with a bare engine handle.
#[deprecated(since = "0.1.0", note = "use `trim_for_corner` with a `RunCtx`")]
pub fn trim_for_corner_on(
    engine: &Engine,
    array: &ThermometerArray,
    pg: &PulseGenerator,
    reference_code: DelayCode,
    reference_pvt: &Pvt,
    corner_pvt: &Pvt,
) -> Result<TrimResult, SensorError> {
    trim_for_corner(
        &mut RunCtx::new(engine.clone()),
        array,
        pg,
        reference_code,
        reference_pvt,
        corner_pvt,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use psnt_cells::process::ProcessCorner;
    use psnt_cells::units::Temperature;

    fn pvt() -> Pvt {
        Pvt::typical()
    }

    fn pg() -> PulseGenerator {
        PulseGenerator::paper_table()
    }

    fn code011() -> DelayCode {
        DelayCode::new(3).unwrap()
    }

    fn array() -> ThermometerArray {
        ThermometerArray::paper(RailMode::Supply)
    }

    #[test]
    fn fig4_sweep_monotone_and_hits_published_point() {
        let loads: Vec<Capacitance> = (5..=35)
            .map(|i| Capacitance::from_pf(i as f64 * 0.1))
            .collect();
        let skew = pg().skew(code011(), &pvt());
        let points = sensitivity_characteristic(RailMode::Supply, skew, &pvt(), loads).unwrap();
        for w in points.windows(2) {
            assert!(w[1].threshold > w[0].threshold, "Fig. 4 must be monotone");
        }
        // Published point: C = 2 pF → 0.9360 V.
        let at_2pf = points
            .iter()
            .find(|p| (p.load.picofarads() - 2.0).abs() < 1e-9)
            .unwrap();
        assert!((at_2pf.threshold.volts() - 0.936).abs() < 0.004);
    }

    #[test]
    fn fig4_linear_in_range_of_interest() {
        // "the characteristic has a linear behavior within the VDD-n range
        // of interest (0.9 V – 1.1 V)".
        let skew = pg().skew(code011(), &pvt());
        // Loads spanning thresholds 0.91–1.09 V (the in-range portion of
        // the Fig. 4 sweep).
        let loads: Vec<Capacitance> = (0..=20)
            .map(|i| Capacitance::from_pf(1.95 + 0.018 * i as f64))
            .collect();
        let points = sensitivity_characteristic(RailMode::Supply, skew, &pvt(), loads).unwrap();
        assert!(points
            .iter()
            .all(|p| (0.88..=1.12).contains(&p.threshold.volts())));
        let (slope, _, max_residual) = linear_fit(&points);
        assert!(slope > 0.0);
        assert!(
            max_residual < 0.008,
            "deviation from line {max_residual} V too large"
        );
    }

    #[test]
    fn fig5_characteristics_for_three_codes() {
        let a = array();
        let p = pg();
        let mut ctx = RunCtx::serial();
        let ch011 =
            array_characteristic(&mut ctx, &a, &p, DelayCode::new(3).unwrap(), &pvt()).unwrap();
        let ch010 =
            array_characteristic(&mut ctx, &a, &p, DelayCode::new(2).unwrap(), &pvt()).unwrap();
        let ch001 =
            array_characteristic(&mut ctx, &a, &p, DelayCode::new(1).unwrap(), &pvt()).unwrap();
        // Paper numbers: 011 → 0.827–1.053 V, 010 → 0.951–1.237 V.
        assert!((ch011.range.0.volts() - 0.827).abs() < 0.003);
        assert!((ch011.range.1.volts() - 1.053).abs() < 0.003);
        assert!((ch010.range.0.volts() - 0.951).abs() < 0.004);
        assert!((ch010.range.1.volts() - 1.237).abs() < 0.025);
        // Smaller tap ⇒ higher window shortfall ⇒ ranges stack upward.
        assert!(ch001.range.0 > ch010.range.0);
        assert!(ch010.range.0 > ch011.range.0);
    }

    #[test]
    fn characteristic_thresholds_ascend_with_load() {
        let ch = array_characteristic(&mut RunCtx::serial(), &array(), &pg(), code011(), &pvt())
            .unwrap();
        for w in ch.thresholds.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert_eq!(ch.skew, Time::from_ps(149.0));
        let mid = ch.midpoint();
        assert!(mid > ch.range.0 && mid < ch.range.1);
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let pts: Vec<SensitivityPoint> = (0..10)
            .map(|i| SensitivityPoint {
                load: Capacitance::from_pf(1.0 + 0.1 * i as f64),
                threshold: Voltage::from_v(0.5 + 0.2 * (1.0 + 0.1 * i as f64)),
            })
            .collect();
        let (slope, intercept, residual) = linear_fit(&pts);
        assert!((slope - 0.2).abs() < 1e-9);
        assert!((intercept - 0.5).abs() < 1e-9);
        assert!(residual < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn linear_fit_needs_two_points() {
        linear_fit(&[SensitivityPoint {
            load: Capacitance::from_pf(1.0),
            threshold: Voltage::from_v(1.0),
        }]);
    }

    #[test]
    fn corner_shifts_characteristic() {
        // Process variation moves the whole characteristic — the effect
        // the delay-code trim compensates.
        let a = array();
        let p = pg();
        let mut ctx = RunCtx::serial();
        let tt = array_characteristic(&mut ctx, &a, &p, code011(), &pvt()).unwrap();
        let ss_pvt = Pvt::new(
            ProcessCorner::SS,
            Voltage::from_v(1.0),
            Temperature::from_celsius(25.0),
        );
        let ss = array_characteristic(&mut ctx, &a, &p, code011(), &ss_pvt).unwrap();
        let shift = (ss.midpoint() - tt.midpoint()).abs();
        assert!(
            shift > Voltage::from_mv(10.0),
            "corner should move the midpoint, got {shift}"
        );
    }

    #[test]
    fn trim_recovers_reference_characteristic() {
        let a = array();
        let p = pg();
        for corner in [ProcessCorner::SS, ProcessCorner::FF] {
            let corner_pvt = Pvt::new(
                corner,
                Voltage::from_v(1.0),
                Temperature::from_celsius(25.0),
            );
            let trim = trim_for_corner(
                &mut RunCtx::serial(),
                &a,
                &p,
                code011(),
                &pvt(),
                &corner_pvt,
            )
            .unwrap();
            assert!(
                trim.residual <= trim.untrimmed_residual,
                "{corner}: trim must not be worse than no trim"
            );
            // The trim is quantised by the PG tap granularity: adjacent
            // taps move the midpoint by up to ~170 mV near the short-tap
            // end, so the guaranteed residual bound is half that.
            assert!(
                trim.residual < Voltage::from_mv(95.0),
                "{corner}: residual {} too large",
                trim.residual
            );
        }
    }

    #[test]
    fn parallel_characteristic_and_trim_match_serial() {
        let a = array();
        let p = pg();
        let serial_ch =
            array_characteristic(&mut RunCtx::serial(), &a, &p, code011(), &pvt()).unwrap();
        let ss_pvt = Pvt::new(
            ProcessCorner::SS,
            Voltage::from_v(1.0),
            Temperature::from_celsius(25.0),
        );
        let serial_trim =
            trim_for_corner(&mut RunCtx::serial(), &a, &p, code011(), &pvt(), &ss_pvt).unwrap();
        for jobs in [1usize, 2, 7] {
            let mut ctx = RunCtx::new(Engine::new(jobs));
            let ch = array_characteristic(&mut ctx, &a, &p, code011(), &pvt()).unwrap();
            assert_eq!(ch, serial_ch, "jobs={jobs}");
            let trim = trim_for_corner(&mut ctx, &a, &p, code011(), &pvt(), &ss_pvt).unwrap();
            assert_eq!(trim, serial_trim, "jobs={jobs}");
        }
    }

    #[test]
    fn trim_at_reference_point_keeps_reference_code() {
        let trim = trim_for_corner(
            &mut RunCtx::serial(),
            &array(),
            &pg(),
            code011(),
            &pvt(),
            &pvt(),
        )
        .unwrap();
        assert_eq!(trim.code, code011());
        assert!(trim.residual < Voltage::from_mv(1.0));
    }
}
