//! Thermometer output codes.
//!
//! The multi-bit sensor emits one bit per element, printed **most-loaded
//! element first** exactly as the paper does: `0011111` means the two
//! most-loaded (highest-threshold) elements failed and the other five
//! sampled correctly. Because element thresholds rise with load, a clean
//! measurement is always of the form `0…01…1` — a *thermometer* code,
//! like a flash ADC's. Metastability can flip a bit near the boundary and
//! produce a *bubble* (`0101111`); [`ThermometerCode::correct_bubbles`]
//! restores the canonical form the way flash-ADC encoders do.
//!
//! # Examples
//!
//! ```
//! use psnt_core::code::ThermometerCode;
//!
//! let code: ThermometerCode = "0011111".parse()?;
//! assert_eq!(code.fail_count(), 2);
//! assert_eq!(code.level(), 5);
//! assert!(code.is_canonical());
//! # Ok::<(), psnt_core::error::SensorError>(())
//! ```

use std::fmt;
use std::str::FromStr;

use psnt_cells::logic::{Logic, LogicVector};
use serde::{Deserialize, Serialize};

use crate::error::SensorError;

/// A sensor array output vector, most-loaded element first.
///
/// Bit semantics: `1` = the element sampled correctly (no setup error),
/// `0` = the element failed. `X` marks an unresolved (metastable) capture
/// when the system is configured to surface them.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ThermometerCode(LogicVector);

impl ThermometerCode {
    /// Wraps a raw logic vector.
    pub fn new(bits: LogicVector) -> ThermometerCode {
        ThermometerCode(bits)
    }

    /// The canonical code with `fails` leading zeros out of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `fails > width`.
    pub fn from_fail_count(fails: usize, width: usize) -> ThermometerCode {
        assert!(fails <= width, "fail count exceeds width");
        let mut v = LogicVector::ones(width);
        for i in 0..fails {
            v.set(i, Logic::Zero);
        }
        ThermometerCode(v)
    }

    /// Number of elements.
    pub fn width(&self) -> usize {
        self.0.len()
    }

    /// The underlying bits.
    pub fn bits(&self) -> &LogicVector {
        &self.0
    }

    /// Elements that failed (definite `0`s).
    pub fn fail_count(&self) -> usize {
        self.0.count_zeros()
    }

    /// Elements that sampled correctly (definite `1`s).
    pub fn pass_count(&self) -> usize {
        self.0.count_ones()
    }

    /// The thermometer *level*: the number of passing elements. For a
    /// canonical code this fully determines the vector.
    pub fn level(&self) -> usize {
        self.pass_count()
    }

    /// `true` when every bit is a definite `0`/`1`.
    pub fn is_resolved(&self) -> bool {
        self.0.is_fully_known()
    }

    /// `true` when the code is all zeros — the rail is below the minimum
    /// measurable value ("all errors" in the paper).
    pub fn is_underflow(&self) -> bool {
        self.is_resolved() && self.fail_count() == self.width()
    }

    /// `true` when the code is all ones — the rail is above the maximum
    /// measurable value ("none error").
    pub fn is_overflow(&self) -> bool {
        self.is_resolved() && self.pass_count() == self.width()
    }

    /// `true` when the code has the canonical `0…01…1` thermometer shape
    /// (fails first, passes after, no interleaving, no unknowns).
    pub fn is_canonical(&self) -> bool {
        if !self.is_resolved() {
            return false;
        }
        let mut seen_one = false;
        for b in self.0.iter() {
            match b {
                Logic::One => seen_one = true,
                Logic::Zero if seen_one => return false,
                _ => {}
            }
        }
        true
    }

    /// Positions (from the most-loaded end) whose bit breaks the
    /// thermometer property — the *bubbles*. Unknown bits always count.
    pub fn bubbles(&self) -> Vec<usize> {
        let corrected = self.correct_bubbles();
        (0..self.width())
            .filter(|&i| self.0.get(i) != corrected.0.get(i))
            .collect()
    }

    /// Returns the nearest canonical code: the level is taken as the
    /// total number of passing bits (`X` counts as half a pass, rounded
    /// down), then re-expanded to `0…01…1` — the standard flash-ADC
    /// bubble-correction rule.
    #[must_use]
    pub fn correct_bubbles(&self) -> ThermometerCode {
        let ones = self.0.count_ones();
        let unknowns = self.width() - self.0.count_ones() - self.0.count_zeros();
        let level = ones + unknowns / 2;
        ThermometerCode::from_fail_count(self.width() - level, self.width())
    }

    /// Binary-encodes the level in `ceil(log2(width+1))` bits, MSB first —
    /// what the paper's ENC block emits as the noise word `OUTE`.
    pub fn encode_binary(&self) -> LogicVector {
        let width = self.width();
        let bits_needed = usize::BITS as usize - width.leading_zeros() as usize;
        let level = self.correct_bubbles().level() as u64;
        LogicVector::from_u64(level, bits_needed.max(1))
    }
}

impl FromStr for ThermometerCode {
    type Err = SensorError;

    fn from_str(s: &str) -> Result<ThermometerCode, SensorError> {
        let bits: LogicVector = s.parse().map_err(|_| SensorError::InvalidConfig {
            name: "code",
            reason: format!("cannot parse {s:?} as a logic vector"),
        })?;
        Ok(ThermometerCode(bits))
    }
}

impl fmt::Display for ThermometerCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_and_counts() {
        let c: ThermometerCode = "0011111".parse().unwrap();
        assert_eq!(c.width(), 7);
        assert_eq!(c.fail_count(), 2);
        assert_eq!(c.pass_count(), 5);
        assert_eq!(c.level(), 5);
        assert!(c.is_resolved());
        assert!(c.is_canonical());
        assert!(!c.is_underflow());
        assert!(!c.is_overflow());
    }

    #[test]
    fn underflow_and_overflow() {
        let under: ThermometerCode = "0000000".parse().unwrap();
        assert!(under.is_underflow());
        assert!(under.is_canonical());
        let over: ThermometerCode = "1111111".parse().unwrap();
        assert!(over.is_overflow());
        assert!(over.is_canonical());
    }

    #[test]
    fn from_fail_count_round_trip() {
        for fails in 0..=7 {
            let c = ThermometerCode::from_fail_count(fails, 7);
            assert_eq!(c.fail_count(), fails);
            assert!(c.is_canonical());
        }
    }

    #[test]
    #[should_panic(expected = "fail count exceeds width")]
    fn from_fail_count_overflow_panics() {
        ThermometerCode::from_fail_count(8, 7);
    }

    #[test]
    fn non_canonical_detected() {
        let c: ThermometerCode = "0101111".parse().unwrap();
        assert!(!c.is_canonical());
        assert_eq!(c.bubbles(), vec![1, 2]);
        let fixed = c.correct_bubbles();
        assert!(fixed.is_canonical());
        assert_eq!(fixed.to_string(), "0011111");
    }

    #[test]
    fn unknown_bits_break_canonical() {
        let c: ThermometerCode = "00x1111".parse().unwrap();
        assert!(!c.is_canonical());
        assert!(!c.is_resolved());
        // X counts as half a pass: 4 ones + 0 (1 unknown / 2) → level 4.
        assert_eq!(c.correct_bubbles().to_string(), "0001111");
    }

    #[test]
    fn binary_encoding() {
        let c: ThermometerCode = "0011111".parse().unwrap();
        // 7 elements → 3 bits; level 5 → 101.
        assert_eq!(c.encode_binary().to_string(), "101");
        let all: ThermometerCode = "1111111".parse().unwrap();
        assert_eq!(all.encode_binary().to_string(), "111");
        let none: ThermometerCode = "0000000".parse().unwrap();
        assert_eq!(none.encode_binary().to_string(), "000");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("0012".parse::<ThermometerCode>().is_err());
    }

    #[test]
    fn display_matches_paper_format() {
        let c = ThermometerCode::from_fail_count(5, 7);
        assert_eq!(c.to_string(), "0000011");
    }

    proptest! {
        #[test]
        fn correction_is_idempotent(s in "[01x]{1,16}") {
            let c: ThermometerCode = s.parse().unwrap();
            let once = c.correct_bubbles();
            let twice = once.correct_bubbles();
            prop_assert_eq!(once.clone(), twice);
            prop_assert!(once.is_canonical());
        }

        #[test]
        fn correction_preserves_width_and_ones_bound(s in "[01]{1,16}") {
            let c: ThermometerCode = s.parse().unwrap();
            let fixed = c.correct_bubbles();
            prop_assert_eq!(fixed.width(), c.width());
            prop_assert_eq!(fixed.pass_count(), c.pass_count());
        }

        #[test]
        fn canonical_codes_survive_correction(fails in 0usize..=12, extra in 0usize..=4) {
            let width = fails + extra;
            prop_assume!(width >= 1);
            let c = ThermometerCode::from_fail_count(fails, width);
            prop_assert_eq!(c.correct_bubbles(), c);
        }

        #[test]
        fn level_plus_fails_is_width(s in "[01]{1,16}") {
            let c: ThermometerCode = s.parse().unwrap();
            prop_assert_eq!(c.level() + c.fail_count(), c.width());
        }
    }
}
