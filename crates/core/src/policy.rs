//! Power-aware policies driven by the sensor — the paper's second use
//! case ("used by a control block within the circuit under test for the
//! activation of power aware policies").
//!
//! Three policy blocks are provided:
//!
//! * [`AutoRanger`] — the delay-code policy the paper mentions but leaves
//!   unpublished ("the control … can define and set them internally
//!   according to a policy"): when measures saturate at either end of
//!   the dynamic range for several cycles, step the delay code so the
//!   range slides back over the rail.
//! * [`NoiseAlarm`] — a debounced threshold watchdog: raise an alarm when
//!   the measured level stays at or below a trip level for `n`
//!   consecutive measures (and clear it after `n` clean ones). This is
//!   the minimal "activate a countermeasure" hook: clock-gate a burst
//!   unit, stretch the clock, or veto a DVFS step.
//! * [`DvfsGovernor`] — a guard-banded voltage-scaling governor: it walks
//!   the supply setpoint down while the *measured worst-case* rail keeps
//!   a margin above the logic's minimum operating voltage, and backs off
//!   when the margin is eaten — Razor-style energy saving, but driven by
//!   a voltage measurement instead of error recovery.
//!
//! # Examples
//!
//! ```
//! use psnt_core::policy::{NoiseAlarm};
//!
//! let mut alarm = NoiseAlarm::new(2, 3)?; // trip at level ≤ 2 for 3 measures
//! assert!(!alarm.observe(5));
//! assert!(!alarm.observe(1));
//! assert!(!alarm.observe(2));
//! assert!(alarm.observe(0)); // third consecutive bad measure: alarm
//! # Ok::<(), psnt_core::error::SensorError>(())
//! ```

use psnt_cells::units::Voltage;
use serde::{Deserialize, Serialize};

use crate::error::SensorError;
use crate::pulsegen::DelayCode;
use crate::system::Measurement;

/// A debounced low-level watchdog over the HS noise word.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NoiseAlarm {
    trip_level: usize,
    debounce: usize,
    consecutive_bad: usize,
    consecutive_good: usize,
    active: bool,
    trips: u64,
}

impl NoiseAlarm {
    /// Creates an alarm tripping when `level <= trip_level` persists for
    /// `debounce` consecutive measures.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidConfig`] when `debounce` is zero.
    pub fn new(trip_level: usize, debounce: usize) -> Result<NoiseAlarm, SensorError> {
        if debounce == 0 {
            return Err(SensorError::InvalidConfig {
                name: "debounce",
                reason: "debounce must be at least one measure".into(),
            });
        }
        Ok(NoiseAlarm {
            trip_level,
            debounce,
            consecutive_bad: 0,
            consecutive_good: 0,
            active: false,
            trips: 0,
        })
    }

    /// Whether the alarm is currently raised.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Total raise events since construction.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Feeds one measured level; returns the (possibly updated) alarm
    /// state.
    pub fn observe(&mut self, level: usize) -> bool {
        if level <= self.trip_level {
            self.consecutive_bad += 1;
            self.consecutive_good = 0;
            if !self.active && self.consecutive_bad >= self.debounce {
                self.active = true;
                self.trips += 1;
            }
        } else {
            self.consecutive_good += 1;
            self.consecutive_bad = 0;
            if self.active && self.consecutive_good >= self.debounce {
                self.active = false;
            }
        }
        self.active
    }

    /// Convenience: feeds a full measurement (HS word level).
    pub fn observe_measurement(&mut self, m: &Measurement) -> bool {
        self.observe(m.hs_word.level)
    }
}

/// The paper's on-chip delay-code policy: auto re-ranging.
///
/// Saturated codes carry one bit of information — "the rail is beyond
/// this edge of the range". After `debounce` consecutive saturations on
/// the same side, the ranger steps the HS delay code: a *smaller* tap
/// moves the dynamic range **up** (for overflow), a *larger* tap moves
/// it **down** (for underflow) — the direction relation of Fig. 5.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AutoRanger {
    code: DelayCode,
    debounce: usize,
    over_streak: usize,
    under_streak: usize,
    retunes: u64,
}

impl AutoRanger {
    /// Creates a ranger starting from `initial` with the given debounce.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidConfig`] for a zero debounce.
    pub fn new(initial: DelayCode, debounce: usize) -> Result<AutoRanger, SensorError> {
        if debounce == 0 {
            return Err(SensorError::InvalidConfig {
                name: "debounce",
                reason: "debounce must be at least one measure".into(),
            });
        }
        Ok(AutoRanger {
            code: initial,
            debounce,
            over_streak: 0,
            under_streak: 0,
            retunes: 0,
        })
    }

    /// The currently selected delay code.
    pub fn code(&self) -> DelayCode {
        self.code
    }

    /// Number of re-ranging steps taken.
    pub fn retunes(&self) -> u64 {
        self.retunes
    }

    /// Feeds one measurement; returns `Some(new_code)` when the policy
    /// decides to re-range (the caller applies it with
    /// [`crate::system::SensorSystem::set_delay_codes`]).
    pub fn observe(&mut self, m: &Measurement) -> Option<DelayCode> {
        if m.hs_word.overflow {
            self.over_streak += 1;
            self.under_streak = 0;
        } else if m.hs_word.underflow {
            self.under_streak += 1;
            self.over_streak = 0;
        } else {
            self.over_streak = 0;
            self.under_streak = 0;
            return None;
        }
        if self.over_streak >= self.debounce {
            // Rail above the range: shorter tap shifts the range up.
            self.over_streak = 0;
            return self.step(-1);
        }
        if self.under_streak >= self.debounce {
            // Rail below the range: longer tap shifts the range down.
            self.under_streak = 0;
            return self.step(1);
        }
        None
    }

    fn step(&mut self, dir: i8) -> Option<DelayCode> {
        let next = self.code.value() as i8 + dir;
        let next = DelayCode::new(u8::try_from(next).ok()?).ok()?;
        if next == self.code {
            return None;
        }
        self.code = next;
        self.retunes += 1;
        Some(next)
    }
}

/// The command a governor issues after a measurement window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GovernorAction {
    /// Margin comfortable: lower the setpoint by the configured step.
    StepDown,
    /// Margin eaten: raise the setpoint by the configured step.
    StepUp,
    /// Inside the hysteresis band: hold.
    Hold,
}

/// A guard-banded DVFS governor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DvfsGovernor {
    /// The logic's minimum operating voltage (e.g. from
    /// [`crate::baseline::RazorStage::min_supply`]).
    v_min: Voltage,
    /// Required margin of the *measured worst-case* rail above `v_min`.
    guard_band: Voltage,
    /// Extra margin (beyond the guard band) before stepping down —
    /// hysteresis against limit cycling.
    hysteresis: Voltage,
    /// Setpoint step size.
    step: Voltage,
    /// Setpoint bounds.
    v_lo: Voltage,
    v_hi: Voltage,
    setpoint: Voltage,
}

impl DvfsGovernor {
    /// Creates a governor starting at `v_hi`.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidConfig`] for non-positive step/
    /// guard band, inverted bounds, or a guard band that can never be
    /// met inside the bounds.
    pub fn new(
        v_min: Voltage,
        guard_band: Voltage,
        hysteresis: Voltage,
        step: Voltage,
        v_lo: Voltage,
        v_hi: Voltage,
    ) -> Result<DvfsGovernor, SensorError> {
        if step <= Voltage::ZERO || guard_band <= Voltage::ZERO || hysteresis < Voltage::ZERO {
            return Err(SensorError::InvalidConfig {
                name: "step/guard_band/hysteresis",
                reason: "step and guard band must be positive, hysteresis non-negative".into(),
            });
        }
        if v_lo >= v_hi {
            return Err(SensorError::InvalidConfig {
                name: "bounds",
                reason: format!("v_lo {v_lo} must be below v_hi {v_hi}"),
            });
        }
        if v_min + guard_band >= v_hi {
            return Err(SensorError::InvalidConfig {
                name: "guard_band",
                reason: "guard band unreachable below the upper setpoint bound".into(),
            });
        }
        Ok(DvfsGovernor {
            v_min,
            guard_band,
            hysteresis,
            step,
            v_lo,
            v_hi,
            setpoint: v_hi,
        })
    }

    /// A reasonable default around a 2 ns-cycle pipeline: 30 mV guard
    /// band, 35 mV hysteresis, 25 mV steps between 0.7 V and 1.05 V.
    ///
    /// The hysteresis deliberately exceeds the sensor's LSB (≈30 mV for
    /// the paper's 7-bit array): with a smaller value the quantised
    /// margin reading cannot distinguish adjacent setpoints and the
    /// governor limit-cycles between "step down" and "sensor underflow".
    ///
    /// # Errors
    ///
    /// Propagates constructor validation (cannot fail for the defaults).
    pub fn with_v_min(v_min: Voltage) -> Result<DvfsGovernor, SensorError> {
        DvfsGovernor::new(
            v_min,
            Voltage::from_mv(30.0),
            Voltage::from_mv(35.0),
            Voltage::from_mv(25.0),
            Voltage::from_v(0.7),
            Voltage::from_v(1.05),
        )
    }

    /// The current setpoint command.
    pub fn setpoint(&self) -> Voltage {
        self.setpoint
    }

    /// The minimum operating voltage being guarded.
    pub fn v_min(&self) -> Voltage {
        self.v_min
    }

    /// Decides on a window of measurements: the governing quantity is the
    /// worst (lowest) decoded rail estimate; an underflowing code (rail
    /// below the sensor range) always forces a step up.
    pub fn decide(&mut self, window: &[Measurement]) -> GovernorAction {
        let mut worst: Option<Voltage> = None;
        let mut underflow = false;
        for m in window {
            if m.hs_word.underflow {
                underflow = true;
            }
            if let Some(mid) = m.hs_interval.midpoint() {
                worst = Some(worst.map_or(mid, |w: Voltage| w.min(mid)));
            }
        }
        let action = match (underflow, worst) {
            (true, _) | (false, None) => GovernorAction::StepUp,
            (false, Some(w)) => {
                let margin = w - self.v_min;
                if margin < self.guard_band {
                    GovernorAction::StepUp
                } else if margin > self.guard_band + self.hysteresis + self.step {
                    GovernorAction::StepDown
                } else {
                    GovernorAction::Hold
                }
            }
        };
        self.setpoint = match action {
            GovernorAction::StepDown => (self.setpoint - self.step).max(self.v_lo),
            GovernorAction::StepUp => (self.setpoint + self.step).min(self.v_hi),
            GovernorAction::Hold => self.setpoint,
        };
        action
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{SensorConfig, SensorSystem};
    use psnt_cells::units::Time;
    use psnt_pdn::waveform::Waveform;

    fn measure(v: f64) -> Measurement {
        let sys = SensorSystem::new(SensorConfig::default()).unwrap();
        sys.measure_at(
            &Waveform::constant(v),
            &Waveform::constant(0.0),
            Time::from_ns(10.0),
        )
        .unwrap()
    }

    #[test]
    fn alarm_validates_and_debounces() {
        assert!(NoiseAlarm::new(2, 0).is_err());
        let mut a = NoiseAlarm::new(2, 3).unwrap();
        // Two bad measures: still quiet.
        assert!(!a.observe(1));
        assert!(!a.observe(2));
        // A good one resets the streak.
        assert!(!a.observe(5));
        assert!(!a.observe(0));
        assert!(!a.observe(0));
        // Third consecutive bad: trip.
        assert!(a.observe(1));
        assert_eq!(a.trips(), 1);
        // Clearing needs the same debounce of good measures.
        assert!(a.observe(7));
        assert!(a.observe(7));
        assert!(!a.observe(7));
        assert!(!a.is_active());
        assert_eq!(a.trips(), 1);
    }

    #[test]
    fn alarm_from_measurements() {
        let mut a = NoiseAlarm::new(3, 1).unwrap();
        assert!(!a.observe_measurement(&measure(1.0))); // level 5
        assert!(a.observe_measurement(&measure(0.9))); // level 2
    }

    #[test]
    fn auto_ranger_validates_and_follows_the_rail() {
        use crate::system::{SensorConfig, SensorSystem};
        assert!(AutoRanger::new(DelayCode::new(3).unwrap(), 0).is_err());

        let mut sensor = SensorSystem::new(SensorConfig::default()).unwrap();
        let mut ranger = AutoRanger::new(sensor.config().hs_code, 2).unwrap();
        let gnd = Waveform::constant(0.0);
        // The rail drifts up to 1.15 V: code 011 saturates; the ranger
        // must walk the code down (shorter taps) until it resolves.
        let vdd = Waveform::constant(1.15);
        let mut resolved = false;
        for k in 0..12 {
            let m = sensor
                .measure_at(&vdd, &gnd, Time::from_ns(10.0 * (k + 1) as f64))
                .unwrap();
            if !m.hs_word.overflow && !m.hs_word.underflow {
                resolved = true;
                break;
            }
            if let Some(code) = ranger.observe(&m) {
                sensor.set_delay_codes(code, sensor.config().ls_code);
            }
        }
        assert!(resolved, "ranger never brought 1.15 V into range");
        assert!(ranger.code().value() < 3, "code should have stepped down");
        assert!(ranger.retunes() >= 1);

        // Now the rail collapses to 0.87 V: the ranger walks back up.
        let vdd = Waveform::constant(0.87);
        let mut resolved = false;
        for k in 0..16 {
            let m = sensor
                .measure_at(&vdd, &gnd, Time::from_ns(10.0 * (k + 1) as f64))
                .unwrap();
            if !m.hs_word.overflow && !m.hs_word.underflow {
                resolved = true;
                break;
            }
            if let Some(code) = ranger.observe(&m) {
                sensor.set_delay_codes(code, sensor.config().ls_code);
            }
        }
        assert!(resolved, "ranger never brought 0.87 V into range");
    }

    #[test]
    fn auto_ranger_saturates_at_the_table_ends() {
        let mut ranger = AutoRanger::new(DelayCode::new(0).unwrap(), 1).unwrap();
        // A permanently overflowing measurement cannot step below code 0.
        let sensor =
            crate::system::SensorSystem::new(crate::system::SensorConfig::default()).unwrap();
        let m = sensor
            .measure_at(
                &Waveform::constant(1.6),
                &Waveform::constant(0.0),
                Time::from_ns(10.0),
            )
            .unwrap();
        assert!(m.hs_word.overflow);
        assert_eq!(ranger.observe(&m), None);
        assert_eq!(ranger.code().value(), 0);

        let mut ranger = AutoRanger::new(DelayCode::new(7).unwrap(), 1).unwrap();
        let m = sensor
            .measure_at(
                &Waveform::constant(0.5),
                &Waveform::constant(0.0),
                Time::from_ns(10.0),
            )
            .unwrap();
        assert!(m.hs_word.underflow);
        assert_eq!(ranger.observe(&m), None);
        assert_eq!(ranger.code().value(), 7);
    }

    #[test]
    fn auto_ranger_debounces_single_saturations() {
        let sensor =
            crate::system::SensorSystem::new(crate::system::SensorConfig::default()).unwrap();
        let gnd = Waveform::constant(0.0);
        let mut ranger = AutoRanger::new(DelayCode::new(3).unwrap(), 3).unwrap();
        let over = sensor
            .measure_at(&Waveform::constant(1.2), &gnd, Time::from_ns(10.0))
            .unwrap();
        let fine = sensor
            .measure_at(&Waveform::constant(0.95), &gnd, Time::from_ns(10.0))
            .unwrap();
        // Two saturations interrupted by a clean measure: no retune.
        assert_eq!(ranger.observe(&over), None);
        assert_eq!(ranger.observe(&over), None);
        assert_eq!(ranger.observe(&fine), None);
        assert_eq!(ranger.observe(&over), None);
        assert_eq!(ranger.retunes(), 0);
        // Three in a row: retune.
        assert_eq!(ranger.observe(&over), None);
        assert!(ranger.observe(&over).is_some());
    }

    #[test]
    fn governor_validation() {
        let v = Voltage::from_v;
        assert!(DvfsGovernor::new(
            v(0.8),
            Voltage::ZERO,
            Voltage::ZERO,
            v(0.025),
            v(0.7),
            v(1.05)
        )
        .is_err());
        assert!(DvfsGovernor::new(
            v(0.8),
            v(0.03),
            Voltage::ZERO,
            Voltage::ZERO,
            v(0.7),
            v(1.05)
        )
        .is_err());
        assert!(
            DvfsGovernor::new(v(0.8), v(0.03), Voltage::ZERO, v(0.025), v(1.05), v(0.7)).is_err()
        );
        assert!(
            DvfsGovernor::new(v(1.2), v(0.03), Voltage::ZERO, v(0.025), v(0.7), v(1.05)).is_err()
        );
        assert!(DvfsGovernor::with_v_min(v(0.8)).is_ok());
    }

    #[test]
    fn governor_steps_down_with_comfortable_margin() {
        let mut g = DvfsGovernor::with_v_min(Voltage::from_v(0.80)).unwrap();
        let start = g.setpoint();
        // Rail measured at ~1.0 V: margin 200 mV >> 30 mV guard band.
        let action = g.decide(&[measure(1.0)]);
        assert_eq!(action, GovernorAction::StepDown);
        assert!(g.setpoint() < start);
    }

    #[test]
    fn governor_backs_off_when_margin_eaten() {
        let mut g = DvfsGovernor::with_v_min(Voltage::from_v(0.86)).unwrap();
        // Rail measured at ~0.88 V: margin 20 mV < 30 mV guard band.
        let action = g.decide(&[measure(0.88)]);
        assert_eq!(action, GovernorAction::StepUp);
        assert_eq!(g.setpoint(), Voltage::from_v(1.05), "clamped at v_hi");
    }

    #[test]
    fn governor_holds_inside_hysteresis() {
        let mut g = DvfsGovernor::with_v_min(Voltage::from_v(0.86)).unwrap();
        // Margin ≈ 47 mV: above the 30 mV band but below
        // band + hysteresis + step = 90 mV → hold.
        let action = g.decide(&[measure(0.907)]);
        assert_eq!(action, GovernorAction::Hold);
    }

    #[test]
    fn hysteresis_covers_the_sensor_lsb() {
        // The quantisation-limit-cycle guard: the default hold band must
        // be wider than one thermometer code (~30 mV), so two setpoints
        // decoded to the same code cannot alternate StepDown/StepUp.
        let g = DvfsGovernor::with_v_min(Voltage::from_v(0.80)).unwrap();
        assert!(g.hysteresis >= Voltage::from_mv(30.0));
    }

    #[test]
    fn governor_steps_up_on_underflow_or_blindness() {
        let mut g = DvfsGovernor::with_v_min(Voltage::from_v(0.80)).unwrap();
        // Below the sensor range: underflow code.
        assert_eq!(g.decide(&[measure(0.70)]), GovernorAction::StepUp);
        // No usable measurements at all.
        assert_eq!(g.decide(&[]), GovernorAction::StepUp);
    }

    #[test]
    fn governor_converges_on_a_stable_setpoint() {
        // Closed loop against an ideal rail (rail == setpoint − 20 mV of
        // droop): the governor must settle without limit cycling.
        let mut g = DvfsGovernor::with_v_min(Voltage::from_v(0.80)).unwrap();
        let mut last_actions = Vec::new();
        for _ in 0..30 {
            let rail = g.setpoint() - Voltage::from_mv(20.0);
            let action = g.decide(&[measure(rail.volts())]);
            last_actions.push(action);
        }
        // The tail must be all Hold (no oscillation).
        let tail = &last_actions[last_actions.len() - 5..];
        assert!(
            tail.iter().all(|a| *a == GovernorAction::Hold),
            "limit cycle: {tail:?}"
        );
        // And the settled margin respects the guard band.
        let rail = g.setpoint() - Voltage::from_mv(20.0);
        let m = measure(rail.volts());
        let worst = m.hs_interval.midpoint().unwrap();
        assert!(worst - g.v_min() >= Voltage::from_mv(30.0));
    }

    #[test]
    fn governor_respects_lower_bound() {
        let mut g = DvfsGovernor::new(
            Voltage::from_v(0.40),
            Voltage::from_mv(30.0),
            Voltage::from_mv(10.0),
            Voltage::from_mv(50.0),
            Voltage::from_v(0.95),
            Voltage::from_v(1.05),
        )
        .unwrap();
        for _ in 0..10 {
            let _ = g.decide(&[measure(1.0)]);
        }
        assert_eq!(g.setpoint(), Voltage::from_v(0.95));
    }
}
