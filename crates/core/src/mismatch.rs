//! Local (within-die) mismatch Monte-Carlo for the sensor array.
//!
//! The paper's corner trim handles *global* process shifts; the remaining
//! risk is *local* mismatch between the seven supposedly identical
//! INV+FF elements: random drive-strength, load and threshold-voltage
//! variation scatters the per-element thresholds and can even invert
//! their order, breaking the thermometer property (a static bubble no
//! delay code can trim out — the "fine tuning" the paper alludes to).
//!
//! [`monte_carlo_yield`] quantifies that: it draws `n` mismatched arrays
//! and reports how many keep strictly monotone thresholds, plus the
//! threshold scatter — the data behind the `xp_mismatch` ablation.
//!
//! # Examples
//!
//! ```
//! use psnt_cells::process::Pvt;
//! use psnt_cells::units::Time;
//! use psnt_core::element::RailMode;
//! use psnt_core::mismatch::{monte_carlo_yield, MismatchModel};
//! use psnt_core::thermometer::ThermometerArray;
//! use psnt_ctx::RunCtx;
//!
//! let array = ThermometerArray::paper(RailMode::Supply);
//! let mut ctx = RunCtx::serial().with_seed(7);
//! let report = monte_carlo_yield(
//!     &mut ctx, &array, Time::from_ps(149.0), &Pvt::typical(),
//!     &MismatchModel::local_90nm(), 50,
//! )?;
//! assert_eq!(report.trials, 50);
//! # Ok::<(), psnt_core::error::SensorError>(())
//! ```

use psnt_cells::delay::AlphaPowerDelay;
use psnt_cells::process::Pvt;
use psnt_cells::units::{Time, Voltage};
use psnt_ctx::RunCtx;
use psnt_engine::{Engine, JobSpec};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::element::SenseElement;
use crate::error::SensorError;
use crate::thermometer::ThermometerArray;

/// Relative/absolute sigmas of local device variation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MismatchModel {
    /// Relative sigma of the inverter drive (current factor).
    pub sigma_drive: f64,
    /// Relative sigma of the load capacitor value.
    pub sigma_load: f64,
    /// Absolute sigma of the device threshold voltage.
    pub sigma_vth: Voltage,
}

impl MismatchModel {
    /// Creates a model.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidConfig`] for negative sigmas.
    pub fn new(
        sigma_drive: f64,
        sigma_load: f64,
        sigma_vth: Voltage,
    ) -> Result<MismatchModel, SensorError> {
        if sigma_drive < 0.0 || sigma_load < 0.0 || sigma_vth < Voltage::ZERO {
            return Err(SensorError::InvalidConfig {
                name: "sigma",
                reason: "mismatch sigmas must be non-negative".into(),
            });
        }
        Ok(MismatchModel {
            sigma_drive,
            sigma_load,
            sigma_vth,
        })
    }

    /// Representative 90 nm local mismatch for small devices: 2 % drive,
    /// 1 % capacitor matching, 8 mV threshold sigma.
    pub fn local_90nm() -> MismatchModel {
        MismatchModel {
            sigma_drive: 0.02,
            sigma_load: 0.01,
            sigma_vth: Voltage::from_mv(8.0),
        }
    }

    /// A copy with every sigma scaled by `k` (for sigma sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `k < 0`.
    #[must_use]
    pub fn scaled(&self, k: f64) -> MismatchModel {
        assert!(k >= 0.0, "scale must be non-negative");
        MismatchModel {
            sigma_drive: self.sigma_drive * k,
            sigma_load: self.sigma_load * k,
            sigma_vth: self.sigma_vth * k,
        }
    }

    /// Draws a mismatched copy of one element.
    pub fn perturb_element<R: Rng + ?Sized>(
        &self,
        element: &SenseElement,
        rng: &mut R,
    ) -> SenseElement {
        let inv = element.inverter();
        // Drive error scales A inversely; clamp factors to stay physical.
        let drive = (1.0 + self.sigma_drive * gaussian(rng)).max(0.5);
        let load_f = (1.0 + self.sigma_load * gaussian(rng)).max(0.5);
        let vth = inv.vth() + self.sigma_vth * gaussian(rng);
        let perturbed = AlphaPowerDelay::new(
            inv.a_ps_per_pf() / drive,
            inv.c_intrinsic(),
            inv.t_intrinsic(),
            vth.max(Voltage::from_mv(50.0)),
            inv.alpha(),
        )
        .expect("perturbed parameters stay in the valid domain");
        SenseElement::new(
            perturbed,
            *element.flip_flop(),
            element.load() * load_f,
            element.mode(),
        )
    }

    /// Draws a mismatched copy of a whole array (independent elements).
    pub fn perturb_array<R: Rng + ?Sized>(
        &self,
        array: &ThermometerArray,
        rng: &mut R,
    ) -> ThermometerArray {
        ThermometerArray::from_elements(
            array
                .elements()
                .iter()
                .map(|e| self.perturb_element(e, rng))
                .collect(),
            array.mode(),
        )
    }
}

/// Standard normal deviate by Box–Muller (avoids a `rand_distr`
/// dependency).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// The result of a mismatch Monte-Carlo.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct YieldReport {
    /// Arrays drawn.
    pub trials: usize,
    /// Arrays whose thresholds stayed strictly monotone (thermometer
    /// property preserved for every input voltage).
    pub monotone: usize,
    /// Mean absolute per-element threshold shift from nominal, volts.
    pub mean_abs_shift: f64,
    /// Worst per-element threshold shift seen, volts.
    pub worst_shift: f64,
}

impl YieldReport {
    /// The fraction of arrays preserving the thermometer property.
    pub fn yield_fraction(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.monotone as f64 / self.trials as f64
        }
    }
}

/// What one Monte-Carlo trial contributes to the [`YieldReport`].
struct TrialScore {
    monotone: bool,
    abs_sum: f64,
    worst: f64,
    samples: usize,
}

/// Draws `n` mismatched copies of `array` and scores their threshold
/// ladders against the nominal one.
///
/// The trials run on the context's engine, and each trial draws from
/// its own RNG stream derived from `(ctx.seed(), trial index)` by
/// [`psnt_engine::split_seed`], so the report is bit-identical at any
/// worker count — a serial context is the `jobs = 1` path of this
/// code. When the context carries an observer, the batch's worker
/// metrics (and the threshold memo's hit/miss tally) are folded into
/// its registry.
///
/// # Errors
///
/// Propagates threshold-search failures; when several trials fail, the
/// lowest-indexed trial's error is returned.
pub fn monte_carlo_yield(
    ctx: &mut RunCtx<'_>,
    array: &ThermometerArray,
    skew: Time,
    pvt: &Pvt,
    model: &MismatchModel,
    n: usize,
) -> Result<YieldReport, SensorError> {
    let nominal = array.thresholds_ctx(ctx, skew, pvt)?;
    let seed = ctx.seed();
    let batch = ctx.engine().run_batch(&JobSpec::new(n).seed(seed), |job| {
        let mut rng = job.rng();
        let drawn = model.perturb_array(array, &mut rng);
        let th = drawn.thresholds(skew, pvt)?;
        let mut abs_sum = 0.0f64;
        let mut worst = 0.0f64;
        for (t, t0) in th.iter().zip(&nominal) {
            let shift = (*t - *t0).volts().abs();
            abs_sum += shift;
            worst = worst.max(shift);
        }
        Ok::<TrialScore, SensorError>(TrialScore {
            monotone: th.windows(2).all(|w| w[1] > w[0]),
            abs_sum,
            worst,
            samples: th.len(),
        })
    })?;
    if let Some(obs) = ctx.observer() {
        obs.metrics.merge(&batch.metrics);
    }
    let mut monotone = 0usize;
    let mut abs_sum = 0.0f64;
    let mut worst = 0.0f64;
    let mut samples = 0usize;
    // Fold in trial order, so the float accumulation is identical to
    // the serial sweep.
    for score in &batch.results {
        if score.monotone {
            monotone += 1;
        }
        abs_sum += score.abs_sum;
        worst = worst.max(score.worst);
        samples += score.samples;
    }
    Ok(YieldReport {
        trials: n,
        monotone,
        mean_abs_shift: if samples == 0 {
            0.0
        } else {
            abs_sum / samples as f64
        },
        worst_shift: worst,
    })
}

/// [`monte_carlo_yield`] with the trials parallelized on `engine`.
///
/// # Errors
///
/// Propagates threshold-search failures.
#[deprecated(since = "0.1.0", note = "use `monte_carlo_yield` with a `RunCtx`")]
pub fn monte_carlo_yield_on(
    engine: &Engine,
    array: &ThermometerArray,
    skew: Time,
    pvt: &Pvt,
    model: &MismatchModel,
    n: usize,
    seed: u64,
) -> Result<YieldReport, SensorError> {
    monte_carlo_yield(
        &mut RunCtx::new(engine.clone()).with_seed(seed),
        array,
        skew,
        pvt,
        model,
        n,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::RailMode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn array() -> ThermometerArray {
        ThermometerArray::paper(RailMode::Supply)
    }

    fn skew() -> Time {
        Time::from_ps(149.0)
    }

    #[test]
    fn model_validation() {
        assert!(MismatchModel::new(0.02, 0.01, Voltage::from_mv(8.0)).is_ok());
        assert!(MismatchModel::new(-0.1, 0.01, Voltage::from_mv(8.0)).is_err());
        assert!(MismatchModel::new(0.02, 0.01, Voltage::from_mv(-1.0)).is_err());
    }

    #[test]
    fn zero_sigma_is_identity() {
        let model = MismatchModel::new(0.0, 0.0, Voltage::ZERO).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let drawn = model.perturb_array(&array(), &mut rng);
        let a = array().thresholds(skew(), &Pvt::typical()).unwrap();
        let b = drawn.thresholds(skew(), &Pvt::typical()).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - *y).abs() < Voltage::from_mv(0.02));
        }
        let report = monte_carlo_yield(
            &mut RunCtx::serial().with_seed(3),
            &array(),
            skew(),
            &Pvt::typical(),
            &model,
            10,
        )
        .unwrap();
        assert_eq!(report.monotone, 10);
        assert!(report.worst_shift < 1e-4);
    }

    #[test]
    fn gaussian_is_roughly_standard_normal() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn mismatch_scatters_thresholds() {
        let model = MismatchModel::local_90nm();
        let report = monte_carlo_yield(
            &mut RunCtx::serial().with_seed(9),
            &array(),
            skew(),
            &Pvt::typical(),
            &model,
            100,
        )
        .unwrap();
        assert_eq!(report.trials, 100);
        // 2 % drive sigma ⇒ threshold sigma ~20 mV: shifts are visible…
        assert!(
            report.mean_abs_shift > 0.005,
            "mean {}",
            report.mean_abs_shift
        );
        assert!(report.worst_shift > report.mean_abs_shift);
        // …and with ~30 mV element spacing some arrays lose monotonicity,
        // but not all.
        assert!(report.monotone > 0);
        assert!(report.monotone < 100, "expected some order inversions");
    }

    #[test]
    fn yield_degrades_with_sigma() {
        let base = MismatchModel::local_90nm();
        let mut prev = usize::MAX;
        for k in [0.25, 1.0, 3.0] {
            let report = monte_carlo_yield(
                &mut RunCtx::serial().with_seed(11),
                &array(),
                skew(),
                &Pvt::typical(),
                &base.scaled(k),
                120,
            )
            .unwrap();
            assert!(
                report.monotone <= prev,
                "yield should not improve with more mismatch (k={k})"
            );
            prev = report.monotone;
        }
        assert!(prev < 60, "large mismatch should break most arrays");
    }

    #[test]
    fn seeded_reproducibility() {
        let model = MismatchModel::local_90nm();
        let run = |seed: u64| {
            monte_carlo_yield(
                &mut RunCtx::serial().with_seed(seed),
                &array(),
                skew(),
                &Pvt::typical(),
                &model,
                30,
            )
            .unwrap()
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a, b);
        let c = run(6);
        assert_ne!(a, c);
    }

    #[test]
    fn parallel_yield_is_bit_identical_to_serial() {
        let model = MismatchModel::local_90nm();
        let serial = monte_carlo_yield(
            &mut RunCtx::serial().with_seed(5),
            &array(),
            skew(),
            &Pvt::typical(),
            &model,
            40,
        )
        .unwrap();
        for jobs in [1usize, 2, 7] {
            let parallel = monte_carlo_yield(
                &mut RunCtx::new(Engine::new(jobs)).with_seed(5),
                &array(),
                skew(),
                &Pvt::typical(),
                &model,
                40,
            )
            .unwrap();
            assert_eq!(parallel, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn yield_fraction_math() {
        let r = YieldReport {
            trials: 40,
            monotone: 30,
            mean_abs_shift: 0.01,
            worst_shift: 0.03,
        };
        assert!((r.yield_fraction() - 0.75).abs() < 1e-12);
        let empty = YieldReport {
            trials: 0,
            monotone: 0,
            mean_abs_shift: 0.0,
            worst_shift: 0.0,
        };
        assert_eq!(empty.yield_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn scaled_rejects_negative() {
        let _ = MismatchModel::local_90nm().scaled(-1.0);
    }
}
