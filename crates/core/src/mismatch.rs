//! Local (within-die) mismatch Monte-Carlo for the sensor array.
//!
//! The paper's corner trim handles *global* process shifts; the remaining
//! risk is *local* mismatch between the seven supposedly identical
//! INV+FF elements: random drive-strength, load and threshold-voltage
//! variation scatters the per-element thresholds and can even invert
//! their order, breaking the thermometer property (a static bubble no
//! delay code can trim out — the "fine tuning" the paper alludes to).
//!
//! [`monte_carlo_yield`] quantifies that: it draws `n` mismatched arrays
//! and reports how many keep strictly monotone thresholds, plus the
//! threshold scatter — the data behind the `xp_mismatch` ablation.
//!
//! # Examples
//!
//! ```
//! use psnt_cells::process::Pvt;
//! use psnt_cells::units::Time;
//! use psnt_core::element::RailMode;
//! use psnt_core::mismatch::{monte_carlo_yield, MismatchModel};
//! use psnt_core::thermometer::ThermometerArray;
//! use psnt_ctx::RunCtx;
//!
//! let array = ThermometerArray::paper(RailMode::Supply);
//! let mut ctx = RunCtx::serial().with_seed(7);
//! let report = monte_carlo_yield(
//!     &mut ctx, &array, Time::from_ps(149.0), &Pvt::typical(),
//!     &MismatchModel::local_90nm(), 50,
//! )?;
//! assert_eq!(report.trials, 50);
//! # Ok::<(), psnt_core::error::SensorError>(())
//! ```

use psnt_cells::delay::AlphaPowerDelay;
use psnt_cells::process::Pvt;
use psnt_cells::units::{Time, Voltage};
use psnt_ctx::RunCtx;
use psnt_engine::{lane_seed, Engine, JobSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::element::SenseElement;
use crate::error::SensorError;
use crate::lanes::{self, LaneTasks, LANES};
use crate::thermometer::ThermometerArray;

/// Relative/absolute sigmas of local device variation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MismatchModel {
    /// Relative sigma of the inverter drive (current factor).
    pub sigma_drive: f64,
    /// Relative sigma of the load capacitor value.
    pub sigma_load: f64,
    /// Absolute sigma of the device threshold voltage.
    pub sigma_vth: Voltage,
}

impl MismatchModel {
    /// Creates a model.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidConfig`] for negative sigmas.
    pub fn new(
        sigma_drive: f64,
        sigma_load: f64,
        sigma_vth: Voltage,
    ) -> Result<MismatchModel, SensorError> {
        if sigma_drive < 0.0 || sigma_load < 0.0 || sigma_vth < Voltage::ZERO {
            return Err(SensorError::InvalidConfig {
                name: "sigma",
                reason: "mismatch sigmas must be non-negative".into(),
            });
        }
        Ok(MismatchModel {
            sigma_drive,
            sigma_load,
            sigma_vth,
        })
    }

    /// Representative 90 nm local mismatch for small devices: 2 % drive,
    /// 1 % capacitor matching, 8 mV threshold sigma.
    pub fn local_90nm() -> MismatchModel {
        MismatchModel {
            sigma_drive: 0.02,
            sigma_load: 0.01,
            sigma_vth: Voltage::from_mv(8.0),
        }
    }

    /// A copy with every sigma scaled by `k` (for sigma sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `k < 0`.
    #[must_use]
    pub fn scaled(&self, k: f64) -> MismatchModel {
        assert!(k >= 0.0, "scale must be non-negative");
        MismatchModel {
            sigma_drive: self.sigma_drive * k,
            sigma_load: self.sigma_load * k,
            sigma_vth: self.sigma_vth * k,
        }
    }

    /// Draws a mismatched copy of one element.
    pub fn perturb_element<R: Rng + ?Sized>(
        &self,
        element: &SenseElement,
        rng: &mut R,
    ) -> SenseElement {
        let inv = element.inverter();
        let (zd, zl, zv) = gaussian_triple(rng);
        // Drive error scales A inversely; clamp factors to stay physical.
        let drive = (1.0 + self.sigma_drive * zd).max(0.5);
        let load_f = (1.0 + self.sigma_load * zl).max(0.5);
        let vth = inv.vth() + self.sigma_vth * zv;
        let perturbed = AlphaPowerDelay::new(
            inv.a_ps_per_pf() / drive,
            inv.c_intrinsic(),
            inv.t_intrinsic(),
            vth.max(Voltage::from_mv(50.0)),
            inv.alpha(),
        )
        .expect("perturbed parameters stay in the valid domain");
        SenseElement::new(
            perturbed,
            *element.flip_flop(),
            element.load() * load_f,
            element.mode(),
        )
    }

    /// Draws a mismatched copy of a whole array (independent elements).
    pub fn perturb_array<R: Rng + ?Sized>(
        &self,
        array: &ThermometerArray,
        rng: &mut R,
    ) -> ThermometerArray {
        ThermometerArray::from_elements(
            array
                .elements()
                .iter()
                .map(|e| self.perturb_element(e, rng))
                .collect(),
            array.mode(),
        )
    }
}

/// The three deviates of one element draw (drive, load, vth), through
/// the fused [`psnt_cells::fastmath::gaussian3_from_uniforms`] kernel —
/// the same float program (and the same six-draw stream order) the
/// 64-lane batch transform executes, so scalar and batched draws agree
/// bit for bit.
fn gaussian_triple<R: Rng + ?Sized>(rng: &mut R) -> (f64, f64, f64) {
    let u = [
        rng.gen_range(f64::EPSILON..1.0),
        rng.gen_range(0.0..1.0),
        rng.gen_range(f64::EPSILON..1.0),
        rng.gen_range(0.0..1.0),
        rng.gen_range(f64::EPSILON..1.0),
        rng.gen_range(0.0..1.0),
    ];
    psnt_cells::fastmath::gaussian3_from_uniforms(&u)
}

/// The result of a mismatch Monte-Carlo.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct YieldReport {
    /// Arrays drawn.
    pub trials: usize,
    /// Arrays whose thresholds stayed strictly monotone (thermometer
    /// property preserved for every input voltage).
    pub monotone: usize,
    /// Mean absolute per-element threshold shift from nominal, volts.
    pub mean_abs_shift: f64,
    /// Worst per-element threshold shift seen, volts.
    pub worst_shift: f64,
}

impl YieldReport {
    /// The fraction of arrays preserving the thermometer property.
    pub fn yield_fraction(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.monotone as f64 / self.trials as f64
        }
    }
}

/// What one Monte-Carlo trial contributes to the [`YieldReport`].
struct TrialScore {
    monotone: bool,
    abs_sum: f64,
    worst: f64,
    samples: usize,
}

/// What one 64-lane batch contributes to the [`YieldReport`]: the
/// per-lane trial scores, packed SoA so the fold can replay the exact
/// trial-order accumulation of the scalar sweep.
struct BatchScore {
    /// Live lanes in this batch (`< LANES` only for the ragged tail).
    lanes: usize,
    /// Bit `l` set ⇔ lane `l`'s ladder stayed strictly monotone.
    monotone: u64,
    /// Per-lane sum of absolute threshold shifts, element order.
    abs_sum: [f64; LANES],
    /// Per-lane worst absolute shift.
    worst: [f64; LANES],
    /// Elements per trial.
    samples: usize,
}

/// Runs one 64-lane batch of mismatch trials in lockstep: draws the
/// per-lane perturbations with the *same unit-typed float program* as
/// [`MismatchModel::perturb_element`] (each lane from its own
/// [`lane_seed`] stream), then solves every element's threshold across
/// all lanes at once through [`lanes::solve`].
#[allow(clippy::too_many_arguments)]
fn run_lane_batch(
    array: &ThermometerArray,
    skew: Time,
    pvt: &Pvt,
    model: &MismatchModel,
    nominal: &[Voltage],
    seed: u64,
    batch_index: usize,
    lanes_n: usize,
) -> Result<BatchScore, SensorError> {
    debug_assert!(0 < lanes_n && lanes_n <= LANES);
    let lane_mask = if lanes_n == LANES {
        u64::MAX
    } else {
        (1u64 << lanes_n) - 1
    };
    let mut rngs: Vec<StdRng> = (0..lanes_n)
        .map(|l| StdRng::seed_from_u64(lane_seed(seed, batch_index as u64, LANES as u64, l as u64)))
        .collect();
    let df = pvt.drive_factor();
    let mut tasks = LaneTasks {
        n: lanes_n,
        ..LaneTasks::default()
    };
    let mut out = [0.0f64; LANES];
    let mut monotone = lane_mask;
    let mut abs_sum = [0.0f64; LANES];
    let mut worst = [0.0f64; LANES];
    let mut prev_rail = [f64::NEG_INFINITY; LANES];
    let mut errored = 0u64;
    let mut err_lo = [0.0f64; LANES];
    // Raw per-lane uniform draws, two per gaussian, three gaussians per
    // element (drive, load, vth — the `perturb_element` order).
    let mut u = [[0.0f64; LANES]; 6];
    // Constants hoisted through the *same unit constructors* the scalar
    // program uses, so the raw-f64 lane loop below replays
    // `perturb_element` + `lane_task` bit for bit.
    let vth_floor_v = Voltage::from_mv(50.0).volts();
    let vth_shift_v = pvt.effective_vth(Voltage::ZERO).volts();
    for (e_idx, elem) in array.elements().iter().enumerate() {
        let inv = elem.inverter();
        let window_ps = (skew - elem.flip_flop().setup()).picoseconds();
        let t_int_ps = inv.t_intrinsic().picoseconds();
        let alpha = inv.alpha();
        let a_nom = inv.a_ps_per_pf();
        let c_int_pf = inv.c_intrinsic().picofarads();
        let load_pf = elem.load().picofarads();
        let vth_nom_v = inv.vth().volts();
        for (l, rng) in rngs.iter_mut().enumerate() {
            // Scalar RNG advance, exactly `gaussian`'s draw order.
            u[0][l] = rng.gen_range(f64::EPSILON..1.0);
            u[1][l] = rng.gen_range(0.0..1.0);
            u[2][l] = rng.gen_range(f64::EPSILON..1.0);
            u[3][l] = rng.gen_range(0.0..1.0);
            u[4][l] = rng.gen_range(f64::EPSILON..1.0);
            u[5][l] = rng.gen_range(0.0..1.0);
        }
        // Indexes six `u` rows plus every `tasks` plane in lockstep; a
        // zip chain would bury the straight-line lane program.
        #[allow(clippy::needless_range_loop)]
        for l in 0..lanes_n {
            // The exact perturbation program of `perturb_element`,
            // without constructing the intermediate element: pure
            // straight-line f64 ops, vectorized across lanes.
            let (zd, zl, zv) = psnt_cells::fastmath::gaussian3_from_uniforms(&[
                u[0][l], u[1][l], u[2][l], u[3][l], u[4][l], u[5][l],
            ]);
            let drive = (1.0 + model.sigma_drive * zd).max(0.5);
            let load_f = (1.0 + model.sigma_load * zl).max(0.5);
            let vth = vth_nom_v + model.sigma_vth.volts() * zv;
            let vth_eff = vth.max(vth_floor_v) + vth_shift_v;
            let a = a_nom / drive;
            let load = load_pf * load_f;
            tasks.ac_ps[l] = a * (c_int_pf + load);
            tasks.t_int_ps[l] = t_int_ps;
            tasks.vth_eff_v[l] = vth_eff;
            tasks.alpha[l] = alpha;
            tasks.window_ps[l] = window_ps;
        }
        let bad = lanes::solve(&tasks, df, &mut out) & lane_mask;
        // A lane's trial error is its *first* failing element, exactly
        // like the scalar per-trial element loop.
        let mut fresh = bad & !errored;
        while fresh != 0 {
            let l = fresh.trailing_zeros() as usize;
            err_lo[l] = lanes::lo_bound_v(tasks.vth_eff_v[l]);
            fresh &= fresh - 1;
        }
        errored |= bad;
        let t0 = nominal[e_idx].volts();
        for l in 0..lanes_n {
            let rail = elem
                .rail_from_effective(Voltage::from_v(out[l]), pvt)
                .volts();
            let shift = (rail - t0).abs();
            abs_sum[l] += shift;
            worst[l] = worst[l].max(shift);
            if rail <= prev_rail[l] {
                monotone &= !(1u64 << l);
            }
            prev_rail[l] = rail;
        }
    }
    if errored != 0 {
        let l = errored.trailing_zeros() as usize;
        return Err(SensorError::Trial {
            index: batch_index * LANES + l,
            source: Box::new(SensorError::ThresholdOutOfRange {
                lo: err_lo[l],
                hi: lanes::hi_bound_v(),
            }),
        });
    }
    Ok(BatchScore {
        lanes: lanes_n,
        monotone,
        abs_sum,
        worst,
        samples: array.elements().len(),
    })
}

/// Draws `n` mismatched copies of `array` and scores their threshold
/// ladders against the nominal one.
///
/// Trials are packed 64 to a machine word and evaluated in lockstep by
/// the [`crate::lanes`] kernel: the engine distributes `⌈n/64⌉` batches,
/// and lane `i` of batch `b` draws from the RNG stream
/// `lane_seed(ctx.seed(), b, 64, i) = split_seed(ctx.seed(), b·64+i)` —
/// the *same* stream trial `b·64+i` consumed before batching existed, so
/// reports are bit-identical to [`monte_carlo_yield_scalar`] and to any
/// worker count. When the context carries an observer, the batch's
/// worker metrics (and the threshold memo's hit/miss tally) are folded
/// into its registry.
///
/// # Errors
///
/// Propagates threshold-search failures as [`SensorError::Trial`],
/// carrying the failing trial's index; when several trials fail, the
/// lowest-indexed trial's error is returned. When the context's
/// supervisor trips (cancellation, deadline, or budget) before every
/// batch has run, returns [`SensorError::Interrupted`].
pub fn monte_carlo_yield(
    ctx: &mut RunCtx<'_>,
    array: &ThermometerArray,
    skew: Time,
    pvt: &Pvt,
    model: &MismatchModel,
    n: usize,
) -> Result<YieldReport, SensorError> {
    let nominal = array.thresholds_ctx(ctx, skew, pvt)?;
    let seed = ctx.seed();
    let batches = n.div_ceil(LANES);
    let batch = ctx.engine().run_batch_supervised(
        &JobSpec::new(batches).seed(seed),
        ctx.supervisor(),
        |job| {
            let b = job.index();
            let lanes_n = LANES.min(n - b * LANES);
            run_lane_batch(array, skew, pvt, model, &nominal, seed, b, lanes_n)
        },
    )?;
    if let Some(obs) = ctx.observer() {
        obs.metrics.merge(&batch.metrics);
    }
    let mut monotone = 0usize;
    let mut abs_sum = 0.0f64;
    let mut worst = 0.0f64;
    let mut samples = 0usize;
    // Fold in trial order (batch-major, lane-minor), so the float
    // accumulation is identical to the serial scalar sweep.
    for score in &batch.results {
        for l in 0..score.lanes {
            if score.monotone & (1u64 << l) != 0 {
                monotone += 1;
            }
            abs_sum += score.abs_sum[l];
            worst = worst.max(score.worst[l]);
            samples += score.samples;
        }
    }
    Ok(YieldReport {
        trials: n,
        monotone,
        mean_abs_shift: if samples == 0 {
            0.0
        } else {
            abs_sum / samples as f64
        },
        worst_shift: worst,
    })
}

/// The scalar reference implementation of [`monte_carlo_yield`]: one
/// trial per engine job, one bisection per element per trial. Kept as
/// the ground truth the batched kernel is proptested against (and the
/// baseline the `mismatch_monte_carlo_3200` bench compares), not for
/// production use.
///
/// # Errors
///
/// Propagates threshold-search failures as [`SensorError::Trial`] with
/// the failing trial's index; the lowest-indexed trial's error wins.
/// When the context's supervisor trips before every trial has run,
/// returns [`SensorError::Interrupted`].
pub fn monte_carlo_yield_scalar(
    ctx: &mut RunCtx<'_>,
    array: &ThermometerArray,
    skew: Time,
    pvt: &Pvt,
    model: &MismatchModel,
    n: usize,
) -> Result<YieldReport, SensorError> {
    let nominal = array.thresholds_ctx(ctx, skew, pvt)?;
    let seed = ctx.seed();
    let batch = ctx.engine().run_batch_supervised(
        &JobSpec::new(n).seed(seed),
        ctx.supervisor(),
        |job| {
            let mut rng = job.rng();
            let drawn = model.perturb_array(array, &mut rng);
            let th = drawn
                .thresholds(skew, pvt)
                .map_err(|e| SensorError::Trial {
                    index: job.index(),
                    source: Box::new(e),
                })?;
            let mut abs_sum = 0.0f64;
            let mut worst = 0.0f64;
            for (t, t0) in th.iter().zip(&nominal) {
                let shift = (*t - *t0).volts().abs();
                abs_sum += shift;
                worst = worst.max(shift);
            }
            Ok::<TrialScore, SensorError>(TrialScore {
                monotone: th.windows(2).all(|w| w[1] > w[0]),
                abs_sum,
                worst,
                samples: th.len(),
            })
        },
    )?;
    if let Some(obs) = ctx.observer() {
        obs.metrics.merge(&batch.metrics);
    }
    let mut monotone = 0usize;
    let mut abs_sum = 0.0f64;
    let mut worst = 0.0f64;
    let mut samples = 0usize;
    // Fold in trial order, so the float accumulation is identical to
    // the serial sweep.
    for score in &batch.results {
        if score.monotone {
            monotone += 1;
        }
        abs_sum += score.abs_sum;
        worst = worst.max(score.worst);
        samples += score.samples;
    }
    Ok(YieldReport {
        trials: n,
        monotone,
        mean_abs_shift: if samples == 0 {
            0.0
        } else {
            abs_sum / samples as f64
        },
        worst_shift: worst,
    })
}

/// [`monte_carlo_yield`] with the trials parallelized on `engine`.
///
/// # Errors
///
/// Propagates threshold-search failures.
#[deprecated(since = "0.1.0", note = "use `monte_carlo_yield` with a `RunCtx`")]
pub fn monte_carlo_yield_on(
    engine: &Engine,
    array: &ThermometerArray,
    skew: Time,
    pvt: &Pvt,
    model: &MismatchModel,
    n: usize,
    seed: u64,
) -> Result<YieldReport, SensorError> {
    monte_carlo_yield(
        &mut RunCtx::new(engine.clone()).with_seed(seed),
        array,
        skew,
        pvt,
        model,
        n,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::RailMode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn array() -> ThermometerArray {
        ThermometerArray::paper(RailMode::Supply)
    }

    fn skew() -> Time {
        Time::from_ps(149.0)
    }

    #[test]
    fn model_validation() {
        assert!(MismatchModel::new(0.02, 0.01, Voltage::from_mv(8.0)).is_ok());
        assert!(MismatchModel::new(-0.1, 0.01, Voltage::from_mv(8.0)).is_err());
        assert!(MismatchModel::new(0.02, 0.01, Voltage::from_mv(-1.0)).is_err());
    }

    #[test]
    fn zero_sigma_is_identity() {
        let model = MismatchModel::new(0.0, 0.0, Voltage::ZERO).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let drawn = model.perturb_array(&array(), &mut rng);
        let a = array().thresholds(skew(), &Pvt::typical()).unwrap();
        let b = drawn.thresholds(skew(), &Pvt::typical()).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - *y).abs() < Voltage::from_mv(0.02));
        }
        let report = monte_carlo_yield(
            &mut RunCtx::serial().with_seed(3),
            &array(),
            skew(),
            &Pvt::typical(),
            &model,
            10,
        )
        .unwrap();
        assert_eq!(report.monotone, 10);
        assert!(report.worst_shift < 1e-4);
    }

    #[test]
    fn gaussian_triples_are_roughly_standard_normal() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 7_000; // triples → 21 000 deviates
        let mut xs = Vec::with_capacity(3 * n);
        for _ in 0..n {
            let (a, b, c) = gaussian_triple(&mut rng);
            xs.extend([a, b, c]);
        }
        let m = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / m;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / m;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn mismatch_scatters_thresholds() {
        let model = MismatchModel::local_90nm();
        let report = monte_carlo_yield(
            &mut RunCtx::serial().with_seed(9),
            &array(),
            skew(),
            &Pvt::typical(),
            &model,
            100,
        )
        .unwrap();
        assert_eq!(report.trials, 100);
        // 2 % drive sigma ⇒ threshold sigma ~20 mV: shifts are visible…
        assert!(
            report.mean_abs_shift > 0.005,
            "mean {}",
            report.mean_abs_shift
        );
        assert!(report.worst_shift > report.mean_abs_shift);
        // …and with ~30 mV element spacing some arrays lose monotonicity,
        // but not all.
        assert!(report.monotone > 0);
        assert!(report.monotone < 100, "expected some order inversions");
    }

    #[test]
    fn yield_degrades_with_sigma() {
        let base = MismatchModel::local_90nm();
        let mut prev = usize::MAX;
        for k in [0.25, 1.0, 3.0] {
            let report = monte_carlo_yield(
                &mut RunCtx::serial().with_seed(11),
                &array(),
                skew(),
                &Pvt::typical(),
                &base.scaled(k),
                120,
            )
            .unwrap();
            assert!(
                report.monotone <= prev,
                "yield should not improve with more mismatch (k={k})"
            );
            prev = report.monotone;
        }
        assert!(prev < 60, "large mismatch should break most arrays");
    }

    #[test]
    fn seeded_reproducibility() {
        let model = MismatchModel::local_90nm();
        let run = |seed: u64| {
            monte_carlo_yield(
                &mut RunCtx::serial().with_seed(seed),
                &array(),
                skew(),
                &Pvt::typical(),
                &model,
                30,
            )
            .unwrap()
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a, b);
        let c = run(6);
        assert_ne!(a, c);
    }

    #[test]
    fn cancelled_supervisor_interrupts_monte_carlo() {
        let model = MismatchModel::local_90nm();
        let token = psnt_sup::CancelToken::new();
        token.cancel();
        let sup = psnt_sup::Supervisor::new(token, psnt_sup::RunBudget::unlimited());
        let mut ctx = RunCtx::serial().with_seed(5).with_supervisor(sup);
        let err =
            monte_carlo_yield(&mut ctx, &array(), skew(), &Pvt::typical(), &model, 30).unwrap_err();
        assert_eq!(
            err,
            SensorError::Interrupted(psnt_sup::Interrupt::Cancelled)
        );
        let err = monte_carlo_yield_scalar(&mut ctx, &array(), skew(), &Pvt::typical(), &model, 30)
            .unwrap_err();
        assert_eq!(
            err,
            SensorError::Interrupted(psnt_sup::Interrupt::Cancelled)
        );
    }

    #[test]
    fn detached_supervisor_yield_is_bit_identical() {
        let model = MismatchModel::local_90nm();
        let baseline = monte_carlo_yield(
            &mut RunCtx::serial().with_seed(5),
            &array(),
            skew(),
            &Pvt::typical(),
            &model,
            30,
        )
        .unwrap();
        // An explicit detached supervisor (the default) must not perturb
        // the sweep: same trials, same fold order, same floats.
        let supervised = monte_carlo_yield(
            &mut RunCtx::serial()
                .with_seed(5)
                .with_supervisor(psnt_sup::Supervisor::detached()),
            &array(),
            skew(),
            &Pvt::typical(),
            &model,
            30,
        )
        .unwrap();
        assert_eq!(baseline, supervised);
    }

    #[test]
    fn parallel_yield_is_bit_identical_to_serial() {
        let model = MismatchModel::local_90nm();
        let serial = monte_carlo_yield(
            &mut RunCtx::serial().with_seed(5),
            &array(),
            skew(),
            &Pvt::typical(),
            &model,
            40,
        )
        .unwrap();
        for jobs in [1usize, 2, 7] {
            let parallel = monte_carlo_yield(
                &mut RunCtx::new(Engine::new(jobs)).with_seed(5),
                &array(),
                skew(),
                &Pvt::typical(),
                &model,
                40,
            )
            .unwrap();
            assert_eq!(parallel, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn batched_yield_is_bit_identical_to_scalar() {
        let model = MismatchModel::local_90nm();
        // 100 trials = one full batch + a ragged 36-lane tail.
        let scalar = monte_carlo_yield_scalar(
            &mut RunCtx::serial().with_seed(5),
            &array(),
            skew(),
            &Pvt::typical(),
            &model,
            100,
        )
        .unwrap();
        let batched = monte_carlo_yield(
            &mut RunCtx::serial().with_seed(5),
            &array(),
            skew(),
            &Pvt::typical(),
            &model,
            100,
        )
        .unwrap();
        assert_eq!(batched, scalar);
        assert_eq!(
            batched.mean_abs_shift.to_bits(),
            scalar.mean_abs_shift.to_bits()
        );
        assert_eq!(batched.worst_shift.to_bits(), scalar.worst_shift.to_bits());
    }

    #[test]
    fn trial_error_carries_lowest_failing_index() {
        // A huge load sigma drives some trial's element off the search
        // bracket; both paths must name the same (lowest) trial.
        let model = MismatchModel::new(0.02, 60.0, Voltage::from_mv(8.0)).unwrap();
        let run_scalar = monte_carlo_yield_scalar(
            &mut RunCtx::serial().with_seed(5),
            &array(),
            skew(),
            &Pvt::typical(),
            &model,
            100,
        );
        let run_batched = monte_carlo_yield(
            &mut RunCtx::serial().with_seed(5),
            &array(),
            skew(),
            &Pvt::typical(),
            &model,
            100,
        );
        let scalar_err = run_scalar.unwrap_err();
        let batched_err = run_batched.unwrap_err();
        let SensorError::Trial { index, ref source } = scalar_err else {
            panic!("expected Trial error, got {scalar_err}");
        };
        assert!(matches!(**source, SensorError::ThresholdOutOfRange { .. }));
        // Ground truth: replay trials serially and find the first failure.
        let mut first_failing = None;
        for k in 0..100usize {
            let mut rng = StdRng::seed_from_u64(psnt_engine::split_seed(5, k as u64));
            let drawn = model.perturb_array(&array(), &mut rng);
            if drawn.thresholds(skew(), &Pvt::typical()).is_err() {
                first_failing = Some(k);
                break;
            }
        }
        assert_eq!(Some(index), first_failing, "scalar index");
        assert_eq!(batched_err, scalar_err, "batched error must match scalar");
    }

    #[test]
    fn yield_fraction_math() {
        let r = YieldReport {
            trials: 40,
            monotone: 30,
            mean_abs_shift: 0.01,
            worst_shift: 0.03,
        };
        assert!((r.yield_fraction() - 0.75).abs() < 1e-12);
        let empty = YieldReport {
            trials: 0,
            monotone: 0,
            mean_abs_shift: 0.0,
            worst_shift: 0.0,
        };
        assert_eq!(empty.yield_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn scaled_rejects_negative() {
        let _ = MismatchModel::local_90nm().scaled(-1.0);
    }
}
