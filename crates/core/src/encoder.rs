//! The ENC block: thermometer-to-binary encoding of the array outputs.
//!
//! The paper's FF arrays feed an encoder "which encodes \[them\] in a noise
//! word OUTE" consumed by the control block and the external interface.
//! Like a flash ADC's encoder, it must tolerate non-ideal codes: a
//! metastable boundary element can produce a bubble, and an unresolved
//! output can read as `X`. Two policies are provided and compared by the
//! `xp_encoding` ablation bench:
//!
//! * [`EncodingPolicy::Truncate`] — trust the first 0→1 transition
//!   scanning from the most-loaded element (cheapest hardware: a priority
//!   chain);
//! * [`EncodingPolicy::BubbleCorrect`] — majority-style correction to the
//!   nearest canonical code before encoding (one extra gate layer).
//!
//! # Examples
//!
//! ```
//! use psnt_core::code::ThermometerCode;
//! use psnt_core::encoder::{Encoder, EncodingPolicy};
//!
//! let enc = Encoder::new(7, EncodingPolicy::BubbleCorrect)?;
//! let word = enc.encode(&"0011111".parse()?);
//! assert_eq!(word.level, 5);
//! assert!(!word.underflow && !word.overflow && !word.bubbled);
//! # Ok::<(), psnt_core::error::SensorError>(())
//! ```

use serde::{Deserialize, Serialize};

use psnt_cells::logic::{Logic, LogicVector};

use crate::code::ThermometerCode;
use crate::error::SensorError;

/// How non-canonical codes are handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum EncodingPolicy {
    /// Priority-chain behaviour: the level is the number of passing
    /// elements counted from the most-loaded end up to the first failure
    /// below an already-passing element (bubbles *below* the boundary are
    /// ignored; bubbles above truncate).
    Truncate,
    /// Correct to the nearest canonical code first (counts all passes;
    /// `X` weighs half).
    #[default]
    BubbleCorrect,
}

/// The encoded noise word (the paper's `OUTE`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OuteWord {
    /// The thermometer level (number of passing elements), 0..=width.
    pub level: usize,
    /// Binary form of `level`, MSB first, `ceil(log2(width+1))` bits.
    pub binary: LogicVector,
    /// All elements failed: the rail is below the dynamic range.
    pub underflow: bool,
    /// No element failed: the rail is above the dynamic range.
    pub overflow: bool,
    /// The raw code was non-canonical (bubble or unresolved bit).
    pub bubbled: bool,
}

/// The thermometer-to-binary encoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Encoder {
    width: usize,
    policy: EncodingPolicy,
}

impl Encoder {
    /// Creates an encoder for `width`-bit arrays.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidConfig`] for zero width.
    pub fn new(width: usize, policy: EncodingPolicy) -> Result<Encoder, SensorError> {
        if width == 0 {
            return Err(SensorError::InvalidConfig {
                name: "width",
                reason: "encoder width must be positive".into(),
            });
        }
        Ok(Encoder { width, policy })
    }

    /// The array width this encoder expects.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The bubble policy.
    pub fn policy(&self) -> EncodingPolicy {
        self.policy
    }

    /// Output word size in bits.
    pub fn binary_bits(&self) -> usize {
        (usize::BITS - self.width.leading_zeros()) as usize
    }

    /// Encodes a code into an [`OuteWord`].
    ///
    /// # Panics
    ///
    /// Panics if the code width differs from the encoder width.
    pub fn encode(&self, code: &ThermometerCode) -> OuteWord {
        assert_eq!(
            code.width(),
            self.width,
            "encoder width {} vs code width {}",
            self.width,
            code.width()
        );
        let bubbled = !code.is_canonical();
        let level = match self.policy {
            EncodingPolicy::BubbleCorrect => code.correct_bubbles().level(),
            EncodingPolicy::Truncate => {
                // Scan from the most-loaded element: count definite 1s
                // after the last leading failure; the first 0 *after* a 1
                // truncates the level (priority-encoder behaviour).
                let mut level = 0usize;
                let mut counting = false;
                for b in code.bits().iter() {
                    match b {
                        Logic::One => {
                            counting = true;
                            level += 1;
                        }
                        _ if counting => break,
                        _ => {}
                    }
                }
                level
            }
        };
        OuteWord {
            level,
            binary: LogicVector::from_u64(level as u64, self.binary_bits()),
            underflow: level == 0,
            overflow: level == self.width,
            bubbled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn enc(policy: EncodingPolicy) -> Encoder {
        Encoder::new(7, policy).unwrap()
    }

    fn code(s: &str) -> ThermometerCode {
        s.parse().unwrap()
    }

    #[test]
    fn width_validation() {
        assert!(Encoder::new(0, EncodingPolicy::Truncate).is_err());
        assert_eq!(
            Encoder::new(7, EncodingPolicy::Truncate).unwrap().width(),
            7
        );
    }

    #[test]
    fn binary_bits_sizing() {
        assert_eq!(
            Encoder::new(7, EncodingPolicy::default())
                .unwrap()
                .binary_bits(),
            3
        );
        assert_eq!(
            Encoder::new(8, EncodingPolicy::default())
                .unwrap()
                .binary_bits(),
            4
        );
        assert_eq!(
            Encoder::new(1, EncodingPolicy::default())
                .unwrap()
                .binary_bits(),
            1
        );
    }

    #[test]
    fn canonical_codes_encode_identically_under_both_policies() {
        for fails in 0..=7 {
            let c = ThermometerCode::from_fail_count(fails, 7);
            let a = enc(EncodingPolicy::Truncate).encode(&c);
            let b = enc(EncodingPolicy::BubbleCorrect).encode(&c);
            assert_eq!(a, b, "{c}");
            assert_eq!(a.level, 7 - fails);
            assert!(!a.bubbled);
        }
    }

    #[test]
    fn saturation_flags() {
        let under = enc(EncodingPolicy::default()).encode(&code("0000000"));
        assert!(under.underflow && !under.overflow);
        assert_eq!(under.binary.to_string(), "000");
        let over = enc(EncodingPolicy::default()).encode(&code("1111111"));
        assert!(over.overflow && !over.underflow);
        assert_eq!(over.binary.to_string(), "111");
    }

    #[test]
    fn bubble_handling_differs_between_policies() {
        // 0101111: a pass at position 1 interrupted by a fail at 2.
        let bubbly = code("0101111");
        let trunc = enc(EncodingPolicy::Truncate).encode(&bubbly);
        // Priority scan: first 1 at index 1, then 0 at index 2 truncates.
        assert_eq!(trunc.level, 1);
        assert!(trunc.bubbled);
        let fixed = enc(EncodingPolicy::BubbleCorrect).encode(&bubbly);
        // Majority: 5 ones.
        assert_eq!(fixed.level, 5);
        assert!(fixed.bubbled);
    }

    #[test]
    fn unresolved_bits_flag_and_weigh_half() {
        let c = code("00x1111");
        let word = enc(EncodingPolicy::BubbleCorrect).encode(&c);
        assert!(word.bubbled);
        assert_eq!(word.level, 4);
        assert_eq!(word.binary.to_string(), "100");
    }

    #[test]
    #[should_panic(expected = "encoder width")]
    fn wrong_width_panics() {
        enc(EncodingPolicy::default()).encode(&code("01"));
    }

    #[test]
    fn paper_fig9_words() {
        let e = enc(EncodingPolicy::default());
        assert_eq!(e.encode(&code("0011111")).level, 5);
        assert_eq!(e.encode(&code("0000011")).level, 2);
        assert_eq!(e.encode(&code("0011111")).binary.to_string(), "101");
        assert_eq!(e.encode(&code("0000011")).binary.to_string(), "010");
    }

    proptest! {
        #[test]
        fn level_bounded(s in "[01x]{7}") {
            for policy in [EncodingPolicy::Truncate, EncodingPolicy::BubbleCorrect] {
                let word = enc(policy).encode(&code(&s));
                prop_assert!(word.level <= 7);
                prop_assert_eq!(word.underflow, word.level == 0);
                prop_assert_eq!(word.overflow, word.level == 7);
            }
        }

        #[test]
        fn binary_roundtrips_level(s in "[01]{7}") {
            let word = enc(EncodingPolicy::BubbleCorrect).encode(&code(&s));
            prop_assert_eq!(word.binary.to_u64(), Some(word.level as u64));
        }

        #[test]
        fn bubbled_iff_not_canonical(s in "[01x]{7}") {
            let c = code(&s);
            let word = enc(EncodingPolicy::default()).encode(&c);
            prop_assert_eq!(word.bubbled, !c.is_canonical());
        }
    }
}
