//! The pulse generator (PG) block — paper Fig. 7 and the delay-code table.
//!
//! The PG receives the raw `P`/`CP` pulses from the control block and
//! re-emits them with a *trimmed* relative delay selected by a 3-bit
//! delay code. The paper's table:
//!
//! | code | 000 | 001 | 010 | 011 | 100 | 101 | 110 | 111 |
//! |------|-----|-----|-----|-----|-----|-----|-----|-----|
//! | CP delay (ps) | 26 | 40 | 50 | 65 | 77 | 92 | 100 | 107 |
//!
//! Two structural details from Fig. 7 are modelled faithfully:
//!
//! * the selecting **MUX adds its own delay, so an identical MUX sits on
//!   the `P` path** — the mux delays cancel and only the table value
//!   skews `CP` against `P`;
//! * the CP branch carries a fixed buffer-chain insertion delay (the
//!   84 ps clock-path offset of `DESIGN.md` §2) which, net of the FF
//!   setup time, gives the 54 ps base sense window.
//!
//! The delay elements are standard-cell inverters, so the emitted delays
//! scale with process corner and temperature like everything else —
//! exactly the property the paper exploits to trim corners.
//!
//! # Examples
//!
//! ```
//! use psnt_core::pulsegen::{DelayCode, PulseGenerator};
//!
//! let pg = PulseGenerator::paper_table();
//! let code = DelayCode::new(3)?;
//! assert_eq!(pg.cp_delay(code).picoseconds(), 65.0);
//! # Ok::<(), psnt_core::error::SensorError>(())
//! ```

use std::fmt;

use psnt_cells::process::Pvt;
use psnt_cells::units::Time;
use serde::{Deserialize, Serialize};

use crate::error::SensorError;

/// A 3-bit delay-code selecting one PG delay-line tap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DelayCode(u8);

impl DelayCode {
    /// Creates a code, checking it against the paper's 8-entry table.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidDelayCode`] for values above 7.
    pub fn new(code: u8) -> Result<DelayCode, SensorError> {
        if code > 7 {
            return Err(SensorError::InvalidDelayCode { code, table_len: 8 });
        }
        Ok(DelayCode(code))
    }

    /// The raw 3-bit value.
    pub fn value(self) -> u8 {
        self.0
    }

    /// All eight codes in ascending order.
    pub fn all() -> [DelayCode; 8] {
        [0, 1, 2, 3, 4, 5, 6, 7].map(DelayCode)
    }
}

impl fmt::Display for DelayCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:03b}", self.0)
    }
}

impl TryFrom<u8> for DelayCode {
    type Error = SensorError;

    fn try_from(v: u8) -> Result<DelayCode, SensorError> {
        DelayCode::new(v)
    }
}

/// Timing of one emitted pulse pair, relative to the control block's raw
/// `P` edge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PulseTiming {
    /// When the (delayed) `P` edge reaches the sense inverter inputs.
    pub p_edge: Time,
    /// When the (delayed) `CP` edge reaches the FF clock pins.
    pub cp_edge: Time,
}

impl PulseTiming {
    /// The P→CP skew at the sensor pins — the quantity that sets the
    /// sense window.
    pub fn skew(&self) -> Time {
        self.cp_edge - self.p_edge
    }
}

/// The pulse-generator model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PulseGenerator {
    /// Tap delays at the typical corner, indexed by delay code.
    taps: Vec<Time>,
    /// Fixed CP-branch insertion (buffer chain) delay, typical corner.
    insertion: Time,
    /// Delay of each (matched) output MUX, typical corner.
    mux_delay: Time,
}

impl PulseGenerator {
    /// The PG with the paper's published tap table, an 84 ps CP-branch
    /// insertion delay and 34 ps matched MUXes.
    pub fn paper_table() -> PulseGenerator {
        PulseGenerator {
            taps: [26.0, 40.0, 50.0, 65.0, 77.0, 92.0, 100.0, 107.0]
                .into_iter()
                .map(Time::from_ps)
                .collect(),
            insertion: Time::from_ps(84.0),
            mux_delay: Time::from_ps(34.0),
        }
    }

    /// A PG with a custom monotone tap table.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidConfig`] when the table is empty or
    /// not strictly increasing, or any delay is non-positive.
    pub fn with_taps(
        taps: Vec<Time>,
        insertion: Time,
        mux_delay: Time,
    ) -> Result<PulseGenerator, SensorError> {
        if taps.is_empty() {
            return Err(SensorError::InvalidConfig {
                name: "taps",
                reason: "table must be non-empty".into(),
            });
        }
        if taps.iter().any(|&t| t <= Time::ZERO) {
            return Err(SensorError::InvalidConfig {
                name: "taps",
                reason: "tap delays must be positive".into(),
            });
        }
        if taps.windows(2).any(|w| w[1] <= w[0]) {
            return Err(SensorError::InvalidConfig {
                name: "taps",
                reason: "tap delays must be strictly increasing".into(),
            });
        }
        if insertion < Time::ZERO || mux_delay < Time::ZERO {
            return Err(SensorError::InvalidConfig {
                name: "insertion/mux_delay",
                reason: "must be non-negative".into(),
            });
        }
        Ok(PulseGenerator {
            taps,
            insertion,
            mux_delay,
        })
    }

    /// Number of table entries.
    pub fn tap_count(&self) -> usize {
        self.taps.len()
    }

    /// The selectable CP tap delay at the typical corner (the table value).
    ///
    /// # Panics
    ///
    /// Panics if `code` exceeds the table (cannot happen for
    /// [`DelayCode`] against the 8-entry paper table).
    pub fn cp_delay(&self, code: DelayCode) -> Time {
        self.taps[code.value() as usize]
    }

    /// The CP tap delay scaled by the operating point (the delay line is
    /// built from inverters, so slow silicon stretches it).
    pub fn cp_delay_at(&self, code: DelayCode, pvt: &Pvt) -> Time {
        self.cp_delay(code) / pvt.drive_factor()
    }

    /// The fixed CP-branch insertion delay at the operating point.
    pub fn insertion_at(&self, pvt: &Pvt) -> Time {
        self.insertion / pvt.drive_factor()
    }

    /// Emits one pulse pair for the given code at the operating point,
    /// relative to the raw control-block edge at t = 0. Both paths carry
    /// one MUX; the mux delays cancel in the skew.
    pub fn emit(&self, code: DelayCode, pvt: &Pvt) -> PulseTiming {
        let mux = self.mux_delay / pvt.drive_factor();
        PulseTiming {
            p_edge: mux,
            cp_edge: mux + self.insertion_at(pvt) + self.cp_delay_at(code, pvt),
        }
    }

    /// The P→CP skew for a code at the operating point:
    /// `insertion + tap(code)`, independent of the matched MUX delay.
    pub fn skew(&self, code: DelayCode, pvt: &Pvt) -> Time {
        self.emit(code, pvt).skew()
    }

    /// Formats the delay-code table like the paper prints it.
    pub fn table_report(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("Delay Code ");
        for i in 0..self.taps.len() {
            let _ = write!(s, "{:>6}", format!("{:03b}", i));
        }
        s.push_str("\nCP delay   ");
        for t in &self.taps {
            let _ = write!(s, "{:>6}", format!("{:.0}", t.picoseconds()));
        }
        s.push_str(" [ps]");
        s
    }
}

impl Default for PulseGenerator {
    fn default() -> PulseGenerator {
        PulseGenerator::paper_table()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psnt_cells::process::ProcessCorner;
    use psnt_cells::units::{Temperature, Voltage};

    #[test]
    fn delay_code_validation() {
        assert!(DelayCode::new(7).is_ok());
        assert!(matches!(
            DelayCode::new(8),
            Err(SensorError::InvalidDelayCode { code: 8, .. })
        ));
        assert_eq!(DelayCode::try_from(5).unwrap().value(), 5);
        assert_eq!(DelayCode::all().len(), 8);
    }

    #[test]
    fn delay_code_displays_as_binary() {
        assert_eq!(DelayCode::new(3).unwrap().to_string(), "011");
        assert_eq!(DelayCode::new(0).unwrap().to_string(), "000");
    }

    #[test]
    fn paper_table_values_exact() {
        // The published table: 26, 40, 50, 65, 77, 92, 100, 107 ps.
        let pg = PulseGenerator::paper_table();
        let expected = [26.0, 40.0, 50.0, 65.0, 77.0, 92.0, 100.0, 107.0];
        for (i, &e) in expected.iter().enumerate() {
            let code = DelayCode::new(i as u8).unwrap();
            assert_eq!(pg.cp_delay(code).picoseconds(), e, "code {code}");
        }
    }

    #[test]
    fn taps_strictly_increasing() {
        let pg = PulseGenerator::paper_table();
        for w in DelayCode::all().windows(2) {
            assert!(pg.cp_delay(w[1]) > pg.cp_delay(w[0]));
        }
    }

    #[test]
    fn mux_skew_cancels() {
        // The whole point of the matched MUX on the P path (Fig. 7): the
        // skew must not depend on the mux delay.
        let pvt = Pvt::typical();
        let code = DelayCode::new(3).unwrap();
        let a = PulseGenerator::with_taps(
            vec![Time::from_ps(65.0)],
            Time::from_ps(84.0),
            Time::from_ps(10.0),
        )
        .unwrap();
        let b = PulseGenerator::with_taps(
            vec![Time::from_ps(65.0)],
            Time::from_ps(84.0),
            Time::from_ps(500.0),
        )
        .unwrap();
        let c0 = DelayCode::new(0).unwrap();
        assert_eq!(a.skew(c0, &pvt), b.skew(c0, &pvt));
        // And for the paper table, skew = insertion + tap.
        let pg = PulseGenerator::paper_table();
        assert_eq!(pg.skew(code, &pvt), Time::from_ps(84.0 + 65.0));
    }

    #[test]
    fn slow_corner_stretches_delays() {
        let pg = PulseGenerator::paper_table();
        let code = DelayCode::new(3).unwrap();
        let tt = Pvt::typical();
        let ss = Pvt::new(
            ProcessCorner::SS,
            Voltage::from_v(1.0),
            Temperature::from_celsius(25.0),
        );
        assert!(pg.cp_delay_at(code, &ss) > pg.cp_delay_at(code, &tt));
        assert!(pg.skew(code, &ss) > pg.skew(code, &tt));
    }

    #[test]
    fn emit_orders_edges() {
        let pg = PulseGenerator::paper_table();
        let t = pg.emit(DelayCode::new(0).unwrap(), &Pvt::typical());
        assert!(t.cp_edge > t.p_edge);
        assert_eq!(t.skew(), Time::from_ps(84.0 + 26.0));
    }

    #[test]
    fn custom_table_validation() {
        let ps = Time::from_ps;
        assert!(PulseGenerator::with_taps(vec![], ps(80.0), ps(30.0)).is_err());
        assert!(PulseGenerator::with_taps(vec![ps(0.0)], ps(80.0), ps(30.0)).is_err());
        assert!(PulseGenerator::with_taps(vec![ps(20.0), ps(20.0)], ps(80.0), ps(30.0)).is_err());
        assert!(PulseGenerator::with_taps(vec![ps(20.0), ps(30.0)], ps(-1.0), ps(30.0)).is_err());
        assert!(PulseGenerator::with_taps(vec![ps(20.0), ps(30.0)], ps(80.0), ps(30.0)).is_ok());
    }

    #[test]
    fn table_report_matches_paper_layout() {
        let report = PulseGenerator::paper_table().table_report();
        assert!(report.contains("Delay Code"));
        assert!(report.contains("011"));
        assert!(report.contains("65"));
        assert!(report.contains("107"));
        assert!(report.contains("[ps]"));
    }
}
