//! # psnt-core — the fully digital power supply noise thermometer
//!
//! This crate implements the primary contribution of
//! *“A fully digital power supply noise thermometer”* (M. Graziano and
//! M. D. Vittori, IEEE SOCC 2009): a standard-cell-based sensor that
//! converts the instantaneous on-die supply (or ground) voltage into a
//! thermometer-coded digital word, usable both for verification readout
//! and for on-chip power-aware policies.
//!
//! The layers map one-to-one onto the paper's figures:
//!
//! * [`element`] — the INV + C + FF key element (Fig. 1 left, Fig. 2);
//! * [`thermometer`] — the 7-bit array with its capacitor ladder
//!   (Fig. 1 right, Figs. 4–5), plus code↔voltage decoding;
//! * [`code`] — thermometer codes, bubbles and correction;
//! * [`pulsegen`] — the PG block with the published delay-code table
//!   (Fig. 7);
//! * [`control`] — the CNTR FSM (Fig. 8), behavioural *and* gate-level
//!   (reproducing the 1.22 ns critical-path claim);
//! * [`gate_level`] — the array as an actual standard-cell netlist with
//!   a separate noisy power domain, equivalence-checked against the
//!   behavioural model;
//! * [`encoder`] — the ENC block producing the `OUTE` noise word;
//! * [`system`] — the assembled HIGH-SENSE/LOW-SENSE system (Figs. 6, 9);
//! * [`policy`] — power-aware consumers of the measurements (noise
//!   alarm, guard-banded DVFS governor);
//! * [`calibration`] — characterisation sweeps and the
//!   process-variation delay-code trim;
//! * [`mismatch`] — local-mismatch Monte-Carlo (thermometer-property
//!   yield under within-die variation);
//! * [`lanes`] — the 64-wide lockstep threshold kernel behind the
//!   batched Monte-Carlo (DESIGN.md §14);
//! * [`baseline`] — the comparison systems from the paper's related work
//!   (ring-oscillator sensor, Razor, error-probability monitor).
//!
//! # Quickstart
//!
//! ```
//! use psnt_cells::units::{Time, Voltage};
//! use psnt_core::system::{SensorConfig, SensorSystem};
//! use psnt_ctx::RunCtx;
//! use psnt_pdn::sources::supply_step;
//! use psnt_pdn::waveform::Waveform;
//!
//! // The paper's Fig. 9 scenario: two measures across a 1.0 → 0.9 V step.
//! let mut sensor = SensorSystem::new(SensorConfig::default())?;
//! let mut ctx = RunCtx::serial();
//! let vdd = supply_step(
//!     Voltage::from_v(1.0), Voltage::from_v(0.9),
//!     Time::from_ns(15.0), Time::from_us(1.0),
//! )?;
//! let measures = sensor.run(&mut ctx, &vdd, &Waveform::constant(0.0), Time::ZERO, 2)?;
//! assert_eq!(measures[0].hs_code.to_string(), "0011111");
//! assert_eq!(measures[1].hs_code.to_string(), "0000011");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baseline;
pub mod calibration;
pub mod code;
pub mod control;
pub mod element;
pub mod encoder;
pub mod error;
pub mod gate_level;
pub mod lanes;
pub mod mismatch;
pub mod policy;
pub mod pulsegen;
pub mod system;
pub mod thermometer;

pub use calibration::{
    array_characteristic, linear_fit, sensitivity_characteristic, trim_for_corner,
    ArrayCharacteristic, SensitivityPoint, TrimResult,
};
pub use code::ThermometerCode;
pub use control::{
    build_control_netlist, Controller, CtrlInputs, CtrlNetlistConfig, CtrlOutputs, CtrlState,
};
pub use element::{ElementReading, RailMode, SenseElement};
pub use encoder::{Encoder, EncodingPolicy, OuteWord};
pub use error::SensorError;
pub use gate_level::{GateLevelArray, GateLevelMeasure, GateLevelPulseGen, GateLevelSystem};
pub use mismatch::{monte_carlo_yield, monte_carlo_yield_scalar, MismatchModel, YieldReport};
pub use policy::{AutoRanger, DvfsGovernor, GovernorAction, NoiseAlarm};
pub use pulsegen::{DelayCode, PulseGenerator, PulseTiming};
pub use system::{Measurement, SensorConfig, SensorSystem};
pub use thermometer::{CapacitorLadder, CodeInterval, ThermometerArray};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::SensorSystem>();
        assert_send_sync::<crate::ThermometerArray>();
        assert_send_sync::<crate::Measurement>();
        assert_send_sync::<crate::SensorError>();
    }
}
