//! The complete sensor system — paper Fig. 6.
//!
//! A [`SensorSystem`] bundles the HIGH-SENSE array (observing `VDD-n`),
//! the LOW-SENSE array (observing `GND-n`), the pulse generator, the
//! control FSM and the encoder. It runs the PREPARE/SENSE sequence
//! against supply and ground *waveforms* (from `psnt-pdn`), producing a
//! stream of timestamped [`Measurement`]s — the digital noise samples the
//! paper would ship off-chip for verification or hand to an on-chip
//! power-aware policy.
//!
//! The separation of the two arrays follows the paper: "HS-INV have
//! nominal Ground, and, viceversa, LS-INV have nominal PS", so the two
//! rails are measured independently and without interference — the
//! property the ring-oscillator baseline in [`crate::baseline`]
//! fundamentally lacks.
//!
//! # Examples
//!
//! ```
//! use psnt_cells::units::Time;
//! use psnt_core::system::{SensorConfig, SensorSystem};
//! use psnt_ctx::RunCtx;
//! use psnt_pdn::waveform::Waveform;
//!
//! let mut system = SensorSystem::new(SensorConfig::default())?;
//! let mut ctx = RunCtx::serial();
//! let vdd = Waveform::constant(1.0);
//! let gnd = Waveform::constant(0.0);
//! let measures = system.run(&mut ctx, &vdd, &gnd, Time::ZERO, 2)?;
//! assert_eq!(measures.len(), 2);
//! assert_eq!(measures[0].hs_code.to_string(), "0011111"); // Fig. 9
//! # Ok::<(), psnt_core::error::SensorError>(())
//! ```

use psnt_cells::process::Pvt;
use psnt_cells::units::{Time, Voltage};
use psnt_ctx::RunCtx;
use psnt_obs::{Event as ObsEvent, Observer};
use psnt_pdn::waveform::Waveform;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::calibration::{trim_for_corner, TrimResult};
use crate::code::ThermometerCode;
use crate::control::{Controller, CtrlInputs, CtrlState};
use crate::element::RailMode;
use crate::encoder::{Encoder, EncodingPolicy, OuteWord};
use crate::error::SensorError;
use crate::pulsegen::{DelayCode, PulseGenerator};
use crate::thermometer::{CodeInterval, ThermometerArray};

/// Static configuration of a sensor system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorConfig {
    /// Delay code for the HIGH-SENSE (VDD) array.
    pub hs_code: DelayCode,
    /// Delay code for the LOW-SENSE (GND) array.
    pub ls_code: DelayCode,
    /// The control-system clock period (must exceed the CNTR critical
    /// path; the paper's 1.22 ns supports "most typical CUT clocks").
    pub clock_period: Time,
    /// Operating point of the clean (control) domain.
    pub pvt: Pvt,
    /// Bubble-handling policy of the ENC block.
    pub encoding: EncodingPolicy,
}

impl Default for SensorConfig {
    fn default() -> SensorConfig {
        SensorConfig {
            // Delay code 011, the code Fig. 9 demonstrates.
            hs_code: DelayCode::new(3).expect("static code"),
            ls_code: DelayCode::new(3).expect("static code"),
            clock_period: Time::from_ns(2.0),
            pvt: Pvt::typical(),
            encoding: EncodingPolicy::BubbleCorrect,
        }
    }
}

/// One complete two-rail measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// The SENSE instant (CP edge at the sensor pins).
    pub at: Time,
    /// Raw HIGH-SENSE thermometer code.
    pub hs_code: ThermometerCode,
    /// Raw LOW-SENSE thermometer code.
    pub ls_code: ThermometerCode,
    /// Encoded HS noise word.
    pub hs_word: OuteWord,
    /// Encoded LS noise word.
    pub ls_word: OuteWord,
    /// Decoded VDD-n interval.
    pub hs_interval: CodeInterval,
    /// Decoded GND-n interval.
    pub ls_interval: CodeInterval,
}

/// The assembled sensor system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorSystem {
    hs: ThermometerArray,
    ls: ThermometerArray,
    pg: PulseGenerator,
    #[serde(skip, default = "default_controller")]
    ctrl: Controller,
    hs_encoder: Encoder,
    ls_encoder: Encoder,
    config: SensorConfig,
}

fn default_controller() -> Controller {
    Controller::new(None)
}

impl SensorSystem {
    /// Builds the paper's system: two 7-bit arrays over the Fig. 5
    /// ladder, the published PG table, and the Fig. 8 controller.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidConfig`] for a clock period that the
    /// control system cannot meet (below 1.5 ns).
    pub fn new(config: SensorConfig) -> Result<SensorSystem, SensorError> {
        if config.clock_period < Time::from_ps(1500.0) {
            return Err(SensorError::InvalidConfig {
                name: "clock_period",
                reason: format!(
                    "{} is below the CNTR critical path headroom (1.5 ns floor)",
                    config.clock_period
                ),
            });
        }
        let hs = ThermometerArray::paper(RailMode::Supply);
        let ls = ThermometerArray::paper(RailMode::Ground);
        let hs_encoder = Encoder::new(hs.bits(), config.encoding)?;
        let ls_encoder = Encoder::new(ls.bits(), config.encoding)?;
        Ok(SensorSystem {
            hs,
            ls,
            pg: PulseGenerator::paper_table(),
            ctrl: Controller::new(None),
            hs_encoder,
            ls_encoder,
            config,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &SensorConfig {
        &self.config
    }

    /// The HIGH-SENSE array.
    pub fn hs_array(&self) -> &ThermometerArray {
        &self.hs
    }

    /// The LOW-SENSE array.
    pub fn ls_array(&self) -> &ThermometerArray {
        &self.ls
    }

    /// The pulse generator.
    pub fn pulse_generator(&self) -> &PulseGenerator {
        &self.pg
    }

    /// Reprograms the delay codes on-site — the paper's dynamic-range
    /// adaptation.
    pub fn set_delay_codes(&mut self, hs: DelayCode, ls: DelayCode) {
        self.config.hs_code = hs;
        self.config.ls_code = ls;
    }

    /// Retrims both arrays' delay codes for a different operating point
    /// against the current typical characteristic — the paper's
    /// process-variation-aware configuration. Returns the (HS, LS) trim
    /// results and applies the codes.
    ///
    /// The code sweep runs on the context's engine; when the context
    /// carries an observer, the chosen codes and residuals of each trim
    /// decision are logged as a `sensor`/`trim` event.
    ///
    /// # Errors
    ///
    /// Propagates characterisation failures.
    pub fn trim(
        &mut self,
        ctx: &mut RunCtx<'_>,
        corner: &Pvt,
    ) -> Result<(TrimResult, TrimResult), SensorError> {
        let hs_trim = trim_for_corner(
            ctx,
            &self.hs,
            &self.pg,
            self.config.hs_code,
            &self.config.pvt,
            corner,
        )?;
        let ls_trim = trim_for_corner(
            ctx,
            &self.ls,
            &self.pg,
            self.config.ls_code,
            &self.config.pvt,
            corner,
        )?;
        self.config.hs_code = hs_trim.code;
        self.config.ls_code = ls_trim.code;
        self.config.pvt = *corner;
        if let Some(obs) = ctx.observer() {
            obs.metrics.counter_add("sensor.trims", 1);
            obs.event(
                ObsEvent::new("sensor", "trim")
                    .field("corner", &format!("{:?}", corner.corner))
                    .field("hs_code", &hs_trim.code.value())
                    .field("ls_code", &ls_trim.code.value())
                    .field("hs_residual_mv", &(hs_trim.residual.volts() * 1e3))
                    .field("ls_residual_mv", &(ls_trim.residual.volts() * 1e3)),
            );
        }
        Ok((hs_trim, ls_trim))
    }

    /// [`SensorSystem::trim`] with an explicit optional observer.
    ///
    /// # Errors
    ///
    /// Propagates characterisation failures.
    #[deprecated(since = "0.1.0", note = "use `trim` with a `RunCtx`")]
    pub fn trim_observed(
        &mut self,
        corner: &Pvt,
        observer: Option<&mut Observer>,
    ) -> Result<(TrimResult, TrimResult), SensorError> {
        self.trim(&mut RunCtx::serial().with_observer_opt(observer), corner)
    }

    /// The PREPARE-phase output of the HS array — always the all-fail
    /// pattern (`0000000` in the paper's Fig. 9 annotation).
    pub fn hs_prepare_code(&self) -> ThermometerCode {
        ThermometerCode::from_fail_count(self.hs.bits(), self.hs.bits())
    }

    /// Performs one measurement with the SENSE instant at `at`. The rail
    /// values are averaged over the P→CP window, modelling the inverter
    /// integrating the supply across its transition.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::WaveformGap`] when a waveform does not cover
    /// the window, and propagates decode failures.
    pub fn measure_at(
        &self,
        vdd: &Waveform,
        gnd: &Waveform,
        at: Time,
    ) -> Result<Measurement, SensorError> {
        let pvt = &self.config.pvt;
        let hs_skew = self.pg.skew(self.config.hs_code, pvt);
        let ls_skew = self.pg.skew(self.config.ls_code, pvt);

        let v = self.window_value(vdd, at, hs_skew)?;
        let g = self.window_value(gnd, at, ls_skew)?;

        let hs_code = self.hs.measure(v, hs_skew, pvt);
        let ls_code = self.ls.measure(g, ls_skew, pvt);
        self.package(at, hs_code, ls_code, hs_skew, ls_skew)
    }

    /// Stochastic variant of [`SensorSystem::measure_at`] (metastable
    /// boundary elements resolve randomly).
    ///
    /// # Errors
    ///
    /// Same as [`SensorSystem::measure_at`].
    pub fn measure_at_with_rng<R: Rng + ?Sized>(
        &self,
        vdd: &Waveform,
        gnd: &Waveform,
        at: Time,
        rng: &mut R,
    ) -> Result<Measurement, SensorError> {
        let pvt = &self.config.pvt;
        let hs_skew = self.pg.skew(self.config.hs_code, pvt);
        let ls_skew = self.pg.skew(self.config.ls_code, pvt);
        let v = self.window_value(vdd, at, hs_skew)?;
        let g = self.window_value(gnd, at, ls_skew)?;
        let hs_code = self.hs.measure_with_rng(v, hs_skew, pvt, rng);
        let ls_code = self.ls.measure_with_rng(g, ls_skew, pvt, rng);
        self.package(at, hs_code, ls_code, hs_skew, ls_skew)
    }

    /// Performs one measurement from *instantaneous* rail values instead
    /// of waveform windows — the causal sensing path of the cycle-stepped
    /// co-simulation loop. Mid-transient only the rail state up to the
    /// current cycle exists, so the P→CP averaging window of
    /// [`SensorSystem::measure_at`] (which spans into the next cycle's
    /// samples) cannot be formed without peeking at the future; this
    /// entry point holds the rails at their current values across the
    /// sense window instead. `at` only timestamps the result. On a
    /// constant waveform the two paths agree exactly.
    ///
    /// # Errors
    ///
    /// Propagates decode failures.
    pub fn measure_value(
        &self,
        vdd: Voltage,
        gnd: Voltage,
        at: Time,
    ) -> Result<Measurement, SensorError> {
        let pvt = &self.config.pvt;
        let hs_skew = self.pg.skew(self.config.hs_code, pvt);
        let ls_skew = self.pg.skew(self.config.ls_code, pvt);
        let hs_code = self.hs.measure(vdd, hs_skew, pvt);
        let ls_code = self.ls.measure(gnd, ls_skew, pvt);
        self.package(at, hs_code, ls_code, hs_skew, ls_skew)
    }

    fn window_value(&self, wave: &Waveform, at: Time, skew: Time) -> Result<Voltage, SensorError> {
        if at < wave.start() || at + skew > wave.end() {
            // Constant waveforms extend infinitely by definition.
            if !wave.is_constant() {
                return Err(SensorError::WaveformGap {
                    at_ps: at.picoseconds(),
                });
            }
        }
        Ok(Voltage::from_v(
            wave.mean_over(at, at + skew.max(Time::from_ps(1.0))),
        ))
    }

    fn package(
        &self,
        at: Time,
        hs_code: ThermometerCode,
        ls_code: ThermometerCode,
        hs_skew: Time,
        ls_skew: Time,
    ) -> Result<Measurement, SensorError> {
        let pvt = &self.config.pvt;
        let hs_word = self.hs_encoder.encode(&hs_code);
        let ls_word = self.ls_encoder.encode(&ls_code);
        let hs_interval = self.hs.decode(&hs_code, hs_skew, pvt)?;
        let ls_interval = self.ls.decode(&ls_code, ls_skew, pvt)?;
        Ok(Measurement {
            at,
            hs_code,
            ls_code,
            hs_word,
            ls_word,
            hs_interval,
            ls_interval,
        })
    }

    /// Runs the control FSM from `from` and collects `count` measurements.
    /// Each measure occupies the Fig. 8 sequence (READY → S_PRP0 → S_PRP →
    /// S_SNS0 → SENSE), i.e. one SENSE every five control-clock cycles;
    /// the SENSE instant includes the PG's CP-path delay.
    ///
    /// When the context carries an observer, FSM state transitions,
    /// each measurement, and any metastability incident (a bubbled or
    /// unresolved raw code) are logged through it; the
    /// `sensor.measures` / `sensor.metastability_incidents` counters
    /// accumulate in its registry. Measurement results are identical
    /// with and without an observer.
    ///
    /// # Errors
    ///
    /// Propagates [`SensorSystem::measure_at`] failures.
    pub fn run(
        &mut self,
        ctx: &mut RunCtx<'_>,
        vdd: &Waveform,
        gnd: &Waveform,
        from: Time,
        count: usize,
    ) -> Result<Vec<Measurement>, SensorError> {
        self.ctrl.reset();
        let inputs = CtrlInputs {
            enable: true,
            start: true,
        };
        let mut out = Vec::with_capacity(count);
        let mut cycle: u64 = 0;
        // Divergence guard: 5 cycles per measure plus pipeline fill.
        let max_cycles = (count as u64 + 2) * 6 + 4;
        while out.len() < count && cycle < max_cycles {
            let cycle_start = from + self.config.clock_period * (cycle as f64);
            let step = self.ctrl.step_ctx(ctx, inputs, cycle_start);
            cycle += 1;
            if step.capture {
                let sense_at =
                    cycle_start + self.pg.emit(self.config.hs_code, &self.config.pvt).cp_edge;
                let m = self.measure_at(vdd, gnd, sense_at)?;
                if let Some(obs) = ctx.observer() {
                    obs.metrics.counter_add("sensor.measures", 1);
                    // A bubbled word whose encoder runs BubbleCorrect
                    // was repaired in flight: count each repair so
                    // degraded runs are visible in telemetry (the
                    // `characterize` footer surfaces this).
                    let corrected = [
                        (self.hs_encoder.policy(), m.hs_word.bubbled),
                        (self.ls_encoder.policy(), m.ls_word.bubbled),
                    ]
                    .iter()
                    .filter(|(p, b)| *b && *p == EncodingPolicy::BubbleCorrect)
                    .count();
                    if corrected > 0 {
                        obs.metrics
                            .counter_add("encoder.bubbles_corrected", corrected as u64);
                    }
                    if m.hs_word.bubbled || m.ls_word.bubbled {
                        obs.metrics.counter_add("sensor.metastability_incidents", 1);
                        obs.event(
                            ObsEvent::new("sensor", "metastability")
                                .at(sense_at)
                                .field("hs_code", &m.hs_code.to_string())
                                .field("ls_code", &m.ls_code.to_string()),
                        );
                    }
                    obs.event(
                        ObsEvent::new("sensor", "measure")
                            .at(sense_at)
                            .field("hs_level", &(m.hs_word.level as u64))
                            .field("ls_level", &(m.ls_word.level as u64)),
                    );
                }
                out.push(m);
            }
        }
        Ok(out)
    }

    /// [`SensorSystem::run`] with an explicit optional observer.
    ///
    /// # Errors
    ///
    /// Propagates [`SensorSystem::measure_at`] failures.
    #[deprecated(since = "0.1.0", note = "use `run` with a `RunCtx`")]
    pub fn run_observed(
        &mut self,
        vdd: &Waveform,
        gnd: &Waveform,
        from: Time,
        count: usize,
        observer: Option<&mut Observer>,
    ) -> Result<Vec<Measurement>, SensorError> {
        self.run(
            &mut RunCtx::serial().with_observer_opt(observer),
            vdd,
            gnd,
            from,
            count,
        )
    }

    /// The FSM state after the last [`SensorSystem::run`] (diagnostics).
    pub fn controller_state(&self) -> CtrlState {
        self.ctrl.state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psnt_pdn::sources::supply_step;

    fn system() -> SensorSystem {
        SensorSystem::new(SensorConfig::default()).unwrap()
    }

    #[test]
    fn clock_floor_enforced() {
        let cfg = SensorConfig {
            clock_period: Time::from_ns(1.0),
            ..SensorConfig::default()
        };
        assert!(matches!(
            SensorSystem::new(cfg),
            Err(SensorError::InvalidConfig {
                name: "clock_period",
                ..
            })
        ));
    }

    #[test]
    fn fig9_two_measure_sequence() {
        // Paper Fig. 9: delay code 011, first measure at VDD-n = 1 V gives
        // 0011111 (range 0.992–1.021 V), second at 0.9 V gives 0000011
        // (range 0.896–0.929 V); PREPARE reads 0000000.
        let mut sys = system();
        assert_eq!(sys.hs_prepare_code().to_string(), "0000000");
        // A supply that steps 1.0 → 0.9 V between the two measures.
        let end = Time::from_us(1.0);
        let vdd = supply_step(
            Voltage::from_v(1.0),
            Voltage::from_v(0.9),
            Time::from_ns(15.0),
            end,
        )
        .unwrap();
        let gnd = Waveform::constant(0.0);
        let measures = sys
            .run(&mut RunCtx::serial(), &vdd, &gnd, Time::ZERO, 2)
            .unwrap();
        assert_eq!(measures.len(), 2);

        let first = &measures[0];
        assert_eq!(first.hs_code.to_string(), "0011111");
        assert!((first.hs_interval.lower.unwrap().volts() - 0.992).abs() < 0.003);
        assert!((first.hs_interval.upper.unwrap().volts() - 1.021).abs() < 0.003);

        let second = &measures[1];
        assert_eq!(second.hs_code.to_string(), "0000011");
        assert!((second.hs_interval.lower.unwrap().volts() - 0.896).abs() < 0.003);
        assert!((second.hs_interval.upper.unwrap().volts() - 0.929).abs() < 0.003);

        // The measures reflect the two "input" noise values.
        assert!(first.hs_interval.contains(Voltage::from_v(1.0)));
        assert!(second.hs_interval.contains(Voltage::from_v(0.9)));
    }

    #[test]
    fn sense_instants_progress_with_the_fsm() {
        let mut sys = system();
        let vdd = Waveform::constant(1.0);
        let gnd = Waveform::constant(0.0);
        let measures = sys
            .run(&mut RunCtx::serial(), &vdd, &gnd, Time::ZERO, 3)
            .unwrap();
        // One SENSE per 5 control cycles.
        let spacing = measures[1].at - measures[0].at;
        assert_eq!(spacing, sys.config().clock_period * 5.0);
        assert_eq!(measures[2].at - measures[1].at, spacing);
        assert!(measures[0].at > Time::ZERO);
    }

    #[test]
    fn both_rails_measured_independently() {
        // Droop on VDD only: HS reacts, LS stays at its quiet code.
        let sys = system();
        let gnd = Waveform::constant(0.0);
        let quiet = sys
            .measure_at(&Waveform::constant(1.0), &gnd, Time::from_ns(10.0))
            .unwrap();
        let droop = sys
            .measure_at(&Waveform::constant(0.93), &gnd, Time::from_ns(10.0))
            .unwrap();
        assert!(droop.hs_word.level < quiet.hs_word.level);
        assert_eq!(droop.ls_code, quiet.ls_code);

        // Bounce on GND only: LS reacts, HS unchanged.
        let bounce = sys
            .measure_at(
                &Waveform::constant(1.0),
                &Waveform::constant(0.08),
                Time::from_ns(10.0),
            )
            .unwrap();
        assert!(bounce.ls_word.level < quiet.ls_word.level);
        assert_eq!(bounce.hs_code, quiet.hs_code);
    }

    #[test]
    fn window_averaging_smooths_fast_noise() {
        // A spike far narrower than the sense window is averaged down.
        let sys = system();
        let spike = Waveform::from_points(vec![
            (Time::ZERO, 1.0),
            (Time::from_ps(10_000.0), 1.0),
            (Time::from_ps(10_003.0), 0.8),
            (Time::from_ps(10_006.0), 1.0),
            (Time::from_ns(40.0), 1.0),
        ])
        .unwrap();
        let gnd = Waveform::constant(0.0);
        let m = sys
            .measure_at(&spike, &gnd, Time::from_ps(9_950.0))
            .unwrap();
        // Instantaneous sampling at the spike bottom (0.8 V) would read
        // all-errors; the 6 ps × 0.2 V spike dilutes to ~4 mV over the
        // 149 ps window, so the nominal code survives.
        assert_eq!(m.hs_code.to_string(), "0011111");
    }

    #[test]
    fn instantaneous_measure_matches_windowed_on_constant_rails() {
        let sys = system();
        for (v, g) in [(1.0, 0.0), (0.93, 0.0), (1.0, 0.08), (0.9, 0.05)] {
            let windowed = sys
                .measure_at(
                    &Waveform::constant(v),
                    &Waveform::constant(g),
                    Time::from_ns(10.0),
                )
                .unwrap();
            let instant = sys
                .measure_value(Voltage::from_v(v), Voltage::from_v(g), Time::from_ns(10.0))
                .unwrap();
            assert_eq!(instant, windowed, "rails ({v}, {g})");
        }
    }

    #[test]
    fn waveform_gap_detected() {
        let sys = system();
        let short = supply_step(
            Voltage::from_v(1.0),
            Voltage::from_v(0.9),
            Time::from_ns(5.0),
            Time::from_ns(10.0),
        )
        .unwrap();
        let gnd = Waveform::constant(0.0);
        let err = sys
            .measure_at(&short, &gnd, Time::from_ns(50.0))
            .unwrap_err();
        assert!(matches!(err, SensorError::WaveformGap { .. }));
    }

    #[test]
    fn dynamic_range_reprogramming() {
        let mut sys = system();
        let vdd = Waveform::constant(1.15);
        let gnd = Waveform::constant(0.0);
        // With code 011 a 1.15 V rail saturates high.
        let sat = sys.measure_at(&vdd, &gnd, Time::from_ns(10.0)).unwrap();
        assert!(sat.hs_word.overflow);
        // Code 010 shifts the range up ("also overvoltages can be
        // measured"): the same rail now resolves.
        sys.set_delay_codes(DelayCode::new(2).unwrap(), DelayCode::new(3).unwrap());
        let resolved = sys.measure_at(&vdd, &gnd, Time::from_ns(10.0)).unwrap();
        assert!(!resolved.hs_word.overflow && !resolved.hs_word.underflow);
        assert!(resolved.hs_interval.contains(Voltage::from_v(1.15)));
    }

    #[test]
    fn trim_applies_new_codes() {
        use psnt_cells::process::ProcessCorner;
        use psnt_cells::units::Temperature;
        let mut sys = system();
        let ss = Pvt::new(
            ProcessCorner::SS,
            Voltage::from_v(1.0),
            Temperature::from_celsius(25.0),
        );
        let (hs_trim, ls_trim) = sys.trim(&mut RunCtx::serial(), &ss).unwrap();
        assert_eq!(sys.config().hs_code, hs_trim.code);
        assert_eq!(sys.config().ls_code, ls_trim.code);
        assert_eq!(sys.config().pvt, ss);
        assert!(hs_trim.residual <= hs_trim.untrimmed_residual);
    }

    #[test]
    fn stochastic_measure_is_seeded() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let sys = system();
        let vdd = Waveform::constant(0.992); // near a threshold
        let gnd = Waveform::constant(0.0);
        let mut r1 = StdRng::seed_from_u64(3);
        let mut r2 = StdRng::seed_from_u64(3);
        let a = sys
            .measure_at_with_rng(&vdd, &gnd, Time::from_ns(10.0), &mut r1)
            .unwrap();
        let b = sys
            .measure_at_with_rng(&vdd, &gnd, Time::from_ns(10.0), &mut r2)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn measurement_tracks_a_droop_event() {
        use psnt_cells::units::Frequency;
        use psnt_pdn::sources::SupplyNoiseBuilder;
        let mut sys = system();
        let vdd = SupplyNoiseBuilder::new(Voltage::from_v(1.0))
            .span(Time::ZERO, Time::from_us(1.0))
            .resolution(Time::from_ps(100.0))
            // A slow (overdamped-looking) droop so the 10 ns sampling
            // cadence cannot alias over it.
            .droop(
                Time::from_ns(40.0),
                Voltage::from_mv(100.0),
                Time::from_ns(20.0),
                Frequency::from_mhz(4.0),
            )
            .build()
            .unwrap();
        let gnd = Waveform::constant(0.0);
        let measures = sys
            .run(&mut RunCtx::serial(), &vdd, &gnd, Time::ZERO, 40)
            .unwrap();
        let levels: Vec<usize> = measures.iter().map(|m| m.hs_word.level).collect();
        let min_level = *levels.iter().min().unwrap();
        let first = levels[0];
        let last = *levels.last().unwrap();
        // The droop pulls some mid-run measures below the steady level,
        // and the rail recovers by the end.
        assert!(min_level < first, "droop not captured: {levels:?}");
        assert_eq!(first, last, "rail should recover: {levels:?}");
    }
}
