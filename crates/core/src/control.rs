//! The control block (CNTR) — paper Fig. 8 and the 1.22 ns claim.
//!
//! The controller sequences the sensor through PREPARE and SENSE phases:
//! after RESET it idles until enabled, then cycles
//!
//! ```text
//! IDLE → READY → S_PRP0 → S_PRP → S_SNS0 → SENSE → READY → …
//!        (P=1, CP falls) (CP rises) (P=0, CP falls) (CP rises: FF samples)
//! ```
//!
//! so that "each measure is repeated always in the same conditions, and
//! an error can be caused only by the current PS value". Measures are
//! iterated under a counter so noise is captured at many instants of the
//! CUT transient.
//!
//! Two views are provided:
//!
//! * [`Controller`] — the cycle-accurate behavioural FSM used by the
//!   system model;
//! * [`build_control_netlist`] — a hand-mapped standard-cell netlist of
//!   the same FSM plus its iteration counter/comparator, on which
//!   [`psnt_netlist::sta`] reproduces the paper's "critical path of the
//!   whole control system at 90 nm is 1.22 ns" claim, and which the
//!   event-driven simulator can execute directly (the equivalence test
//!   checks it against the behavioural FSM).
//!
//! # Examples
//!
//! ```
//! use psnt_core::control::{Controller, CtrlInputs, CtrlState};
//!
//! let mut ctrl = Controller::new(None);
//! assert_eq!(ctrl.state(), CtrlState::Idle);
//! let go = CtrlInputs { enable: true, start: true };
//! ctrl.step(go); // IDLE → READY
//! ctrl.step(go); // READY → S_PRP0
//! assert_eq!(ctrl.state(), CtrlState::Prepare0);
//! ```

use psnt_cells::dff::Dff;
use psnt_cells::gates::StdCell;
use psnt_cells::logic::Logic;
use psnt_cells::units::{Capacitance, Time};
use psnt_ctx::RunCtx;
use psnt_netlist::graph::{NetId, Netlist};
use psnt_obs::{Event as ObsEvent, Observer};
use serde::{Deserialize, Serialize};

/// The FSM states of Fig. 8 (with the two clock-phase sub-states of the
/// SENSE sequence made explicit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CtrlState {
    /// Waiting for the measure enable after reset.
    #[default]
    Idle,
    /// Armed; a start (external or auto-iterate) launches a measure.
    Ready,
    /// PREPARE, negative CP edge (`P = 1`).
    Prepare0,
    /// PREPARE, positive CP edge (`P = 1`): the FF captures the PREPARE
    /// value.
    Prepare,
    /// SENSE setup, negative CP edge (`P` falls to 0, `DS` launches).
    Sense0,
    /// SENSE, positive CP edge: the FF samples `DS` — the measurement.
    Sense,
}

impl CtrlState {
    /// The 3-bit state encoding used by the gate-level netlist
    /// (`s2 s1 s0`).
    pub fn encoding(self) -> u8 {
        match self {
            CtrlState::Idle => 0b000,
            CtrlState::Ready => 0b001,
            CtrlState::Prepare0 => 0b010,
            CtrlState::Prepare => 0b011,
            CtrlState::Sense0 => 0b100,
            CtrlState::Sense => 0b101,
        }
    }

    /// Inverse of [`CtrlState::encoding`]; `None` for the two unused
    /// encodings.
    pub fn from_encoding(bits: u8) -> Option<CtrlState> {
        Some(match bits {
            0b000 => CtrlState::Idle,
            0b001 => CtrlState::Ready,
            0b010 => CtrlState::Prepare0,
            0b011 => CtrlState::Prepare,
            0b100 => CtrlState::Sense0,
            0b101 => CtrlState::Sense,
            _ => return None,
        })
    }
}

/// External control bits sampled each clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CtrlInputs {
    /// Measure-enable from the external blocks.
    pub enable: bool,
    /// Start one measure sequence.
    pub start: bool,
}

/// Controller outputs for the current cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CtrlOutputs {
    /// The raw `P` level handed to the PG (`1` in PREPARE, `0` in SENSE;
    /// polarity is inverted inside the LOW-SENSE array).
    pub p: Logic,
    /// The raw `CP` level handed to the PG.
    pub cp: Logic,
    /// `true` exactly in the SENSE state: the array outputs are valid to
    /// latch this cycle.
    pub capture: bool,
    /// `true` while a measure sequence is in flight.
    pub busy: bool,
}

/// The behavioural CNTR finite-state machine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Controller {
    state: CtrlState,
    /// Completed SENSE phases.
    measures_done: u64,
    /// When set, READY auto-starts until this many measures completed
    /// (the paper's internally-defined iteration policy).
    auto_iterations: Option<u64>,
}

impl Controller {
    /// Creates a controller in IDLE. With `auto_iterations = Some(n)` the
    /// FSM self-restarts from READY until `n` measures have completed;
    /// with `None` each measure needs an external start.
    pub fn new(auto_iterations: Option<u64>) -> Controller {
        Controller {
            state: CtrlState::Idle,
            measures_done: 0,
            auto_iterations,
        }
    }

    /// Current state.
    pub fn state(&self) -> CtrlState {
        self.state
    }

    /// Completed measures since reset.
    pub fn measures_done(&self) -> u64 {
        self.measures_done
    }

    /// Returns to IDLE and clears the measure counter.
    pub fn reset(&mut self) {
        self.state = CtrlState::Idle;
        self.measures_done = 0;
    }

    /// Advances one clock cycle and returns the outputs of the *new*
    /// state.
    pub fn step(&mut self, inputs: CtrlInputs) -> CtrlOutputs {
        self.state = match self.state {
            CtrlState::Idle => {
                if inputs.enable {
                    CtrlState::Ready
                } else {
                    CtrlState::Idle
                }
            }
            CtrlState::Ready => {
                let auto_more = self
                    .auto_iterations
                    .is_some_and(|n| inputs.enable && self.measures_done < n);
                if inputs.start || auto_more {
                    CtrlState::Prepare0
                } else {
                    CtrlState::Ready
                }
            }
            CtrlState::Prepare0 => CtrlState::Prepare,
            CtrlState::Prepare => CtrlState::Sense0,
            CtrlState::Sense0 => CtrlState::Sense,
            CtrlState::Sense => {
                self.measures_done += 1;
                CtrlState::Ready
            }
        };
        self.outputs()
    }

    /// [`Controller::step`] threaded through a [`RunCtx`]: when the
    /// context carries an observer, every state *transition* (not
    /// self-loop) is logged as an `fsm`/`transition` event stamped with
    /// the cycle's simulated time.
    pub fn step_ctx(&mut self, ctx: &mut RunCtx<'_>, inputs: CtrlInputs, at: Time) -> CtrlOutputs {
        let from = self.state;
        let out = self.step(inputs);
        if let Some(obs) = ctx.observer() {
            if self.state != from {
                obs.event(
                    ObsEvent::new("fsm", "transition")
                        .at(at)
                        .field("from", &format!("{from:?}"))
                        .field("to", &format!("{:?}", self.state))
                        .field("measures_done", &self.measures_done),
                );
            }
        }
        out
    }

    /// [`Controller::step_ctx`] with a bare optional observer.
    #[deprecated(since = "0.1.0", note = "use `step_ctx` with a `RunCtx`")]
    pub fn step_observed(
        &mut self,
        inputs: CtrlInputs,
        at: Time,
        observer: Option<&mut Observer>,
    ) -> CtrlOutputs {
        self.step_ctx(
            &mut RunCtx::serial().with_observer_opt(observer),
            inputs,
            at,
        )
    }

    /// Outputs for the current state.
    pub fn outputs(&self) -> CtrlOutputs {
        let (p, cp) = match self.state {
            // P rests high; CP idles low outside the pulse states.
            CtrlState::Idle | CtrlState::Ready => (Logic::One, Logic::Zero),
            CtrlState::Prepare0 => (Logic::One, Logic::Zero),
            CtrlState::Prepare => (Logic::One, Logic::One),
            CtrlState::Sense0 => (Logic::Zero, Logic::Zero),
            CtrlState::Sense => (Logic::Zero, Logic::One),
        };
        CtrlOutputs {
            p,
            cp,
            capture: self.state == CtrlState::Sense,
            busy: !matches!(self.state, CtrlState::Idle | CtrlState::Ready),
        }
    }
}

/// Configuration for the gate-level CNTR netlist.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CtrlNetlistConfig {
    /// Width of the iteration counter/comparator (the paper's COUNTER).
    pub counter_bits: usize,
    /// Wire-load-model capacitance added to every internal net.
    pub wire_load: Capacitance,
}

impl Default for CtrlNetlistConfig {
    fn default() -> CtrlNetlistConfig {
        CtrlNetlistConfig {
            counter_bits: 32,
            wire_load: Capacitance::from_ff(60.0),
        }
    }
}

/// Hand-mapped standard-cell netlist of the CNTR block: the 3-bit state
/// register with its next-state logic, the iteration counter with a
/// ripple carry chain, the iteration-target comparator whose result
/// auto-restarts the FSM, and the `P`/`CP`/`capture` output decode.
///
/// Primary inputs: `clk`, `enable`, `start`. Primary outputs: `p`, `cp`,
/// `capture`, `s0..s2`. The comparator target is tied to the constant
/// pattern `1010…`, standing in for a config register.
pub fn build_control_netlist(cfg: &CtrlNetlistConfig) -> Netlist {
    let mut n = Netlist::new("cntr");
    let ff = Dff::standard_90nm();
    let clk = n.add_input("clk");
    let enable = n.add_input("enable");
    let start = n.add_input("start");

    // State registers (declared first with placeholder D inputs; rewired
    // below once the next-state cones exist).
    let d0_tmp = n.add_net("d0_tmp");
    let d1_tmp = n.add_net("d1_tmp");
    let d2_tmp = n.add_net("d2_tmp");
    let s0 = n.add_dff("state0", ff, d0_tmp, clk, Logic::Zero);
    let s1 = n.add_dff("state1", ff, d1_tmp, clk, Logic::Zero);
    let s2 = n.add_dff("state2", ff, d2_tmp, clk, Logic::Zero);

    let wire = |n: &mut Netlist, net: NetId| {
        n.add_wire_capacitance(net, cfg.wire_load);
        net
    };

    let ns0 = {
        let g = n.add_gate("inv_s0", StdCell::inverter(1.0), &[s0]).unwrap();
        wire(&mut n, g)
    };
    let ns1 = {
        let g = n.add_gate("inv_s1", StdCell::inverter(1.0), &[s1]).unwrap();
        wire(&mut n, g)
    };
    let ns2 = {
        let g = n.add_gate("inv_s2", StdCell::inverter(1.0), &[s2]).unwrap();
        wire(&mut n, g)
    };

    // Iteration counter: q_i toggles under a ripple carry; count enable is
    // the SENSE state decode (one count per completed measure).
    let capture = {
        let g = n
            .add_gate("dec_sense", StdCell::and3(1.0), &[s2, ns1, s0])
            .unwrap();
        wire(&mut n, g)
    };
    let mut carry = capture;
    let mut q_bits = Vec::with_capacity(cfg.counter_bits);
    let mut d_nets = Vec::with_capacity(cfg.counter_bits);
    for i in 0..cfg.counter_bits {
        let d_tmp = n.add_net(format!("cnt_d{i}_tmp"));
        let q = n.add_dff(format!("cnt{i}"), ff, d_tmp, clk, Logic::Zero);
        q_bits.push(q);
        d_nets.push(d_tmp);
    }
    #[allow(clippy::needless_range_loop)]
    for (i, &q_bit) in q_bits.iter().enumerate() {
        let d = {
            let g = n
                .add_gate(format!("cnt_xor{i}"), StdCell::xor2(1.0), &[q_bit, carry])
                .unwrap();
            wire(&mut n, g)
        };
        // Rewire the FF's D from the placeholder to the real cone.
        let dff_index = 3 + i; // after the three state FFs
        rewire_dff_d(&mut n, dff_index, d);
        tie_placeholder(&mut n, d_nets[i]);
        if i + 1 < cfg.counter_bits {
            let g = n
                .add_gate(format!("cnt_carry{i}"), StdCell::and2(1.0), &[carry, q_bit])
                .unwrap();
            carry = wire(&mut n, g);
        }
    }

    // Comparator: serial equality chain against the constant target
    // pattern 1010… ; `done` auto-parks the FSM once the iteration budget
    // is spent.
    let mut chain: Option<NetId> = None;
    for (i, &q_bit) in q_bits.iter().enumerate() {
        let t = n.add_const(format!("tgt{i}"), Logic::from(i % 2 == 1));
        let eq = {
            let g = n
                .add_gate(format!("cmp_xnor{i}"), StdCell::xnor2(1.0), &[q_bit, t])
                .unwrap();
            wire(&mut n, g)
        };
        chain = Some(match chain {
            None => eq,
            Some(prev) => {
                let g = n
                    .add_gate(format!("cmp_and{i}"), StdCell::and2(1.0), &[prev, eq])
                    .unwrap();
                wire(&mut n, g)
            }
        });
    }
    let done = chain.expect("counter_bits >= 1");
    let not_done = {
        let g = n
            .add_gate("inv_done", StdCell::inverter(1.0), &[done])
            .unwrap();
        wire(&mut n, g)
    };
    let auto_more = {
        let g = n
            .add_gate("auto_more", StdCell::and2(1.0), &[enable, not_done])
            .unwrap();
        wire(&mut n, g)
    };
    let start_eff = {
        let g = n
            .add_gate("start_eff", StdCell::or2(1.0), &[start, auto_more])
            .unwrap();
        wire(&mut n, g)
    };

    // Next-state logic (see CtrlState::encoding):
    //   d0 = (!s2·!s1·s0·!start_eff) + (!s2·s1·!s0) + (s2·!s1) + (!s2·!s1·!s0·en)
    //   d1 = (!s2·!s1·s0·start_eff) + (!s2·s1·!s0)
    //   d2 = (!s2·s1·s0) + (s2·!s1·!s0)
    let t_ready = {
        let g = n
            .add_gate("t_ready", StdCell::and3(1.0), &[ns2, ns1, s0])
            .unwrap();
        wire(&mut n, g)
    };
    let t_prp0 = {
        let g = n
            .add_gate("t_prp0", StdCell::and3(1.0), &[ns2, s1, ns0])
            .unwrap();
        wire(&mut n, g)
    };
    let t_prp = {
        let g = n
            .add_gate("t_prp", StdCell::and3(1.0), &[ns2, s1, s0])
            .unwrap();
        wire(&mut n, g)
    };
    let t_sns0 = {
        let g = n
            .add_gate("t_sns0", StdCell::and3(1.0), &[s2, ns1, ns0])
            .unwrap();
        wire(&mut n, g)
    };
    let t_idle = {
        let g = n
            .add_gate("t_idle", StdCell::and3(1.0), &[ns2, ns1, ns0])
            .unwrap();
        wire(&mut n, g)
    };
    let s2_nns1 = {
        let g = n
            .add_gate("t_sense_any", StdCell::and2(1.0), &[s2, ns1])
            .unwrap();
        wire(&mut n, g)
    };
    let idle_en = {
        let g = n
            .add_gate("idle_en", StdCell::and2(1.0), &[t_idle, enable])
            .unwrap();
        wire(&mut n, g)
    };
    let n_start = {
        let g = n
            .add_gate("n_start", StdCell::inverter(1.0), &[start_eff])
            .unwrap();
        wire(&mut n, g)
    };
    let ready_hold = {
        let g = n
            .add_gate("ready_hold", StdCell::and2(1.0), &[t_ready, n_start])
            .unwrap();
        wire(&mut n, g)
    };
    let d0_a = {
        let g = n
            .add_gate("d0_a", StdCell::or3(1.0), &[ready_hold, t_prp0, s2_nns1])
            .unwrap();
        wire(&mut n, g)
    };
    let d0 = {
        let g = n
            .add_gate("d0", StdCell::or2(1.0), &[d0_a, idle_en])
            .unwrap();
        wire(&mut n, g)
    };
    let ready_start = {
        let g = n
            .add_gate("ready_start", StdCell::and2(1.0), &[t_ready, start_eff])
            .unwrap();
        wire(&mut n, g)
    };
    let d1 = {
        let g = n
            .add_gate("d1", StdCell::or2(1.0), &[ready_start, t_prp0])
            .unwrap();
        wire(&mut n, g)
    };
    let d2 = {
        let g = n
            .add_gate("d2", StdCell::or2(1.0), &[t_prp, t_sns0])
            .unwrap();
        wire(&mut n, g)
    };
    rewire_dff_d(&mut n, 0, d0);
    rewire_dff_d(&mut n, 1, d1);
    rewire_dff_d(&mut n, 2, d2);
    tie_placeholder(&mut n, d0_tmp);
    tie_placeholder(&mut n, d1_tmp);
    tie_placeholder(&mut n, d2_tmp);

    // Output decode: P = !s2, CP = s0·(s1+s2).
    let p_out = {
        let g = n.add_gate("p_dec", StdCell::inverter(2.0), &[s2]).unwrap();
        wire(&mut n, g)
    };
    let s1_or_s2 = {
        let g = n.add_gate("cp_or", StdCell::or2(1.0), &[s1, s2]).unwrap();
        wire(&mut n, g)
    };
    let cp_out = {
        let g = n
            .add_gate("cp_dec", StdCell::and2(2.0), &[s0, s1_or_s2])
            .unwrap();
        wire(&mut n, g)
    };

    // Pulse-form P for the integrated system: falls exactly on the clock
    // edge that raises CP for the SENSE capture (state 101), so the
    // sensor-pin skew is set by the PG alone. The block-level `p` output
    // (= !s2) keeps the Fig. 8 per-state levels.
    let p_pulse = {
        let g = n
            .add_gate("p_pulse_dec", StdCell::nand2(2.0), &[s2, s0])
            .unwrap();
        wire(&mut n, g)
    };
    n.mark_output("p", p_out);
    n.mark_output("p_pulse", p_pulse);
    n.mark_output("cp", cp_out);
    n.mark_output("capture", capture);
    n.mark_output("s0", s0);
    n.mark_output("s1", s1);
    n.mark_output("s2", s2);
    n
}

/// Replaces the D net of the `index`-th flip-flop. The graph API keeps
/// DFF pins immutable post-construction; the builder pattern here first
/// declares registers (so their `Q` nets exist for the logic cones) and
/// then closes the loops.
fn rewire_dff_d(n: &mut Netlist, index: usize, d: NetId) {
    // Safety of the approach: Netlist exposes dffs() read-only; we rebuild
    // the instance in place via the public surface.
    n.rewire_dff_d(index, d);
}

/// Gives an orphaned placeholder net a constant driver so validation
/// passes (the placeholder has no readers once rewired).
fn tie_placeholder(n: &mut Netlist, net: NetId) {
    n.tie_net(net, Logic::Zero);
}

#[cfg(test)]
mod tests {
    use super::*;
    use psnt_cells::units::{Time, Voltage};
    use psnt_netlist::sim::Simulator;
    use psnt_netlist::sta::{analyze, StaConfig};

    fn go() -> CtrlInputs {
        CtrlInputs {
            enable: true,
            start: true,
        }
    }

    #[test]
    fn fsm_walks_the_fig8_sequence() {
        let mut c = Controller::new(None);
        let seq: Vec<CtrlState> = (0..7)
            .map(|_| {
                c.step(go());
                c.state()
            })
            .collect();
        assert_eq!(
            seq,
            vec![
                CtrlState::Ready,
                CtrlState::Prepare0,
                CtrlState::Prepare,
                CtrlState::Sense0,
                CtrlState::Sense,
                CtrlState::Ready,
                CtrlState::Prepare0,
            ]
        );
        assert_eq!(c.measures_done(), 1);
    }

    #[test]
    fn idle_until_enabled() {
        let mut c = Controller::new(None);
        for _ in 0..3 {
            c.step(CtrlInputs::default());
            assert_eq!(c.state(), CtrlState::Idle);
        }
        c.step(CtrlInputs {
            enable: true,
            start: false,
        });
        assert_eq!(c.state(), CtrlState::Ready);
        // READY holds without a start.
        c.step(CtrlInputs {
            enable: true,
            start: false,
        });
        assert_eq!(c.state(), CtrlState::Ready);
    }

    #[test]
    fn auto_iteration_policy() {
        let mut c = Controller::new(Some(3));
        let en = CtrlInputs {
            enable: true,
            start: false,
        };
        // Enable only: the controller self-runs 3 measures then parks.
        for _ in 0..40 {
            c.step(en);
        }
        assert_eq!(c.measures_done(), 3);
        assert_eq!(c.state(), CtrlState::Ready);
    }

    #[test]
    fn outputs_per_state() {
        let mut c = Controller::new(None);
        c.step(go()); // READY
        let out = c.outputs();
        assert_eq!((out.p, out.cp), (Logic::One, Logic::Zero));
        assert!(!out.busy && !out.capture);
        c.step(go()); // PRP0
        assert_eq!(c.outputs().cp, Logic::Zero);
        assert!(c.outputs().busy);
        c.step(go()); // PRP: positive CP edge with P=1
        let out = c.outputs();
        assert_eq!((out.p, out.cp), (Logic::One, Logic::One));
        c.step(go()); // SENSE0: P falls, CP falls
        let out = c.outputs();
        assert_eq!((out.p, out.cp), (Logic::Zero, Logic::Zero));
        c.step(go()); // SENSE: CP rises with P=0
        let out = c.outputs();
        assert_eq!((out.p, out.cp), (Logic::Zero, Logic::One));
        assert!(out.capture);
    }

    #[test]
    fn reset_returns_to_idle() {
        let mut c = Controller::new(None);
        for _ in 0..4 {
            c.step(go());
        }
        c.reset();
        assert_eq!(c.state(), CtrlState::Idle);
        assert_eq!(c.measures_done(), 0);
    }

    #[test]
    fn encoding_roundtrip() {
        for s in [
            CtrlState::Idle,
            CtrlState::Ready,
            CtrlState::Prepare0,
            CtrlState::Prepare,
            CtrlState::Sense0,
            CtrlState::Sense,
        ] {
            assert_eq!(CtrlState::from_encoding(s.encoding()), Some(s));
        }
        assert_eq!(CtrlState::from_encoding(0b110), None);
        assert_eq!(CtrlState::from_encoding(0b111), None);
    }

    #[test]
    fn netlist_validates_and_has_expected_shape() {
        let n = build_control_netlist(&CtrlNetlistConfig::default());
        n.validate().unwrap();
        // 3 state FFs + 32 counter FFs.
        assert_eq!(n.dffs().len(), 35);
        assert!(n.gates().len() > 100);
    }

    #[test]
    fn critical_path_reproduces_the_1_22ns_claim() {
        // Paper §III-B: "The critical path of the whole control system at
        // 90 nm is 1.22 ns". Our hand-mapped netlist must land in the same
        // regime (the exact figure is recorded in EXPERIMENTS.md).
        let n = build_control_netlist(&CtrlNetlistConfig::default());
        let report = analyze(&n, &StaConfig::default()).unwrap();
        let t = report.critical_delay();
        assert!(
            t > Time::from_ns(1.0) && t < Time::from_ns(1.45),
            "critical path {t} outside the expected regime"
        );
        // And it comfortably meets a typical 2 ns system clock, the
        // paper's "can work with most of the typical CUT system clocks".
        assert!(report.meets_timing());
    }

    #[test]
    fn gate_level_fsm_matches_behavioural_model() {
        let n = build_control_netlist(&CtrlNetlistConfig::default());
        let mut sim = Simulator::new(&n, Voltage::from_v(1.0)).unwrap();
        let clk = n.net_by_name("clk").unwrap();
        let enable = n.net_by_name("enable").unwrap();
        let start = n.net_by_name("start").unwrap();
        let s0 = n.dffs()[0].q();
        let s1 = n.dffs()[1].q();
        let s2 = n.dffs()[2].q();

        sim.drive(enable, Logic::One, Time::ZERO).unwrap();
        sim.drive(start, Logic::One, Time::ZERO).unwrap();
        let period = Time::from_ns(4.0);
        sim.drive_clock(clk, Time::from_ns(2.0), period, 12)
            .unwrap();

        let mut behavioural = Controller::new(None);
        for cycle in 0..12 {
            // Sample just before the next rising edge: the state after
            // `cycle+1` captures.
            let t = Time::from_ns(2.0) + period * cycle as f64 + period * 0.9;
            sim.run_until(t);
            behavioural.step(go());
            let bits = [sim.value(s2), sim.value(s1), sim.value(s0)];
            let enc = bits
                .iter()
                .fold(0u8, |acc, b| (acc << 1) | u8::from(*b == Logic::One));
            assert_eq!(
                CtrlState::from_encoding(enc),
                Some(behavioural.state()),
                "cycle {cycle}: gate-level state {enc:03b}"
            );
        }
    }
}
