//! Ad-hoc breakdown of the batched Monte-Carlo hot path (dev tool).
use psnt_cells::process::Pvt;
use psnt_cells::units::Time;
use psnt_core::element::RailMode;
use psnt_core::lanes::{self, LaneTasks, LANES};
use psnt_core::mismatch::{monte_carlo_yield, monte_carlo_yield_scalar, MismatchModel};
use psnt_core::thermometer::ThermometerArray;
use psnt_ctx::RunCtx;
use std::time::Instant;

fn main() {
    let array = ThermometerArray::paper(RailMode::Supply);
    let model = MismatchModel::local_90nm();
    let pvt = Pvt::typical();
    let skew = Time::from_ps(149.0);
    let n = 3200;

    let reps = 5;
    let mut best_s = f64::MAX;
    let mut best_b = f64::MAX;
    let mut r1 = None;
    let mut r2 = None;
    for _ in 0..reps {
        let t = Instant::now();
        r1 = Some(
            monte_carlo_yield_scalar(
                &mut RunCtx::serial().with_seed(1),
                &array,
                skew,
                &pvt,
                &model,
                n,
            )
            .unwrap(),
        );
        best_s = best_s.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        r2 = Some(
            monte_carlo_yield(
                &mut RunCtx::serial().with_seed(1),
                &array,
                skew,
                &pvt,
                &model,
                n,
            )
            .unwrap(),
        );
        best_b = best_b.min(t.elapsed().as_secs_f64());
    }
    println!("scalar:  {:.3}ms (best of {reps})", best_s * 1e3);
    println!("batched: {:.3}ms (best of {reps})", best_b * 1e3);
    println!("ratio:   {:.2}x", best_s / best_b);
    assert_eq!(r1, r2);

    // Raw solve cost: 50 batches x 7 elements of 64-lane solves.
    let mut tasks = LaneTasks {
        n: LANES,
        ..Default::default()
    };
    for l in 0..LANES {
        tasks.ac_ps[l] = 32.0 * (0.205 + 1.75 + 0.01 * l as f64);
        tasks.t_int_ps[l] = 0.0;
        tasks.vth_eff_v[l] = 0.30 + 0.0001 * l as f64;
        tasks.alpha[l] = 1.3;
        tasks.window_ps[l] = 119.0;
    }
    let mut out = [0.0f64; LANES];
    let t = Instant::now();
    let mut acc = 0.0;
    for _ in 0..(50 * 7) {
        lanes::solve(&tasks, std::hint::black_box(1.0), &mut out);
        acc += out[0];
    }
    println!(
        "350 solves (= n=3200 solver work): {:?} (acc {acc:.3})",
        t.elapsed()
    );

    // Scalar solver cost at the same statistics: 3200 trials x 7 solves.
    let t = Instant::now();
    let mut acc2 = 0.0;
    for i in 0..(3200 * 7) {
        let ac = 32.0 * (0.205 + 1.75 + 0.00001 * (i % 64) as f64);
        acc2 += lanes::solve_scalar(
            std::hint::black_box(ac),
            0.0,
            0.30 + 0.0001 * (i % 64) as f64,
            1.3,
            119.0,
            std::hint::black_box(1.0),
        )
        .unwrap();
    }
    println!("22400 scalar solves: {:?} (acc {acc2:.3})", t.elapsed());

    // Batch-side overhead decomposition at equal statistics.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    // (a) RNG construction: one seeded StdRng per trial.
    let t = Instant::now();
    let mut s = 0.0f64;
    for i in 0..3200u64 {
        let mut r = StdRng::seed_from_u64(psnt_engine::split_seed(1, i));
        s += r.gen_range(0.0..1.0f64);
    }
    println!("3200 rng seedings: {:?} (s {s:.3})", t.elapsed());

    // (b) Raw uniform draws: 42 per trial (7 elements x 3 pairs).
    let mut rngs: Vec<StdRng> = (0..64u64)
        .map(|l| StdRng::seed_from_u64(psnt_engine::split_seed(1, l)))
        .collect();
    let t = Instant::now();
    let mut s = 0.0f64;
    for _batch in 0..50 {
        for _elem in 0..7 {
            for r in rngs.iter_mut() {
                for _ in 0..3 {
                    s += r.gen_range(f64::EPSILON..1.0f64);
                    s += r.gen_range(0.0..1.0f64);
                }
            }
        }
    }
    println!("134400 uniform draws: {:?} (s {s:.3})", t.elapsed());

    // (c) The Box-Muller transform as the batch lane loop runs it.
    let u: Vec<[f64; 64]> = (0..6).map(|i| [0.3 + 0.0001 * i as f64; 64]).collect();
    let t = Instant::now();
    let mut s = 0.0f64;
    for _ in 0..(50 * 7) {
        let u = std::hint::black_box(&u);
        let mut z = [0.0f64; 64];
        for l in 0..64 {
            let (zd, zl, zv) = psnt_cells::fastmath::gaussian3_from_uniforms(&[
                u[0][l], u[1][l], u[2][l], u[3][l], u[4][l], u[5][l],
            ]);
            z[l] = zd + zl + zv;
        }
        s += z[63];
    }
    println!(
        "67200 batched gaussian transforms: {:?} (s {s:.3})",
        t.elapsed()
    );
}
