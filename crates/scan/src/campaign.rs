//! Measurement campaigns: many sensors, many instants, one noise map.
//!
//! A [`Campaign`] wires the pieces together the way the paper's Fig. 6
//! system would be deployed: per-tile supply waveforms come from the
//! power grid under a workload, each instrumented site measures them
//! with its own array at the campaign's sampling cadence, and every
//! sampling instant's codes are serialized through the scan chain — "a
//! PSN scan chain" in operation.
//!
//! # Examples
//!
//! See `examples/noise_map.rs` for the end-to-end flow; unit tests below
//! exercise the pieces on a small grid.

use psnt_cells::logic::{Logic, LogicVector};
use psnt_cells::units::{Time, Voltage};
use psnt_core::code::ThermometerCode;
use psnt_core::encoder::{Encoder, EncodingPolicy};
use psnt_core::system::{Measurement, SensorConfig, SensorSystem};
use psnt_ctx::RunCtx;
use psnt_engine::{Engine, JobOutcome, JobSpec, RetryPolicy};
use psnt_obs::{Event as ObsEvent, Observer, RemoteSpan};
use psnt_pdn::waveform::Waveform;
use serde::{Deserialize, Serialize};

use crate::chain::ScanChain;
use crate::error::ScanError;
use crate::floorplan::Floorplan;

/// One site's measurement series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteSeries {
    /// Tile index of the site.
    pub tile: usize,
    /// Site instance name.
    pub name: String,
    /// Measurements in time order.
    pub measurements: Vec<Measurement>,
}

impl SiteSeries {
    /// The worst (minimum) HS level observed — the site's deepest droop.
    pub fn worst_level(&self) -> usize {
        self.measurements
            .iter()
            .map(|m| m.hs_word.level)
            .min()
            .unwrap_or(0)
    }

    /// Mean HS level across the series.
    pub fn mean_level(&self) -> f64 {
        if self.measurements.is_empty() {
            return 0.0;
        }
        self.measurements
            .iter()
            .map(|m| m.hs_word.level as f64)
            .sum::<f64>()
            / self.measurements.len() as f64
    }

    /// The lowest decoded supply estimate (interval midpoints only).
    pub fn worst_voltage(&self) -> Option<Voltage> {
        self.measurements
            .iter()
            .filter_map(|m| m.hs_interval.midpoint())
            .min_by(|a, b| a.total_cmp(b))
    }

    /// The worst (minimum) LS level observed — the deepest ground bounce.
    pub fn worst_ls_level(&self) -> usize {
        self.measurements
            .iter()
            .map(|m| m.ls_word.level)
            .min()
            .unwrap_or(0)
    }

    /// The highest decoded ground-bounce estimate (interval midpoints
    /// only).
    pub fn worst_bounce(&self) -> Option<Voltage> {
        self.measurements
            .iter()
            .filter_map(|m| m.ls_interval.midpoint())
            .max_by(|a, b| a.total_cmp(b))
    }
}

/// The result of a campaign run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Per-site series, in floorplan site order.
    pub sites: Vec<SiteSeries>,
    /// Sampling instants shared by all sites.
    pub instants: Vec<Time>,
    /// One serialized scan frame per instant.
    pub frames: Vec<psnt_cells::logic::LogicVector>,
}

impl CampaignResult {
    /// The spatial noise map: `(tile, worst level, mean level)` per site.
    pub fn noise_map(&self) -> Vec<(usize, usize, f64)> {
        self.sites
            .iter()
            .map(|s| (s.tile, s.worst_level(), s.mean_level()))
            .collect()
    }

    /// The site with the deepest observed droop.
    pub fn hotspot(&self) -> Option<&SiteSeries> {
        self.sites
            .iter()
            .min_by(|a, b| (a.worst_level(), a.tile).cmp(&(b.worst_level(), b.tile)))
    }
}

/// Per-site outcome of a resilient campaign run
/// ([`Campaign::run_resilient`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SiteOutcome {
    /// The site measured normally (possibly after deterministic
    /// retries).
    Measured,
    /// The site failed every attempt; the campaign degraded it to an
    /// empty series and all-`X` scan-frame bits instead of aborting.
    Degraded {
        /// The stringified failure (sensor error or panic payload).
        error: String,
    },
}

impl SiteOutcome {
    /// True for [`SiteOutcome::Measured`].
    pub fn is_measured(&self) -> bool {
        matches!(self, SiteOutcome::Measured)
    }
}

/// Aggregate degradation report of a resilient campaign run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradationSummary {
    /// Sites that failed every attempt and were degraded.
    pub sites_degraded: usize,
    /// Array elements whose readout never resolved: the largest count
    /// of `X` bits in any captured scan frame (each degraded site
    /// contributes a full array width).
    pub dead_elements: usize,
    /// Worst-case code error across all measured codes: the largest
    /// level disagreement between the bubble-correcting and truncating
    /// encoders — 0 when every captured code was canonical.
    pub worst_code_error: usize,
}

/// The result of a resilient campaign run: the (possibly partial)
/// campaign data plus per-site outcomes and the degradation summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilientCampaignResult {
    /// The campaign data. Degraded sites appear with empty
    /// measurement series and contribute all-`X` bits to every frame,
    /// so site order, frame geometry and instants are identical to a
    /// fully healthy run.
    pub result: CampaignResult,
    /// One outcome per site, in floorplan site order.
    pub outcomes: Vec<SiteOutcome>,
    /// The aggregate degradation report.
    pub summary: DegradationSummary,
}

/// One record of a streamed campaign run ([`Campaign::run_streamed`]).
///
/// Records arrive in a fixed order regardless of worker count: every
/// site in floorplan order, then one frame per sampling instant, then
/// the summary (always last). Collecting them reconstructs the exact
/// [`ResilientCampaignResult`] the in-memory path would have returned.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StreamRecord {
    /// One site's completed series and outcome.
    Site {
        /// Floorplan site index.
        site: usize,
        /// The cycle-window index of each sampling instant in the
        /// sweep: measurement `k` of a healthy series belongs to
        /// window `windows[k]` (a degraded site covers none of them).
        /// Site records arrive *before* any frame, so a streaming
        /// consumer can attribute every measurement to its cycle
        /// window without out-of-band bookkeeping.
        windows: Vec<usize>,
        /// The site's measurement series (empty when degraded).
        series: SiteSeries,
        /// Whether the site measured or degraded.
        outcome: SiteOutcome,
    },
    /// One serialized scan frame.
    Frame {
        /// Sampling-instant index (equal to the cycle-window index).
        index: usize,
        /// The sampling instant.
        instant: Time,
        /// The serialized chain frame (degraded sites read out as `X`).
        frame: LogicVector,
    },
    /// The final degradation summary.
    Summary {
        /// Total cycle windows the sweep covered (one per instant).
        windows: usize,
        /// The aggregate degradation report.
        summary: DegradationSummary,
    },
    /// Terminal record of a run that stopped early — a sink failure or
    /// a supervisor trip (cancellation, deadline, budget). Tells the
    /// stream's consumer exactly how many site records were delivered
    /// before the abort, so a truncated stream is always labelled,
    /// never silently cut mid-sweep. Emitted best-effort (a sink that
    /// is itself failing may drop it); the run still returns the error.
    Aborted {
        /// Site records fully delivered to the sink before the abort.
        sites_completed: usize,
        /// Why the run stopped (stringified sink error or interrupt).
        reason: String,
    },
}

impl StreamRecord {
    /// Renders the record as a structured [`psnt_obs`] event so a
    /// streamed campaign can flow straight into any `psnt-obs` sink
    /// (JSONL file, ring buffer, rotating log, …) without buffering.
    pub fn to_event(&self) -> ObsEvent {
        match self {
            StreamRecord::Site {
                site,
                windows,
                series,
                outcome,
            } => {
                let mut e = ObsEvent::new("scan", "stream_site")
                    .field("site", &(*site as u64))
                    .field("windows", &(windows.len() as u64))
                    .field("tile", &(series.tile as u64))
                    .field("name", &series.name)
                    .field("measured", &outcome.is_measured())
                    .field("worst_level", &(series.worst_level() as u64));
                if let SiteOutcome::Degraded { error } = outcome {
                    e = e.field("error", error);
                }
                e
            }
            StreamRecord::Frame {
                index,
                instant,
                frame,
            } => ObsEvent::new("scan", "stream_frame")
                .field("index", &(*index as u64))
                .field("t_ps", &instant.picoseconds())
                .field("bits", &(frame.len() as u64)),
            StreamRecord::Summary { windows, summary } => ObsEvent::new("scan", "stream_summary")
                .field("windows", &(*windows as u64))
                .field("sites_degraded", &(summary.sites_degraded as u64))
                .field("dead_elements", &(summary.dead_elements as u64))
                .field("worst_code_error", &(summary.worst_code_error as u64)),
            StreamRecord::Aborted {
                sites_completed,
                reason,
            } => ObsEvent::new("scan", "stream_aborted")
                .field("sites_completed", &(*sites_completed as u64))
                .field("reason", reason),
        }
    }
}

/// Sites per producer batch in [`Campaign::run_streamed`]. Fixed (not
/// worker-count dependent), so chunk boundaries — and therefore record
/// order and seeds — are identical at any worker count.
const STREAM_CHUNK_SITES: usize = 32;

/// Bound of the producer→consumer channel: about two chunks of records
/// may be in flight, which caps peak memory while still letting the
/// workers compute ahead of a slow sink.
const STREAM_CHANNEL_BOUND: usize = 2 * STREAM_CHUNK_SITES;

/// Producer→consumer message of [`Campaign::run_streamed`].
enum StreamMsg {
    Site {
        site: usize,
        outcome: JobOutcome<Result<(SiteSeries, Option<RemoteSpan>), ScanError>>,
    },
    /// A finished chunk's merged worker metrics, sent after its sites
    /// so the observer merge order is deterministic.
    Metrics(Box<psnt_obs::MetricsRegistry>),
    /// The producer's supervisor tripped at a chunk boundary; no
    /// further sites will arrive.
    Interrupted(psnt_sup::Interrupt),
}

/// Everything [`Campaign::run_dual`] and [`Campaign::run_resilient`]
/// share before the per-site sweep: validated inputs, solved rail
/// waveforms and the sampling instants.
struct SweepInputs {
    tile_supplies: Vec<Waveform>,
    tile_bounces: Option<Vec<Waveform>>,
    instants: Vec<Time>,
    /// Cycle-window index of each instant (one sweep window per
    /// instant), carried into every streamed `Site` record.
    windows: Vec<usize>,
    v_nom: f64,
    /// Upper end of the solved waveform range — the campaign span's
    /// sim-time interval grows to cover it so the `grid_solve` child
    /// nests inside its parent.
    solve_end: Time,
}

/// A multi-site measurement campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Campaign {
    floorplan: Floorplan,
    config: SensorConfig,
    chain: ScanChain,
}

impl Campaign {
    /// Instruments a floorplan with identical sensor systems (the paper:
    /// identical arrays, "only a control system is required").
    ///
    /// # Errors
    ///
    /// Propagates sensor-configuration validation.
    pub fn new(floorplan: Floorplan, config: SensorConfig) -> Result<Campaign, ScanError> {
        // Validate the configuration once up front.
        let probe = SensorSystem::new(config.clone())?;
        let chain = ScanChain::new(
            floorplan.sites().iter().map(|s| s.name.clone()).collect(),
            probe.hs_array().bits(),
        );
        Ok(Campaign {
            floorplan,
            config,
            chain,
        })
    }

    /// The floorplan under measurement.
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }

    /// The readout chain.
    pub fn chain(&self) -> &ScanChain {
        &self.chain
    }

    /// Runs the campaign: solves the grid under `tile_loads` (amperes per
    /// tile), measures every site at `samples` instants spaced `dt` from
    /// `start`, and serializes each instant through the scan chain. The
    /// ground rail is assumed quiet; see [`Campaign::run_dual`] for
    /// simultaneous ground-bounce measurement.
    ///
    /// The per-site sweep runs on the context's engine, and when the
    /// context carries an observer the run is traced (see
    /// [`Campaign::run_dual`]). Results are bit-identical at any worker
    /// count.
    ///
    /// # Errors
    ///
    /// Returns [`ScanError::InvalidConfig`] for a load/tile mismatch and
    /// propagates grid, sensor and chain failures.
    pub fn run(
        &self,
        ctx: &mut RunCtx<'_>,
        tile_loads: &[Waveform],
        start: Time,
        dt: Time,
        samples: usize,
    ) -> Result<CampaignResult, ScanError> {
        self.run_dual(ctx, tile_loads, None, start, dt, samples)
    }

    /// [`Campaign::run`] with the site sweep parallelized on `engine`.
    ///
    /// # Errors
    ///
    /// Same as [`Campaign::run`].
    #[deprecated(since = "0.1.0", note = "use `run` with a `RunCtx`")]
    pub fn run_on(
        &self,
        engine: &Engine,
        tile_loads: &[Waveform],
        start: Time,
        dt: Time,
        samples: usize,
    ) -> Result<CampaignResult, ScanError> {
        self.run(
            &mut RunCtx::new(engine.clone()),
            tile_loads,
            start,
            dt,
            samples,
        )
    }

    /// [`Campaign::run`] with an explicit optional observer.
    ///
    /// # Errors
    ///
    /// Same as [`Campaign::run`].
    #[deprecated(since = "0.1.0", note = "use `run` with a `RunCtx`")]
    pub fn run_observed(
        &self,
        tile_loads: &[Waveform],
        start: Time,
        dt: Time,
        samples: usize,
        observer: Option<&mut Observer>,
    ) -> Result<CampaignResult, ScanError> {
        self.run(
            &mut RunCtx::serial().with_observer_opt(observer),
            tile_loads,
            start,
            dt,
            samples,
        )
    }

    /// Like [`Campaign::run`], but with the return current flowing
    /// through a ground grid: every site's LOW-SENSE array then measures
    /// the local ground bounce. The ground grid mirrors the supply grid's
    /// geometry (same placement) with its own mesh/pad resistances; the
    /// bounce at a tile is its IR rise above the board ground, computed
    /// from the same per-tile currents.
    ///
    /// The per-site measurement sweep is parallelized over the
    /// context's engine; a serial context is this code at one worker,
    /// not a fork. Determinism: each site is an independent job keyed
    /// by its floorplan index; the engine collects site series in
    /// floorplan order, so the [`CampaignResult`] (codes, maps, frames,
    /// worst droop/bounce) is bit-identical at any worker count.
    ///
    /// When the context carries an observer: one `scan`/`site` event in
    /// site order (tile, name, worst levels), running
    /// `campaign.worst_droop_mv` / `campaign.worst_bounce_mv` gauges,
    /// and span timing around the grid solve and the measurement sweep.
    /// Telemetry is worker-count independent too — per-site events are
    /// emitted in site order after the sweep joins, and the workers'
    /// metrics registries are merged into the observer's in worker
    /// order. Results are identical with and without an observer.
    ///
    /// # Errors
    ///
    /// Returns [`ScanError::InvalidConfig`] for load/tile or grid-shape
    /// mismatches and propagates grid, sensor and chain failures; when
    /// several sites fail, the error of the lowest-indexed site is
    /// returned.
    pub fn run_dual(
        &self,
        ctx: &mut RunCtx<'_>,
        tile_loads: &[Waveform],
        ground_grid: Option<&psnt_pdn::grid::PowerGrid>,
        start: Time,
        dt: Time,
        samples: usize,
    ) -> Result<CampaignResult, ScanError> {
        let mut campaign_span = ctx.observer().map(|o| {
            o.begin_span("campaign")
                .attr("sites", &(self.floorplan.sites().len() as u64))
                .attr("samples", &(samples as u64))
                .sim_interval_ps(
                    start.picoseconds(),
                    (start + dt * samples as f64).picoseconds(),
                )
        });
        let prep = self.prepare_sweep(ctx, tile_loads, ground_grid, start, dt, samples)?;
        if let Some(span) = campaign_span.as_mut() {
            span.cover_sim_ps(prep.solve_end.picoseconds());
        }
        let quiet = Waveform::constant(0.0);
        let measure_span = ctx.observer().map(|o| {
            o.begin_span("measure_sweep").sim_interval_ps(
                prep.instants[0].picoseconds(),
                prep.instants[prep.instants.len() - 1].picoseconds(),
            )
        });
        // Workers record their site spans against the observer's epoch
        // and return the finished trees; the observer assigns ids after
        // the join, in site order, so the stream never depends on which
        // worker ran which site.
        let epoch = ctx.observer().map(|o| o.epoch());
        let site_defs = self.floorplan.sites();
        let batch = ctx
            .engine()
            .run_batch(&JobSpec::new(site_defs.len()), |job| {
                let site = &site_defs[job.index()];
                let mut site_span = epoch.map(|e| {
                    RemoteSpan::begin("site", e, job.worker() as u32 + 1)
                        .attr("site", &(job.index() as u64))
                        .attr("tile", &(site.tile as u64))
                        .attr("name", &site.name)
                        .sim_interval_ps(
                            prep.instants[0].picoseconds(),
                            prep.instants[prep.instants.len() - 1].picoseconds(),
                        )
                });
                let system = SensorSystem::new(self.config.clone())?;
                let vdd = &prep.tile_supplies[site.tile];
                let gnd = prep.tile_bounces.as_ref().map_or(&quiet, |b| &b[site.tile]);
                let mut measurements = Vec::with_capacity(prep.instants.len());
                for &at in &prep.instants {
                    let measure =
                        epoch.map(|e| RemoteSpan::begin("measure", e, job.worker() as u32 + 1));
                    measurements.push(system.measure_at(vdd, gnd, at).map_err(ScanError::from)?);
                    if let (Some(span), Some(measure)) = (site_span.as_mut(), measure) {
                        span.child(
                            measure
                                .sim_interval_ps(at.picoseconds(), at.picoseconds())
                                .end(),
                        );
                    }
                }
                job.metrics.counter_add("campaign.sites_done", 1);
                Ok::<(SiteSeries, Option<RemoteSpan>), ScanError>((
                    SiteSeries {
                        tile: site.tile,
                        name: site.name.clone(),
                        measurements,
                    },
                    site_span.map(RemoteSpan::end),
                ))
            })?;
        let (sites, site_spans): (Vec<SiteSeries>, Vec<Option<RemoteSpan>>) =
            batch.results.into_iter().unzip();
        if let Some(obs) = ctx.observer() {
            obs.metrics.merge(&batch.metrics);
            for span in site_spans.into_iter().flatten() {
                obs.emit_remote_tree(&span);
            }
            emit_site_events(obs, &sites, prep.v_nom);
        }
        if let (Some(obs), Some(span)) = (ctx.observer(), measure_span) {
            obs.end_span(span);
        }

        let mut frames = Vec::with_capacity(samples);
        for k in 0..samples {
            let codes: Vec<ThermometerCode> = sites
                .iter()
                .map(|s| s.measurements[k].hs_code.clone())
                .collect();
            frames.push(self.chain.capture(&codes)?);
        }
        if let (Some(obs), Some(span)) = (ctx.observer(), campaign_span) {
            obs.end_span(span);
        }
        Ok(CampaignResult {
            sites,
            instants: prep.instants,
            frames,
        })
    }

    /// Validates the campaign inputs and solves the rail waveforms —
    /// the stage every run variant shares before its per-site sweep.
    fn prepare_sweep(
        &self,
        ctx: &mut RunCtx<'_>,
        tile_loads: &[Waveform],
        ground_grid: Option<&psnt_pdn::grid::PowerGrid>,
        start: Time,
        dt: Time,
        samples: usize,
    ) -> Result<SweepInputs, ScanError> {
        let grid = self.floorplan.grid();
        if tile_loads.len() != grid.tiles() {
            return Err(ScanError::InvalidConfig {
                name: "tile_loads",
                reason: format!(
                    "expected {} tile load waveforms, got {}",
                    grid.tiles(),
                    tile_loads.len()
                ),
            });
        }
        if samples == 0 || dt <= Time::ZERO {
            return Err(ScanError::InvalidConfig {
                name: "samples/dt",
                reason: "need a positive sample count and spacing".into(),
            });
        }
        if let Some(g) = ground_grid {
            if g.tiles() != grid.tiles() {
                return Err(ScanError::InvalidConfig {
                    name: "ground_grid",
                    reason: format!(
                        "ground grid has {} tiles, supply grid {}",
                        g.tiles(),
                        grid.tiles()
                    ),
                });
            }
        }
        let end = start + dt * samples as f64 + Time::from_ns(1.0);
        let solve_dt = dt / 2.0;
        let solve_span = ctx.observer().map(|o| {
            o.begin_span("grid_solve")
                .attr("tiles", &(grid.tiles() as u64))
                .sim_interval_ps(start.picoseconds(), end.picoseconds())
        });
        let tile_supplies = grid.quasi_static_transient(ctx, tile_loads, start, end, solve_dt)?;
        // Ground bounce: the same tile currents return through the ground
        // mesh; the bounce is the IR rise above the (0 V-referenced) pad.
        let tile_bounces: Option<Vec<Waveform>> = match ground_grid {
            None => None,
            Some(g) => {
                let raw = g.quasi_static_transient(ctx, tile_loads, start, end, solve_dt)?;
                let v_pad = g.v_pad().volts();
                Some(raw.into_iter().map(|w| w.map(|v| v_pad - v)).collect())
            }
        };
        if let (Some(obs), Some(span)) = (ctx.observer(), solve_span) {
            obs.end_span(span);
        }
        let instants: Vec<Time> = (0..samples)
            .map(|k| start + dt * (k as f64 + 0.5))
            .collect();
        Ok(SweepInputs {
            tile_supplies,
            tile_bounces,
            windows: (0..instants.len()).collect(),
            instants,
            v_nom: grid.v_pad().volts(),
            solve_end: end,
        })
    }

    /// Like [`Campaign::run_dual`], but the campaign **completes with
    /// partial results when individual sites fail**: each site runs as
    /// an isolated job ([`Engine::run_batch_isolated`]) under the given
    /// deterministic [`RetryPolicy`], and a site whose every attempt
    /// fails is *degraded* — it contributes an empty measurement series
    /// and all-`X` bits to every scan frame — instead of aborting the
    /// run.
    ///
    /// When the context carries a [`psnt_fault::FaultPlan`] with
    /// [`psnt_fault::Fault::SitePanic`] entries, those sites panic on
    /// their first attempt — the harness-level fault used to exercise
    /// this degradation path end-to-end (a retrying policy recovers
    /// them; [`RetryPolicy::none`] leaves them degraded).
    ///
    /// Determinism: sites are independent jobs keyed by floorplan
    /// index, retries happen inside the owning job with seeds derived
    /// from `(ctx seed, site, attempt)`, and outcomes are collected in
    /// site order — so the whole [`ResilientCampaignResult`], including
    /// which sites degraded, is bit-identical at any worker count.
    ///
    /// Telemetry (when observed): everything [`Campaign::run_dual`]
    /// emits for measured sites, plus one `scan`/`degraded` event per
    /// degraded site, the `campaign.sites_degraded` counter, and
    /// `campaign.worst_code_error` / `campaign.dead_elements` gauges
    /// summarising the degradation.
    ///
    /// # Errors
    ///
    /// Returns the same input-validation and grid-solve errors as
    /// [`Campaign::run_dual`], and chain-capture failures. Per-site
    /// measurement failures do **not** abort the run — they surface in
    /// [`ResilientCampaignResult::outcomes`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_resilient(
        &self,
        ctx: &mut RunCtx<'_>,
        tile_loads: &[Waveform],
        ground_grid: Option<&psnt_pdn::grid::PowerGrid>,
        start: Time,
        dt: Time,
        samples: usize,
        retry: RetryPolicy,
    ) -> Result<ResilientCampaignResult, ScanError> {
        let mut campaign_span = ctx.observer().map(|o| {
            o.begin_span("campaign")
                .attr("sites", &(self.floorplan.sites().len() as u64))
                .attr("samples", &(samples as u64))
                .attr("resilient", &true)
                .sim_interval_ps(
                    start.picoseconds(),
                    (start + dt * samples as f64).picoseconds(),
                )
        });
        let prep = self.prepare_sweep(ctx, tile_loads, ground_grid, start, dt, samples)?;
        if let Some(span) = campaign_span.as_mut() {
            span.cover_sim_ps(prep.solve_end.picoseconds());
        }
        let out = self.resilient_sweep(ctx, prep, retry);
        if let (Some(obs), Some(span)) = (ctx.observer(), campaign_span) {
            obs.end_span(span);
        }
        out
    }

    /// [`Campaign::run_resilient`] against **externally solved rails**:
    /// per-tile supply (and optionally ground-bounce) waveforms plus
    /// explicit sampling instants, skipping the internal relaxation
    /// transient entirely. This is the fast path for workload-driven
    /// campaigns whose rail waveforms come from the sparse PDN solver
    /// ([`psnt_pdn::grid::PowerGrid::solve_delta`]) — at 1,600 nodes a
    /// per-cycle relaxation sweep would dwarf the measurement cost.
    ///
    /// Only instrumented tiles' waveforms are sampled; uninstrumented
    /// entries may be cheap placeholders (e.g. a constant), but the
    /// vectors must still be grid-shaped so tile indexing stays honest.
    ///
    /// # Errors
    ///
    /// Returns [`ScanError::InvalidConfig`] for grid-shape mismatches or
    /// empty/unsorted instants; per-site failures degrade as in
    /// [`Campaign::run_resilient`].
    pub fn run_resilient_from_rails(
        &self,
        ctx: &mut RunCtx<'_>,
        tile_supplies: Vec<Waveform>,
        tile_bounces: Option<Vec<Waveform>>,
        instants: Vec<Time>,
        retry: RetryPolicy,
    ) -> Result<ResilientCampaignResult, ScanError> {
        let prep = self.rails_inputs(tile_supplies, tile_bounces, instants)?;
        let campaign_span = ctx.observer().map(|o| {
            o.begin_span("campaign")
                .attr("sites", &(self.floorplan.sites().len() as u64))
                .attr("samples", &(prep.instants.len() as u64))
                .attr("resilient", &true)
                .attr("from_rails", &true)
                .sim_interval_ps(prep.instants[0].picoseconds(), prep.solve_end.picoseconds())
        });
        let out = self.resilient_sweep(ctx, prep, retry);
        if let (Some(obs), Some(span)) = (ctx.observer(), campaign_span) {
            obs.end_span(span);
        }
        out
    }

    /// Validates externally solved rails into the shared sweep inputs.
    fn rails_inputs(
        &self,
        tile_supplies: Vec<Waveform>,
        tile_bounces: Option<Vec<Waveform>>,
        instants: Vec<Time>,
    ) -> Result<SweepInputs, ScanError> {
        let grid = self.floorplan.grid();
        if tile_supplies.len() != grid.tiles() {
            return Err(ScanError::InvalidConfig {
                name: "tile_supplies",
                reason: format!(
                    "expected {} tile supply waveforms, got {}",
                    grid.tiles(),
                    tile_supplies.len()
                ),
            });
        }
        if let Some(b) = &tile_bounces {
            if b.len() != grid.tiles() {
                return Err(ScanError::InvalidConfig {
                    name: "tile_bounces",
                    reason: format!(
                        "expected {} tile bounce waveforms, got {}",
                        grid.tiles(),
                        b.len()
                    ),
                });
            }
        }
        // Reading the last instant doubles as the emptiness check, so
        // there is no `expect` to go stale if the checks reorder.
        let Some(&solve_end) = instants.last() else {
            return Err(ScanError::InvalidConfig {
                name: "instants",
                reason: "need at least one sampling instant".into(),
            });
        };
        if instants.windows(2).any(|w| w[1] <= w[0]) {
            return Err(ScanError::InvalidConfig {
                name: "instants",
                reason: "instants must be strictly increasing".into(),
            });
        }
        Ok(SweepInputs {
            tile_supplies,
            tile_bounces,
            windows: (0..instants.len()).collect(),
            instants,
            v_nom: grid.v_pad().volts(),
            solve_end,
        })
    }

    /// The isolated per-site sweep, frame assembly and degradation
    /// accounting shared by [`Campaign::run_resilient`] and
    /// [`Campaign::run_resilient_from_rails`].
    fn resilient_sweep(
        &self,
        ctx: &mut RunCtx<'_>,
        prep: SweepInputs,
        retry: RetryPolicy,
    ) -> Result<ResilientCampaignResult, ScanError> {
        let samples = prep.instants.len();
        let quiet = Waveform::constant(0.0);
        let panicking = ctx
            .fault_plan()
            .map(psnt_fault::FaultPlan::panicking_sites)
            .unwrap_or_default();
        let worker_panics = ctx
            .fault_plan()
            .map(psnt_fault::FaultPlan::worker_panics)
            .unwrap_or_default();
        let measure_span = ctx.observer().map(|o| {
            o.begin_span("measure_sweep").sim_interval_ps(
                prep.instants[0].picoseconds(),
                prep.instants[prep.instants.len() - 1].picoseconds(),
            )
        });
        let epoch = ctx.observer().map(|o| o.epoch());
        let site_defs = self.floorplan.sites();
        let spec = JobSpec::new(site_defs.len()).seed(ctx.seed());
        let batch = ctx.engine().run_batch_isolated(&spec, retry, |job| {
            if job.attempt() == 0 && panicking.contains(&job.index()) {
                panic!("injected fault: site {} panicked", job.index());
            }
            if worker_panics
                .iter()
                .any(|&(j, a)| j == job.index() && job.attempt() <= a)
            {
                panic!(
                    "injected fault: job {} panicked on attempt {}",
                    job.index(),
                    job.attempt()
                );
            }
            let site = &site_defs[job.index()];
            let mut site_span = epoch.map(|e| {
                RemoteSpan::begin("site", e, job.worker() as u32 + 1)
                    .attr("site", &(job.index() as u64))
                    .attr("tile", &(site.tile as u64))
                    .attr("name", &site.name)
                    .attr("attempt", &u64::from(job.attempt()))
                    .sim_interval_ps(
                        prep.instants[0].picoseconds(),
                        prep.instants[prep.instants.len() - 1].picoseconds(),
                    )
            });
            let system = SensorSystem::new(self.config.clone())?;
            let vdd = &prep.tile_supplies[site.tile];
            let gnd = prep.tile_bounces.as_ref().map_or(&quiet, |b| &b[site.tile]);
            let mut measurements = Vec::with_capacity(prep.instants.len());
            for &at in &prep.instants {
                let measure =
                    epoch.map(|e| RemoteSpan::begin("measure", e, job.worker() as u32 + 1));
                measurements.push(system.measure_at(vdd, gnd, at).map_err(ScanError::from)?);
                if let (Some(span), Some(measure)) = (site_span.as_mut(), measure) {
                    span.child(
                        measure
                            .sim_interval_ps(at.picoseconds(), at.picoseconds())
                            .end(),
                    );
                }
            }
            job.metrics.counter_add("campaign.sites_done", 1);
            Ok::<(SiteSeries, Option<RemoteSpan>), ScanError>((
                SiteSeries {
                    tile: site.tile,
                    name: site.name.clone(),
                    measurements,
                },
                site_span.map(RemoteSpan::end),
            ))
        });

        let mut outcomes = Vec::with_capacity(site_defs.len());
        let mut sites = Vec::with_capacity(site_defs.len());
        let mut site_spans: Vec<RemoteSpan> = Vec::new();
        for (i, outcome) in batch.results.into_iter().enumerate() {
            let (series, site_outcome) = match outcome {
                JobOutcome::Ok(Ok((series, span))) => {
                    site_spans.extend(span);
                    (series, SiteOutcome::Measured)
                }
                JobOutcome::Ok(Err(e)) => (
                    SiteSeries {
                        tile: site_defs[i].tile,
                        name: site_defs[i].name.clone(),
                        measurements: Vec::new(),
                    },
                    SiteOutcome::Degraded {
                        error: e.to_string(),
                    },
                ),
                JobOutcome::Failed(je) => (
                    SiteSeries {
                        tile: site_defs[i].tile,
                        name: site_defs[i].name.clone(),
                        measurements: Vec::new(),
                    },
                    SiteOutcome::Degraded {
                        error: je.to_string(),
                    },
                ),
            };
            sites.push(series);
            outcomes.push(site_outcome);
        }

        // Degraded sites read out as unresolved flip-flops: a full-width
        // all-X code in every frame, keeping the frame geometry intact.
        let unknown: ThermometerCode = ThermometerCode::new(
            (0..self.chain.bits_per_site())
                .map(|_| Logic::X)
                .collect::<LogicVector>(),
        );
        let mut frames = Vec::with_capacity(samples);
        for k in 0..samples {
            let codes: Vec<ThermometerCode> = sites
                .iter()
                .map(|s| {
                    s.measurements
                        .get(k)
                        .map_or_else(|| unknown.clone(), |m| m.hs_code.clone())
                })
                .collect();
            frames.push(self.chain.capture(&codes)?);
        }

        let summary = DegradationSummary {
            sites_degraded: outcomes.iter().filter(|o| !o.is_measured()).count(),
            dead_elements: frames
                .iter()
                .map(|f| f.iter().filter(|b| *b == Logic::X).count())
                .max()
                .unwrap_or(0),
            worst_code_error: sites
                .iter()
                .flat_map(|s| &s.measurements)
                .flat_map(|m| [&m.hs_code, &m.ls_code])
                .map(encoder_level_gap)
                .max()
                .unwrap_or(0),
        };

        if let Some(obs) = ctx.observer() {
            obs.metrics.merge(&batch.metrics);
            for span in &site_spans {
                obs.emit_remote_tree(span);
            }
            emit_site_events(obs, &sites, prep.v_nom);
            for (i, o) in outcomes.iter().enumerate() {
                if let SiteOutcome::Degraded { error } = o {
                    obs.metrics.counter_add("campaign.sites_degraded", 1);
                    obs.event(
                        ObsEvent::new("scan", "degraded")
                            .field("site", &(i as u64))
                            .field("tile", &(site_defs[i].tile as u64))
                            .field("name", &site_defs[i].name)
                            .field("error", error),
                    );
                }
            }
            obs.metrics
                .gauge_set_max("campaign.worst_code_error", summary.worst_code_error as f64);
            obs.metrics
                .gauge_set_max("campaign.dead_elements", summary.dead_elements as f64);
        }
        if let (Some(obs), Some(span)) = (ctx.observer(), measure_span) {
            obs.end_span(span);
        }

        Ok(ResilientCampaignResult {
            result: CampaignResult {
                sites,
                instants: prep.instants,
                frames,
            },
            outcomes,
            summary,
        })
    }

    /// Streams a resilient campaign instead of accumulating it: site
    /// records flow through a **bounded channel** from the measuring
    /// workers to the calling thread, which hands each one to `sink` and
    /// drops it — so peak memory holds at most a couple of chunks of
    /// in-flight sites plus a per-instant code buffer for frame
    /// assembly, never a full [`CampaignResult`]. That is what lets a
    /// 256+-site workload campaign run with flat memory while its
    /// records land directly in a `psnt-obs` sink (see
    /// [`StreamRecord::to_event`]).
    ///
    /// Semantics match [`Campaign::run_resilient`] exactly: sites run as
    /// isolated jobs under `retry`, failing sites degrade to empty
    /// series and all-`X` frame bits, and a
    /// [`psnt_fault::Fault::SitePanic`] plan in the context degrades (or
    /// recovers, with retries) the same sites. Collecting the records
    /// reconstructs the in-memory result **bit-identically at any worker
    /// count**: sites are sharded into fixed-size chunks independent of
    /// the worker count, each chunk sweeps on the context's engine, and
    /// records are delivered in floorplan order — sites first, then one
    /// [`StreamRecord::Frame`] per instant, then the
    /// [`StreamRecord::Summary`] (also returned).
    ///
    /// When the context carries an observer, the per-site telemetry of
    /// [`Campaign::run_resilient`] (site spans, `scan`/`site` and
    /// `scan`/`degraded` events, counters and gauges) is emitted
    /// incrementally from the consuming thread, still in site order.
    ///
    /// # Errors
    ///
    /// Input-validation, grid-solve and chain-capture failures as
    /// [`Campaign::run_resilient`]; additionally, the first error the
    /// sink returns aborts the stream and is propagated (workers stop at
    /// the next chunk boundary), and a trip of the context's supervisor
    /// stops the sweep at the next chunk boundary with
    /// [`ScanError::Interrupted`]. Either way the truncated stream is
    /// closed with a best-effort terminal [`StreamRecord::Aborted`]
    /// carrying the count of site records already delivered. Per-site
    /// measurement failures do **not** abort the run — they stream as
    /// degraded records.
    #[allow(clippy::too_many_arguments)]
    pub fn run_streamed(
        &self,
        ctx: &mut RunCtx<'_>,
        tile_loads: &[Waveform],
        ground_grid: Option<&psnt_pdn::grid::PowerGrid>,
        start: Time,
        dt: Time,
        samples: usize,
        retry: RetryPolicy,
        mut sink: impl FnMut(StreamRecord) -> Result<(), ScanError>,
    ) -> Result<DegradationSummary, ScanError> {
        let mut campaign_span = ctx.observer().map(|o| {
            o.begin_span("campaign")
                .attr("sites", &(self.floorplan.sites().len() as u64))
                .attr("samples", &(samples as u64))
                .attr("streamed", &true)
                .sim_interval_ps(
                    start.picoseconds(),
                    (start + dt * samples as f64).picoseconds(),
                )
        });
        let prep = self.prepare_sweep(ctx, tile_loads, ground_grid, start, dt, samples)?;
        if let Some(span) = campaign_span.as_mut() {
            span.cover_sim_ps(prep.solve_end.picoseconds());
        }
        let out = self.streamed_sweep(ctx, prep, retry, &mut sink);
        if let (Some(obs), Some(span)) = (ctx.observer(), campaign_span) {
            obs.end_span(span);
        }
        let summary = out?;
        sink(StreamRecord::Summary {
            windows: samples,
            summary,
        })?;
        Ok(summary)
    }

    /// [`Campaign::run_streamed`] against externally solved rails (see
    /// [`Campaign::run_resilient_from_rails`] for the rails contract):
    /// the chip-scale streaming path a workload campaign drives, with
    /// rail waveforms from the sparse PDN solver and measurement
    /// windows chosen by the workload.
    ///
    /// # Errors
    ///
    /// Rail validation as [`Campaign::run_resilient_from_rails`]; sink
    /// and degradation semantics as [`Campaign::run_streamed`].
    pub fn run_streamed_from_rails(
        &self,
        ctx: &mut RunCtx<'_>,
        tile_supplies: Vec<Waveform>,
        tile_bounces: Option<Vec<Waveform>>,
        instants: Vec<Time>,
        retry: RetryPolicy,
        mut sink: impl FnMut(StreamRecord) -> Result<(), ScanError>,
    ) -> Result<DegradationSummary, ScanError> {
        let prep = self.rails_inputs(tile_supplies, tile_bounces, instants)?;
        let windows = prep.instants.len();
        let campaign_span = ctx.observer().map(|o| {
            o.begin_span("campaign")
                .attr("sites", &(self.floorplan.sites().len() as u64))
                .attr("samples", &(prep.instants.len() as u64))
                .attr("streamed", &true)
                .attr("from_rails", &true)
                .sim_interval_ps(prep.instants[0].picoseconds(), prep.solve_end.picoseconds())
        });
        let out = self.streamed_sweep(ctx, prep, retry, &mut sink);
        if let (Some(obs), Some(span)) = (ctx.observer(), campaign_span) {
            obs.end_span(span);
        }
        let summary = out?;
        sink(StreamRecord::Summary { windows, summary })?;
        Ok(summary)
    }

    /// The chunked producer/consumer sweep shared by
    /// [`Campaign::run_streamed`] and
    /// [`Campaign::run_streamed_from_rails`]: sweeps sites in fixed
    /// chunks, streams records through the bounded channel, assembles
    /// frames from the code buffer and returns the summary (the caller
    /// sinks the final [`StreamRecord::Summary`]).
    fn streamed_sweep(
        &self,
        ctx: &mut RunCtx<'_>,
        prep: SweepInputs,
        retry: RetryPolicy,
        sink: &mut impl FnMut(StreamRecord) -> Result<(), ScanError>,
    ) -> Result<DegradationSummary, ScanError> {
        let samples = prep.instants.len();
        let quiet = Waveform::constant(0.0);
        let panicking = ctx
            .fault_plan()
            .map(psnt_fault::FaultPlan::panicking_sites)
            .unwrap_or_default();
        let worker_panics = ctx
            .fault_plan()
            .map(psnt_fault::FaultPlan::worker_panics)
            .unwrap_or_default();
        let mut measure_span = ctx.observer().map(|o| {
            o.begin_span("measure_sweep").sim_interval_ps(
                prep.instants[0].picoseconds(),
                prep.instants[prep.instants.len() - 1].picoseconds(),
            )
        });
        let epoch = ctx.observer().map(|o| o.epoch());
        let site_defs = self.floorplan.sites();
        let n_sites = site_defs.len();
        let engine = ctx.engine().clone();
        let seed = ctx.seed();
        let sup = ctx.supervisor().clone();

        let unknown: ThermometerCode = ThermometerCode::new(
            (0..self.chain.bits_per_site())
                .map(|_| Logic::X)
                .collect::<LogicVector>(),
        );
        let mut summary = DegradationSummary {
            sites_degraded: 0,
            dead_elements: 0,
            worst_code_error: 0,
        };
        // The only cross-site state the frames need: one code per site
        // per instant (a few bits each) — not the measurement series.
        let mut frame_codes: Vec<Vec<ThermometerCode>> = vec![Vec::with_capacity(n_sites); samples];
        let mut sink_result: Result<(), ScanError> = Ok(());
        let mut trip: Option<psnt_sup::Interrupt> = None;
        let mut sites_streamed = 0usize;

        let (tx, rx) = std::sync::mpsc::sync_channel::<StreamMsg>(STREAM_CHANNEL_BOUND);
        let prep_ref = &prep;
        let quiet_ref = &quiet;
        let panicking_ref = &panicking;
        let worker_panics_ref = &worker_panics;
        let sup_prod = sup.clone();
        std::thread::scope(|scope| {
            // Producer: sweeps fixed-size site chunks on the engine and
            // sends each chunk's ordered outcomes. A closed channel
            // (sink failure on the consumer side) stops it at the next
            // send; a supervisor trip stops it at the next chunk
            // boundary, so an interrupted stream is always a
            // whole-chunk prefix of the full run.
            scope.spawn(move || {
                let mut chunk_start = 0usize;
                while chunk_start < n_sites {
                    if let Err(reason) = sup_prod.check() {
                        let _ = tx.send(StreamMsg::Interrupted(reason));
                        return;
                    }
                    let chunk_len = STREAM_CHUNK_SITES.min(n_sites - chunk_start);
                    let spec = JobSpec::new(chunk_len).seed(seed);
                    let batch = engine.run_batch_isolated(&spec, retry, |job| {
                        let index = chunk_start + job.index();
                        if job.attempt() == 0 && panicking_ref.contains(&index) {
                            panic!("injected fault: site {index} panicked");
                        }
                        if worker_panics_ref
                            .iter()
                            .any(|&(j, a)| j == index && job.attempt() <= a)
                        {
                            panic!(
                                "injected fault: job {index} panicked on attempt {}",
                                job.attempt()
                            );
                        }
                        let site = &site_defs[index];
                        let mut site_span = epoch.map(|e| {
                            RemoteSpan::begin("site", e, job.worker() as u32 + 1)
                                .attr("site", &(index as u64))
                                .attr("tile", &(site.tile as u64))
                                .attr("name", &site.name)
                                .attr("attempt", &u64::from(job.attempt()))
                                .sim_interval_ps(
                                    prep_ref.instants[0].picoseconds(),
                                    prep_ref.instants[prep_ref.instants.len() - 1].picoseconds(),
                                )
                        });
                        let system = SensorSystem::new(self.config.clone())?;
                        let vdd = &prep_ref.tile_supplies[site.tile];
                        let gnd = prep_ref
                            .tile_bounces
                            .as_ref()
                            .map_or(quiet_ref, |b| &b[site.tile]);
                        let mut measurements = Vec::with_capacity(prep_ref.instants.len());
                        for &at in &prep_ref.instants {
                            let measure = epoch
                                .map(|e| RemoteSpan::begin("measure", e, job.worker() as u32 + 1));
                            measurements
                                .push(system.measure_at(vdd, gnd, at).map_err(ScanError::from)?);
                            if let (Some(span), Some(measure)) = (site_span.as_mut(), measure) {
                                span.child(
                                    measure
                                        .sim_interval_ps(at.picoseconds(), at.picoseconds())
                                        .end(),
                                );
                            }
                        }
                        job.metrics.counter_add("campaign.sites_done", 1);
                        Ok::<(SiteSeries, Option<RemoteSpan>), ScanError>((
                            SiteSeries {
                                tile: site.tile,
                                name: site.name.clone(),
                                measurements,
                            },
                            site_span.map(RemoteSpan::end),
                        ))
                    });
                    for (j, mut outcome) in batch.results.into_iter().enumerate() {
                        // Rebase the chunk-local job index so degraded
                        // error strings name the floorplan site — the
                        // same strings the in-memory path produces.
                        if let JobOutcome::Failed(je) = &mut outcome {
                            je.job = chunk_start + j;
                        }
                        let msg = StreamMsg::Site {
                            site: chunk_start + j,
                            outcome,
                        };
                        if tx.send(msg).is_err() {
                            return;
                        }
                    }
                    if tx
                        .send(StreamMsg::Metrics(Box::new(batch.metrics)))
                        .is_err()
                    {
                        return;
                    }
                    sup_prod.charge_events(chunk_len as u64);
                    chunk_start += chunk_len;
                }
            });

            // Consumer (this thread): owns the observer and the sink.
            for msg in rx {
                match msg {
                    StreamMsg::Metrics(m) => {
                        if let Some(obs) = ctx.observer() {
                            obs.metrics.merge(&m);
                        }
                    }
                    StreamMsg::Interrupted(reason) => {
                        // The producer stopped itself; record why and
                        // stop consuming (nothing else will arrive).
                        trip = Some(reason);
                        break;
                    }
                    StreamMsg::Site { site, outcome } => {
                        let (series, site_outcome, span) = match outcome {
                            JobOutcome::Ok(Ok((series, span))) => {
                                (series, SiteOutcome::Measured, span)
                            }
                            JobOutcome::Ok(Err(e)) => (
                                SiteSeries {
                                    tile: site_defs[site].tile,
                                    name: site_defs[site].name.clone(),
                                    measurements: Vec::new(),
                                },
                                SiteOutcome::Degraded {
                                    error: e.to_string(),
                                },
                                None,
                            ),
                            JobOutcome::Failed(je) => (
                                SiteSeries {
                                    tile: site_defs[site].tile,
                                    name: site_defs[site].name.clone(),
                                    measurements: Vec::new(),
                                },
                                SiteOutcome::Degraded {
                                    error: je.to_string(),
                                },
                                None,
                            ),
                        };
                        for (k, codes) in frame_codes.iter_mut().enumerate() {
                            codes.push(
                                series
                                    .measurements
                                    .get(k)
                                    .map_or_else(|| unknown.clone(), |m| m.hs_code.clone()),
                            );
                        }
                        if let Some(gap) = series
                            .measurements
                            .iter()
                            .flat_map(|m| [&m.hs_code, &m.ls_code])
                            .map(encoder_level_gap)
                            .max()
                        {
                            summary.worst_code_error = summary.worst_code_error.max(gap);
                        }
                        if let SiteOutcome::Degraded { .. } = &site_outcome {
                            summary.sites_degraded += 1;
                        }
                        if let Some(obs) = ctx.observer() {
                            if let Some(span) = &span {
                                obs.emit_remote_tree(span);
                            }
                            emit_site_events(obs, std::slice::from_ref(&series), prep_ref.v_nom);
                            if let SiteOutcome::Degraded { error } = &site_outcome {
                                obs.metrics.counter_add("campaign.sites_degraded", 1);
                                obs.event(
                                    ObsEvent::new("scan", "degraded")
                                        .field("site", &(site as u64))
                                        .field("tile", &(site_defs[site].tile as u64))
                                        .field("name", &site_defs[site].name)
                                        .field("error", error),
                                );
                            }
                        }
                        let record = StreamRecord::Site {
                            site,
                            windows: prep_ref.windows.clone(),
                            series,
                            outcome: site_outcome,
                        };
                        if let Err(e) = sink(record) {
                            sink_result = Err(e);
                            // Dropping the receiver (by leaving the
                            // loop) disconnects the channel; the
                            // producer stops at its next send.
                            break;
                        }
                        sites_streamed += 1;
                    }
                }
            }
        });
        // The scope has joined the producer, so the site stream is
        // final. A sink failure or a supervisor trip ends the run here:
        // label the truncated stream with a terminal `Aborted` record
        // (best-effort — the sink may be the failing party) instead of
        // cutting it silently, then surface the error.
        let abort = match (sink_result, trip) {
            (Err(e), _) => Some(e),
            (Ok(()), Some(reason)) => Some(ScanError::Interrupted(reason)),
            (Ok(()), None) => None,
        };
        if let Some(e) = abort {
            let _ = sink(StreamRecord::Aborted {
                sites_completed: sites_streamed,
                reason: e.to_string(),
            });
            if let (Some(obs), Some(span)) = (ctx.observer(), measure_span.take()) {
                obs.end_span(span);
            }
            return Err(e);
        }

        // The frame tail is supervised and labelled the same way as
        // the site phase: a sink failure or a trip between frames
        // still closes the stream with a terminal `Aborted` record
        // instead of cutting it silently.
        let mut tail_abort: Option<ScanError> = None;
        for (k, codes) in frame_codes.iter().enumerate() {
            if let Err(reason) = sup.check() {
                tail_abort = Some(ScanError::Interrupted(reason));
                break;
            }
            let frame = self.chain.capture(codes)?;
            let dead = frame.iter().filter(|b| *b == Logic::X).count();
            summary.dead_elements = summary.dead_elements.max(dead);
            if let Err(e) = sink(StreamRecord::Frame {
                index: k,
                instant: prep.instants[k],
                frame,
            }) {
                tail_abort = Some(e);
                break;
            }
        }
        if let Some(e) = tail_abort {
            let _ = sink(StreamRecord::Aborted {
                sites_completed: sites_streamed,
                reason: e.to_string(),
            });
            if let (Some(obs), Some(span)) = (ctx.observer(), measure_span) {
                obs.end_span(span);
            }
            return Err(e);
        }
        if let Some(obs) = ctx.observer() {
            obs.metrics
                .gauge_set_max("campaign.worst_code_error", summary.worst_code_error as f64);
            obs.metrics
                .gauge_set_max("campaign.dead_elements", summary.dead_elements as f64);
        }
        if let (Some(obs), Some(span)) = (ctx.observer(), measure_span) {
            obs.end_span(span);
        }
        Ok(summary)
    }

    /// [`Campaign::run_dual`] with an explicit optional observer.
    ///
    /// # Errors
    ///
    /// Same as [`Campaign::run_dual`].
    #[deprecated(since = "0.1.0", note = "use `run_dual` with a `RunCtx`")]
    pub fn run_dual_observed(
        &self,
        tile_loads: &[Waveform],
        ground_grid: Option<&psnt_pdn::grid::PowerGrid>,
        start: Time,
        dt: Time,
        samples: usize,
        observer: Option<&mut Observer>,
    ) -> Result<CampaignResult, ScanError> {
        self.run_dual(
            &mut RunCtx::serial().with_observer_opt(observer),
            tile_loads,
            ground_grid,
            start,
            dt,
            samples,
        )
    }

    /// [`Campaign::run_dual`] with an explicit engine and optional
    /// observer.
    ///
    /// # Errors
    ///
    /// Same as [`Campaign::run_dual`].
    #[deprecated(since = "0.1.0", note = "use `run_dual` with a `RunCtx`")]
    #[allow(clippy::too_many_arguments)]
    pub fn run_dual_observed_on(
        &self,
        engine: &Engine,
        tile_loads: &[Waveform],
        ground_grid: Option<&psnt_pdn::grid::PowerGrid>,
        start: Time,
        dt: Time,
        samples: usize,
        observer: Option<&mut Observer>,
    ) -> Result<CampaignResult, ScanError> {
        self.run_dual(
            &mut RunCtx::new(engine.clone()).with_observer_opt(observer),
            tile_loads,
            ground_grid,
            start,
            dt,
            samples,
        )
    }
}

/// Emits the per-site `scan`/`site` events and worst droop/bounce
/// gauges shared by every observed run variant. Sites are visited in
/// floorplan order after the sweep joins, so the telemetry stream is
/// worker-count independent.
fn emit_site_events(obs: &mut Observer, sites: &[SiteSeries], v_nom: f64) {
    for series in sites {
        let mut event = ObsEvent::new("scan", "site")
            .field("tile", &(series.tile as u64))
            .field("name", &series.name)
            .field("worst_level", &(series.worst_level() as u64));
        if let Some(v) = series.worst_voltage() {
            let droop_mv = (v_nom - v.volts()) * 1e3;
            obs.metrics
                .gauge_set_max("campaign.worst_droop_mv", droop_mv);
            event = event.field("worst_droop_mv", &droop_mv);
        }
        if let Some(b) = series.worst_bounce() {
            let bounce_mv = b.volts() * 1e3;
            obs.metrics
                .gauge_set_max("campaign.worst_bounce_mv", bounce_mv);
            event = event.field("worst_bounce_mv", &bounce_mv);
        }
        obs.event(event);
    }
}

/// The level disagreement between the bubble-correcting and truncating
/// encoders on one captured code — 0 for canonical codes, positive when
/// a bubble or unresolved bit made the cheap priority-chain encoder
/// diverge from the corrected reading.
fn encoder_level_gap(code: &ThermometerCode) -> usize {
    let width = code.width();
    let (Ok(correct), Ok(truncate)) = (
        Encoder::new(width, EncodingPolicy::BubbleCorrect),
        Encoder::new(width, EncodingPolicy::Truncate),
    ) else {
        // A zero-width code cannot disagree with itself; don't let a
        // degenerate capture panic the campaign's summary accounting.
        return 0;
    };
    correct
        .encode(code)
        .level
        .abs_diff(truncate.encode(code).level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Placement;
    use psnt_cells::units::{Resistance, Time};
    use psnt_pdn::grid::PowerGrid;

    fn floorplan() -> Floorplan {
        let grid = PowerGrid::corner_fed(
            3,
            Voltage::from_v(1.05),
            Resistance::from_milliohms(60.0),
            Resistance::from_milliohms(20.0),
        )
        .unwrap();
        Floorplan::new(grid, Placement::EveryTile).unwrap()
    }

    fn campaign() -> Campaign {
        Campaign::new(floorplan(), SensorConfig::default()).unwrap()
    }

    #[test]
    fn chain_matches_floorplan() {
        let c = campaign();
        assert_eq!(c.chain().site_names().len(), 9);
        assert_eq!(c.chain().len(), 63);
    }

    #[test]
    fn run_produces_series_and_frames() {
        let c = campaign();
        // The centre tile draws a ramping current; others idle lightly.
        let mut loads = vec![Waveform::constant(0.02); 9];
        loads[4] =
            Waveform::from_points(vec![(Time::ZERO, 0.05), (Time::from_ns(200.0), 0.9)]).unwrap();
        let result = c
            .run(
                &mut RunCtx::serial(),
                &loads,
                Time::from_ns(10.0),
                Time::from_ns(20.0),
                8,
            )
            .unwrap();
        assert_eq!(result.sites.len(), 9);
        assert_eq!(result.frames.len(), 8);
        assert_eq!(result.instants.len(), 8);
        assert!(result.frames.iter().all(|f| f.len() == 63));
        // Every series is time-aligned.
        for s in &result.sites {
            assert_eq!(s.measurements.len(), 8);
        }
    }

    #[test]
    fn hotspot_is_the_loaded_centre() {
        let c = campaign();
        let mut loads = vec![Waveform::constant(0.02); 9];
        loads[4] = Waveform::constant(1.2);
        let result = c
            .run(
                &mut RunCtx::serial(),
                &loads,
                Time::from_ns(10.0),
                Time::from_ns(20.0),
                4,
            )
            .unwrap();
        let hotspot = result.hotspot().unwrap();
        assert_eq!(hotspot.tile, 4, "noise map: {:?}", result.noise_map());
        // The hotspot's worst level is at most the corner tiles'.
        let corner = result.sites.iter().find(|s| s.tile == 0).unwrap();
        assert!(hotspot.worst_level() <= corner.worst_level());
        assert!(hotspot.worst_voltage().unwrap() < Voltage::from_v(1.05));
    }

    #[test]
    fn load_mismatch_rejected() {
        let c = campaign();
        let loads = vec![Waveform::constant(0.02); 4];
        assert!(matches!(
            c.run(
                &mut RunCtx::serial(),
                &loads,
                Time::ZERO,
                Time::from_ns(10.0),
                2
            ),
            Err(ScanError::InvalidConfig {
                name: "tile_loads",
                ..
            })
        ));
    }

    #[test]
    fn degenerate_sampling_rejected() {
        let c = campaign();
        let loads = vec![Waveform::constant(0.02); 9];
        assert!(c
            .run(
                &mut RunCtx::serial(),
                &loads,
                Time::ZERO,
                Time::from_ns(10.0),
                0
            )
            .is_err());
        assert!(c
            .run(&mut RunCtx::serial(), &loads, Time::ZERO, Time::ZERO, 4)
            .is_err());
    }

    #[test]
    fn dual_rail_campaign_measures_ground_bounce() {
        use psnt_pdn::grid::PowerGrid;
        let c = campaign();
        // A stiffer ground grid (typical: more return vias).
        let gnd_grid = PowerGrid::corner_fed(
            3,
            Voltage::ZERO, // the board ground reference
            Resistance::from_milliohms(120.0),
            Resistance::from_milliohms(40.0),
        )
        .unwrap();
        let mut loads = vec![Waveform::constant(0.05); 9];
        loads[4] = Waveform::constant(0.9);
        let result = c
            .run_dual(
                &mut RunCtx::serial(),
                &loads,
                Some(&gnd_grid),
                Time::from_ns(10.0),
                Time::from_ns(20.0),
                4,
            )
            .unwrap();
        // The centre tile bounces hardest: its LS level is the worst.
        let centre = result.sites.iter().find(|s| s.tile == 4).unwrap();
        let corner = result.sites.iter().find(|s| s.tile == 0).unwrap();
        assert!(
            centre.worst_ls_level() <= corner.worst_ls_level(),
            "centre LS {} vs corner LS {}",
            centre.worst_ls_level(),
            corner.worst_ls_level()
        );
        // And the decoded bounce at the centre is physically plausible
        // (tens of mV for ~1 A through a 120 mΩ mesh).
        if let Some(b) = centre.worst_bounce() {
            assert!(b > Voltage::from_mv(10.0), "bounce {b}");
            assert!(b < Voltage::from_mv(400.0), "bounce {b}");
        }
        // Without a ground grid the LS readings sit at the quiet code.
        let quiet_run = c
            .run(
                &mut RunCtx::serial(),
                &loads,
                Time::from_ns(10.0),
                Time::from_ns(20.0),
                2,
            )
            .unwrap();
        let quiet_centre = quiet_run.sites.iter().find(|s| s.tile == 4).unwrap();
        assert!(quiet_centre.worst_ls_level() >= centre.worst_ls_level());
    }

    #[test]
    fn dual_rail_grid_shape_checked() {
        use psnt_pdn::grid::PowerGrid;
        let c = campaign();
        let wrong = PowerGrid::corner_fed(
            4,
            Voltage::ZERO,
            Resistance::from_milliohms(120.0),
            Resistance::from_milliohms(40.0),
        )
        .unwrap();
        let loads = vec![Waveform::constant(0.05); 9];
        assert!(matches!(
            c.run_dual(
                &mut RunCtx::serial(),
                &loads,
                Some(&wrong),
                Time::ZERO,
                Time::from_ns(10.0),
                2
            ),
            Err(ScanError::InvalidConfig {
                name: "ground_grid",
                ..
            })
        ));
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        let c = campaign();
        let mut loads = vec![Waveform::constant(0.02); 9];
        loads[4] =
            Waveform::from_points(vec![(Time::ZERO, 0.05), (Time::from_ns(200.0), 0.9)]).unwrap();
        let serial = c
            .run(
                &mut RunCtx::serial(),
                &loads,
                Time::from_ns(10.0),
                Time::from_ns(20.0),
                6,
            )
            .unwrap();
        for jobs in [1usize, 2, 5, 16] {
            let parallel = c
                .run(
                    &mut RunCtx::new(Engine::new(jobs)),
                    &loads,
                    Time::from_ns(10.0),
                    Time::from_ns(20.0),
                    6,
                )
                .unwrap();
            assert_eq!(parallel, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_observed_merges_site_counter_once() {
        let c = campaign();
        let loads = vec![Waveform::constant(0.1); 9];
        let mut obs = Observer::ring(128);
        let parallel = c
            .run_dual(
                &mut RunCtx::new(Engine::new(3)).with_observer(&mut obs),
                &loads,
                None,
                Time::from_ns(5.0),
                Time::from_ns(15.0),
                2,
            )
            .unwrap();
        let plain = c
            .run(
                &mut RunCtx::serial(),
                &loads,
                Time::from_ns(5.0),
                Time::from_ns(15.0),
                2,
            )
            .unwrap();
        assert_eq!(parallel, plain, "observer+parallelism must be passive");
        assert_eq!(obs.metrics.counter_value("campaign.sites_done"), 9);
        assert_eq!(obs.metrics.counter_value("engine.jobs_done"), 9);
    }

    #[test]
    fn resilient_run_without_faults_matches_run_dual() {
        let c = campaign();
        let mut loads = vec![Waveform::constant(0.02); 9];
        loads[4] = Waveform::constant(0.8);
        let plain = c
            .run(
                &mut RunCtx::serial(),
                &loads,
                Time::from_ns(10.0),
                Time::from_ns(20.0),
                3,
            )
            .unwrap();
        let resilient = c
            .run_resilient(
                &mut RunCtx::serial(),
                &loads,
                None,
                Time::from_ns(10.0),
                Time::from_ns(20.0),
                3,
                RetryPolicy::none(),
            )
            .unwrap();
        assert_eq!(resilient.result, plain);
        assert!(resilient.outcomes.iter().all(SiteOutcome::is_measured));
        assert_eq!(resilient.summary.sites_degraded, 0);
        assert_eq!(resilient.summary.dead_elements, 0);
    }

    #[test]
    fn injected_site_panic_degrades_that_site_only() {
        use psnt_fault::{Fault, FaultPlan};
        let c = campaign();
        let loads = vec![Waveform::constant(0.1); 9];
        let plan = FaultPlan::new()
            .with(Fault::SitePanic { site: 2 })
            .with(Fault::SitePanic { site: 6 });
        let mut obs = Observer::ring(256);
        let mut ctx = RunCtx::serial()
            .with_fault_plan(plan)
            .with_observer(&mut obs);
        let r = c
            .run_resilient(
                &mut ctx,
                &loads,
                None,
                Time::from_ns(10.0),
                Time::from_ns(20.0),
                2,
                RetryPolicy::none(),
            )
            .unwrap();
        drop(ctx);
        // Partial results: the other 7 sites measured normally.
        assert_eq!(r.summary.sites_degraded, 2);
        for (i, o) in r.outcomes.iter().enumerate() {
            if i == 2 || i == 6 {
                let SiteOutcome::Degraded { error } = o else {
                    panic!("site {i} should be degraded");
                };
                assert!(error.contains(&format!("site {i} panicked")), "{error}");
                assert!(r.result.sites[i].measurements.is_empty());
            } else {
                assert!(o.is_measured());
                assert_eq!(r.result.sites[i].measurements.len(), 2);
            }
        }
        // Degraded sites read out as all-X in every frame.
        assert_eq!(r.summary.dead_elements, 2 * 7);
        for frame in &r.result.frames {
            let x_bits = frame.iter().filter(|b| *b == Logic::X).count();
            assert_eq!(x_bits, 14);
        }
        // Telemetry recorded the degradation.
        assert_eq!(obs.metrics.counter_value("campaign.sites_degraded"), 2);
        assert_eq!(obs.metrics.counter_value("engine.jobs_failed"), 2);
        assert_eq!(
            obs.metrics.gauge_value("campaign.dead_elements"),
            Some(14.0)
        );
    }

    #[test]
    fn retry_policy_recovers_injected_site_panics() {
        use psnt_fault::{Fault, FaultPlan};
        let c = campaign();
        let loads = vec![Waveform::constant(0.1); 9];
        let plan = FaultPlan::new().with(Fault::SitePanic { site: 3 });
        let mut ctx = RunCtx::serial().with_fault_plan(plan);
        // SitePanic fires on the first attempt only, so two attempts
        // recover the site and the run is fully healthy.
        let r = c
            .run_resilient(
                &mut ctx,
                &loads,
                None,
                Time::from_ns(10.0),
                Time::from_ns(20.0),
                2,
                RetryPolicy::attempts(2),
            )
            .unwrap();
        assert!(r.outcomes.iter().all(SiteOutcome::is_measured));
        assert_eq!(r.summary.sites_degraded, 0);
        let healthy = c
            .run_resilient(
                &mut RunCtx::serial(),
                &loads,
                None,
                Time::from_ns(10.0),
                Time::from_ns(20.0),
                2,
                RetryPolicy::none(),
            )
            .unwrap();
        assert_eq!(r.result, healthy.result);
    }

    #[test]
    fn degraded_campaign_is_bit_identical_at_any_worker_count() {
        use psnt_fault::{Fault, FaultPlan};
        let c = campaign();
        let mut loads = vec![Waveform::constant(0.05); 9];
        loads[4] = Waveform::constant(0.9);
        let run_at = |jobs: usize| {
            let plan = FaultPlan::new().with(Fault::SitePanic { site: 4 });
            let mut ctx = RunCtx::new(Engine::new(jobs)).with_fault_plan(plan);
            c.run_resilient(
                &mut ctx,
                &loads,
                None,
                Time::from_ns(10.0),
                Time::from_ns(20.0),
                3,
                RetryPolicy::none(),
            )
            .unwrap()
        };
        let serial = run_at(1);
        for jobs in [2, 4] {
            assert_eq!(run_at(jobs), serial, "jobs={jobs}");
        }
    }

    /// Reassembles a streamed run's records into the in-memory result
    /// shape, so the bit-identity contract is a single `assert_eq`.
    fn collect_stream(records: Vec<StreamRecord>) -> ResilientCampaignResult {
        let mut sites = Vec::new();
        let mut outcomes = Vec::new();
        let mut instants = Vec::new();
        let mut frames = Vec::new();
        let mut summary = None;
        for record in records {
            match record {
                StreamRecord::Site {
                    site,
                    windows,
                    series,
                    outcome,
                } => {
                    assert_eq!(site, sites.len(), "site records out of order");
                    // Every site carries the full per-instant window
                    // map, available before the first frame arrives.
                    assert_eq!(windows, (0..windows.len()).collect::<Vec<_>>());
                    if outcome.is_measured() {
                        assert_eq!(windows.len(), series.measurements.len());
                    }
                    sites.push(series);
                    outcomes.push(outcome);
                }
                StreamRecord::Frame {
                    index,
                    instant,
                    frame,
                } => {
                    assert_eq!(index, frames.len(), "frame records out of order");
                    instants.push(instant);
                    frames.push(frame);
                }
                StreamRecord::Summary {
                    windows,
                    summary: s,
                } => {
                    assert!(summary.is_none(), "duplicate summary record");
                    assert_eq!(windows, frames.len(), "summary window count");
                    summary = Some(s);
                }
                StreamRecord::Aborted { .. } => {
                    panic!("completed stream must not carry an abort record")
                }
            }
        }
        ResilientCampaignResult {
            result: CampaignResult {
                sites,
                instants,
                frames,
            },
            outcomes,
            summary: summary.expect("stream ended without a summary record"),
        }
    }

    #[test]
    fn streamed_is_bit_identical_to_in_memory() {
        let c = campaign();
        let mut loads = vec![Waveform::constant(0.02); 9];
        loads[4] =
            Waveform::from_points(vec![(Time::ZERO, 0.05), (Time::from_ns(200.0), 0.9)]).unwrap();
        let in_memory = c
            .run_resilient(
                &mut RunCtx::serial(),
                &loads,
                None,
                Time::from_ns(10.0),
                Time::from_ns(20.0),
                5,
                RetryPolicy::none(),
            )
            .unwrap();
        for jobs in [1usize, 4] {
            let mut records = Vec::new();
            let summary = c
                .run_streamed(
                    &mut RunCtx::new(Engine::new(jobs)),
                    &loads,
                    None,
                    Time::from_ns(10.0),
                    Time::from_ns(20.0),
                    5,
                    RetryPolicy::none(),
                    |r| {
                        records.push(r);
                        Ok(())
                    },
                )
                .unwrap();
            assert_eq!(summary, in_memory.summary, "jobs={jobs}");
            assert!(matches!(records.last(), Some(StreamRecord::Summary { .. })));
            assert_eq!(collect_stream(records), in_memory, "jobs={jobs}");
        }
    }

    #[test]
    fn from_rails_paths_agree_and_validate() {
        let c = campaign();
        // Rails as a workload engine hands them over: per-tile supply
        // waveforms already solved, explicit measurement instants.
        let rails = || -> Vec<Waveform> {
            (0..9)
                .map(|t| {
                    Waveform::from_points(vec![
                        (Time::ZERO, 1.05 - 0.004 * t as f64),
                        (Time::from_ns(100.0), 1.05 - 0.008 * t as f64),
                    ])
                    .unwrap()
                })
                .collect()
        };
        let instants = vec![
            Time::from_ns(10.0),
            Time::from_ns(40.0),
            Time::from_ns(70.0),
        ];
        let in_memory = c
            .run_resilient_from_rails(
                &mut RunCtx::serial(),
                rails(),
                None,
                instants.clone(),
                RetryPolicy::none(),
            )
            .unwrap();
        assert_eq!(in_memory.result.sites.len(), 9);
        assert_eq!(in_memory.result.frames.len(), 3);
        for jobs in [1usize, 4] {
            let mut records = Vec::new();
            let summary = c
                .run_streamed_from_rails(
                    &mut RunCtx::new(Engine::new(jobs)),
                    rails(),
                    None,
                    instants.clone(),
                    RetryPolicy::none(),
                    |r| {
                        records.push(r);
                        Ok(())
                    },
                )
                .unwrap();
            assert_eq!(summary, in_memory.summary, "jobs={jobs}");
            assert_eq!(collect_stream(records), in_memory, "jobs={jobs}");
        }
        assert!(matches!(
            c.run_resilient_from_rails(
                &mut RunCtx::serial(),
                vec![Waveform::constant(1.05); 4],
                None,
                instants.clone(),
                RetryPolicy::none(),
            ),
            Err(ScanError::InvalidConfig {
                name: "tile_supplies",
                ..
            })
        ));
        assert!(matches!(
            c.run_resilient_from_rails(
                &mut RunCtx::serial(),
                rails(),
                None,
                vec![],
                RetryPolicy::none(),
            ),
            Err(ScanError::InvalidConfig {
                name: "instants",
                ..
            })
        ));
        assert!(matches!(
            c.run_resilient_from_rails(
                &mut RunCtx::serial(),
                rails(),
                None,
                vec![Time::from_ns(10.0), Time::from_ns(10.0)],
                RetryPolicy::none(),
            ),
            Err(ScanError::InvalidConfig {
                name: "instants",
                ..
            })
        ));
        assert!(matches!(
            c.run_streamed_from_rails(
                &mut RunCtx::serial(),
                rails(),
                Some(vec![Waveform::constant(0.0); 3]),
                instants,
                RetryPolicy::none(),
                |_| Ok(()),
            ),
            Err(ScanError::InvalidConfig {
                name: "tile_bounces",
                ..
            })
        ));
    }

    #[test]
    fn streamed_degrades_faulted_sites_identically() {
        use psnt_fault::{Fault, FaultPlan};
        let c = campaign();
        let mut loads = vec![Waveform::constant(0.05); 9];
        loads[4] = Waveform::constant(0.9);
        let plan = || {
            FaultPlan::new()
                .with(Fault::SitePanic { site: 1 })
                .with(Fault::SitePanic { site: 7 })
        };
        let in_memory = c
            .run_resilient(
                &mut RunCtx::serial().with_fault_plan(plan()),
                &loads,
                None,
                Time::from_ns(10.0),
                Time::from_ns(20.0),
                3,
                RetryPolicy::none(),
            )
            .unwrap();
        for jobs in [1usize, 4] {
            let mut records = Vec::new();
            c.run_streamed(
                &mut RunCtx::new(Engine::new(jobs)).with_fault_plan(plan()),
                &loads,
                None,
                Time::from_ns(10.0),
                Time::from_ns(20.0),
                3,
                RetryPolicy::none(),
                |r| {
                    records.push(r);
                    Ok(())
                },
            )
            .unwrap();
            let collected = collect_stream(records);
            // Degraded sites stream as degraded records with the very
            // same error strings (including the site index) as the
            // in-memory path, and the partial map survives — no panic.
            assert_eq!(collected, in_memory, "jobs={jobs}");
            assert_eq!(collected.summary.sites_degraded, 2);
        }
        // A retrying policy recovers the first-attempt-only panics in
        // the streamed path too.
        let mut records = Vec::new();
        let summary = c
            .run_streamed(
                &mut RunCtx::serial().with_fault_plan(plan()),
                &loads,
                None,
                Time::from_ns(10.0),
                Time::from_ns(20.0),
                3,
                RetryPolicy::attempts(2),
                |r| {
                    records.push(r);
                    Ok(())
                },
            )
            .unwrap();
        assert_eq!(summary.sites_degraded, 0);
        assert!(collect_stream(records)
            .outcomes
            .iter()
            .all(SiteOutcome::is_measured));
    }

    #[test]
    fn streamed_sink_error_aborts_run() {
        let c = campaign();
        let loads = vec![Waveform::constant(0.1); 9];
        let mut delivered = 0usize;
        let mut records = Vec::new();
        let err = c
            .run_streamed(
                &mut RunCtx::serial(),
                &loads,
                None,
                Time::from_ns(5.0),
                Time::from_ns(15.0),
                2,
                RetryPolicy::none(),
                |r| {
                    delivered += 1;
                    let failing = delivered == 3;
                    records.push(r);
                    if failing {
                        Err(ScanError::InvalidConfig {
                            name: "sink",
                            reason: "downstream full".into(),
                        })
                    } else {
                        Ok(())
                    }
                },
            )
            .unwrap_err();
        assert!(matches!(err, ScanError::InvalidConfig { name: "sink", .. }));
        // After the third record fails, the stream is closed with one
        // best-effort terminal abort record naming the two site records
        // that made it through — never a silent truncation.
        assert_eq!(delivered, 4);
        match records.last() {
            Some(StreamRecord::Aborted {
                sites_completed,
                reason,
            }) => {
                assert_eq!(*sites_completed, 2);
                assert!(reason.contains("downstream full"), "reason: {reason}");
            }
            other => panic!("expected terminal abort record, got {other:?}"),
        }
    }

    #[test]
    fn streamed_supervisor_trip_stops_at_chunk_boundary() {
        use psnt_sup::{CancelToken, RunBudget, Supervisor};
        let c = campaign();
        let rails = vec![Waveform::constant(1.04); 9];
        let instants = vec![Time::from_ns(5.0), Time::from_ns(20.0)];
        // Pre-cancelled, rails already solved: the producer trips
        // before claiming the first chunk, so zero site records stream
        // and the run reports the interrupt plus a terminal abort
        // record.
        let token = CancelToken::new();
        token.cancel();
        let mut records = Vec::new();
        let err = c
            .run_streamed_from_rails(
                &mut RunCtx::serial()
                    .with_supervisor(Supervisor::new(token, RunBudget::unlimited())),
                rails.clone(),
                None,
                instants.clone(),
                RetryPolicy::none(),
                |r| {
                    records.push(r);
                    Ok(())
                },
            )
            .unwrap_err();
        assert_eq!(err, ScanError::Interrupted(psnt_sup::Interrupt::Cancelled));
        assert_eq!(records.len(), 1, "only the terminal abort record");
        assert!(matches!(
            records.last(),
            Some(StreamRecord::Aborted {
                sites_completed: 0,
                ..
            })
        ));
        // Cancelling before the grid solve interrupts even earlier:
        // the error is the same, and no records stream at all.
        let token = CancelToken::new();
        token.cancel();
        let mut early = Vec::new();
        let err = c
            .run_streamed(
                &mut RunCtx::serial()
                    .with_supervisor(Supervisor::new(token, RunBudget::unlimited())),
                &vec![Waveform::constant(0.1); 9],
                None,
                Time::from_ns(5.0),
                Time::from_ns(15.0),
                2,
                RetryPolicy::none(),
                |r| {
                    early.push(r);
                    Ok(())
                },
            )
            .unwrap_err();
        assert_eq!(err, ScanError::Interrupted(psnt_sup::Interrupt::Cancelled));
        assert!(early.is_empty(), "solve tripped before any record");
        // A detached supervisor (the default) streams the full run.
        let mut full = Vec::new();
        c.run_streamed_from_rails(
            &mut RunCtx::serial().with_supervisor(Supervisor::detached()),
            rails,
            None,
            instants,
            RetryPolicy::none(),
            |r| {
                full.push(r);
                Ok(())
            },
        )
        .unwrap();
        assert!(matches!(full.last(), Some(StreamRecord::Summary { .. })));
    }

    #[test]
    fn streamed_records_render_as_events() {
        let c = campaign();
        let loads = vec![Waveform::constant(0.1); 9];
        let mut kinds = Vec::new();
        c.run_streamed(
            &mut RunCtx::serial(),
            &loads,
            None,
            Time::from_ns(5.0),
            Time::from_ns(15.0),
            2,
            RetryPolicy::none(),
            |r| {
                kinds.push(r.to_event().kind);
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(kinds.len(), 9 + 2 + 1);
        assert!(kinds[..9].iter().all(|k| k == "stream_site"));
        assert!(kinds[9..11].iter().all(|k| k == "stream_frame"));
        assert_eq!(kinds[11], "stream_summary");
    }

    #[test]
    fn streamed_observer_telemetry_counts_match() {
        let c = campaign();
        let loads = vec![Waveform::constant(0.1); 9];
        let mut obs = Observer::ring(256);
        c.run_streamed(
            &mut RunCtx::new(Engine::new(3)).with_observer(&mut obs),
            &loads,
            None,
            Time::from_ns(5.0),
            Time::from_ns(15.0),
            2,
            RetryPolicy::none(),
            |_| Ok(()),
        )
        .unwrap();
        assert_eq!(obs.metrics.counter_value("campaign.sites_done"), 9);
        assert_eq!(obs.metrics.counter_value("engine.jobs_done"), 9);
    }

    mod stream_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(6))]

            /// The tentpole contract: streamed campaigns are
            /// bit-identical to the in-memory path at jobs ∈ {1, 4},
            /// across load patterns, sample counts and fault plans.
            #[test]
            fn streamed_vs_in_memory_bit_identity(
                centre_load in 0.1..1.0f64,
                samples in 1usize..5,
                // 0..9 faults that site; 9 means no fault.
                faulted_site in 0usize..10,
            ) {
                use psnt_fault::{Fault, FaultPlan};
                let c = campaign();
                let mut loads = vec![Waveform::constant(0.03); 9];
                loads[4] = Waveform::constant(centre_load);
                let plan = || {
                    if faulted_site < 9 {
                        FaultPlan::new().with(Fault::SitePanic { site: faulted_site })
                    } else {
                        FaultPlan::default()
                    }
                };
                let in_memory = c
                    .run_resilient(
                        &mut RunCtx::serial().with_fault_plan(plan()),
                        &loads,
                        None,
                        Time::from_ns(10.0),
                        Time::from_ns(20.0),
                        samples,
                        RetryPolicy::none(),
                    )
                    .unwrap();
                for jobs in [1usize, 4] {
                    let mut records = Vec::new();
                    let mut ctx = RunCtx::new(Engine::new(jobs)).with_fault_plan(plan());
                    c.run_streamed(
                        &mut ctx,
                        &loads,
                        None,
                        Time::from_ns(10.0),
                        Time::from_ns(20.0),
                        samples,
                        RetryPolicy::none(),
                        |r| {
                            records.push(r);
                            Ok(())
                        },
                    )
                    .unwrap();
                    prop_assert_eq!(collect_stream(records), in_memory.clone(), "jobs={}", jobs);
                }
            }
        }
    }

    #[test]
    fn frames_roundtrip_through_chain() {
        let c = campaign();
        let loads = vec![Waveform::constant(0.1); 9];
        let result = c
            .run(
                &mut RunCtx::serial(),
                &loads,
                Time::from_ns(5.0),
                Time::from_ns(15.0),
                3,
            )
            .unwrap();
        for (k, frame) in result.frames.iter().enumerate() {
            let codes = c.chain().deserialize(frame).unwrap();
            for (site, code) in result.sites.iter().zip(&codes) {
                assert_eq!(&site.measurements[k].hs_code, code);
            }
        }
    }
}
