//! CUT floorplans and sensor placement.
//!
//! The paper's architectural claim: "the sensor arrays (INVs plus FFs)
//! can be multiplied, so that measures in many points of the CUT are
//! possible … whilst only a control system is required". A [`Floorplan`]
//! ties a `psnt-pdn` power grid to a set of [`SensorSite`]s — the tiles
//! where a sensor array is dropped in — and placement strategies decide
//! which tiles those are.
//!
//! # Examples
//!
//! ```
//! use psnt_cells::units::{Resistance, Voltage};
//! use psnt_pdn::grid::PowerGrid;
//! use psnt_scan::floorplan::{Floorplan, Placement};
//!
//! let grid = PowerGrid::corner_fed(4, Voltage::from_v(1.0),
//!     Resistance::from_milliohms(40.0), Resistance::from_milliohms(10.0))?;
//! let fp = Floorplan::new(grid, Placement::Checkerboard)?;
//! assert_eq!(fp.sites().len(), 8); // half of a 4×4 grid
//! # Ok::<(), psnt_scan::error::ScanError>(())
//! ```

use psnt_pdn::grid::PowerGrid;
use serde::{Deserialize, Serialize};

use crate::error::ScanError;

/// Where sensor arrays are instantiated on the grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Placement {
    /// One array on every tile (maximum observability, maximum cost).
    EveryTile,
    /// Every other tile in a checkerboard pattern.
    Checkerboard,
    /// The four corners plus the centre.
    CornersAndCentre,
    /// Explicit tile list.
    Tiles(Vec<usize>),
}

/// One instrumented point of the CUT.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SensorSite {
    /// Tile index on the power grid (row-major).
    pub tile: usize,
    /// A stable instance name, e.g. `site_r2c3`.
    pub name: String,
}

/// A CUT floorplan: power grid plus instrumented sites.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Floorplan {
    grid: PowerGrid,
    sites: Vec<SensorSite>,
}

impl Floorplan {
    /// Instruments a grid with the given placement.
    ///
    /// # Errors
    ///
    /// Returns [`ScanError::InvalidPlacement`] when an explicit tile is
    /// out of range or the placement selects no tiles.
    pub fn new(grid: PowerGrid, placement: Placement) -> Result<Floorplan, ScanError> {
        let (rows, cols) = (grid.rows(), grid.cols());
        let tiles: Vec<usize> = match placement {
            Placement::EveryTile => (0..grid.tiles()).collect(),
            Placement::Checkerboard => (0..grid.tiles())
                .filter(|i| (i / cols + i % cols) % 2 == 0)
                .collect(),
            Placement::CornersAndCentre => {
                let mut t = vec![
                    0,
                    cols - 1,
                    (rows - 1) * cols,
                    rows * cols - 1,
                    (rows / 2) * cols + cols / 2,
                ];
                t.sort_unstable();
                t.dedup();
                t
            }
            Placement::Tiles(t) => {
                if let Some(&bad) = t.iter().find(|&&i| i >= grid.tiles()) {
                    return Err(ScanError::InvalidPlacement {
                        reason: format!("tile {bad} outside {rows}×{cols} grid"),
                    });
                }
                let mut t = t;
                t.sort_unstable();
                t.dedup();
                t
            }
        };
        if tiles.is_empty() {
            return Err(ScanError::InvalidPlacement {
                reason: "placement selects no tiles".into(),
            });
        }
        let sites = tiles
            .into_iter()
            .map(|tile| SensorSite {
                tile,
                name: format!("site_r{}c{}", tile / cols, tile % cols),
            })
            .collect();
        Ok(Floorplan { grid, sites })
    }

    /// The underlying power grid.
    pub fn grid(&self) -> &PowerGrid {
        &self.grid
    }

    /// The instrumented sites, in tile order.
    pub fn sites(&self) -> &[SensorSite] {
        &self.sites
    }

    /// Looks a site up by its tile index.
    pub fn site_at(&self, tile: usize) -> Option<&SensorSite> {
        self.sites.iter().find(|s| s.tile == tile)
    }

    /// Instrumentation coverage as a fraction of tiles.
    pub fn coverage(&self) -> f64 {
        self.sites.len() as f64 / self.grid.tiles() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psnt_cells::units::{Resistance, Voltage};

    fn grid(side: usize) -> PowerGrid {
        PowerGrid::corner_fed(
            side,
            Voltage::from_v(1.0),
            Resistance::from_milliohms(40.0),
            Resistance::from_milliohms(10.0),
        )
        .unwrap()
    }

    #[test]
    fn every_tile_placement() {
        let fp = Floorplan::new(grid(3), Placement::EveryTile).unwrap();
        assert_eq!(fp.sites().len(), 9);
        assert!((fp.coverage() - 1.0).abs() < 1e-12);
        assert_eq!(fp.sites()[4].name, "site_r1c1");
    }

    #[test]
    fn checkerboard_placement() {
        let fp = Floorplan::new(grid(4), Placement::Checkerboard).unwrap();
        assert_eq!(fp.sites().len(), 8);
        // All selected tiles have even (row+col) parity.
        for s in fp.sites() {
            assert_eq!((s.tile / 4 + s.tile % 4) % 2, 0);
        }
    }

    #[test]
    fn corners_and_centre() {
        let fp = Floorplan::new(grid(5), Placement::CornersAndCentre).unwrap();
        let tiles: Vec<usize> = fp.sites().iter().map(|s| s.tile).collect();
        assert_eq!(tiles, vec![0, 4, 12, 20, 24]);
        assert!(fp.site_at(12).is_some());
        assert!(fp.site_at(13).is_none());
    }

    #[test]
    fn explicit_tiles_validated_and_deduped() {
        let fp = Floorplan::new(grid(3), Placement::Tiles(vec![8, 0, 0, 4])).unwrap();
        let tiles: Vec<usize> = fp.sites().iter().map(|s| s.tile).collect();
        assert_eq!(tiles, vec![0, 4, 8]);
        assert!(Floorplan::new(grid(3), Placement::Tiles(vec![9])).is_err());
        assert!(Floorplan::new(grid(3), Placement::Tiles(vec![])).is_err());
    }
}
