//! CUT floorplans and sensor placement.
//!
//! The paper's architectural claim: "the sensor arrays (INVs plus FFs)
//! can be multiplied, so that measures in many points of the CUT are
//! possible … whilst only a control system is required". A [`Floorplan`]
//! ties a `psnt-pdn` power grid to a set of [`SensorSite`]s — the tiles
//! where a sensor array is dropped in — and placement strategies decide
//! which tiles those are.
//!
//! # Examples
//!
//! ```
//! use psnt_cells::units::{Resistance, Voltage};
//! use psnt_pdn::grid::PowerGrid;
//! use psnt_scan::floorplan::{Floorplan, Placement};
//!
//! let grid = PowerGrid::corner_fed(4, Voltage::from_v(1.0),
//!     Resistance::from_milliohms(40.0), Resistance::from_milliohms(10.0))?;
//! let fp = Floorplan::new(grid, Placement::Checkerboard)?;
//! assert_eq!(fp.sites().len(), 8); // half of a 4×4 grid
//! # Ok::<(), psnt_scan::error::ScanError>(())
//! ```

use psnt_pdn::grid::PowerGrid;
use serde::{Deserialize, Serialize};

use crate::error::ScanError;

/// Where sensor arrays are instantiated on the grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Placement {
    /// One array on every tile (maximum observability, maximum cost).
    EveryTile,
    /// Every other tile in a checkerboard pattern.
    Checkerboard,
    /// The four corners plus the centre.
    CornersAndCentre,
    /// Explicit tile list.
    Tiles(Vec<usize>),
}

/// One instrumented point of the CUT.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SensorSite {
    /// Tile index on the power grid (row-major).
    pub tile: usize,
    /// A stable instance name, e.g. `site_r2c3`.
    pub name: String,
}

/// A CUT floorplan: power grid plus instrumented sites.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Floorplan {
    grid: PowerGrid,
    sites: Vec<SensorSite>,
}

impl Floorplan {
    /// Instruments a grid with the given placement.
    ///
    /// # Errors
    ///
    /// Returns [`ScanError::InvalidPlacement`] when an explicit tile is
    /// out of range or the placement selects no tiles.
    pub fn new(grid: PowerGrid, placement: Placement) -> Result<Floorplan, ScanError> {
        let (rows, cols) = (grid.rows(), grid.cols());
        let tiles: Vec<usize> = match placement {
            Placement::EveryTile => (0..grid.tiles()).collect(),
            Placement::Checkerboard => (0..grid.tiles())
                .filter(|i| (i / cols + i % cols) % 2 == 0)
                .collect(),
            Placement::CornersAndCentre => {
                let mut t = vec![
                    0,
                    cols - 1,
                    (rows - 1) * cols,
                    rows * cols - 1,
                    (rows / 2) * cols + cols / 2,
                ];
                t.sort_unstable();
                t.dedup();
                t
            }
            Placement::Tiles(t) => {
                if let Some(&bad) = t.iter().find(|&&i| i >= grid.tiles()) {
                    return Err(ScanError::InvalidPlacement {
                        reason: format!("tile {bad} outside {rows}×{cols} grid"),
                    });
                }
                let mut t = t;
                t.sort_unstable();
                t.dedup();
                t
            }
        };
        if tiles.is_empty() {
            return Err(ScanError::InvalidPlacement {
                reason: "placement selects no tiles".into(),
            });
        }
        let sites = tiles
            .into_iter()
            .map(|tile| SensorSite {
                tile,
                name: format!("site_r{}c{}", tile / cols, tile % cols),
            })
            .collect();
        Ok(Floorplan { grid, sites })
    }

    /// Instruments a grid as an NoC-style mesh of `mesh_rows ×
    /// mesh_cols` tiles with `sites_per_tile` sensor sites spread
    /// evenly inside each tile's block of grid nodes — the floorplan a
    /// chip-scale workload campaign drives (e.g. an 8×8 mesh with 4
    /// sites/tile on a 40×40 grid → 256 sites).
    ///
    /// Sites within a tile are laid out on a near-square sub-grid at
    /// the centres of equal sub-cells, so coverage stays spatially
    /// uniform at any density. Site order is row-major by grid tile
    /// index, matching every other placement.
    ///
    /// # Errors
    ///
    /// Returns [`ScanError::InvalidMesh`] when the mesh is empty, does
    /// not evenly divide the grid, or asks for more sites per tile than
    /// the tile's block of grid nodes can hold.
    pub fn mesh(
        grid: PowerGrid,
        mesh_rows: usize,
        mesh_cols: usize,
        sites_per_tile: usize,
    ) -> Result<Floorplan, ScanError> {
        let invalid = |reason: String| ScanError::InvalidMesh {
            mesh_rows,
            mesh_cols,
            sites_per_tile,
            reason,
        };
        if mesh_rows == 0 || mesh_cols == 0 || sites_per_tile == 0 {
            return Err(invalid(
                "mesh dimensions and site count must be non-zero".into(),
            ));
        }
        let (rows, cols) = (grid.rows(), grid.cols());
        if rows % mesh_rows != 0 || cols % mesh_cols != 0 {
            return Err(invalid(format!(
                "mesh must evenly divide the {rows}×{cols} grid"
            )));
        }
        let (block_rows, block_cols) = (rows / mesh_rows, cols / mesh_cols);
        // Sites sit at sub-cell centres of a near-square sub-grid.
        let sub_cols = (sites_per_tile as f64).sqrt().ceil() as usize;
        let sub_rows = sites_per_tile.div_ceil(sub_cols);
        if sub_rows > block_rows || sub_cols > block_cols {
            return Err(invalid(format!(
                "{sites_per_tile} site(s) need a {sub_rows}×{sub_cols} sub-grid but each \
                 tile block is only {block_rows}×{block_cols} grid nodes"
            )));
        }
        let mut tiles = Vec::with_capacity(mesh_rows * mesh_cols * sites_per_tile);
        for mr in 0..mesh_rows {
            for mc in 0..mesh_cols {
                for k in 0..sites_per_tile {
                    let (sr, sc) = (k / sub_cols, k % sub_cols);
                    let row = mr * block_rows + ((2 * sr + 1) * block_rows) / (2 * sub_rows);
                    let col = mc * block_cols + ((2 * sc + 1) * block_cols) / (2 * sub_cols);
                    tiles.push(row * cols + col);
                }
            }
        }
        tiles.sort_unstable();
        tiles.dedup();
        if tiles.len() != mesh_rows * mesh_cols * sites_per_tile {
            // Unreachable given the sub-grid bound above, but guard the
            // invariant rather than silently dropping sites.
            return Err(invalid("site positions collide within a tile block".into()));
        }
        Floorplan::new(grid, Placement::Tiles(tiles))
    }

    /// The underlying power grid.
    pub fn grid(&self) -> &PowerGrid {
        &self.grid
    }

    /// The instrumented sites, in tile order.
    pub fn sites(&self) -> &[SensorSite] {
        &self.sites
    }

    /// Looks a site up by its tile index.
    pub fn site_at(&self, tile: usize) -> Option<&SensorSite> {
        self.sites.iter().find(|s| s.tile == tile)
    }

    /// Instrumentation coverage as a fraction of tiles.
    pub fn coverage(&self) -> f64 {
        self.sites.len() as f64 / self.grid.tiles() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psnt_cells::units::{Resistance, Voltage};

    fn grid(side: usize) -> PowerGrid {
        PowerGrid::corner_fed(
            side,
            Voltage::from_v(1.0),
            Resistance::from_milliohms(40.0),
            Resistance::from_milliohms(10.0),
        )
        .unwrap()
    }

    #[test]
    fn every_tile_placement() {
        let fp = Floorplan::new(grid(3), Placement::EveryTile).unwrap();
        assert_eq!(fp.sites().len(), 9);
        assert!((fp.coverage() - 1.0).abs() < 1e-12);
        assert_eq!(fp.sites()[4].name, "site_r1c1");
    }

    #[test]
    fn checkerboard_placement() {
        let fp = Floorplan::new(grid(4), Placement::Checkerboard).unwrap();
        assert_eq!(fp.sites().len(), 8);
        // All selected tiles have even (row+col) parity.
        for s in fp.sites() {
            assert_eq!((s.tile / 4 + s.tile % 4) % 2, 0);
        }
    }

    #[test]
    fn corners_and_centre() {
        let fp = Floorplan::new(grid(5), Placement::CornersAndCentre).unwrap();
        let tiles: Vec<usize> = fp.sites().iter().map(|s| s.tile).collect();
        assert_eq!(tiles, vec![0, 4, 12, 20, 24]);
        assert!(fp.site_at(12).is_some());
        assert!(fp.site_at(13).is_none());
    }

    #[test]
    fn mesh_places_evenly() {
        // The campaign-scale shape: 8×8 mesh, 4 sites/tile on 40×40.
        let g = PowerGrid::new(
            40,
            40,
            Voltage::from_v(1.05),
            Resistance::from_milliohms(60.0),
            Resistance::from_milliohms(20.0),
            vec![(0, 0), (0, 39), (39, 0), (39, 39)],
        )
        .unwrap();
        let fp = Floorplan::mesh(g, 8, 8, 4).unwrap();
        assert_eq!(fp.sites().len(), 256);
        // Each 5×5 block holds exactly 4 sites at offsets {1,3}×{1,3}.
        for s in fp.sites() {
            let (r, c) = (s.tile / 40, s.tile % 40);
            assert!(matches!(r % 5, 1 | 3), "row {r}");
            assert!(matches!(c % 5, 1 | 3), "col {c}");
        }
    }

    #[test]
    fn mesh_single_site_per_tile_hits_block_centres() {
        let fp = Floorplan::mesh(grid(4), 2, 2, 1).unwrap();
        let tiles: Vec<usize> = fp.sites().iter().map(|s| s.tile).collect();
        assert_eq!(tiles, vec![5, 7, 13, 15]);
    }

    #[test]
    fn mesh_rejects_bad_geometries() {
        assert!(matches!(
            Floorplan::mesh(grid(4), 3, 2, 1),
            Err(ScanError::InvalidMesh { mesh_rows: 3, .. })
        ));
        assert!(matches!(
            Floorplan::mesh(grid(4), 2, 2, 9),
            Err(ScanError::InvalidMesh {
                sites_per_tile: 9,
                ..
            })
        ));
        assert!(matches!(
            Floorplan::mesh(grid(4), 0, 2, 1),
            Err(ScanError::InvalidMesh { .. })
        ));
        // Maximum density: every node of every block instrumented.
        let fp = Floorplan::mesh(grid(4), 2, 2, 4).unwrap();
        assert_eq!(fp.sites().len(), 16);
    }

    #[test]
    fn explicit_tiles_validated_and_deduped() {
        let fp = Floorplan::new(grid(3), Placement::Tiles(vec![8, 0, 0, 4])).unwrap();
        let tiles: Vec<usize> = fp.sites().iter().map(|s| s.tile).collect();
        assert_eq!(tiles, vec![0, 4, 8]);
        assert!(Floorplan::new(grid(3), Placement::Tiles(vec![9])).is_err());
        assert!(Floorplan::new(grid(3), Placement::Tiles(vec![])).is_err());
    }
}
