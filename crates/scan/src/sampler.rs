//! Equivalent-time sampling of periodic noise.
//!
//! The sensor takes one sample per PREPARE/SENSE sequence — far slower
//! than the noise it measures. The paper's answer: "measures should be
//! iterated so that noise values can be captured in different moments of
//! the CUT transient behavior". For *periodic* noise (package resonance
//! excited by a looping workload) this is classic equivalent-time
//! sampling: step the sense instant by `period + Δ` every repetition and
//! the samples sweep through all phases of one period, reconstructing
//! the waveform with an effective resolution far beyond the measure
//! rate.
//!
//! # Examples
//!
//! ```
//! use psnt_cells::units::{Frequency, Time};
//! use psnt_scan::sampler::EquivalentTimeSampler;
//!
//! let sampler = EquivalentTimeSampler::new(
//!     Time::period_of(Frequency::from_mhz(50.0)), 40)?;
//! assert_eq!(sampler.bins(), 40);
//! # Ok::<(), psnt_scan::error::ScanError>(())
//! ```

use psnt_cells::units::{Time, Voltage};
use psnt_core::system::SensorSystem;
use psnt_pdn::waveform::Waveform;
use serde::{Deserialize, Serialize};

use crate::error::ScanError;

/// A phase-binned reconstruction of one noise period.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reconstruction {
    period: Time,
    /// Per-bin mean of decoded interval midpoints; `None` where no
    /// resolvable sample landed (saturated codes or empty bins).
    values: Vec<Option<Voltage>>,
    /// Total samples folded in.
    samples: usize,
    /// Samples whose code saturated (over/underflow) and carried no
    /// midpoint.
    saturated: usize,
}

impl Reconstruction {
    /// The noise period being reconstructed.
    pub fn period(&self) -> Time {
        self.period
    }

    /// Per-bin reconstructed values.
    pub fn values(&self) -> &[Option<Voltage>] {
        &self.values
    }

    /// The centre time of bin `i` within the period.
    pub fn bin_time(&self, i: usize) -> Time {
        self.period * ((i as f64 + 0.5) / self.values.len() as f64)
    }

    /// Fraction of bins holding a value.
    pub fn coverage(&self) -> f64 {
        let filled = self.values.iter().filter(|v| v.is_some()).count();
        filled as f64 / self.values.len() as f64
    }

    /// Total samples folded in.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Samples lost to code saturation.
    pub fn saturated(&self) -> usize {
        self.saturated
    }

    /// Peak-to-peak amplitude of the reconstruction (over filled bins).
    pub fn peak_to_peak(&self) -> Option<Voltage> {
        let filled: Vec<Voltage> = self.values.iter().flatten().copied().collect();
        if filled.is_empty() {
            return None;
        }
        let lo = filled
            .iter()
            .copied()
            .fold(Voltage::from_v(f64::INFINITY), Voltage::min);
        let hi = filled
            .iter()
            .copied()
            .fold(Voltage::from_v(f64::NEG_INFINITY), Voltage::max);
        Some(hi - lo)
    }
}

/// Equivalent-time sampler for a known noise period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EquivalentTimeSampler {
    period: Time,
    bins: usize,
}

impl EquivalentTimeSampler {
    /// Creates a sampler reconstructing `period` into `bins` phase bins.
    ///
    /// # Errors
    ///
    /// Returns [`ScanError::InvalidConfig`] for a non-positive period or
    /// zero bins.
    pub fn new(period: Time, bins: usize) -> Result<EquivalentTimeSampler, ScanError> {
        if period <= Time::ZERO {
            return Err(ScanError::InvalidConfig {
                name: "period",
                reason: "noise period must be positive".into(),
            });
        }
        if bins == 0 {
            return Err(ScanError::InvalidConfig {
                name: "bins",
                reason: "need at least one phase bin".into(),
            });
        }
        Ok(EquivalentTimeSampler { period, bins })
    }

    /// The phase-bin count.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// The sense-instant step that sweeps one bin per repetition:
    /// `period + period/bins`.
    pub fn stride(&self) -> Time {
        self.period + self.period / self.bins as f64
    }

    /// Folds timestamped voltage samples into phase bins (bin mean).
    pub fn fold(&self, samples: &[(Time, Voltage)]) -> Reconstruction {
        let mut sums = vec![(0.0f64, 0usize); self.bins];
        for &(t, v) in samples {
            let phase = (t / self.period).rem_euclid(1.0);
            let bin = ((phase * self.bins as f64) as usize).min(self.bins - 1);
            sums[bin].0 += v.volts();
            sums[bin].1 += 1;
        }
        Reconstruction {
            period: self.period,
            values: sums
                .into_iter()
                .map(|(s, n)| (n > 0).then(|| Voltage::from_v(s / n as f64)))
                .collect(),
            samples: samples.len(),
            saturated: 0,
        }
    }

    /// Drives a sensor across `repetitions` measures with the sweeping
    /// stride, decoding each code to its interval midpoint, and folds the
    /// result. Saturated codes are counted but not folded.
    ///
    /// # Errors
    ///
    /// Propagates measurement failures.
    pub fn capture_periodic(
        &self,
        system: &SensorSystem,
        vdd: &Waveform,
        gnd: &Waveform,
        start: Time,
        repetitions: usize,
    ) -> Result<Reconstruction, ScanError> {
        let mut folded: Vec<(Time, Voltage)> = Vec::with_capacity(repetitions);
        let mut saturated = 0usize;
        for k in 0..repetitions {
            let at = start + self.stride() * k as f64;
            let m = system.measure_at(vdd, gnd, at)?;
            match m.hs_interval.midpoint() {
                Some(v) => folded.push((at, v)),
                None => saturated += 1,
            }
        }
        let mut recon = self.fold(&folded);
        recon.samples = repetitions;
        recon.saturated = saturated;
        Ok(recon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psnt_cells::units::Frequency;
    use psnt_core::system::{SensorConfig, SensorSystem};
    use psnt_pdn::sources::SupplyNoiseBuilder;
    use std::f64::consts::TAU;

    fn sampler(bins: usize) -> EquivalentTimeSampler {
        EquivalentTimeSampler::new(Time::from_ns(20.0), bins).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(EquivalentTimeSampler::new(Time::ZERO, 10).is_err());
        assert!(EquivalentTimeSampler::new(Time::from_ns(20.0), 0).is_err());
        assert!(EquivalentTimeSampler::new(Time::from_ns(20.0), 10).is_ok());
    }

    #[test]
    fn stride_sweeps_one_bin_per_repetition() {
        let s = sampler(40);
        assert_eq!(s.stride(), Time::from_ns(20.5));
    }

    #[test]
    fn fold_bins_by_phase() {
        let s = sampler(4);
        // Samples at phases 0.1, 0.35, 0.6, 0.85 of a 20 ns period, one
        // per bin, plus a second-period sample landing back in bin 0.
        let samples = vec![
            (Time::from_ns(2.0), Voltage::from_v(1.00)),
            (Time::from_ns(7.0), Voltage::from_v(0.95)),
            (Time::from_ns(12.0), Voltage::from_v(0.90)),
            (Time::from_ns(17.0), Voltage::from_v(0.95)),
            (Time::from_ns(22.0), Voltage::from_v(0.98)),
        ];
        let recon = s.fold(&samples);
        assert_eq!(recon.values().len(), 4);
        assert!((recon.values()[0].unwrap().volts() - 0.99).abs() < 1e-9);
        assert!((recon.values()[2].unwrap().volts() - 0.90).abs() < 1e-9);
        assert_eq!(recon.coverage(), 1.0);
        assert!((recon.peak_to_peak().unwrap().volts() - 0.09).abs() < 1e-9);
    }

    #[test]
    fn empty_bins_reported() {
        let s = sampler(4);
        let recon = s.fold(&[(Time::from_ns(2.0), Voltage::from_v(1.0))]);
        assert_eq!(recon.coverage(), 0.25);
        assert!(recon.values()[1].is_none());
        assert_eq!(recon.bin_time(0), Time::from_ns(2.5));
    }

    #[test]
    fn reconstructs_a_resonance_waveform() {
        // A 50 MHz, 35 mV resonance around 0.94 V (inside the delay-code
        // 011 dynamic range): the equivalent-time sweep must recover the
        // sinusoid's shape from single-bit-rate measures.
        let system = SensorSystem::new(SensorConfig::default()).unwrap();
        let period = Time::period_of(Frequency::from_mhz(50.0));
        let amp = 0.035;
        let vdd = SupplyNoiseBuilder::new(Voltage::from_v(0.94))
            .span(Time::ZERO, Time::from_us(9.0))
            .resolution(Time::from_ps(250.0))
            .resonance(Frequency::from_mhz(50.0), Voltage::from_v(amp), 0.0)
            .build()
            .unwrap();
        let gnd = Waveform::constant(0.0);
        let sampler = EquivalentTimeSampler::new(period, 20).unwrap();
        let recon = sampler
            .capture_periodic(&system, &vdd, &gnd, Time::from_ns(100.0), 400)
            .unwrap();
        assert!(recon.coverage() > 0.9, "coverage {}", recon.coverage());
        // Amplitude: peak-to-peak ≈ 2·amp, within quantisation (±1 LSB ≈
        // 30 mV).
        let p2p = recon.peak_to_peak().unwrap().volts();
        assert!(
            (p2p - 2.0 * amp).abs() < 0.035,
            "reconstructed p2p {p2p} vs true {}",
            2.0 * amp
        );
        // Shape: correlation against the true sinusoid at bin centres
        // must be strongly positive.
        let mut num = 0.0;
        let mut den_a = 0.0;
        let mut den_b = 0.0;
        for (i, v) in recon.values().iter().enumerate() {
            if let Some(v) = v {
                let truth = amp * (TAU * recon.bin_time(i) / period).sin();
                let meas = v.volts() - 0.94;
                num += truth * meas;
                den_a += truth * truth;
                den_b += meas * meas;
            }
        }
        let corr = num / (den_a.sqrt() * den_b.sqrt());
        assert!(corr > 0.9, "waveform correlation {corr}");
    }

    #[test]
    fn saturated_samples_counted_not_folded() {
        // Noise around 1.2 V saturates delay code 011 high.
        let system = SensorSystem::new(SensorConfig::default()).unwrap();
        let vdd = Waveform::constant(1.2);
        let gnd = Waveform::constant(0.0);
        let sampler = sampler(8);
        let recon = sampler
            .capture_periodic(&system, &vdd, &gnd, Time::from_ns(10.0), 16)
            .unwrap();
        assert_eq!(recon.saturated(), 16);
        assert_eq!(recon.coverage(), 0.0);
        assert!(recon.peak_to_peak().is_none());
    }
}
