//! Serial readout — "a PSN scan chain".
//!
//! The paper's closing analogy: the sensor system "can be thought for
//! PSN as scan chains are for data faults". [`ScanChain`] implements the
//! readout half of that analogy: the captured thermometer codes of every
//! site are concatenated (site order, most-loaded bit first) into one
//! frame which is shifted out a bit per scan-clock, and deserialized on
//! the tester side.
//!
//! # Examples
//!
//! ```
//! use psnt_core::code::ThermometerCode;
//! use psnt_scan::chain::ScanChain;
//!
//! let chain = ScanChain::new(vec!["a".into(), "b".into()], 7);
//! let frame = chain.capture(&[
//!     "0011111".parse()?,
//!     "0000011".parse()?,
//! ])?;
//! assert_eq!(frame.to_string(), "00111110000011");
//! let codes = chain.deserialize(&frame)?;
//! assert_eq!(codes[1].to_string(), "0000011");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use psnt_cells::logic::{Logic, LogicVector};
use psnt_core::code::ThermometerCode;
use serde::{Deserialize, Serialize};

use crate::error::ScanError;

/// A serial scan chain over the sensor sites.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanChain {
    site_names: Vec<String>,
    bits_per_site: usize,
}

impl ScanChain {
    /// Creates a chain over the named sites, each contributing
    /// `bits_per_site` flip-flops.
    pub fn new(site_names: Vec<String>, bits_per_site: usize) -> ScanChain {
        ScanChain {
            site_names,
            bits_per_site,
        }
    }

    /// The site names in shift order.
    pub fn site_names(&self) -> &[String] {
        &self.site_names
    }

    /// Total chain length in flip-flops.
    pub fn len(&self) -> usize {
        self.site_names.len() * self.bits_per_site
    }

    /// Flip-flops contributed by each site (the array width).
    pub fn bits_per_site(&self) -> usize {
        self.bits_per_site
    }

    /// `true` when the chain has no sites.
    pub fn is_empty(&self) -> bool {
        self.site_names.is_empty()
    }

    /// Scan-clock cycles to shift one full frame out.
    pub fn shift_cycles(&self) -> usize {
        self.len()
    }

    /// Captures one code per site into a serial frame.
    ///
    /// # Errors
    ///
    /// Returns [`ScanError::FrameMismatch`] when the number of codes or a
    /// code's width does not match the chain geometry.
    pub fn capture(&self, codes: &[ThermometerCode]) -> Result<LogicVector, ScanError> {
        if codes.len() != self.site_names.len() {
            return Err(ScanError::FrameMismatch {
                expected: self.site_names.len(),
                got: codes.len(),
            });
        }
        let mut frame = LogicVector::new();
        for code in codes {
            if code.width() != self.bits_per_site {
                return Err(ScanError::FrameMismatch {
                    expected: self.bits_per_site,
                    got: code.width(),
                });
            }
            frame.extend(code.bits().iter());
        }
        Ok(frame)
    }

    /// Splits a shifted-out frame back into per-site codes.
    ///
    /// # Errors
    ///
    /// Returns [`ScanError::FrameMismatch`] when the frame length is
    /// wrong.
    pub fn deserialize(&self, frame: &LogicVector) -> Result<Vec<ThermometerCode>, ScanError> {
        if frame.len() != self.len() {
            return Err(ScanError::FrameMismatch {
                expected: self.len(),
                got: frame.len(),
            });
        }
        (0..self.site_names.len())
            .map(|s| {
                let bits: LogicVector = (0..self.bits_per_site)
                    .map(|b| {
                        frame
                            .get(s * self.bits_per_site + b)
                            .ok_or(ScanError::FrameMismatch {
                                expected: self.len(),
                                got: frame.len(),
                            })
                    })
                    .collect::<Result<_, _>>()?;
                Ok(ThermometerCode::new(bits))
            })
            .collect()
    }

    /// Simulates the serial shift: returns the bit presented at the scan
    /// output on each cycle (frame head first), exactly `len()` entries.
    pub fn shift_out(&self, frame: &LogicVector) -> Result<Vec<Logic>, ScanError> {
        if frame.len() != self.len() {
            return Err(ScanError::FrameMismatch {
                expected: self.len(),
                got: frame.len(),
            });
        }
        Ok(frame.iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn chain(n: usize) -> ScanChain {
        ScanChain::new((0..n).map(|i| format!("s{i}")).collect(), 7)
    }

    fn code(s: &str) -> ThermometerCode {
        s.parse().unwrap()
    }

    #[test]
    fn geometry() {
        let c = chain(3);
        assert_eq!(c.len(), 21);
        assert_eq!(c.shift_cycles(), 21);
        assert!(!c.is_empty());
        assert!(ScanChain::new(vec![], 7).is_empty());
    }

    #[test]
    fn capture_concatenates_in_site_order() {
        let c = chain(2);
        let frame = c.capture(&[code("0011111"), code("0000011")]).unwrap();
        assert_eq!(frame.to_string(), "00111110000011");
    }

    #[test]
    fn roundtrip() {
        let c = chain(3);
        let codes = vec![code("0000000"), code("0011111"), code("1111111")];
        let frame = c.capture(&codes).unwrap();
        let back = c.deserialize(&frame).unwrap();
        assert_eq!(back, codes);
    }

    #[test]
    fn shift_out_streams_head_first() {
        let c = chain(1);
        let frame = c.capture(&[code("0011111")]).unwrap();
        let stream = c.shift_out(&frame).unwrap();
        assert_eq!(stream.len(), 7);
        assert_eq!(stream[0], Logic::Zero);
        assert_eq!(stream[2], Logic::One);
    }

    #[test]
    fn mismatches_rejected() {
        let c = chain(2);
        assert!(matches!(
            c.capture(&[code("0011111")]),
            Err(ScanError::FrameMismatch {
                expected: 2,
                got: 1
            })
        ));
        assert!(c.capture(&[code("011"), code("0011111")]).is_err());
        let short = LogicVector::zeros(3);
        assert!(c.deserialize(&short).is_err());
        assert!(c.shift_out(&short).is_err());
    }

    #[test]
    fn campaign_scale_chain_roundtrips() {
        // The chip-scale shape: 256 sites × 7 bits = 1,792 flip-flops.
        // Nothing in the chain may assume a small site count.
        let c = chain(256);
        assert_eq!(c.len(), 1792);
        let codes: Vec<ThermometerCode> = (0..256)
            .map(|i| {
                let level = i % 8;
                let s: String = (0..7)
                    .map(|b| if 7 - b <= level { '1' } else { '0' })
                    .collect();
                code(&s)
            })
            .collect();
        let frame = c.capture(&codes).unwrap();
        assert_eq!(frame.len(), 1792);
        assert_eq!(c.deserialize(&frame).unwrap(), codes);
        assert_eq!(c.shift_out(&frame).unwrap().len(), 1792);
    }

    proptest! {
        #[test]
        fn roundtrip_random_codes(raw in proptest::collection::vec("[01x]{7}", 1..6)) {
            let c = ScanChain::new((0..raw.len()).map(|i| format!("s{i}")).collect(), 7);
            let codes: Vec<ThermometerCode> = raw.iter().map(|s| s.parse().unwrap()).collect();
            let frame = c.capture(&codes).unwrap();
            prop_assert_eq!(c.deserialize(&frame).unwrap(), codes);
        }
    }
}
