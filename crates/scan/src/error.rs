//! Error types for the scan-chain layer.

use std::error::Error;
use std::fmt;

/// Errors produced by the `psnt-scan` crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScanError {
    /// A placement selected no tiles or an out-of-range tile.
    InvalidPlacement {
        /// Explanation.
        reason: String,
    },
    /// A serialized frame did not match the chain geometry.
    FrameMismatch {
        /// Bits expected by the chain.
        expected: usize,
        /// Bits supplied.
        got: usize,
    },
    /// A mesh floorplan geometry that cannot be instrumented: tile
    /// blocks that do not evenly divide the grid, or more sites per
    /// tile than a tile block can hold.
    InvalidMesh {
        /// Requested mesh rows.
        mesh_rows: usize,
        /// Requested mesh columns.
        mesh_cols: usize,
        /// Requested sensor sites per mesh tile.
        sites_per_tile: usize,
        /// Explanation of the violated constraint.
        reason: String,
    },
    /// A campaign/sampler parameter was invalid.
    InvalidConfig {
        /// The parameter name.
        name: &'static str,
        /// Explanation of the violated constraint.
        reason: String,
    },
    /// An error bubbled up from the sensor core.
    Sensor(psnt_core::SensorError),
    /// An error bubbled up from the PDN substrate.
    Pdn(psnt_pdn::PdnError),
    /// A supervised campaign was stopped cooperatively (cancellation,
    /// deadline, or budget) before it completed; the stream's terminal
    /// [`crate::campaign::StreamRecord::Aborted`] record says how far
    /// it got.
    Interrupted(psnt_sup::Interrupt),
}

impl fmt::Display for ScanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScanError::InvalidPlacement { reason } => write!(f, "invalid placement: {reason}"),
            ScanError::FrameMismatch { expected, got } => {
                write!(
                    f,
                    "scan frame of {got} bits does not match chain length {expected}"
                )
            }
            ScanError::InvalidMesh {
                mesh_rows,
                mesh_cols,
                sites_per_tile,
                reason,
            } => {
                write!(
                    f,
                    "invalid {mesh_rows}×{mesh_cols} mesh with {sites_per_tile} site(s)/tile: \
                     {reason}"
                )
            }
            ScanError::InvalidConfig { name, reason } => {
                write!(f, "invalid configuration {name}: {reason}")
            }
            ScanError::Sensor(e) => write!(f, "sensor error: {e}"),
            ScanError::Pdn(e) => write!(f, "pdn error: {e}"),
            ScanError::Interrupted(reason) => write!(f, "campaign interrupted: {reason}"),
        }
    }
}

impl Error for ScanError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScanError::Sensor(e) => Some(e),
            ScanError::Pdn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<psnt_core::SensorError> for ScanError {
    fn from(e: psnt_core::SensorError) -> ScanError {
        // Cooperative stops keep their identity across layer boundaries
        // so every caller matches one `Interrupted` variant.
        match e {
            psnt_core::SensorError::Interrupted(reason) => ScanError::Interrupted(reason),
            other => ScanError::Sensor(other),
        }
    }
}

impl From<psnt_pdn::PdnError> for ScanError {
    fn from(e: psnt_pdn::PdnError) -> ScanError {
        match e {
            psnt_pdn::PdnError::Interrupted(reason) => ScanError::Interrupted(reason),
            other => ScanError::Pdn(other),
        }
    }
}

impl From<psnt_sup::Interrupt> for ScanError {
    fn from(reason: psnt_sup::Interrupt) -> ScanError {
        ScanError::Interrupted(reason)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        assert!(ScanError::InvalidPlacement { reason: "x".into() }
            .to_string()
            .contains("x"));
        assert!(ScanError::FrameMismatch {
            expected: 14,
            got: 7
        }
        .to_string()
        .contains("14"));
        let m = ScanError::InvalidMesh {
            mesh_rows: 8,
            mesh_cols: 8,
            sites_per_tile: 99,
            reason: "too dense".into(),
        };
        assert!(m.to_string().contains("8×8"));
        assert!(m.to_string().contains("too dense"));
        let s = ScanError::from(psnt_core::SensorError::WaveformGap { at_ps: 1.0 });
        assert!(Error::source(&s).is_some());
        let p = ScanError::from(psnt_pdn::PdnError::InvalidWaveform("w".into()));
        assert!(Error::source(&p).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<ScanError>();
    }
}
