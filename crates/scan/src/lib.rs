//! # psnt-scan — the PSN scan chain
//!
//! The deployment layer of the `psn-thermometer` workspace (reproduction
//! of Graziano & Vittori, IEEE SOCC 2009). The paper's closing claim is
//! that its sensor "can be used for every type of architecture on a
//! systematic basis for PSN measure as scan chains are for fault
//! verification". This crate realises the analogy:
//!
//! * [`floorplan`] — sensor-site placement over a `psnt-pdn` power grid;
//! * [`chain`] — serial capture/shift/deserialize of all sites' codes;
//! * [`sampler`] — equivalent-time reconstruction of periodic noise from
//!   iterated measures;
//! * [`campaign`] — end-to-end multi-site measurement runs producing
//!   spatial noise maps.
//!
//! # Example
//!
//! ```
//! use psnt_cells::units::{Resistance, Time, Voltage};
//! use psnt_core::system::SensorConfig;
//! use psnt_ctx::RunCtx;
//! use psnt_pdn::grid::PowerGrid;
//! use psnt_pdn::waveform::Waveform;
//! use psnt_scan::campaign::Campaign;
//! use psnt_scan::floorplan::{Floorplan, Placement};
//!
//! let grid = PowerGrid::corner_fed(3, Voltage::from_v(1.0),
//!     Resistance::from_milliohms(40.0), Resistance::from_milliohms(10.0))?;
//! let fp = Floorplan::new(grid, Placement::CornersAndCentre)?;
//! let campaign = Campaign::new(fp, SensorConfig::default())?;
//! let loads = vec![Waveform::constant(0.05); 9];
//! let mut ctx = RunCtx::serial();
//! let result = campaign.run(&mut ctx, &loads, Time::from_ns(10.0), Time::from_ns(20.0), 4)?;
//! assert_eq!(result.frames.len(), 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaign;
pub mod chain;
pub mod error;
pub mod floorplan;
pub mod sampler;

pub use campaign::{
    Campaign, CampaignResult, DegradationSummary, ResilientCampaignResult, SiteOutcome, SiteSeries,
    StreamRecord,
};
pub use chain::ScanChain;
pub use error::ScanError;
pub use floorplan::{Floorplan, Placement, SensorSite};
pub use sampler::{EquivalentTimeSampler, Reconstruction};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::Campaign>();
        assert_send_sync::<crate::ScanChain>();
        assert_send_sync::<crate::Reconstruction>();
    }
}
