//! Pool-level behaviour under real threads: ordering, determinism,
//! error selection, panic propagation, metrics merging.
//!
//! `scripts/ci.sh` additionally runs this suite with `PSNT_JOBS=4` so
//! the [`Engine::from_env`]-sized pool exercises the threaded path even
//! on CI hosts whose detected parallelism is 1.

use std::sync::atomic::{AtomicUsize, Ordering};

use psnt_engine::rand::Rng;
use psnt_engine::{Engine, JobSpec};

/// The engine sizes under test everywhere: serial, threaded, the
/// env-sized pool CI pins to 4, and more workers than jobs.
fn engines() -> Vec<Engine> {
    vec![
        Engine::serial(),
        Engine::new(2),
        Engine::from_env(),
        Engine::new(13),
    ]
}

#[test]
fn map_preserves_index_order_under_skewed_job_cost() {
    for engine in engines() {
        // Later indices finish first; collection must not care.
        let out = engine.map(32, |i| {
            std::thread::sleep(std::time::Duration::from_micros(((32 - i) * 20) as u64));
            i * 3
        });
        assert_eq!(
            out,
            (0..32).map(|i| i * 3).collect::<Vec<_>>(),
            "{engine:?}"
        );
    }
}

#[test]
fn seeded_batches_are_bit_identical_at_any_worker_count() {
    let draw = |engine: &Engine| -> Vec<f64> {
        engine
            .run_batch::<_, std::convert::Infallible, _>(&JobSpec::new(64).seed(99), |ctx| {
                let mut rng = ctx.rng();
                Ok(rng.gen_range(-1.0..1.0) + rng.gen_range(0.0..0.001))
            })
            .unwrap()
            .results
    };
    let reference = draw(&Engine::serial());
    for engine in engines() {
        assert_eq!(draw(&engine), reference, "{engine:?}");
    }
}

#[test]
fn chunk_override_does_not_change_results() {
    let reference = Engine::serial().map(50, |i| i as u64 * 7);
    for chunk in [1, 3, 50, 1000] {
        let got = Engine::new(4)
            .run_batch::<_, std::convert::Infallible, _>(&JobSpec::new(50).chunk(chunk), |ctx| {
                Ok(ctx.index() as u64 * 7)
            })
            .unwrap()
            .results;
        assert_eq!(got, reference, "chunk={chunk}");
    }
}

#[test]
fn lowest_index_error_wins_at_any_worker_count() {
    for engine in engines() {
        let err = engine
            .try_map(40, |i| {
                if i % 10 == 7 {
                    Err(format!("job {i} failed"))
                } else {
                    Ok(i)
                }
            })
            .unwrap_err();
        assert_eq!(err, "job 7 failed", "{engine:?}");
    }
}

#[test]
fn error_does_not_stop_the_batch() {
    // Deterministic error selection requires running every job even
    // after a failure; count that they all ran.
    for engine in engines() {
        let ran = AtomicUsize::new(0);
        let result: Result<Vec<usize>, &str> = engine.try_map(20, |i| {
            ran.fetch_add(1, Ordering::Relaxed);
            if i == 0 {
                Err("first job failed")
            } else {
                Ok(i)
            }
        });
        assert_eq!(result.unwrap_err(), "first job failed");
        assert_eq!(ran.load(Ordering::Relaxed), 20, "{engine:?}");
    }
}

#[test]
fn panics_propagate_to_the_caller_with_job_index() {
    for engine in engines() {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.map(16, |i| {
                if i == 5 {
                    panic!("job 5 exploded");
                }
                i
            })
        }));
        let payload = caught.expect_err("panic must propagate");
        // Non-isolated mode re-raises an attributable JobError, not the
        // raw payload, so the originating job index survives the pool.
        let je = payload
            .downcast_ref::<psnt_engine::JobError>()
            .expect("payload must be a JobError");
        assert_eq!(je.job, 5, "{engine:?}: {je}");
        assert!(je.payload.contains("job 5 exploded"), "{engine:?}: {je}");
        assert!(je.to_string().contains("job 5"), "{engine:?}: {je}");
    }
}

#[test]
fn isolated_batch_degrades_per_slot() {
    for engine in engines() {
        let batch =
            engine.run_batch_isolated(&JobSpec::new(16), psnt_engine::RetryPolicy::none(), |ctx| {
                if ctx.index() % 5 == 0 {
                    panic!("slot {} down", ctx.index());
                }
                ctx.index() * 10
            });
        assert_eq!(batch.results.len(), 16, "{engine:?}");
        for (i, outcome) in batch.results.iter().enumerate() {
            if i % 5 == 0 {
                let e = outcome.error().expect("multiple-of-5 slots fail");
                assert_eq!(e.job, i);
                assert_eq!(e.attempts, 1);
                assert!(e.payload.contains(&format!("slot {i} down")));
            } else {
                assert_eq!(outcome.as_ok(), Some(&(i * 10)), "{engine:?}");
            }
        }
        assert_eq!(
            batch.metrics.counter_value("engine.jobs_failed"),
            4,
            "{engine:?}"
        );
    }
}

#[test]
fn isolated_outcomes_are_identical_at_any_worker_count() {
    let run = |engine: &Engine| {
        engine
            .run_batch_isolated(
                &JobSpec::new(24).seed(99),
                psnt_engine::RetryPolicy::reseeding(2),
                |ctx| {
                    // Fails deterministically based on the (attempt-
                    // dependent) seed, so some slots recover on retry
                    // and some exhaust all attempts.
                    if ctx.seed() % 2 == 0 {
                        panic!("transient {}", ctx.index());
                    }
                    ctx.seed()
                },
            )
            .results
    };
    let serial = run(&Engine::serial());
    for jobs in [2, 4, 16] {
        assert_eq!(run(&Engine::new(jobs)), serial, "jobs = {jobs}");
    }
    // The vector really exercises both outcomes.
    assert!(serial.iter().any(|o| o.is_ok()));
    assert!(serial.iter().any(|o| !o.is_ok()));
}

#[test]
fn retry_policy_reseeds_deterministically() {
    // With reseeding, a job whose first seed fails can succeed on a
    // later attempt, and the recovered value is the attempt's seed —
    // the same at every worker count and on every repeat.
    let run = || {
        Engine::new(4)
            .run_batch_isolated(
                &JobSpec::new(12).seed(7),
                psnt_engine::RetryPolicy::reseeding(4),
                |ctx| {
                    if ctx.seed() % 2 == 0 {
                        panic!("even seed");
                    }
                    (ctx.attempt(), ctx.seed())
                },
            )
            .results
    };
    let a = run();
    assert_eq!(a, run(), "same seed must give the same outcome sequence");
    assert!(
        a.iter()
            .filter_map(|o| o.as_ok())
            .any(|&(attempt, _)| attempt > 0),
        "some slot should have recovered on a retry: {a:?}"
    );
    // Without reseeding the same failure just repeats max_attempts times.
    let stubborn = Engine::new(4)
        .run_batch_isolated(
            &JobSpec::new(4).seed(7),
            psnt_engine::RetryPolicy::attempts(3),
            |ctx| {
                if ctx.seed() % 2 == 0 {
                    panic!("even seed");
                }
                ctx.seed()
            },
        )
        .results;
    for o in &stubborn {
        if let Some(e) = o.error() {
            assert_eq!(e.attempts, 3);
        }
    }
}

#[test]
fn per_worker_metrics_merge_into_one_snapshot() {
    for engine in engines() {
        let batch = engine
            .run_batch::<_, std::convert::Infallible, _>(&JobSpec::new(30), |ctx| {
                ctx.metrics.counter_add("domain.items", 2);
                ctx.metrics
                    .gauge_set_max("domain.peak_index", ctx.index() as f64);
                Ok(())
            })
            .unwrap();
        // Domain metrics from every worker are summed / maxed.
        assert_eq!(
            batch.metrics.counter_value("domain.items"),
            60,
            "{engine:?}"
        );
        assert_eq!(batch.metrics.gauge_value("domain.peak_index"), Some(29.0));
        // Engine bookkeeping: every job counted exactly once.
        assert_eq!(batch.metrics.counter_value("engine.jobs_done"), 30);
        assert!(batch.metrics.counter_value("engine.chunks_claimed") >= 1);
        assert_eq!(
            batch.metrics.gauge_value("engine.workers"),
            Some(batch.workers as f64)
        );
        assert!(batch.workers >= 1 && batch.workers <= engine.jobs());
    }
}

#[test]
fn empty_and_single_job_batches() {
    for engine in engines() {
        assert_eq!(engine.map(0, |i| i), Vec::<usize>::new());
        assert_eq!(engine.map(1, |i| i + 10), vec![10]);
        let batch = engine
            .run_batch::<_, std::convert::Infallible, _>(&JobSpec::new(0), |_| Ok(0u8))
            .unwrap();
        assert!(batch.results.is_empty());
        assert_eq!(batch.metrics.counter_value("engine.jobs_done"), 0);
    }
}

#[test]
fn workers_never_exceed_jobs() {
    let batch = Engine::new(64)
        .run_batch::<_, std::convert::Infallible, _>(&JobSpec::new(3), |ctx| Ok(ctx.worker()))
        .unwrap();
    assert_eq!(batch.workers, 3);
    assert!(batch.results.iter().all(|&w| w < 3));
}

#[test]
fn unseeded_ctx_seed_panics() {
    let caught = std::panic::catch_unwind(|| {
        Engine::serial()
            .run_batch::<_, std::convert::Infallible, _>(&JobSpec::new(1), |ctx| Ok(ctx.seed()))
    });
    assert!(caught.is_err());
}
