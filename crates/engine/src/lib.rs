//! # psnt-engine — deterministic parallel execution engine
//!
//! Every heavy workload in this workspace — scan-chain campaigns over a
//! floorplan, Monte-Carlo mismatch yield, per-corner trim sweeps — is
//! an embarrassingly parallel loop over independent jobs. This crate
//! runs those loops on a scoped worker pool (`std::thread` only, no
//! external runtime) without giving up the workspace's reproducibility
//! contract:
//!
//! > **A batch produces bit-identical results at any worker count,
//! > including one.**
//!
//! Three mechanisms enforce that, see [`pool`] for the full contract:
//!
//! * **index-determined inputs** — a job sees its index and, for seeded
//!   batches, a child RNG stream derived only from
//!   `(base seed, index)` ([`seed::split_seed`]); never the worker id
//!   or any timing;
//! * **order-preserving collection** — [`BatchResult::results`]`[i]` is
//!   job `i`'s output regardless of scheduling; job errors select the
//!   lowest-index error, panics propagate to the caller;
//! * **a shared serial path** — `jobs = 1` runs the identical claim
//!   loop inline on the calling thread, so serial entry points are the
//!   same code, not a fork.
//!
//! Telemetry is contention-free: every worker owns a private
//! [`psnt_obs::MetricsRegistry`] (jobs record domain metrics through
//! [`JobCtx::metrics`]) and the engine merges them into one snapshot at
//! join via [`psnt_obs::MetricsRegistry::merge`].
//!
//! ```
//! use psnt_engine::{Engine, JobSpec};
//!
//! let engine = Engine::new(4);
//! // An unseeded map: results arrive in index order.
//! let squares = engine.map(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//!
//! // A seeded batch: job i's RNG depends only on (base, i), so any
//! // worker count gives the same draws.
//! let batch = engine
//!     .run_batch::<_, std::convert::Infallible, _>(
//!         &JobSpec::new(5).seed(2024),
//!         |ctx| {
//!             use psnt_engine::rand::Rng;
//!             Ok(ctx.rng().gen_range(0.0..1.0))
//!         },
//!     )
//!     .unwrap();
//! let serial = Engine::serial()
//!     .run_batch::<_, std::convert::Infallible, _>(
//!         &JobSpec::new(5).seed(2024),
//!         |ctx| {
//!             use psnt_engine::rand::Rng;
//!             Ok(ctx.rng().gen_range(0.0..1.0))
//!         },
//!     )
//!     .unwrap();
//! assert_eq!(batch.results, serial.results);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod pool;
pub mod seed;

pub use batch::{BatchResult, JobCtx, JobError, JobOutcome, JobSpec, RetryPolicy};
pub use seed::{lane_seed, split_seed};

// Re-exported so supervised call sites can name the interruption types
// without adding `psnt-sup` to their own dependency list.
pub use psnt_sup::{Interrupt, Supervisor};

// Re-exported so seeded job closures can use `Rng` without adding the
// vendored `rand` to their own dependency list.
pub use rand;

use std::convert::Infallible;

/// The environment variable [`Engine::from_env`] consults for a worker
/// count before falling back to the machine's available parallelism.
pub const JOBS_ENV: &str = "PSNT_JOBS";

/// A handle sizing the worker pool. Cheap to clone; holds no threads —
/// workers are scoped to each batch call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Engine {
    jobs: usize,
}

impl Engine {
    /// A single-worker engine: batches run inline on the calling
    /// thread. This is the `jobs = 1` path every serial entry point in
    /// the workspace routes through.
    pub fn serial() -> Engine {
        Engine { jobs: 1 }
    }

    /// An engine with `jobs` workers; `0` is clamped to `1`.
    pub fn new(jobs: usize) -> Engine {
        Engine { jobs: jobs.max(1) }
    }

    /// Sizes the pool from the environment: the [`JOBS_ENV`]
    /// (`PSNT_JOBS`) variable when set to a positive integer, otherwise
    /// [`std::thread::available_parallelism`] (falling back to 1 when
    /// even that is unknown).
    pub fn from_env() -> Engine {
        let jobs = std::env::var(JOBS_ENV)
            .ok()
            .and_then(|v| parse_jobs(&v))
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            });
        Engine::new(jobs)
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs a batch of fallible jobs, collecting outputs in job-index
    /// order together with the merged per-worker metrics.
    ///
    /// # Errors
    ///
    /// When jobs fail, the whole batch still runs and the error with
    /// the lowest job index is returned (worker-count independent).
    ///
    /// # Panics
    ///
    /// Re-raises the panic of any panicking job on the calling thread.
    pub fn run_batch<R, E, F>(&self, spec: &JobSpec, f: F) -> Result<BatchResult<R>, E>
    where
        R: Send,
        E: Send,
        F: Fn(&mut JobCtx<'_>) -> Result<R, E> + Sync,
    {
        pool::execute(self.jobs, spec, &f)
    }

    /// [`Engine::run_batch`] under a [`Supervisor`]: each worker checks
    /// the supervisor before every chunk claim (and charges the chunk's
    /// job count against the event budget), so cancellation, deadline
    /// expiry and budget exhaustion stop the batch cooperatively — no
    /// panic, no hang, no torn job.
    ///
    /// A trip that lands after every job already completed returns the
    /// full `Ok` batch: supervised results, when they arrive, are
    /// bit-identical to [`Engine::run_batch`]. A detached supervisor
    /// ([`Supervisor::detached`]) never trips, making this a drop-in
    /// superset of the unsupervised path.
    ///
    /// # Errors
    ///
    /// The lowest-index job error, exactly as [`Engine::run_batch`];
    /// or `E::from(interrupt)` when supervision stopped the batch with
    /// jobs unfinished.
    ///
    /// # Panics
    ///
    /// Re-raises the panic of any panicking job on the calling thread.
    pub fn run_batch_supervised<R, E, F>(
        &self,
        spec: &JobSpec,
        sup: &Supervisor,
        f: F,
    ) -> Result<BatchResult<R>, E>
    where
        R: Send,
        E: Send + From<Interrupt>,
        F: Fn(&mut JobCtx<'_>) -> Result<R, E> + Sync,
    {
        match pool::execute_supervised(self.jobs, spec, sup, &f) {
            Ok(b) => Ok(b),
            Err(pool::ExecErr::Job(e)) => Err(e),
            Err(pool::ExecErr::Interrupted(reason)) => Err(E::from(reason)),
        }
    }

    /// Runs a batch with **per-job isolation**: a panicking job becomes
    /// [`JobOutcome::Failed`] in its own slot instead of poisoning the
    /// pool, so every other job still completes and the caller degrades
    /// gracefully with partial results.
    ///
    /// A [`RetryPolicy`] bounds deterministic re-attempts for injected
    /// transient faults: retries run inside the owning job, and
    /// attempt `a > 0` of a reseeding policy sees
    /// `split_seed(job_seed, a)` through [`JobCtx::seed`] — a function
    /// of `(base seed, index, attempt)` only, so outcome vectors are
    /// bit-identical at any worker count. [`JobCtx::attempt`] exposes
    /// the attempt number.
    ///
    /// Telemetry: `engine.job_retries` counts extra attempts that led to
    /// a success, `engine.jobs_failed` counts exhausted slots.
    ///
    /// This wrapper (via the pool) is the workspace's only sanctioned
    /// `catch_unwind`: higher layers request isolation here rather than
    /// catching panics themselves (grep-gated in `scripts/ci.sh`).
    pub fn run_batch_isolated<R, F>(
        &self,
        spec: &JobSpec,
        retry: RetryPolicy,
        f: F,
    ) -> BatchResult<JobOutcome<R>>
    where
        R: Send,
        F: Fn(&mut JobCtx<'_>) -> R + Sync,
    {
        use std::panic::{catch_unwind, AssertUnwindSafe};

        let run = |ctx: &mut JobCtx<'_>| -> Result<JobOutcome<R>, Infallible> {
            let base_seed = ctx.seed;
            let max = retry.max_attempts.max(1);
            let mut last: Option<batch::JobError> = None;
            for attempt in 0..max {
                ctx.attempt = attempt;
                ctx.seed = if retry.reseed && attempt > 0 {
                    base_seed.map(|s| split_seed(s, u64::from(attempt)))
                } else {
                    base_seed
                };
                match catch_unwind(AssertUnwindSafe(|| f(ctx))) {
                    Ok(r) => {
                        if attempt > 0 {
                            ctx.metrics
                                .counter_add("engine.job_retries", u64::from(attempt));
                        }
                        return Ok(JobOutcome::Ok(r));
                    }
                    Err(payload) => {
                        last = Some(batch::JobError::from_panic(
                            ctx.index,
                            payload.as_ref(),
                            attempt + 1,
                        ));
                    }
                }
            }
            ctx.metrics.counter_add("engine.jobs_failed", 1);
            Ok(JobOutcome::Failed(last.expect("max_attempts >= 1")))
        };
        match pool::execute(self.jobs, spec, &run) {
            Ok(batch) => batch,
            Err(e) => match e {},
        }
    }

    /// Maps `f` over `0..n` in parallel, preserving index order.
    pub fn map<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let batch: Result<BatchResult<R>, Infallible> =
            self.run_batch(&JobSpec::new(n), |ctx| Ok(f(ctx.index())));
        match batch {
            Ok(b) => b.results,
            Err(e) => match e {},
        }
    }

    /// Maps a fallible `f` over `0..n` in parallel, preserving index
    /// order.
    ///
    /// # Errors
    ///
    /// Returns the lowest-index job error (worker-count independent).
    pub fn try_map<R, E, F>(&self, n: usize, f: F) -> Result<Vec<R>, E>
    where
        R: Send,
        E: Send,
        F: Fn(usize) -> Result<R, E> + Sync,
    {
        Ok(self
            .run_batch(&JobSpec::new(n), |ctx| f(ctx.index()))?
            .results)
    }
}

/// Parses a `PSNT_JOBS`-style value: a positive integer, or `None` for
/// anything else (empty, zero, garbage).
fn parse_jobs(value: &str) -> Option<usize> {
    value.trim().parse::<usize>().ok().filter(|&j| j > 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_clamped_to_one() {
        assert_eq!(Engine::new(0).jobs(), 1);
        assert_eq!(Engine::new(3).jobs(), 3);
        assert_eq!(Engine::serial().jobs(), 1);
    }

    #[test]
    fn parse_jobs_accepts_positive_integers_only() {
        assert_eq!(parse_jobs("4"), Some(4));
        assert_eq!(parse_jobs(" 8 "), Some(8));
        assert_eq!(parse_jobs("0"), None);
        assert_eq!(parse_jobs(""), None);
        assert_eq!(parse_jobs("many"), None);
        assert_eq!(parse_jobs("-2"), None);
    }

    #[test]
    fn from_env_yields_at_least_one_worker() {
        assert!(Engine::from_env().jobs() >= 1);
    }

    #[derive(Debug, PartialEq)]
    enum TestError {
        Interrupted(Interrupt),
    }

    impl From<Interrupt> for TestError {
        fn from(i: Interrupt) -> TestError {
            TestError::Interrupted(i)
        }
    }

    #[test]
    fn detached_supervised_batch_matches_unsupervised() {
        for workers in [1, 4] {
            let engine = Engine::new(workers);
            let spec = JobSpec::new(64).seed(7);
            let sup = Supervisor::detached();
            let supervised = engine
                .run_batch_supervised::<_, TestError, _>(&spec, &sup, |ctx| {
                    Ok(ctx.index() as u64 ^ ctx.seed())
                })
                .unwrap();
            let plain = engine
                .run_batch::<_, std::convert::Infallible, _>(&spec, |ctx| {
                    Ok(ctx.index() as u64 ^ ctx.seed())
                })
                .unwrap();
            assert_eq!(supervised.results, plain.results, "workers = {workers}");
        }
    }

    #[test]
    fn cancelled_supervisor_interrupts_before_any_claim() {
        use psnt_sup::{CancelToken, RunBudget};
        let token = CancelToken::new();
        token.cancel();
        let sup = Supervisor::new(token, RunBudget::unlimited());
        let err = Engine::new(4)
            .run_batch_supervised::<u64, TestError, _>(&JobSpec::new(100), &sup, |_| {
                panic!("no job may run once cancelled before the batch")
            })
            .unwrap_err();
        assert_eq!(err, TestError::Interrupted(Interrupt::Cancelled));
    }

    #[test]
    fn event_budget_stops_the_claim_loop() {
        use psnt_sup::{CancelToken, RunBudget};
        // Serial engine, chunk 1: budget of 5 jobs trips on the 6th
        // chunk claim at the latest.
        let sup = Supervisor::new(CancelToken::new(), RunBudget::unlimited().events(5));
        let err = Engine::serial()
            .run_batch_supervised::<usize, TestError, _>(&JobSpec::new(100).chunk(1), &sup, |ctx| {
                Ok(ctx.index())
            })
            .unwrap_err();
        match err {
            TestError::Interrupted(Interrupt::EventBudget { budget: 5, used }) => {
                assert!(used >= 5, "trip reports events actually charged")
            }
            other => panic!("expected an event-budget interrupt, got {other:?}"),
        }
    }

    #[test]
    fn trip_after_completion_returns_the_full_batch() {
        use psnt_sup::{CancelToken, RunBudget};
        // Budget equal to the job count: every job is charged and runs,
        // and the check never observes used > budget, so the supervised
        // batch completes bit-identically to the unsupervised one.
        let sup = Supervisor::new(CancelToken::new(), RunBudget::unlimited().events(8));
        let batch = Engine::new(2)
            .run_batch_supervised::<usize, TestError, _>(&JobSpec::new(8), &sup, |ctx| {
                Ok(ctx.index() * 2)
            })
            .unwrap();
        assert_eq!(batch.results, (0..8).map(|i| i * 2).collect::<Vec<_>>());
    }
}
