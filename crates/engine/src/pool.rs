//! The scoped worker pool: chunked work queue, ordered collection,
//! panic propagation.
//!
//! Execution model: `min(engine.jobs(), batch size)` workers pull
//! contiguous chunks of job indices from one atomic cursor. Each worker
//! owns a private [`MetricsRegistry`] and a private result buffer, so
//! the hot path takes no locks; the main thread merges both at join, in
//! worker-id order. With one worker the same claim loop runs inline on
//! the calling thread — the serial path *is* the parallel code at
//! `jobs = 1`, not a fork.
//!
//! Determinism contract:
//!
//! * job `i`'s inputs (index, split seed) depend only on `i` and the
//!   [`JobSpec`](crate::JobSpec), never on worker id or timing;
//! * results are collected by job index, so `results[i]` is job `i`'s
//!   output at any worker count;
//! * on job errors the whole batch still runs and the error with the
//!   **lowest job index** is returned — the same error a serial sweep
//!   would hit first — so even the failure mode is worker-count
//!   independent;
//! * a panicking job poisons the queue (other workers stop claiming)
//!   and the panic is re-raised on the calling thread as an
//!   attributable [`JobError`] (`panic_any`) carrying the **lowest
//!   panicking job index** — worker-count independent like everything
//!   else.
//!
//! This module is the only place in the workspace allowed to call
//! `catch_unwind` (enforced by a grep gate in `scripts/ci.sh`): every
//! layer above gets graceful degradation by asking the engine for it,
//! not by swallowing panics locally.

use std::panic;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use psnt_obs::MetricsRegistry;
use psnt_sup::{Interrupt, Supervisor};

use crate::batch::{job_seed, BatchResult, JobCtx, JobError, JobSpec};

/// One worker's private take: out-of-order `(index, result)` pairs, the
/// lowest-index error it hit, the panic that stopped it (if any), the
/// supervision trip that stopped it (if any), and its metrics registry.
struct WorkerOutput<R, E> {
    results: Vec<(usize, R)>,
    first_error: Option<(usize, E)>,
    panicked: Option<JobError>,
    interrupted: Option<Interrupt>,
    metrics: MetricsRegistry,
}

/// Why `execute_inner` failed: a job's own error, or a supervision
/// trip that left unfilled job slots.
pub(crate) enum ExecErr<E> {
    Job(E),
    Interrupted(Interrupt),
}

/// Sets the poison flag if the worker unwinds mid-job, so the other
/// workers stop claiming chunks instead of finishing a doomed batch.
struct PoisonOnUnwind<'a> {
    flag: &'a AtomicBool,
    armed: bool,
}

impl Drop for PoisonOnUnwind<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.flag.store(true, Ordering::Relaxed);
        }
    }
}

fn worker_loop<R, E, F>(
    worker: usize,
    spec: &JobSpec,
    chunk: usize,
    cursor: &AtomicUsize,
    poisoned: &AtomicBool,
    sup: Option<&Supervisor>,
    f: &F,
) -> WorkerOutput<R, E>
where
    F: Fn(&mut JobCtx<'_>) -> Result<R, E> + Sync,
{
    let mut guard = PoisonOnUnwind {
        flag: poisoned,
        armed: true,
    };
    let mut metrics = MetricsRegistry::new();
    let jobs_done = metrics.counter("engine.jobs_done");
    let chunks_claimed = metrics.counter("engine.chunks_claimed");
    let mut results = Vec::new();
    let mut first_error: Option<(usize, E)> = None;
    let mut panicked: Option<JobError> = None;
    let mut interrupted: Option<Interrupt> = None;
    'claim: loop {
        if poisoned.load(Ordering::Relaxed) {
            break;
        }
        // Supervision boundary: checked once per chunk claim, so the
        // cost is amortised over the chunk and a trip never tears a
        // job — every result the worker banked stays valid.
        if let Some(s) = sup {
            if let Err(reason) = s.check() {
                interrupted = Some(reason);
                break;
            }
        }
        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
        if start >= spec.jobs() {
            break;
        }
        metrics.inc(chunks_claimed);
        let end = (start + chunk).min(spec.jobs());
        if let Some(s) = sup {
            s.charge_events((end - start) as u64);
        }
        for index in start..end {
            let mut ctx = JobCtx {
                index,
                worker,
                seed: job_seed(spec, index),
                attempt: 0,
                metrics: &mut metrics,
            };
            // Catch per job so the panic stays attributable to its job
            // index (the raw payload would lose it); the batch is still
            // doomed — poison, stop claiming, and let `execute` re-raise
            // the lowest-index panic as a `JobError`.
            match panic::catch_unwind(panic::AssertUnwindSafe(|| f(&mut ctx))) {
                Ok(Ok(r)) => results.push((index, r)),
                // A worker claims ascending indices, so the first error
                // it sees is its lowest-index one.
                Ok(Err(e)) => {
                    if first_error.is_none() {
                        first_error = Some((index, e));
                    }
                }
                Err(payload) => {
                    panicked = Some(JobError::from_panic(index, payload.as_ref(), 1));
                    poisoned.store(true, Ordering::Relaxed);
                    break 'claim;
                }
            }
            metrics.inc(jobs_done);
        }
    }
    guard.armed = false;
    WorkerOutput {
        results,
        first_error,
        panicked,
        interrupted,
        metrics,
    }
}

/// Runs `spec` with up to `workers` workers and collects in job order.
pub(crate) fn execute<R, E, F>(workers: usize, spec: &JobSpec, f: &F) -> Result<BatchResult<R>, E>
where
    R: Send,
    E: Send,
    F: Fn(&mut JobCtx<'_>) -> Result<R, E> + Sync,
{
    match execute_inner(workers, spec, None, f) {
        Ok(b) => Ok(b),
        Err(ExecErr::Job(e)) => Err(e),
        // Without a supervisor no worker ever records a trip.
        Err(ExecErr::Interrupted(_)) => unreachable!("unsupervised batch cannot be interrupted"),
    }
}

/// Runs `spec` under `sup`: workers stop claiming chunks once the
/// supervisor trips, and a trip that left job slots unfilled surfaces
/// as `ExecErr::Interrupted`. A trip that landed after every job
/// completed returns the full batch normally.
pub(crate) fn execute_supervised<R, E, F>(
    workers: usize,
    spec: &JobSpec,
    sup: &Supervisor,
    f: &F,
) -> Result<BatchResult<R>, ExecErr<E>>
where
    R: Send,
    E: Send,
    F: Fn(&mut JobCtx<'_>) -> Result<R, E> + Sync,
{
    execute_inner(workers, spec, Some(sup), f)
}

fn execute_inner<R, E, F>(
    workers: usize,
    spec: &JobSpec,
    sup: Option<&Supervisor>,
    f: &F,
) -> Result<BatchResult<R>, ExecErr<E>>
where
    R: Send,
    E: Send,
    F: Fn(&mut JobCtx<'_>) -> Result<R, E> + Sync,
{
    let n = spec.jobs();
    let workers = workers.min(n).max(1);
    let chunk = spec.chunk_size(workers);
    let cursor = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);

    let outputs: Vec<WorkerOutput<R, E>> = if workers == 1 {
        // The serial path: the identical claim loop, inline.
        vec![worker_loop(0, spec, chunk, &cursor, &poisoned, sup, f)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let (cursor, poisoned) = (&cursor, &poisoned);
                    scope.spawn(move || worker_loop(w, spec, chunk, cursor, poisoned, sup, f))
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| {
                    handle
                        .join()
                        .expect("worker_loop catches job panics and never unwinds")
                })
                .collect()
        })
    };

    let mut metrics = MetricsRegistry::new();
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut first_error: Option<(usize, E)> = None;
    let mut first_panic: Option<JobError> = None;
    let mut interrupted: Option<Interrupt> = None;
    for out in outputs {
        metrics.merge(&out.metrics);
        for (index, r) in out.results {
            slots[index] = Some(r);
        }
        if let Some((index, e)) = out.first_error {
            if first_error.as_ref().is_none_or(|(j, _)| index < *j) {
                first_error = Some((index, e));
            }
        }
        if let Some(je) = out.panicked {
            if first_panic.as_ref().is_none_or(|p| je.job < p.job) {
                first_panic = Some(je);
            }
        }
        if let Some(reason) = out.interrupted {
            interrupted.get_or_insert(reason);
        }
    }
    if let Some(je) = first_panic {
        // Re-raise with the job index attached — the lowest one, so the
        // surfaced failure is worker-count independent.
        panic::panic_any(je);
    }
    if let Some((_, e)) = first_error {
        return Err(ExecErr::Job(e));
    }
    if slots.iter().any(Option::is_none) {
        // Unfilled slots are only legal when supervision stopped the
        // claim loop early — anything else keeps the hard invariant
        // below.
        if let Some(reason) = interrupted {
            return Err(ExecErr::Interrupted(reason));
        }
    }
    metrics.gauge_set_max("engine.workers", workers as f64);
    Ok(BatchResult {
        results: slots
            .into_iter()
            .map(|s| s.expect("every job ran exactly once"))
            .collect(),
        metrics,
        workers,
    })
}
