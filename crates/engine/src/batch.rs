//! Batch descriptions and results: [`JobSpec`], [`JobCtx`],
//! [`BatchResult`], and the graceful-degradation vocabulary
//! ([`JobOutcome`], [`JobError`], [`RetryPolicy`]).

use std::fmt;

use psnt_obs::MetricsRegistry;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::seed::split_seed;

/// Describes one batch of independent jobs, indexed `0..jobs`.
///
/// The spec carries everything that must be identical regardless of
/// worker count: the job count, the optional base seed (split into one
/// child stream per job index), and an optional chunk-size override
/// for the work queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    jobs: usize,
    seed: Option<u64>,
    chunk: Option<usize>,
}

impl JobSpec {
    /// A spec for `jobs` independent jobs.
    pub fn new(jobs: usize) -> JobSpec {
        JobSpec {
            jobs,
            seed: None,
            chunk: None,
        }
    }

    /// Attaches a base seed: job `i` will see `split_seed(base, i)`
    /// through [`JobCtx::seed`] / [`JobCtx::rng`], independent of which
    /// worker runs it.
    #[must_use]
    pub fn seed(mut self, base: u64) -> JobSpec {
        self.seed = Some(base);
        self
    }

    /// Overrides the work-queue chunk size (jobs claimed per atomic
    /// queue operation). Values below 1 are clamped to 1. The default
    /// — `ceil(jobs / (4 · workers))` — balances claim overhead against
    /// tail latency and never affects results, only scheduling.
    #[must_use]
    pub fn chunk(mut self, jobs_per_claim: usize) -> JobSpec {
        self.chunk = Some(jobs_per_claim.max(1));
        self
    }

    /// The number of jobs in the batch.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The base seed, if one was attached.
    pub fn base_seed(&self) -> Option<u64> {
        self.seed
    }

    pub(crate) fn chunk_size(&self, workers: usize) -> usize {
        self.chunk
            .unwrap_or_else(|| self.jobs.div_ceil(workers.max(1) * 4))
            .max(1)
    }
}

/// The per-job context handed to the batch closure.
///
/// Everything observable through the context except [`JobCtx::worker`]
/// and the metrics registry depends only on the job index, which is
/// what makes seeded batches bit-identical at any worker count.
#[derive(Debug)]
pub struct JobCtx<'a> {
    pub(crate) index: usize,
    pub(crate) worker: usize,
    pub(crate) seed: Option<u64>,
    pub(crate) attempt: u32,
    /// The executing worker's private metrics registry. Record domain
    /// metrics freely — no locks, no contention — and the engine merges
    /// every worker's registry into one snapshot at join
    /// ([`psnt_obs::MetricsRegistry::merge`]).
    pub metrics: &'a mut MetricsRegistry,
}

impl JobCtx<'_> {
    /// The job's index in `0..spec.jobs()`.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The executing worker's id in `0..workers`. Scheduling-dependent:
    /// do not let results depend on it.
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// Zero-based attempt number: always 0 outside isolated batches,
    /// incremented per retry under a [`RetryPolicy`]. Deterministic —
    /// retries happen inside the owning job, never on another worker.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// This job's split seed.
    ///
    /// # Panics
    ///
    /// Panics when the [`JobSpec`] carried no base seed.
    pub fn seed(&self) -> u64 {
        self.seed
            .expect("JobCtx::seed called on a batch whose JobSpec has no base seed")
    }

    /// A fresh RNG seeded with this job's split seed.
    ///
    /// # Panics
    ///
    /// Panics when the [`JobSpec`] carried no base seed.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed())
    }
}

pub(crate) fn job_seed(spec: &JobSpec, index: usize) -> Option<u64> {
    spec.base_seed().map(|s| split_seed(s, index as u64))
}

/// An attributable job failure: which job failed, the stringified panic
/// payload, and how many attempts it consumed.
///
/// This is both the per-slot error inside
/// [`JobOutcome::Failed`] and — in non-isolated mode — the payload the
/// pool re-raises on the calling thread (`panic_any(JobError)`), so a
/// batch panic always names its originating job index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// The failing job's index in `0..spec.jobs()`.
    pub job: usize,
    /// The panic payload, stringified (`&str` and `String` payloads are
    /// preserved verbatim; anything else becomes a placeholder).
    pub payload: String,
    /// Attempts consumed (1 without a [`RetryPolicy`]).
    pub attempts: u32,
}

impl JobError {
    pub(crate) fn from_panic(
        job: usize,
        payload: &(dyn std::any::Any + Send),
        attempts: u32,
    ) -> JobError {
        let payload = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_owned()
        };
        JobError {
            job,
            payload,
            attempts,
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "job {} panicked after {} attempt(s): {}",
            self.job, self.attempts, self.payload
        )
    }
}

impl std::error::Error for JobError {}

/// Per-slot outcome of an isolated batch
/// ([`Engine::run_batch_isolated`](crate::Engine::run_batch_isolated)):
/// the job's value, or the attributable failure that exhausted its
/// retries — other slots are unaffected either way.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome<T> {
    /// The job completed, possibly after deterministic retries.
    Ok(T),
    /// Every attempt panicked; the final attempt's failure is kept.
    Failed(JobError),
}

impl<T> JobOutcome<T> {
    /// True for [`JobOutcome::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, JobOutcome::Ok(_))
    }

    /// The success value, consuming the outcome.
    pub fn ok(self) -> Option<T> {
        match self {
            JobOutcome::Ok(v) => Some(v),
            JobOutcome::Failed(_) => None,
        }
    }

    /// The success value by reference.
    pub fn as_ok(&self) -> Option<&T> {
        match self {
            JobOutcome::Ok(v) => Some(v),
            JobOutcome::Failed(_) => None,
        }
    }

    /// The failure, if the job failed.
    pub fn error(&self) -> Option<&JobError> {
        match self {
            JobOutcome::Ok(_) => None,
            JobOutcome::Failed(e) => Some(e),
        }
    }
}

/// Bounded deterministic retry for isolated batches.
///
/// Retries run inside the owning job (never another worker), and the
/// retry seed depends only on `(base seed, job index, attempt)`, so an
/// isolated batch remains bit-identical at any worker count — including
/// which jobs fail and after how many attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per job, clamped to at least 1.
    pub max_attempts: u32,
    /// When true, retry attempt `a > 0` re-derives the job seed as
    /// `split_seed(job_seed, a)`, giving injected transient faults
    /// fresh (but reproducible) randomness per attempt. Attempt 0
    /// always uses the plain job seed, so a policy with
    /// `max_attempts = 1` is exactly the no-retry behavior.
    pub reseed: bool,
}

impl RetryPolicy {
    /// One attempt, no reseeding — the identity policy.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            reseed: false,
        }
    }

    /// Up to `max_attempts` attempts, replaying the same seed each time.
    pub fn attempts(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            reseed: false,
        }
    }

    /// Up to `max_attempts` attempts with per-attempt reseeding.
    pub fn reseeding(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            reseed: true,
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::none()
    }
}

/// The ordered outcome of a batch: `results[i]` is job `i`'s output,
/// regardless of which worker computed it or when.
#[derive(Debug)]
pub struct BatchResult<R> {
    /// Per-job outputs in job-index order.
    pub results: Vec<R>,
    /// The merged per-worker metrics (see
    /// [`psnt_obs::MetricsRegistry::merge`] for the policy): domain
    /// metrics the jobs recorded plus the engine's own
    /// `engine.jobs_done` / `engine.chunks_claimed` counters and the
    /// `engine.workers` gauge.
    pub metrics: MetricsRegistry,
    /// Worker threads the batch actually used (≤ requested jobs).
    pub workers: usize,
}

impl<R> BatchResult<R> {
    /// Consumes the batch, returning only the ordered results.
    pub fn into_results(self) -> Vec<R> {
        self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_size_defaults_scale_with_workers() {
        let spec = JobSpec::new(100);
        assert_eq!(spec.chunk_size(1), 25);
        assert_eq!(spec.chunk_size(4), 7);
        assert_eq!(spec.chunk_size(100), 1);
        // Explicit override wins and is clamped to at least one job.
        assert_eq!(JobSpec::new(100).chunk(3).chunk_size(4), 3);
        assert_eq!(JobSpec::new(100).chunk(0).chunk_size(4), 1);
        // Degenerate batches still claim one job at a time.
        assert_eq!(JobSpec::new(0).chunk_size(4), 1);
    }

    #[test]
    fn job_seed_is_index_only() {
        let spec = JobSpec::new(10).seed(7);
        assert_eq!(job_seed(&spec, 3), job_seed(&spec, 3));
        assert_ne!(job_seed(&spec, 3), job_seed(&spec, 4));
        assert_eq!(job_seed(&JobSpec::new(10), 3), None);
    }
}
