//! Deterministic seed-splitting for parallel batches.
//!
//! A batch with a base seed gives every job its own RNG stream derived
//! *only* from `(base, job index)` — never from the worker that happens
//! to execute it — so a seeded batch produces bit-identical results at
//! any worker count, including the serial `jobs = 1` path.
//!
//! The split is the SplitMix64 finalizer over `base + (index + 1) · γ`
//! with the golden-gamma increment, the same construction SplitMix64
//! itself uses to generate independent streams. It is a bijection of
//! the 64-bit state for a fixed index, so distinct indices yield
//! well-separated seeds even for adjacent bases.

/// The SplitMix64 golden-gamma increment (⌊2⁶⁴/φ⌋, odd).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Derives the child seed for job `index` of a batch seeded with
/// `base`. Deterministic, worker-independent, and stable across
/// platforms.
pub fn split_seed(base: u64, index: u64) -> u64 {
    // One golden-gamma step per index, then the SplitMix64 finalizer.
    let mut z = base.wrapping_add(index.wrapping_add(1).wrapping_mul(GOLDEN_GAMMA));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the child seed for lane `lane` of batch `batch` in a
/// `width`-lane batched job layout: `split_seed(base, batch·width + lane)`.
///
/// This is the seam that keeps bit-parallel batching (DESIGN.md §14)
/// transparent to RNG streams: a batched run that packs `width` former
/// jobs into one job gives lane `lane` of batch `batch` *exactly* the
/// stream the unbatched job `batch·width + lane` would have drawn.
pub fn lane_seed(base: u64, batch: u64, width: u64, lane: u64) -> u64 {
    split_seed(base, batch * width + lane)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_seed_matches_unbatched_job_seed() {
        for batch in 0..8u64 {
            for lane in 0..64u64 {
                assert_eq!(
                    lane_seed(99, batch, 64, lane),
                    split_seed(99, batch * 64 + lane)
                );
            }
        }
    }

    #[test]
    fn split_is_deterministic() {
        assert_eq!(split_seed(42, 0), split_seed(42, 0));
        assert_eq!(split_seed(42, 7), split_seed(42, 7));
    }

    #[test]
    fn distinct_indices_give_distinct_seeds() {
        let seeds: Vec<u64> = (0..1000).map(|i| split_seed(2024, i)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len(), "collision within one base");
    }

    #[test]
    fn adjacent_bases_do_not_collide_across_small_indices() {
        // The classic pitfall `seed + index` would make (base, i+1) and
        // (base+1, i) collide; the mixed split must not.
        for base in 0..50u64 {
            for i in 0..50u64 {
                assert_ne!(split_seed(base, i + 1), split_seed(base + 1, i));
            }
        }
    }

    #[test]
    fn child_differs_from_base() {
        for base in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
            assert_ne!(split_seed(base, 0), base);
        }
    }
}
