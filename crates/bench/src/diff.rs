//! Perf-regression diffing between two `BENCH_*.json` snapshots.
//!
//! [`scripts/bench_snapshot.sh`] freezes the Criterion medians of a PR
//! into a snapshot at the repo root; [`BenchDiff::between`] compares
//! two such snapshots bench-by-bench and flags every benchmark whose
//! median grew past a threshold. The `bench-diff` binary wraps this as
//! the CI perf gate: exit 0 when clean, 1 when a regression crosses
//! the threshold, 2 when a snapshot cannot be parsed.
//!
//! [`scripts/bench_snapshot.sh`]: ../../../scripts/bench_snapshot.sh

use std::fmt;

use serde::{json, Value};

/// A parsed `BENCH_*.json` snapshot: suites of `(bench, median ns)`
/// rows, in file order.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSnapshot {
    suites: Vec<(String, Vec<(String, f64)>)>,
}

impl BenchSnapshot {
    /// Parses the JSON written by `scripts/bench_snapshot.sh`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem: invalid
    /// JSON, a missing/non-object `suites` key, or a non-numeric
    /// median.
    pub fn from_json(text: &str) -> Result<BenchSnapshot, String> {
        let v = json::parse(text).map_err(|e| format!("invalid JSON: {e:?}"))?;
        let Some(Value::Map(suite_entries)) = v.get("suites") else {
            return Err("missing \"suites\" object".into());
        };
        let mut suites = Vec::with_capacity(suite_entries.len());
        for (suite, benches) in suite_entries {
            let Value::Map(bench_entries) = benches else {
                return Err(format!("suite {suite:?} is not an object"));
            };
            let mut rows = Vec::with_capacity(bench_entries.len());
            for (name, median) in bench_entries {
                let Some(ns) = median.as_f64() else {
                    return Err(format!("bench {suite:?}/{name:?} has a non-numeric median"));
                };
                rows.push((name.clone(), ns));
            }
            suites.push((suite.clone(), rows));
        }
        Ok(BenchSnapshot { suites })
    }

    /// The suites, in file order.
    pub fn suites(&self) -> impl Iterator<Item = &str> {
        self.suites.iter().map(|(s, _)| s.as_str())
    }

    /// The median for one bench, when present.
    pub fn median_ns(&self, suite: &str, name: &str) -> Option<f64> {
        self.suites
            .iter()
            .find(|(s, _)| s == suite)
            .and_then(|(_, rows)| rows.iter().find(|(n, _)| n == name))
            .map(|&(_, ns)| ns)
    }
}

/// One bench's before/after medians. A `None` side means the bench
/// exists in only one snapshot (added or removed since the baseline).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDelta {
    /// Suite the bench belongs to (`paper`, `kernels`, …).
    pub suite: String,
    /// The bench name inside the suite.
    pub name: String,
    /// Baseline median in nanoseconds, when the baseline has the bench.
    pub before_ns: Option<f64>,
    /// Current median in nanoseconds, when the current run has it.
    pub after_ns: Option<f64>,
}

impl BenchDelta {
    /// Relative change in percent (`+` = slower), when both sides
    /// exist and the baseline is nonzero.
    pub fn delta_pct(&self) -> Option<f64> {
        match (self.before_ns, self.after_ns) {
            (Some(b), Some(a)) if b > 0.0 => Some((a / b - 1.0) * 100.0),
            _ => None,
        }
    }
}

/// The bench-by-bench comparison of two snapshots against a
/// regression threshold.
#[derive(Debug, Clone)]
pub struct BenchDiff {
    rows: Vec<BenchDelta>,
    threshold_pct: f64,
}

impl BenchDiff {
    /// Compares `after` against the `before` baseline. Rows follow the
    /// baseline's order; benches only the current run knows about are
    /// appended per suite. `threshold_pct` is the slowdown (percent)
    /// past which a bench counts as regressed.
    pub fn between(before: &BenchSnapshot, after: &BenchSnapshot, threshold_pct: f64) -> BenchDiff {
        let mut rows = Vec::new();
        for (suite, benches) in &before.suites {
            for (name, ns) in benches {
                rows.push(BenchDelta {
                    suite: suite.clone(),
                    name: name.clone(),
                    before_ns: Some(*ns),
                    after_ns: after.median_ns(suite, name),
                });
            }
        }
        for (suite, benches) in &after.suites {
            for (name, ns) in benches {
                if before.median_ns(suite, name).is_none() {
                    rows.push(BenchDelta {
                        suite: suite.clone(),
                        name: name.clone(),
                        before_ns: None,
                        after_ns: Some(*ns),
                    });
                }
            }
        }
        BenchDiff {
            rows,
            threshold_pct,
        }
    }

    /// Every compared bench, baseline order first.
    pub fn rows(&self) -> &[BenchDelta] {
        &self.rows
    }

    /// The rows slower than the threshold.
    pub fn regressions(&self) -> Vec<&BenchDelta> {
        self.rows
            .iter()
            .filter(|r| r.delta_pct().is_some_and(|d| d > self.threshold_pct))
            .collect()
    }

    /// True when any bench regressed past the threshold.
    pub fn has_regressions(&self) -> bool {
        !self.regressions().is_empty()
    }
}

/// Renders nanoseconds with a readable unit (`ns`, `µs`, `ms`, `s`).
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

impl fmt::Display for BenchDiff {
    /// The regression table: one aligned row per bench with before /
    /// after / delta, flagging `REGRESSED` rows past the threshold and
    /// `added` / `removed` benches present in only one snapshot.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let id = |r: &BenchDelta| format!("{}/{}", r.suite, r.name);
        let width = self.rows.iter().map(|r| id(r).len()).max().unwrap_or(0);
        writeln!(
            f,
            "{:<width$}  {:>12}  {:>12}  {:>8}",
            "bench", "before", "after", "delta"
        )?;
        for r in &self.rows {
            let before = r.before_ns.map_or_else(|| "-".into(), fmt_ns);
            let after = r.after_ns.map_or_else(|| "-".into(), fmt_ns);
            let (delta, flag) = match r.delta_pct() {
                Some(d) if d > self.threshold_pct => (format!("{d:+.1}%"), "  REGRESSED"),
                Some(d) => (format!("{d:+.1}%"), ""),
                None if r.before_ns.is_none() => ("-".into(), "  added"),
                None => ("-".into(), "  removed"),
            };
            writeln!(
                f,
                "{:<width$}  {before:>12}  {after:>12}  {delta:>8}{flag}",
                id(r)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(pairs: &[(&str, &[(&str, f64)])]) -> BenchSnapshot {
        let suites = pairs
            .iter()
            .map(|(s, rows)| {
                let body = rows
                    .iter()
                    .map(|(n, v)| format!("\"{n}\": {v}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("\"{s}\": {{ {body} }}")
            })
            .collect::<Vec<_>>()
            .join(", ");
        BenchSnapshot::from_json(&format!("{{ \"suites\": {{ {suites} }} }}")).unwrap()
    }

    #[test]
    fn parses_the_snapshot_format() {
        let s = BenchSnapshot::from_json(
            r#"{
  "generated_by": "scripts/bench_snapshot.sh",
  "units": "median nanoseconds per iteration",
  "suites": {
    "paper": { "paper/fig2_element_delay": 4750.000 },
    "kernels": { "element_measure": 37.700 }
  }
}"#,
        )
        .unwrap();
        assert_eq!(s.suites().collect::<Vec<_>>(), ["paper", "kernels"]);
        assert_eq!(
            s.median_ns("paper", "paper/fig2_element_delay"),
            Some(4750.0)
        );
        assert_eq!(s.median_ns("kernels", "element_measure"), Some(37.7));
        assert_eq!(s.median_ns("kernels", "missing"), None);
    }

    #[test]
    fn rejects_malformed_snapshots() {
        assert!(BenchSnapshot::from_json("not json").is_err());
        assert!(BenchSnapshot::from_json("{}").is_err());
        assert!(BenchSnapshot::from_json(r#"{ "suites": { "paper": { "x": "fast" } } }"#).is_err());
    }

    #[test]
    fn flags_only_regressions_past_the_threshold() {
        let before = snapshot(&[("k", &[("a", 100.0), ("b", 100.0), ("c", 100.0)])]);
        let after = snapshot(&[("k", &[("a", 110.0), ("b", 130.0), ("c", 80.0)])]);
        let diff = BenchDiff::between(&before, &after, 25.0);
        let regressed: Vec<&str> = diff.regressions().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(regressed, ["b"]);
        assert!(diff.has_regressions());
        // Exactly at the threshold is not a regression.
        let at = BenchDiff::between(&before, &snapshot(&[("k", &[("a", 125.0)])]), 25.0);
        assert!(!at.has_regressions());
    }

    #[test]
    fn added_and_removed_benches_never_regress() {
        let before = snapshot(&[("k", &[("gone", 100.0)])]);
        let after = snapshot(&[("k", &[("new", 5000.0)])]);
        let diff = BenchDiff::between(&before, &after, 25.0);
        assert!(!diff.has_regressions());
        assert_eq!(diff.rows().len(), 2);
        let table = diff.to_string();
        assert!(table.contains("removed"), "{table}");
        assert!(table.contains("added"), "{table}");
    }

    #[test]
    fn display_renders_the_regression_table() {
        let before = snapshot(&[("k", &[("fast", 100.0), ("slow", 2_000_000.0)])]);
        let after = snapshot(&[("k", &[("fast", 150.0), ("slow", 2_000_000.0)])]);
        let table = BenchDiff::between(&before, &after, 25.0).to_string();
        assert!(table.contains("k/fast"), "{table}");
        assert!(table.contains("+50.0%"), "{table}");
        assert!(table.contains("REGRESSED"), "{table}");
        assert!(table.contains("2.00 ms"), "{table}");
        assert!(table.contains("+0.0%"), "{table}");
    }
}
